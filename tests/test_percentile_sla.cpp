// Percentile-SLA planning (extension): the optimizer's kTailPercentile
// metric plans so that P(sojourn <= D_q) >= p on every loaded stream,
// using the exact M/M/1 tail identity. These tests pin the identity and
// verify the planned tails empirically against the event simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "queueing/mm1.hpp"
#include "scenario_fixtures.hpp"
#include "sim/slot_simulator.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

OptimizedPolicy tail_policy(double percentile) {
  OptimizedPolicy::Options opt;
  opt.delay_metric = OptimizedPolicy::DelayMetric::kTailPercentile;
  opt.tail_percentile = percentile;
  return OptimizedPolicy(opt);
}

TEST(PercentileSla, TailIdentityHolds) {
  // Mean R = D / ln(1/(1-p))  =>  P(T > D) = exp(-D/R) = 1 - p.
  const double D = 0.2, p = 0.95;
  const double mean = D / std::log(1.0 / (1.0 - p));
  // Choose an M/M/1 with exactly that mean: mu_eff - lambda = 1/mean.
  const double mu_eff = 50.0;
  const double lambda = mu_eff - 1.0 / mean;
  EXPECT_NEAR(mm1::delay_tail_probability(1.0, 1.0, mu_eff, lambda, D),
              1.0 - p, 1e-12);
}

TEST(PercentileSla, PlanIsValidAndMoreConservative) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  OptimizedPolicy mean_policy;
  OptimizedPolicy p95 = tail_policy(0.95);
  const DispatchPlan mean_plan = mean_policy.plan_slot(topo, input);
  const DispatchPlan tail_plan = p95.plan_slot(topo, input);
  EXPECT_TRUE(tail_plan.is_valid(topo, input));
  // Hard tail SLOs cost capacity: the analytic (mean-based) ledger of
  // the p95 plan can never beat the mean-optimal plan.
  const double mean_profit =
      evaluate_plan(topo, input, mean_plan).net_profit();
  const double tail_profit =
      evaluate_plan(topo, input, tail_plan).net_profit();
  EXPECT_LE(tail_profit, mean_profit + 1e-6);
  EXPECT_GE(tail_profit, 0.0);
}

TEST(PercentileSla, SimulatedTailsMeetTheTarget) {
  const Topology topo = small_topology();
  SlotInput input = small_input();
  input.slot_seconds = 20000.0;  // enough samples for stable p95
  OptimizedPolicy p95 = tail_policy(0.95);
  const DispatchPlan plan = p95.plan_slot(topo, input);

  SlotSimulator::Options sim_opt;
  sim_opt.record_samples = true;
  Rng rng(7);
  const SimOutcome out =
      SlotSimulator(sim_opt).simulate(topo, input, plan, rng);

  const SlotMetrics analytic = evaluate_plan(topo, input, plan);
  for (std::size_t k = 0; k < topo.num_classes(); ++k) {
    for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
      const auto& o = analytic.outcomes[k][l];
      if (o.rate <= 0.0) continue;
      ASSERT_GE(o.tuf_level, 0);
      const double band_deadline =
          topo.classes[k].tuf.sub_deadline(
              static_cast<std::size_t>(o.tuf_level));
      ASSERT_GT(out.sojourn_samples[k][l].count(), 2000u);
      const double p95_observed = out.sojourn_samples[k][l].quantile(0.95);
      // 5% statistical slack on top of the planned margin.
      EXPECT_LE(p95_observed, band_deadline * 1.05)
          << "class " << k << " dc " << l;
    }
  }
}

TEST(PercentileSla, MeanPlanningCanMissTheTail) {
  // A capacity-bound stream planned on the mean sits right at the band
  // edge; its p95 is ~3x the mean, far past the deadline. This is the
  // motivation for the tail metric.
  Topology topo = small_topology();
  topo.classes = {{"web", StepTuf::constant(0.01, 0.1), 0.0}};
  topo.datacenters.resize(1);
  topo.datacenters[0].service_rate = {100.0};
  topo.datacenters[0].energy_per_request_kwh = {0.001};
  topo.distance_miles = {{100.0}, {100.0}};

  SlotInput input;
  input.arrival_rate = {{200.0, 150.0}};  // near the fleet's limit
  input.price = {0.05};
  input.slot_seconds = 20000.0;

  OptimizedPolicy mean_policy;
  const DispatchPlan plan = mean_policy.plan_slot(topo, input);
  SlotSimulator::Options sim_opt;
  sim_opt.record_samples = true;
  Rng rng(9);
  const SimOutcome out =
      SlotSimulator(sim_opt).simulate(topo, input, plan, rng);
  ASSERT_GT(out.sojourn_samples[0][0].count(), 2000u);
  EXPECT_GT(out.sojourn_samples[0][0].quantile(0.95), 0.1);
}

TEST(PercentileSla, AnalyticTailGuaranteeHoldsOnEveryLoadedStream) {
  // Definitional property: any stream planned at band q has mean delay
  // R <= D_q / ln(1/(1-p)) <= D_final / ln(1/(1-p)), so the exponential
  // sojourn tail gives P(T > D_final) = e^{-D_final/R} <= 1 - p.
  // (Realized *profit* is deliberately NOT asserted: tighter tails can
  // push delays into higher utility bands, so profit moves either way.)
  const Topology topo = small_topology();
  for (double p : {0.9, 0.95, 0.99}) {
    OptimizedPolicy policy = tail_policy(p);
    const SlotInput input = small_input(3.0);  // loaded system
    const DispatchPlan plan = policy.plan_slot(topo, input);
    for (std::size_t k = 0; k < topo.num_classes(); ++k) {
      const double final_deadline = topo.classes[k].tuf.final_deadline();
      for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
        const double load = plan.class_dc_rate(k, l);
        if (load <= 1e-9) continue;
        const auto& dc = topo.datacenters[l];
        const double tail = mm1::delay_tail_probability(
            plan.dc[l].share[k], dc.server_capacity, dc.service_rate[k],
            plan.per_server_rate(k, l), final_deadline);
        EXPECT_LE(tail, (1.0 - p) * 1.001) << "p=" << p << " k=" << k
                                           << " l=" << l;
      }
    }
  }
}

TEST(PercentileSla, RejectsBadPercentile) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  OptimizedPolicy policy = tail_policy(1.0);
  EXPECT_THROW(policy.plan_slot(topo, input), InvalidArgument);
}

}  // namespace
}  // namespace palb
