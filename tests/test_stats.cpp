#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(SampleSet, QuantilesOfKnownSet) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);  // interpolated
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, QuantileValidation) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), InvalidArgument);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), InvalidArgument);
  EXPECT_THROW(s.quantile(1.1), InvalidArgument);
}

TEST(SampleSet, AddAfterQuantileStaysSorted) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(15.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), InvalidArgument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), InvalidArgument);
}

TEST(RelativeDifference, Basics) {
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
  EXPECT_NEAR(relative_difference(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(relative_difference(-2.0, 2.0), 2.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(relative_difference(3.0, 5.0),
                   relative_difference(5.0, 3.0));
}

}  // namespace
}  // namespace palb
