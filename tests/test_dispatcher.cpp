// Table-compilation and dispatcher unit tests (docs/SERVING.md): CDF
// exactness for shares summing to 1, single-DC and shed-all plans,
// explicit no-route for zero-share streams, plan-version stamping, and
// the rung-5 shed-all transition regression — a freshly published plan
// that routes *nothing* must invalidate the stale tables immediately,
// not keep serving the previous plan's destinations.

#include "serve/dispatcher.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/plan.hpp"
#include "core/balanced_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_handle.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"
#include "scenario_fixtures.hpp"
#include "serve/routing_table.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using serve::Dispatcher;
using serve::Route;
using serve::RouteStatus;
using serve::RoutingTable;
using testing_fixtures::small_input;
using testing_fixtures::small_topology;

/// A plan dispatching `rates[k][s][l]` req/s, zero resource side (the
/// router only reads the rate tensor).
DispatchPlan plan_with_rates(
    const Topology& topo,
    const std::vector<std::vector<std::vector<double>>>& rates) {
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate = rates;
  return plan;
}

TEST(DispatcherTable, SharesSummingToOneCompileToExactCdf) {
  const Topology topo = small_topology();
  // Class 0 / front-end 0 splits 30/70; shares sum to 1 within 1e-12
  // and the compiled prefix sums must be exact, the last term exactly
  // 1.0 (not 1.0 - epsilon: upper_bound past it would fall off the run).
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 70.0}, {10.0, 0.0}}, {{0.0, 0.0}, {25.0, 75.0}}});
  const RoutingTable table = RoutingTable::compile(topo, plan, 1);

  const auto cdf00 = table.cdf(0, 0);
  ASSERT_EQ(cdf00.size(), 2u);
  EXPECT_EQ(cdf00[0].first, 0u);
  EXPECT_NEAR(cdf00[0].second, 0.3, 1e-12);
  EXPECT_EQ(cdf00[1].first, 1u);
  EXPECT_EQ(cdf00[1].second, 1.0);  // exactly

  const auto cdf11 = table.cdf(1, 1);
  ASSERT_EQ(cdf11.size(), 2u);
  EXPECT_NEAR(cdf11[0].second, 0.25, 1e-12);
  EXPECT_EQ(cdf11[1].second, 1.0);
}

TEST(DispatcherTable, SingleDcStreamAlwaysRoutesThere) {
  const Topology topo = small_topology();
  const DispatchPlan plan = plan_with_rates(
      topo, {{{0.0, 50.0}, {0.0, 0.0}}, {{0.0, 0.0}, {0.0, 0.0}}});
  const RoutingTable table = RoutingTable::compile(topo, plan, 3);
  const auto cdf = table.cdf(0, 0);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_EQ(cdf[0].first, 1u);
  EXPECT_EQ(cdf[0].second, 1.0);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    const Route r = table.route(0, 0, id);
    ASSERT_TRUE(r.routed());
    EXPECT_EQ(r.dc, 1u);
    EXPECT_EQ(r.plan_version, 3u);
  }
}

TEST(DispatcherTable, ShedAllPlanRoutesNothing) {
  const Topology topo = small_topology();
  const RoutingTable table =
      RoutingTable::compile(topo, DispatchPlan::zero(topo), 7);
  for (std::size_t k = 0; k < topo.num_classes(); ++k) {
    for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
      EXPECT_FALSE(table.has_route(k, s));
      EXPECT_TRUE(table.cdf(k, s).empty());
      const Route r = table.route(k, s, 99);
      // Explicit no-route, never UB: status is set, the version still
      // attributes the decision to the shed-all publish.
      EXPECT_EQ(r.status, RouteStatus::kNoRoute);
      EXPECT_FALSE(r.routed());
      EXPECT_EQ(r.plan_version, 7u);
    }
  }
}

TEST(DispatcherTable, ZeroShareFrontendReportsNoRouteOthersUnaffected) {
  const Topology topo = small_topology();
  // Front-end 1 of class 0 sheds everything; every other stream routes.
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 70.0}, {0.0, 0.0}}, {{5.0, 0.0}, {0.0, 5.0}}});
  const RoutingTable table = RoutingTable::compile(topo, plan, 1);
  EXPECT_FALSE(table.has_route(0, 1));
  EXPECT_FALSE(table.route(0, 1, 123).routed());
  EXPECT_TRUE(table.has_route(0, 0));
  EXPECT_TRUE(table.route(0, 0, 123).routed());
  EXPECT_TRUE(table.route(1, 0, 123).routed());
  EXPECT_TRUE(table.route(1, 1, 123).routed());
}

TEST(DispatcherTable, ZeroShareDcNeverEntersTheCdf) {
  const Topology topo = small_topology();
  const DispatchPlan plan = plan_with_rates(
      topo, {{{0.0, 40.0}, {0.0, 0.0}}, {{0.0, 0.0}, {60.0, 0.0}}});
  const RoutingTable table = RoutingTable::compile(topo, plan, 1);
  // No hash value can select a DC that receives no share of the stream
  // — the cut-link / dark-DC invariant at the table level.
  for (std::uint64_t id = 0; id < 5000; ++id) {
    EXPECT_EQ(table.route(0, 0, id).dc, 1u);
    EXPECT_EQ(table.route(1, 1, id).dc, 0u);
  }
}

TEST(DispatcherTable, RouteIsPureAndCoversBothDestinations) {
  const Topology topo = small_topology();
  const DispatchPlan plan = plan_with_rates(
      topo, {{{50.0, 50.0}, {0.0, 0.0}}, {{0.0, 0.0}, {0.0, 0.0}}});
  const RoutingTable table = RoutingTable::compile(topo, plan, 1);
  std::map<std::size_t, std::size_t> hits;
  for (std::uint64_t id = 0; id < 4096; ++id) {
    const Route first = table.route(0, 0, id);
    const Route again = table.route(0, 0, id);
    ASSERT_TRUE(first.routed());
    EXPECT_EQ(first.dc, again.dc);  // pure function of (table, id)
    ++hits[first.dc];
  }
  // A 50/50 split must reach both DCs (the exact counts are fixed by
  // the hash, but pinning them here would turn this into a change
  // detector for SplitMix64).
  EXPECT_GT(hits[0], 0u);
  EXPECT_GT(hits[1], 0u);
}

TEST(DispatcherTable, ShapeMismatchThrows) {
  const Topology topo = small_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate.pop_back();  // one class short
  EXPECT_THROW(RoutingTable::compile(topo, plan, 1), InvalidArgument);
  DispatchPlan negative = DispatchPlan::zero(topo);
  negative.rate[0][0][0] = -1.0;
  EXPECT_THROW(RoutingTable::compile(topo, negative, 1), InvalidArgument);
}

TEST(Dispatcher, NoPlanPublishedReturnsExplicitNoRoute) {
  PlanHandle live;
  const Dispatcher dispatcher(small_topology(), live);
  const Route r = dispatcher.route(0, 0, 1);
  EXPECT_EQ(r.status, RouteStatus::kNoRoute);
  EXPECT_EQ(r.plan_version, 0u);
  EXPECT_EQ(dispatcher.tables(), nullptr);
  EXPECT_EQ(dispatcher.table_version(), 0u);
}

TEST(Dispatcher, CompilesOnFirstRouteAfterPublish) {
  const Topology topo = small_topology();
  PlanHandle live;
  const Dispatcher dispatcher(topo, live);
  live.publish(plan_with_rates(
      topo, {{{10.0, 0.0}, {10.0, 0.0}}, {{10.0, 0.0}, {10.0, 0.0}}}));
  const Route r = dispatcher.route(0, 0, 42);
  ASSERT_TRUE(r.routed());
  EXPECT_EQ(r.dc, 0u);
  EXPECT_EQ(r.plan_version, 1u);
  EXPECT_EQ(dispatcher.table_version(), 1u);
  EXPECT_EQ(dispatcher.stats().rebuilds, 1u);
  EXPECT_EQ(dispatcher.stats().stalled_routes, 0u);
}

TEST(Dispatcher, RebuildsWhenANewerPlanLands) {
  const Topology topo = small_topology();
  PlanHandle live;
  const Dispatcher dispatcher(topo, live);
  live.publish(plan_with_rates(
      topo, {{{10.0, 0.0}, {0.0, 0.0}}, {{0.0, 0.0}, {0.0, 0.0}}}));
  EXPECT_EQ(dispatcher.route(0, 0, 5).dc, 0u);
  // The slow path moves the whole stream to the other DC; the very next
  // route must follow — no manual refresh() required.
  live.publish(plan_with_rates(
      topo, {{{0.0, 10.0}, {0.0, 0.0}}, {{0.0, 0.0}, {0.0, 0.0}}}));
  const Route r = dispatcher.route(0, 0, 5);
  ASSERT_TRUE(r.routed());
  EXPECT_EQ(r.dc, 1u);
  EXPECT_EQ(r.plan_version, 2u);
  EXPECT_EQ(dispatcher.stats().rebuilds, 2u);
}

TEST(Dispatcher, ShedAllTransitionInvalidatesStaleTables) {
  // Regression (ResilientOptions::live wiring): a rung-5 shed-all plan
  // publishes post-audit, and the dispatcher must stop routing the
  // moment it lands — stale tables kept serving the pre-fault
  // destinations before the version-change rebuild existed.
  const Topology topo = small_topology();
  PlanHandle live;
  const Dispatcher dispatcher(topo, live);
  live.publish(plan_with_rates(
      topo, {{{10.0, 10.0}, {10.0, 10.0}}, {{10.0, 10.0}, {10.0, 10.0}}}));
  ASSERT_TRUE(dispatcher.route(0, 0, 9).routed());
  live.publish(DispatchPlan::zero(topo));
  const Route r = dispatcher.route(0, 0, 9);
  EXPECT_FALSE(r.routed());
  EXPECT_EQ(r.plan_version, 2u);  // attributed to the shed-all publish
  EXPECT_EQ(dispatcher.table_version(), 2u);
}

/// Fails every plan_slot call — forces the ResilientController past
/// rungs 1-4 (it also serves as the rung-4 heuristic override) onto
/// rung-5 shed-all.
class AlwaysFailingPolicy final : public Policy {
 public:
  const std::string& name() const override {
    static const std::string kName = "always-failing";
    return kName;
  }
  DispatchPlan plan_slot(const Topology&, const SlotInput&) override {
    throw NumericalError("injected: policy always fails");
  }
};

TEST(Dispatcher, Rung5ShedAllPublishStopsRoutingEndToEnd) {
  // Same regression through the real ladder: a live handle wired into
  // ResilientController, every rung failing, so the applied plan is the
  // audited shed-all — after which route() must report no-route rather
  // than serve the stale pre-failure tables.
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  PlanHandle live;
  const Dispatcher dispatcher(sc.topology, live);

  // A healthy plan first, so the transition is observable.
  BalancedPolicy healthy;
  live.publish(healthy.plan_slot(sc.topology, sc.slot_input(0)));
  ASSERT_TRUE(dispatcher.route(0, 0, 11).routed());
  EXPECT_EQ(dispatcher.table_version(), 1u);

  const ResilientController controller(sc, FaultSchedule{});
  AlwaysFailingPolicy failing;
  ResilientController::Options options;
  options.heuristic = &failing;  // rung 4 fails too
  options.live = &live;
  const RunResult run = controller.run(failing, 1, 0, options);
  ASSERT_EQ(run.fallback_rungs.front(),
            static_cast<int>(FallbackRung::kShedAll));

  EXPECT_EQ(live.version(), 2u);
  const Route r = dispatcher.route(0, 0, 11);
  EXPECT_FALSE(r.routed());
  EXPECT_EQ(r.plan_version, 2u);
  EXPECT_EQ(dispatcher.table_version(), 2u);
}

}  // namespace
}  // namespace palb
