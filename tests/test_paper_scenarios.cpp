#include "core/paper_scenarios.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(PaperScenarios, BasicSyntheticShapes) {
  for (auto set : {paper::ArrivalSet::kLow, paper::ArrivalSet::kHigh}) {
    const Scenario sc = paper::basic_synthetic(set);
    EXPECT_EQ(sc.topology.num_classes(), 3u);
    EXPECT_EQ(sc.topology.num_frontends(), 4u);
    EXPECT_EQ(sc.topology.num_datacenters(), 3u);
    for (const auto& dc : sc.topology.datacenters) {
      EXPECT_EQ(dc.num_servers, 6);
    }
    // One-level (constant) TUFs in the basic study.
    for (const auto& cls : sc.topology.classes) {
      EXPECT_EQ(cls.tuf.levels(), 1u);
      // Transfer cost excluded in the basic study.
      EXPECT_DOUBLE_EQ(cls.transfer_cost_per_mile, 0.0);
    }
  }
}

TEST(PaperScenarios, HighSetCarriesMoreLoadThanLow) {
  const Scenario low = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const Scenario high = paper::basic_synthetic(paper::ArrivalSet::kHigh);
  double low_total = 0.0, high_total = 0.0;
  for (std::size_t k = 0; k < 3; ++k) {
    low_total += low.slot_input(0).total_offered(k);
    high_total += high.slot_input(0).total_offered(k);
  }
  EXPECT_GT(high_total, 4.0 * low_total);
}

TEST(PaperScenarios, HighSetExceedsFleetCapacity) {
  // §V: "none of the approaches was able to process all the requests".
  const Scenario high = paper::basic_synthetic(paper::ArrivalSet::kHigh);
  double offered = 0.0, dedicated = 0.0;
  for (std::size_t k = 0; k < 3; ++k) {
    offered += high.slot_input(0).total_offered(k);
    dedicated += high.topology.dedicated_capacity(k);
  }
  // dedicated_capacity triple-counts servers (each class assumes the
  // whole fleet), so offered > dedicated/3 certifies overload.
  EXPECT_GT(offered, dedicated / 3.0);
}

TEST(PaperScenarios, WorldCupShapes) {
  const Scenario sc = paper::worldcup_study();
  EXPECT_EQ(sc.topology.num_classes(), 3u);
  EXPECT_EQ(sc.topology.num_frontends(), 4u);
  EXPECT_EQ(sc.topology.num_datacenters(), 3u);
  // 24-hour diurnal traces and 24-hour price curves.
  for (const auto& row : sc.arrivals) {
    for (const auto& trace : row) EXPECT_EQ(trace.slots(), 24u);
  }
  for (const auto& p : sc.prices) EXPECT_EQ(p.size(), 24u);
  // Types are time-shifted copies: same mass per front-end.
  EXPECT_NEAR(sc.arrivals[0][0].mean(), sc.arrivals[1][0].mean(), 1e-9);
  EXPECT_NEAR(sc.arrivals[0][0].mean(), sc.arrivals[2][0].mean(), 1e-9);
}

TEST(PaperScenarios, WorldCupDc2IsFarthest) {
  const Scenario sc = paper::worldcup_study();
  for (const auto& row : sc.topology.distance_miles) {
    EXPECT_GT(row[1], row[0]);
    EXPECT_GT(row[1], row[2]);
  }
}

TEST(PaperScenarios, WorldCupIsDeterministicPerSeed) {
  const Scenario a = paper::worldcup_study(5);
  const Scenario b = paper::worldcup_study(5);
  const Scenario c = paper::worldcup_study(6);
  EXPECT_DOUBLE_EQ(a.arrivals[0][0].at(10), b.arrivals[0][0].at(10));
  EXPECT_NE(a.arrivals[0][0].at(10), c.arrivals[0][0].at(10));
}

TEST(PaperScenarios, GoogleShapes) {
  const Scenario sc = paper::google_study();
  EXPECT_EQ(sc.topology.num_classes(), 2u);
  EXPECT_EQ(sc.topology.num_frontends(), 1u);
  EXPECT_EQ(sc.topology.num_datacenters(), 2u);
  for (const auto& cls : sc.topology.classes) {
    EXPECT_EQ(cls.tuf.levels(), 2u);  // two-level step-downward TUFs
  }
  // 7-hour trace (the 2010 Google dataset spans ~7 hours).
  EXPECT_EQ(sc.arrivals[0][0].slots(), 7u);
  // Type 2 is the 1-slot-shifted duplicate.
  EXPECT_DOUBLE_EQ(sc.arrivals[1][0].at(1), sc.arrivals[0][0].at(0));
  // Distances 1000 / 2000 miles per the paper.
  EXPECT_DOUBLE_EQ(sc.topology.distance_miles[0][0], 1000.0);
  EXPECT_DOUBLE_EQ(sc.topology.distance_miles[0][1], 2000.0);
}

TEST(PaperScenarios, GooglePriceWindowStartsAt14) {
  const Scenario sc = paper::google_study();
  // Window must reproduce the 14:00+ hours of the embedded curves.
  EXPECT_DOUBLE_EQ(sc.prices[0].at(0), 0.096);  // Houston 14:00
  EXPECT_DOUBLE_EQ(sc.prices[1].at(0), 0.106);  // Mountain View 14:00
}

TEST(PaperScenarios, GoogleKnobsScale) {
  const Scenario base = paper::google_study(7, 1.0, 1.0, 6);
  const Scenario big = paper::google_study(7, 2.0, 1.0, 6);
  EXPECT_DOUBLE_EQ(big.topology.datacenters[0].service_rate[0],
                   2.0 * base.topology.datacenters[0].service_rate[0]);
  const Scenario busy = paper::google_study(7, 1.0, 3.0, 6);
  EXPECT_NEAR(busy.arrivals[0][0].mean(), 3.0 * base.arrivals[0][0].mean(),
              1e-9);
  const Scenario wide = paper::google_study(7, 1.0, 1.0, 10);
  EXPECT_EQ(wide.topology.datacenters[0].num_servers, 10);
  EXPECT_THROW(paper::google_study(7, 0.0), InvalidArgument);
  EXPECT_THROW(paper::google_study(7, 1.0, 1.0, 0), InvalidArgument);
}

TEST(PaperScenarios, AllScenariosValidate) {
  EXPECT_NO_THROW(paper::basic_synthetic(paper::ArrivalSet::kLow).validate());
  EXPECT_NO_THROW(paper::worldcup_study().validate());
  EXPECT_NO_THROW(paper::google_study().validate());
}

}  // namespace
}  // namespace palb
