#include "queueing/mm1_simulator.hpp"

#include <gtest/gtest.h>

#include "queueing/mm1.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

TEST(Mm1Simulator, ZeroArrivalsIsEmpty) {
  Mm1Simulator::Params p;
  p.arrival_rate = 0.0;
  Rng rng(1);
  const Mm1SimResult r = Mm1Simulator::run_fcfs(p, rng);
  EXPECT_EQ(r.arrivals, 0u);
  EXPECT_EQ(r.completions, 0u);
}

TEST(Mm1Simulator, ParameterValidation) {
  Mm1Simulator::Params p;
  p.service_rate = 0.0;
  Rng rng(1);
  EXPECT_THROW(Mm1Simulator::run_fcfs(p, rng), InvalidArgument);
  p.service_rate = 1.0;
  p.warmup = 10.0;
  p.horizon = 5.0;
  EXPECT_THROW(Mm1Simulator::run_fcfs(p, rng), InvalidArgument);
}

/// Core validation of the paper's Eq. 1: the empirical mean sojourn of a
/// simulated M/M/1 queue matches 1/(mu - lambda) across utilizations.
class Mm1FcfsValidation : public ::testing::TestWithParam<double> {};

TEST_P(Mm1FcfsValidation, MeanSojournMatchesAnalytic) {
  const double rho = GetParam();
  Mm1Simulator::Params p;
  p.service_rate = 20.0;
  p.arrival_rate = rho * p.service_rate;
  p.horizon = 40000.0;
  p.warmup = 500.0;
  Rng rng(static_cast<std::uint64_t>(rho * 1000.0) + 17);
  const Mm1SimResult r = Mm1Simulator::run_fcfs(p, rng);
  const double analytic = 1.0 / (p.service_rate - p.arrival_rate);
  ASSERT_GT(r.sojourn.count(), 1000u);
  EXPECT_NEAR(r.sojourn.mean(), analytic, 0.12 * analytic) << "rho=" << rho;
  // Server utilization ~ rho.
  EXPECT_NEAR(r.busy_fraction, rho, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Utilizations, Mm1FcfsValidation,
                         ::testing::Values(0.2, 0.5, 0.7, 0.85));

class Mm1PsValidation : public ::testing::TestWithParam<double> {};

TEST_P(Mm1PsValidation, ProcessorSharingMeanMatchesFcfs) {
  // M/M/1-PS has the same mean sojourn as FCFS (insensitivity of the
  // mean); this is why the paper's VM story and Eq. 1 are compatible.
  const double rho = GetParam();
  Mm1Simulator::Params p;
  p.service_rate = 15.0;
  p.arrival_rate = rho * p.service_rate;
  p.horizon = 30000.0;
  p.warmup = 500.0;
  Rng rng(static_cast<std::uint64_t>(rho * 999.0) + 3);
  const Mm1SimResult r = Mm1Simulator::run_processor_sharing(p, rng);
  const double analytic = 1.0 / (p.service_rate - p.arrival_rate);
  ASSERT_GT(r.sojourn.count(), 1000u);
  EXPECT_NEAR(r.sojourn.mean(), analytic, 0.12 * analytic) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, Mm1PsValidation,
                         ::testing::Values(0.3, 0.6, 0.8));

TEST(Mm1Simulator, MeanQueueLengthNearLittle) {
  Mm1Simulator::Params p;
  p.service_rate = 10.0;
  p.arrival_rate = 6.0;
  p.horizon = 30000.0;
  p.warmup = 500.0;
  Rng rng(42);
  const Mm1SimResult r = Mm1Simulator::run_fcfs(p, rng);
  // Little's law: L = rho/(1-rho) = 1.5 (time-weighted average).
  EXPECT_NEAR(r.time_avg_in_system, 1.5, 0.2);
  // And L = lambda * W against the measured sojourn.
  EXPECT_NEAR(r.time_avg_in_system, p.arrival_rate * r.sojourn.mean(),
              0.15);
}

TEST(Mm1Simulator, DeterministicUnderSameSeed) {
  Mm1Simulator::Params p;
  p.service_rate = 10.0;
  p.arrival_rate = 5.0;
  p.horizon = 1000.0;
  p.warmup = 0.0;
  Rng a(7), b(7);
  const Mm1SimResult ra = Mm1Simulator::run_fcfs(p, a);
  const Mm1SimResult rb = Mm1Simulator::run_fcfs(p, b);
  EXPECT_EQ(ra.arrivals, rb.arrivals);
  EXPECT_EQ(ra.completions, rb.completions);
  EXPECT_DOUBLE_EQ(ra.sojourn.mean(), rb.sojourn.mean());
}

}  // namespace
}  // namespace palb
