#pragma once

#include "cloud/model.hpp"

namespace palb::testing_fixtures {

/// Small 2-class / 2-front-end / 2-DC system with meaningful price and
/// distance asymmetry: dc1 is cheap-energy and close, dc2 is expensive
/// and far but has more muscle for class 1.
inline Topology small_topology() {
  Topology topo;
  topo.classes = {
      {"web", StepTuf::constant(0.01, 0.1), 1e-6},
      {"api", StepTuf({0.02, 0.01}, {0.05, 0.15}), 2e-6},
  };
  topo.frontends = {{"fe1"}, {"fe2"}};
  topo.datacenters = {
      {"dc1", 4, 1.0, {100.0, 90.0}, {0.002, 0.003}, 1.0},
      {"dc2", 4, 1.0, {140.0, 80.0}, {0.003, 0.002}, 1.0},
  };
  topo.distance_miles = {{200.0, 1500.0}, {600.0, 1000.0}};
  return topo;
}

inline SlotInput small_input(double scale = 1.0) {
  SlotInput input;
  input.arrival_rate = {{60.0 * scale, 40.0 * scale},
                        {30.0 * scale, 50.0 * scale}};
  input.price = {0.04, 0.09};
  input.slot_seconds = 3600.0;
  return input;
}

}  // namespace palb::testing_fixtures
