#include <gtest/gtest.h>

#include <cmath>

#include "solver/simplex.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

const SimplexSolver solver;

TEST(Duals, BindingCapacityRowOfAMaximization) {
  // max x s.t. x <= 4: one more unit of capacity is worth exactly 1.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  ASSERT_EQ(sol.duals.size(), 1u);
  EXPECT_NEAR(sol.duals[0], 1.0, 1e-9);
}

TEST(Duals, NonBindingRowHasZeroDual) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, 2.0, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 100.0);  // slack
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.duals[0], 0.0, 1e-9);
}

TEST(Duals, TextbookPairIsCorrect) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
  // Known duals: 0, 3/2, 1.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 3.0);
  const int y = lp.add_variable(0, kInfinity, 5.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{y, 2.0}}, Relation::kLe, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.duals[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.duals[1], 1.5, 1e-9);
  EXPECT_NEAR(sol.duals[2], 1.0, 1e-9);
}

TEST(Duals, MinimizationWithGeRows) {
  // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 (optimum (3,1), cost 9).
  // Tightening a covering row *raises* the minimum: duals >= 0 as
  // d(cost)/d(rhs). Known values: y1 = 3/2, y2 = 1/2.
  LinearProgram lp;
  const int x = lp.add_variable(0, kInfinity, 2.0);
  const int y = lp.add_variable(0, kInfinity, 3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kGe, 6.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.duals[0], 1.5, 1e-9);
  EXPECT_NEAR(sol.duals[1], 0.5, 1e-9);
}

TEST(Duals, EqualityRowDual) {
  // min x + 2y s.t. x + y = 3, x <= 1 (bound). Optimum (1, 2), cost 5.
  // Raising the equality rhs by d adds d units of y: dual = 2.
  LinearProgram lp;
  const int x = lp.add_variable(0, 1.0, 1.0);
  const int y = lp.add_variable(0, kInfinity, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 3.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.duals[0], 2.0, 1e-9);
}

TEST(Duals, StrongDualityOnPureRowLp) {
  // With no finite variable bounds beyond x >= 0, strong duality reads
  // c'x* = sum_r y_r b_r.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int a = lp.add_variable(0, kInfinity, 4.0);
  const int b = lp.add_variable(0, kInfinity, 3.0);
  const int c = lp.add_variable(0, kInfinity, 2.5);
  lp.add_constraint({{a, 2.0}, {b, 1.0}, {c, 1.0}}, Relation::kLe, 10.0);
  lp.add_constraint({{a, 1.0}, {b, 3.0}, {c, 2.0}}, Relation::kLe, 15.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  const double dual_value =
      sol.duals[0] * 10.0 + sol.duals[1] * 15.0;
  EXPECT_NEAR(dual_value, sol.objective, 1e-7);
}

class DualsPerturbationTest : public ::testing::TestWithParam<int> {};

TEST_P(DualsPerturbationTest, DualPredictsRhsSensitivity) {
  // Random non-degenerate-ish LPs: nudging each rhs by eps must move the
  // optimum by ~dual * eps.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  const int n = 3, m = 3;
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (int j = 0; j < n; ++j) {
    lp.add_variable(0.0, kInfinity, rng.uniform(0.5, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      terms.emplace_back(j, rng.uniform(0.2, 2.0));
    }
    lp.add_constraint(terms, Relation::kLe, rng.uniform(3.0, 9.0));
  }
  const LpSolution base = solver.solve(lp);
  ASSERT_EQ(base.status, LpStatus::kOptimal);

  const double eps = 1e-5;
  for (int r = 0; r < m; ++r) {
    // Rebuild the model with one bumped rhs.
    LinearProgram fresh;
    fresh.set_objective_sense(Sense::kMaximize);
    for (int j = 0; j < n; ++j) {
      fresh.add_variable(0.0, kInfinity, lp.cost(j));
    }
    for (int rr = 0; rr < m; ++rr) {
      fresh.add_constraint(lp.row_terms(rr), Relation::kLe,
                           lp.rhs(rr) + (rr == r ? eps : 0.0));
    }
    const LpSolution bumped = solver.solve(fresh);
    ASSERT_EQ(bumped.status, LpStatus::kOptimal);
    EXPECT_NEAR((bumped.objective - base.objective) / eps, base.duals[r],
                1e-3)
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualsPerturbationTest,
                         ::testing::Range(0, 10));

class ComplementarySlacknessTest : public ::testing::TestWithParam<int> {};

TEST_P(ComplementarySlacknessTest, DualTimesSlackVanishes) {
  // KKT at an LP optimum: for every row, dual * (rhs - activity) = 0,
  // and for a maximization with <= rows every dual is non-negative.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 17);
  const int n = 2 + static_cast<int>(rng.uniform_index(4));
  const int m = 2 + static_cast<int>(rng.uniform_index(4));
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (int j = 0; j < n; ++j) {
    lp.add_variable(0.0, kInfinity, rng.uniform(0.2, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      terms.emplace_back(j, rng.uniform(0.1, 2.0));
    }
    lp.add_constraint(terms, Relation::kLe, rng.uniform(2.0, 10.0));
  }
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  for (int r = 0; r < m; ++r) {
    const double slack = lp.rhs(r) - lp.row_activity(r, sol.x);
    EXPECT_GE(sol.duals[r], -1e-7) << "row " << r;
    EXPECT_NEAR(sol.duals[r] * slack, 0.0, 1e-5) << "row " << r;
  }
  // Strong duality (no finite upper bounds, lb = 0): c'x* = y'b.
  double dual_value = 0.0;
  for (int r = 0; r < m; ++r) dual_value += sol.duals[r] * lp.rhs(r);
  EXPECT_NEAR(dual_value, sol.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementarySlacknessTest,
                         ::testing::Range(0, 20));

TEST(Duals, GoldenValuesMatchFiniteDifferences) {
  // The textbook duals (0, 3/2, 1) verified two independent ways: the
  // solver's reduced-cost read-out and a central finite difference on
  // each rhs. This ties the extraction path (phase-2 reduced costs of
  // the slack columns) to the defining sensitivity d(obj)/d(rhs), so a
  // sign or indexing slip in either cannot pass.
  const double golden[3] = {0.0, 1.5, 1.0};
  auto build = [](double bump0, double bump1, double bump2) {
    LinearProgram lp;
    lp.set_objective_sense(Sense::kMaximize);
    const int x = lp.add_variable(0, kInfinity, 3.0);
    const int y = lp.add_variable(0, kInfinity, 5.0);
    lp.add_constraint({{x, 1.0}}, Relation::kLe, 4.0 + bump0);
    lp.add_constraint({{y, 2.0}}, Relation::kLe, 12.0 + bump1);
    lp.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0 + bump2);
    return lp;
  };
  const LpSolution base = solver.solve(build(0, 0, 0));
  ASSERT_EQ(base.status, LpStatus::kOptimal);
  const double eps = 1e-5;
  for (int r = 0; r < 3; ++r) {
    const LpSolution up = solver.solve(
        build(r == 0 ? eps : 0, r == 1 ? eps : 0, r == 2 ? eps : 0));
    const LpSolution down = solver.solve(
        build(r == 0 ? -eps : 0, r == 1 ? -eps : 0, r == 2 ? -eps : 0));
    ASSERT_EQ(up.status, LpStatus::kOptimal);
    ASSERT_EQ(down.status, LpStatus::kOptimal);
    const double fd = (up.objective - down.objective) / (2.0 * eps);
    EXPECT_NEAR(base.duals[r], golden[r], 1e-9) << "row " << r;
    EXPECT_NEAR(fd, golden[r], 1e-6) << "row " << r;
  }
}

TEST(Duals, DegenerateOptimumSatisfiesComplementarySlackness) {
  // max x + y s.t. x <= 2, y <= 2, x + y <= 4, x <= 10. The optimal
  // vertex (2, 2) is primal-degenerate: three rows bind where two would
  // do, so the optimal dual is a whole family (1-t, 1-t, t, 0) and
  // finite differences are one-sided. Exact golden values would pin an
  // arbitrary member of that family — assert instead only what EVERY
  // optimal dual must satisfy: sign feasibility, complementary
  // slackness, dual feasibility of the structural columns, and strong
  // duality.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 1.0);
  const int y = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 2.0);
  lp.add_constraint({{y, 1.0}}, Relation::kLe, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 10.0);  // strictly slack
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
  ASSERT_EQ(sol.duals.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(sol.duals[r], -1e-9) << "row " << r;
    const double slack = lp.rhs(r) - lp.row_activity(r, sol.x);
    EXPECT_NEAR(sol.duals[r] * slack, 0.0, 1e-7) << "row " << r;
  }
  // Dual feasibility: both structural columns are basic at the optimum,
  // so their dual constraints hold with equality: y0 + y2 + y3 = 1 and
  // y1 + y2 = 1.
  EXPECT_NEAR(sol.duals[0] + sol.duals[2] + sol.duals[3], 1.0, 1e-9);
  EXPECT_NEAR(sol.duals[1] + sol.duals[2], 1.0, 1e-9);
  // Strong duality holds for every member of the dual family.
  const double dual_value = sol.duals[0] * 2.0 + sol.duals[1] * 2.0 +
                            sol.duals[2] * 4.0 + sol.duals[3] * 10.0;
  EXPECT_NEAR(dual_value, sol.objective, 1e-9);
}

TEST(Duals, RedundantRowGetsZero) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kEq, 4.0);
  lp.add_constraint({{x, 2.0}}, Relation::kEq, 8.0);  // redundant copy
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  ASSERT_EQ(sol.duals.size(), 2u);
  // One of the two carries the full dual; the dropped one reads zero.
  EXPECT_NEAR(sol.duals[0] * 4.0 + sol.duals[1] * 8.0, 4.0, 1e-7);
}

}  // namespace
}  // namespace palb
