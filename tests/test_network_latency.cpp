// Network-propagation extension: wires cost time, not only dollars.

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "core/scenario_json.hpp"
#include "core/paper_scenarios.hpp"
#include "scenario_fixtures.hpp"
#include "sim/slot_simulator.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

constexpr double kFiberRttPerMile = 1.6e-5;  // s/mile, routed fiber RTT

TEST(NetworkLatency, ZeroLatencyReproducesPaperLedger) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics a = evaluate_plan(topo, input, plan);
  Topology explicit_zero = topo;
  explicit_zero.network_latency_s_per_mile = 0.0;
  const SlotMetrics b = evaluate_plan(explicit_zero, input, plan);
  EXPECT_DOUBLE_EQ(a.revenue, b.revenue);
  EXPECT_DOUBLE_EQ(a.net_profit(), b.net_profit());
}

TEST(NetworkLatency, PropagationDelayHelper) {
  Topology topo = small_topology();
  topo.network_latency_s_per_mile = 2e-5;
  EXPECT_NEAR(topo.propagation_delay(0, 1), 1500.0 * 2e-5, 1e-12);
  EXPECT_THROW(topo.propagation_delay(9, 0), InvalidArgument);
}

TEST(NetworkLatency, FarOriginsEarnLessOrNothing) {
  // One class, one DC; two front-ends at 100 and 5000 miles. With the
  // queue delay near the band edge, the far origin's total misses the
  // deadline entirely.
  Topology topo = small_topology();
  topo.classes = {{"c", StepTuf::constant(0.01, 0.1), 0.0}};
  topo.datacenters.resize(1);
  topo.datacenters[0].service_rate = {100.0};
  topo.datacenters[0].energy_per_request_kwh = {0.0};
  topo.distance_miles = {{100.0}, {5000.0}};
  topo.network_latency_s_per_mile = 1.6e-5;  // far origin: +80 ms

  SlotInput input;
  input.arrival_rate = {{30.0, 30.0}};
  input.price = {0.05};
  input.slot_seconds = 3600.0;

  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 30.0;
  plan.rate[0][1][0] = 30.0;
  plan.dc[0].servers_on = 1;
  plan.dc[0].share = {0.72};  // mu_eff 72, load 60 -> queue delay 83 ms
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  // Near origin: 83 + 1.6 ms < 100 ms deadline -> paid.
  // Far origin: 83 + 80 ms > 100 ms -> worthless.
  const double T = input.slot_seconds;
  EXPECT_NEAR(m.revenue, 0.01 * 30.0 * T, 1e-6);
  EXPECT_NEAR(m.valuable_requests, 30.0 * T, 1e-6);
  EXPECT_DOUBLE_EQ(m.completed_requests, 60.0 * T);  // all finish, late
}

TEST(NetworkLatency, AwareOptimizerBeatsBlindPlanning) {
  Topology topo = small_topology();
  topo.network_latency_s_per_mile = 4e-5;  // harsh: 1500 mi = 60 ms
  const SlotInput input = small_input();

  OptimizedPolicy aware;
  const DispatchPlan aware_plan = aware.plan_slot(topo, input);

  Topology blind_topo = topo;
  blind_topo.network_latency_s_per_mile = 0.0;
  OptimizedPolicy blind;
  const DispatchPlan blind_plan = blind.plan_slot(blind_topo, input);

  // Both evaluated against the true (latency-charging) world.
  const double aware_profit =
      evaluate_plan(topo, input, aware_plan).net_profit();
  const double blind_profit =
      evaluate_plan(topo, input, blind_plan).net_profit();
  EXPECT_GE(aware_profit, blind_profit - 1e-6);
}

TEST(NetworkLatency, AwarePlanNeverValuesUnreachableBands) {
  // With latency so harsh no deadline is reachable from anywhere, the
  // aware optimizer should not serve at all (profit 0 beats paying
  // costs for worthless traffic).
  Topology topo = small_topology();
  topo.network_latency_s_per_mile = 1e-2;  // 100+ ms per 10 miles
  const SlotInput input = small_input();
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_DOUBLE_EQ(plan.total_rate(), 0.0);
}

TEST(NetworkLatency, SimulatorChargesTheMix) {
  Topology topo = small_topology();
  topo.network_latency_s_per_mile = kFiberRttPerMile;
  SlotInput input = small_input();
  input.slot_seconds = 10000.0;
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics analytic = evaluate_plan(topo, input, plan);
  Rng rng(3);
  const SimOutcome out = SlotSimulator().simulate(topo, input, plan, rng);
  EXPECT_LT(relative_difference(out.net_profit_mean_delay(),
                                analytic.net_profit()),
            0.15);
}

TEST(NetworkLatency, ScenarioJsonRoundTripsTheField) {
  Scenario sc = paper::google_study();
  sc.topology.network_latency_s_per_mile = kFiberRttPerMile;
  const Scenario back =
      scenario_json::from_json(scenario_json::to_json(sc));
  EXPECT_DOUBLE_EQ(back.topology.network_latency_s_per_mile,
                   kFiberRttPerMile);
}

TEST(NetworkLatency, ValidationRejectsNegative) {
  Topology topo = small_topology();
  topo.network_latency_s_per_mile = -1e-6;
  EXPECT_THROW(topo.validate(), InvalidArgument);
}

}  // namespace
}  // namespace palb
