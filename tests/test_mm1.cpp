#include "queueing/mm1.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(Mm1, EffectiveRate) {
  EXPECT_DOUBLE_EQ(mm1::effective_rate(0.5, 1.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(mm1::effective_rate(1.0, 2.0, 100.0), 200.0);
}

TEST(Mm1, StabilityBoundary) {
  EXPECT_TRUE(mm1::is_stable(0.5, 1.0, 100.0, 49.9));
  EXPECT_FALSE(mm1::is_stable(0.5, 1.0, 100.0, 50.0));  // strict
  EXPECT_FALSE(mm1::is_stable(0.5, 1.0, 100.0, 60.0));
}

TEST(Mm1, DelayMatchesEquationOne) {
  // R = 1 / (phi*C*mu - lambda), the paper's Eq. 1.
  EXPECT_DOUBLE_EQ(mm1::expected_delay(0.5, 1.0, 100.0, 40.0),
                   1.0 / (50.0 - 40.0));
  EXPECT_DOUBLE_EQ(mm1::expected_delay(1.0, 1.0, 10.0, 0.0), 0.1);
}

TEST(Mm1, DelayRejectsUnstableQueue) {
  EXPECT_THROW(mm1::expected_delay(0.5, 1.0, 100.0, 50.0), InvalidArgument);
}

TEST(Mm1, RequiredShareInvertsDelay) {
  // The share returned must produce exactly the requested deadline.
  const double share = mm1::required_share(40.0, 1.0, 100.0, 0.25);
  EXPECT_NEAR(mm1::expected_delay(share, 1.0, 100.0, 40.0), 0.25, 1e-12);
}

TEST(Mm1, RequiredShareCanExceedOne) {
  // Infeasible demands are reported as shares > 1, caller decides.
  EXPECT_GT(mm1::required_share(500.0, 1.0, 100.0, 0.1), 1.0);
}

TEST(Mm1, MaxRateInvertsRequiredShare) {
  const double rate = mm1::max_rate(0.6, 1.0, 120.0, 0.5);
  EXPECT_NEAR(mm1::required_share(rate, 1.0, 120.0, 0.5), 0.6, 1e-12);
}

TEST(Mm1, MaxRateClampsAtZero) {
  // Tiny share + tight deadline: no sustainable rate.
  EXPECT_DOUBLE_EQ(mm1::max_rate(0.01, 1.0, 10.0, 0.1), 0.0);
}

TEST(Mm1, LittlesLaw) {
  const double L = mm1::mean_in_system(0.5, 1.0, 100.0, 40.0);
  EXPECT_NEAR(L, 40.0 * mm1::expected_delay(0.5, 1.0, 100.0, 40.0), 1e-12);
  // Closed form rho/(1-rho) with rho = 0.8.
  EXPECT_NEAR(L, 0.8 / 0.2, 1e-9);
}

TEST(Mm1, Utilization) {
  EXPECT_DOUBLE_EQ(mm1::utilization(0.5, 1.0, 100.0, 25.0), 0.5);
}

TEST(Mm1, TailProbability) {
  // P(T > t) = exp(-(mu-lambda) t); at t=0 it is 1.
  EXPECT_DOUBLE_EQ(mm1::delay_tail_probability(1.0, 1.0, 10.0, 5.0, 0.0),
                   1.0);
  EXPECT_NEAR(mm1::delay_tail_probability(1.0, 1.0, 10.0, 5.0, 0.2),
              std::exp(-1.0), 1e-12);
}

TEST(Mm1, ParameterValidation) {
  EXPECT_THROW(mm1::effective_rate(-0.1, 1.0, 10.0), InvalidArgument);
  EXPECT_THROW(mm1::effective_rate(1.1, 1.0, 10.0), InvalidArgument);
  EXPECT_THROW(mm1::effective_rate(0.5, 0.0, 10.0), InvalidArgument);
  EXPECT_THROW(mm1::effective_rate(0.5, 1.0, 0.0), InvalidArgument);
  EXPECT_THROW(mm1::required_share(-1.0, 1.0, 10.0, 1.0), InvalidArgument);
  EXPECT_THROW(mm1::required_share(1.0, 1.0, 10.0, 0.0), InvalidArgument);
  EXPECT_THROW(mm1::is_stable(0.5, 1.0, 10.0, -1.0), InvalidArgument);
}

/// Property: delay is monotone — decreasing in share, increasing in load.
class Mm1MonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(Mm1MonotoneTest, DelayMonotoneInShareAndLoad) {
  const double mu = GetParam();
  const double lambda = 0.3 * mu;
  double last = mm1::expected_delay(0.4, 1.0, mu, lambda);
  for (double share = 0.5; share <= 1.0; share += 0.1) {
    const double d = mm1::expected_delay(share, 1.0, mu, lambda);
    EXPECT_LT(d, last);
    last = d;
  }
  last = mm1::expected_delay(1.0, 1.0, mu, 0.0);
  for (double frac = 0.1; frac < 1.0; frac += 0.1) {
    const double d = mm1::expected_delay(1.0, 1.0, mu, frac * mu);
    EXPECT_GT(d, last);
    last = d;
  }
}

INSTANTIATE_TEST_SUITE_P(ServiceRates, Mm1MonotoneTest,
                         ::testing::Values(10.0, 50.0, 130.0, 400.0));

}  // namespace
}  // namespace palb
