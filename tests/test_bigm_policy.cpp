#include "core/bigm_nlp_policy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "scenario_fixtures.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

BigMNlpPolicy fast_policy() {
  BigMNlpPolicy::Options opt;
  opt.multistarts = 3;
  opt.nlp.max_outer = 15;
  opt.nlp.max_inner = 120;
  return BigMNlpPolicy(opt);
}

TEST(BigMNlpPolicy, ProducesValidPlan) {
  BigMNlpPolicy policy = fast_policy();
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_TRUE(plan.is_valid(topo, input)) << [&] {
    std::string all;
    for (const auto& v : plan.violations(topo, input)) all += v + "; ";
    return all;
  }();
  EXPECT_GT(policy.inner_iterations(), 0);
}

TEST(BigMNlpPolicy, EarnsPositiveProfitOnEasyInstance) {
  BigMNlpPolicy policy = fast_policy();
  const Topology topo = small_topology();
  const SlotInput input = small_input(0.5);
  const SlotMetrics m =
      evaluate_plan(topo, input, policy.plan_slot(topo, input));
  EXPECT_GT(m.net_profit(), 0.0);
}

TEST(BigMNlpPolicy, StableWhereverItRoutes) {
  BigMNlpPolicy policy = fast_policy();
  const Topology topo = small_topology();
  const SlotInput input = small_input(2.0);
  const SlotMetrics m =
      evaluate_plan(topo, input, policy.plan_slot(topo, input));
  for (const auto& per_class : m.outcomes) {
    for (const auto& outcome : per_class) {
      if (outcome.rate > 0.0) {
        EXPECT_TRUE(outcome.stable);
      }
    }
  }
}

TEST(BigMNlpPolicy, WithinReachOfTheExactEnumerator) {
  // The NLP path is "near optimal" (paper's wording); hold it to a loose
  // fraction of the exact profile-enumeration optimum.
  BigMNlpPolicy nlp = fast_policy();
  OptimizedPolicy exact;
  const Topology topo = small_topology();
  const SlotInput input = small_input(0.8);
  const double nlp_profit =
      evaluate_plan(topo, input, nlp.plan_slot(topo, input)).net_profit();
  const double exact_profit =
      evaluate_plan(topo, input, exact.plan_slot(topo, input)).net_profit();
  EXPECT_GT(exact_profit, 0.0);
  EXPECT_GE(nlp_profit, 0.5 * exact_profit);
  EXPECT_LE(nlp_profit, exact_profit + 1e-6);
}

TEST(BigMNlpPolicy, DeterministicUnderFixedSeed) {
  const Topology topo = small_topology();
  const SlotInput input = small_input(1.0);
  BigMNlpPolicy a = fast_policy(), b = fast_policy();
  const double pa =
      evaluate_plan(topo, input, a.plan_slot(topo, input)).net_profit();
  const double pb =
      evaluate_plan(topo, input, b.plan_slot(topo, input)).net_profit();
  EXPECT_DOUBLE_EQ(pa, pb);
}

TEST(BigMNlpPolicy, OptionValidation) {
  BigMNlpPolicy::Options opt;
  opt.multistarts = 0;
  EXPECT_THROW(BigMNlpPolicy{opt}, InvalidArgument);
}

}  // namespace
}  // namespace palb
