#include "core/scenario_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/paper_scenarios.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

void expect_scenarios_equal(const Scenario& a, const Scenario& b) {
  ASSERT_EQ(a.topology.num_classes(), b.topology.num_classes());
  ASSERT_EQ(a.topology.num_frontends(), b.topology.num_frontends());
  ASSERT_EQ(a.topology.num_datacenters(), b.topology.num_datacenters());
  EXPECT_DOUBLE_EQ(a.slot_seconds, b.slot_seconds);
  for (std::size_t k = 0; k < a.topology.num_classes(); ++k) {
    const auto& ca = a.topology.classes[k];
    const auto& cb = b.topology.classes[k];
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.tuf.utilities(), cb.tuf.utilities());
    EXPECT_EQ(ca.tuf.sub_deadlines(), cb.tuf.sub_deadlines());
    EXPECT_DOUBLE_EQ(ca.transfer_cost_per_mile, cb.transfer_cost_per_mile);
  }
  for (std::size_t l = 0; l < a.topology.num_datacenters(); ++l) {
    const auto& da = a.topology.datacenters[l];
    const auto& db = b.topology.datacenters[l];
    EXPECT_EQ(da.name, db.name);
    EXPECT_EQ(da.num_servers, db.num_servers);
    EXPECT_DOUBLE_EQ(da.server_capacity, db.server_capacity);
    EXPECT_EQ(da.service_rate, db.service_rate);
    EXPECT_EQ(da.energy_per_request_kwh, db.energy_per_request_kwh);
    EXPECT_DOUBLE_EQ(da.pue, db.pue);
    EXPECT_DOUBLE_EQ(da.idle_power_kw, db.idle_power_kw);
  }
  EXPECT_EQ(a.topology.distance_miles, b.topology.distance_miles);
  for (std::size_t k = 0; k < a.arrivals.size(); ++k) {
    for (std::size_t s = 0; s < a.arrivals[k].size(); ++s) {
      EXPECT_EQ(a.arrivals[k][s].values(), b.arrivals[k][s].values());
    }
  }
  for (std::size_t l = 0; l < a.prices.size(); ++l) {
    EXPECT_EQ(a.prices[l].location(), b.prices[l].location());
    EXPECT_EQ(a.prices[l].values(), b.prices[l].values());
  }
}

TEST(ScenarioJson, RoundTripsEveryBuiltin) {
  for (const Scenario& sc :
       {paper::basic_synthetic(paper::ArrivalSet::kLow),
        paper::basic_synthetic(paper::ArrivalSet::kHigh),
        paper::worldcup_study(), paper::google_study()}) {
    const Json doc = scenario_json::to_json(sc);
    const Scenario back = scenario_json::from_json(doc);
    expect_scenarios_equal(sc, back);
    // And through text as well (exact doubles survive %.17g).
    const Scenario back2 =
        scenario_json::from_json(Json::parse(doc.dump(2)));
    expect_scenarios_equal(sc, back2);
  }
}

TEST(ScenarioJson, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/palb_scenario.json";
  const Scenario sc = paper::google_study();
  scenario_json::save(sc, path);
  const Scenario back = scenario_json::load(path);
  expect_scenarios_equal(sc, back);
  std::remove(path.c_str());
}

TEST(ScenarioJson, LoadValidatesResult) {
  // A structurally fine JSON that encodes an invalid scenario (negative
  // rate) must be rejected by the model validation, not silently loaded.
  Json doc = scenario_json::to_json(paper::google_study());
  Json bad_arrivals = doc.at("arrivals");
  // Patch one rate negative via rebuild (Json is value-semantic).
  Json::Array outer = bad_arrivals.as_array();
  Json::Array inner = outer[0].as_array()[0].as_array();
  inner[0] = Json(-5.0);
  Json::Array mid = outer[0].as_array();
  mid[0] = Json(inner);
  outer[0] = Json(mid);
  doc.set("arrivals", Json(outer));
  EXPECT_THROW(scenario_json::from_json(doc), InvalidArgument);
}

TEST(ScenarioJson, MissingSectionThrows) {
  Json doc = scenario_json::to_json(paper::google_study());
  Json stripped = Json::object();
  for (const auto& [key, value] : doc.as_object()) {
    if (key != "prices") stripped.set(key, value);
  }
  EXPECT_THROW(scenario_json::from_json(stripped), IoError);
}

TEST(ScenarioJson, MissingFileThrows) {
  EXPECT_THROW(scenario_json::load("/nonexistent/scenario.json"), IoError);
}

TEST(ScenarioJson, DefaultsApplyForOptionalFields) {
  Json doc = scenario_json::to_json(paper::google_study());
  // Strip optional per-DC fields; defaults must kick in.
  Json::Array dcs;
  for (const auto& d : doc.at("datacenters").as_array()) {
    Json slim = Json::object();
    for (const auto& [key, value] : d.as_object()) {
      if (key != "pue" && key != "idle_power_kw" && key != "capacity") {
        slim.set(key, value);
      }
    }
    dcs.push_back(std::move(slim));
  }
  doc.set("datacenters", Json(std::move(dcs)));
  const Scenario sc = scenario_json::from_json(doc);
  EXPECT_DOUBLE_EQ(sc.topology.datacenters[0].pue, 1.0);
  EXPECT_DOUBLE_EQ(sc.topology.datacenters[0].idle_power_kw, 0.0);
  EXPECT_DOUBLE_EQ(sc.topology.datacenters[0].server_capacity, 1.0);
}

}  // namespace
}  // namespace palb
