#include "solver/nlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace palb {
namespace {

const AugLagSolver solver;

NlpProblem box_problem(std::size_t n, double lo, double hi) {
  NlpProblem p;
  p.dimension = n;
  p.lower.assign(n, lo);
  p.upper.assign(n, hi);
  return p;
}

TEST(NlpProblem, ValidationCatchesBadShapes) {
  NlpProblem p;
  EXPECT_THROW(p.validate(), InvalidArgument);  // dimension 0
  p = box_problem(2, 0.0, 1.0);
  EXPECT_THROW(p.validate(), InvalidArgument);  // missing objective
  p.objective = [](const std::vector<double>&) { return 0.0; };
  p.lower = {0.0};
  EXPECT_THROW(p.validate(), InvalidArgument);  // bounds size
  p.lower = {2.0, 0.0};
  EXPECT_THROW(p.validate(), InvalidArgument);  // lb > ub
}

TEST(AugLag, UnconstrainedQuadratic) {
  NlpProblem p = box_problem(2, -10.0, 10.0);
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const NlpResult r = solver.solve(p, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_NEAR(r.objective, 0.0, 1e-6);
}

TEST(AugLag, BoxActiveAtOptimum) {
  NlpProblem p = box_problem(1, 0.0, 2.0);
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 5.0) * (x[0] - 5.0);
  };
  const NlpResult r = solver.solve(p, {1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(AugLag, LinearInequalityConstraint) {
  // min x^2 + y^2 s.t. x + y >= 2  ->  x = y = 1.
  NlpProblem p = box_problem(2, -5.0, 5.0);
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  p.inequalities.push_back(
      [](const std::vector<double>& x) { return 2.0 - x[0] - x[1]; });
  const NlpResult r = solver.solve(p, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
  EXPECT_NEAR(r.objective, 2.0, 1e-2);
}

TEST(AugLag, EqualityConstraint) {
  // min (x-2)^2 + (y-2)^2 s.t. x + y = 2 -> x = y = 1.
  NlpProblem p = box_problem(2, -5.0, 5.0);
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 2.0) * (x[1] - 2.0);
  };
  p.equalities.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 2.0; });
  const NlpResult r = solver.solve(p, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(AugLag, CircleConstraintGeometry) {
  // min -(x + y) s.t. x^2 + y^2 <= 1 -> x = y = 1/sqrt(2).
  NlpProblem p = box_problem(2, -2.0, 2.0);
  p.objective = [](const std::vector<double>& x) { return -(x[0] + x[1]); };
  p.inequalities.push_back([](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] - 1.0;
  });
  const NlpResult r = solver.solve(p, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(r.x[0], inv_sqrt2, 5e-3);
  EXPECT_NEAR(r.x[1], inv_sqrt2, 5e-3);
}

TEST(AugLag, ReportsInfeasibleProblem) {
  // x <= -1 impossible inside the box [0, 1].
  NlpProblem p = box_problem(1, 0.0, 1.0);
  p.objective = [](const std::vector<double>& x) { return x[0]; };
  p.inequalities.push_back(
      [](const std::vector<double>& x) { return x[0] + 1.0; });
  const NlpResult r = solver.solve(p, {0.5});
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.infeasibility, 0.5);
}

TEST(AugLag, AnalyticGradientUnusedPathStillWorks) {
  // The solver currently differentiates the merit numerically; supplying
  // an objective gradient must not break anything.
  NlpProblem p = box_problem(1, -4.0, 4.0);
  p.objective = [](const std::vector<double>& x) {
    return std::pow(x[0] - 1.5, 2.0);
  };
  p.objective_gradient = [](const std::vector<double>& x) {
    return std::vector<double>{2.0 * (x[0] - 1.5)};
  };
  const NlpResult r = solver.solve(p, {-3.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.5, 1e-4);
}

TEST(AugLag, MultistartEscapesLocalMinimum) {
  // Double well: f = (x^2 - 1)^2 + 0.3 x, global min near x = -1.
  NlpProblem p = box_problem(1, -2.0, 2.0);
  p.objective = [](const std::vector<double>& x) {
    const double w = x[0] * x[0] - 1.0;
    return w * w + 0.3 * x[0];
  };
  // Start near the *worse* well.
  const NlpResult r = solver.solve_multistart(p, {1.0}, 8, Rng(3));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], -1.0, 0.15);
}

TEST(AugLag, MultistartValidation) {
  NlpProblem p = box_problem(1, 0.0, 1.0);
  p.objective = [](const std::vector<double>& x) { return x[0]; };
  EXPECT_THROW(solver.solve_multistart(p, {0.5}, 0, Rng(1)),
               InvalidArgument);
  EXPECT_THROW(solver.solve(p, {0.5, 0.5}), InvalidArgument);
}

TEST(AugLag, AcceleratedMatchesPlainOnConstrainedProblem) {
  NlpProblem p = box_problem(2, -2.0, 2.0);
  p.objective = [](const std::vector<double>& x) { return -(x[0] + x[1]); };
  p.inequalities.push_back([](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] - 1.0;
  });
  AugLagSolver::Options accel_opt;
  accel_opt.inner_method = AugLagSolver::InnerMethod::kAccelerated;
  const AugLagSolver accelerated(accel_opt);
  const NlpResult r = accelerated.solve(p, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(r.x[0], inv_sqrt2, 5e-3);
  EXPECT_NEAR(r.x[1], inv_sqrt2, 5e-3);
}

TEST(AugLag, AccelerationSpeedsUpIllConditionedQuadratic) {
  // f = x0^2 + 400 x1^2 shifted: plain PG crawls along the narrow axis;
  // FISTA momentum should reach the same optimum in fewer inner
  // iterations.
  NlpProblem p = box_problem(2, -50.0, 50.0);
  p.objective = [](const std::vector<double>& x) {
    const double a = x[0] - 3.0;
    const double b = x[1] - 0.5;
    return a * a + 400.0 * b * b;
  };
  AugLagSolver::Options plain_opt;
  plain_opt.max_inner = 2000;
  AugLagSolver::Options accel_opt = plain_opt;
  accel_opt.inner_method = AugLagSolver::InnerMethod::kAccelerated;

  const NlpResult plain = AugLagSolver(plain_opt).solve(p, {-20.0, -20.0});
  const NlpResult accel = AugLagSolver(accel_opt).solve(p, {-20.0, -20.0});
  EXPECT_NEAR(plain.x[0], 3.0, 1e-2);
  EXPECT_NEAR(accel.x[0], 3.0, 1e-2);
  EXPECT_NEAR(accel.x[1], 0.5, 1e-2);
  // FISTA converges to stationarity within the budget; plain PG crawls
  // along the ill-conditioned axis to the iteration cap.
  EXPECT_LT(accel.inner_iterations, plain.inner_iterations);
  EXPECT_LT(accel.objective, plain.objective + 1e-9);
}

TEST(AugLag, StartOutsideBoxGetsProjected) {
  NlpProblem p = box_problem(1, 0.0, 1.0);
  p.objective = [](const std::vector<double>& x) { return -x[0]; };
  const NlpResult r = solver.solve(p, {50.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
}

}  // namespace
}  // namespace palb
