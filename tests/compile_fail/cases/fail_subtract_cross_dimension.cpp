// Subtracting an energy from a dollar amount.
#include "units/units.hpp"
auto bad() { return palb::units::Dollars{5.0} - palb::units::Kwh{1.0}; }
