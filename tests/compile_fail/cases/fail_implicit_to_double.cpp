// Letting a quantity decay to a bare double without .value().
#include "units/units.hpp"
double bad = palb::units::Seconds{3.0};
