// Passing a bare-double deadline into the typed queue inversion: mixing
// typed and raw arguments matches neither overload.
#include "queueing/mm1.hpp"
auto bad() {
  return palb::mm1::max_rate(palb::units::CpuShare{0.5}, 1.0,
                             palb::units::ServiceRate{10.0}, 0.25);
}
