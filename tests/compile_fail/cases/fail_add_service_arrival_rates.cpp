// Adding a service rate to an arrival rate: both are req/s, but their
// role tags differ — mu + lambda is never a meaningful sum in Eq. 1.
#include "units/units.hpp"
auto bad() {
  return palb::units::ServiceRate{10.0} + palb::units::ArrivalRate{3.0};
}
