// Copy-initializing a quantity from a bare double (the constructor is
// explicit: a raw number has no dimension).
#include "units/units.hpp"
palb::units::Seconds bad = 3.0;
