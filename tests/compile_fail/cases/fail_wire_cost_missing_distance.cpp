// Treating a transfer-cost coefficient ($/req-mile) as a finished
// per-request cost — the miles factor of Eq. 3 is missing.
#include "units/units.hpp"
palb::units::DollarsPerReq bad{palb::units::DollarsPerReqMile{0.02}};
