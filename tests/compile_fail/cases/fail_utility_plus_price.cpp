// Adding a per-request utility to a per-kWh price: both are "dollars
// per something", but the somethings differ.
#include "units/units.hpp"
auto bad() {
  return palb::units::DollarsPerReq{0.1} + palb::units::DollarsPerKwh{0.05};
}
