// A CPU share of a CPU share has no meaning in Eq. 8; Fraction only
// scales dimensioned quantities.
#include "units/units.hpp"
auto bad() {
  return palb::units::CpuShare{0.5} * palb::units::CpuShare{0.5};
}
