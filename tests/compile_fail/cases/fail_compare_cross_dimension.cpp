// Ordering a time against a rate.
#include "units/units.hpp"
bool bad() { return palb::units::Seconds{1.0} < palb::units::ReqPerSec{2.0}; }
