// Re-tagging an arrival rate as a service rate without an explicit cast.
#include "units/units.hpp"
palb::units::ServiceRate bad = palb::units::ArrivalRate{3.0};
