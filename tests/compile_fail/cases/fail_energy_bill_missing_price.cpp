// Booking raw energy as dollars — the $/kWh price factor is missing
// (Eq. 2 without p_l(t)).
#include "units/units.hpp"
palb::units::Dollars bad{palb::units::Kwh{2.0} * 1.5};
