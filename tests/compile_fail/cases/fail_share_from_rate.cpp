// Constructing a CPU share from a rate (phi is dimensionless; a req/s
// value can only become a share through the Eq. 1 inversion).
#include "units/units.hpp"
palb::units::CpuShare bad{palb::units::ReqPerSec{0.5}};
