// Initializing one dimension from another.
#include "units/units.hpp"
palb::units::Seconds bad{palb::units::Requests{1.0}};
