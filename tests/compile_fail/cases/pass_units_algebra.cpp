// EXPECT-COMPILES control: the legitimate algebra of Eqs. 1-8. If this
// case fails, the harness setup (include path, C++ standard) is broken
// and every fail_* verdict above it is meaningless.
#include "queueing/mm1.hpp"
#include "units/units.hpp"

namespace u = palb::units;

// Eq. 1: requests / (req/s) -> seconds; tags compare freely.
u::Seconds sojourn(u::ServiceRate mu_eff, u::ArrivalRate lambda) {
  return u::kOneRequest / (mu_eff - u::ServiceRate{lambda.value()});
}
bool stable(u::ServiceRate mu_eff, u::ArrivalRate lambda) {
  return lambda < mu_eff;
}

// Eq. 2: kWh/req * req/s * $/kWh * s -> dollars (PUE is a scalar).
u::Dollars energy_bill(u::KwhPerReq per_req, u::ReqPerSec rate,
                       u::DollarsPerKwh price, u::Seconds slot, double pue) {
  return per_req * rate * price * slot * pue;
}

// Idle power: kW * hours * $/kWh -> dollars.
u::Dollars idle_bill() {
  return u::kilowatts(2.0) * u::hours(3.0) * u::DollarsPerKwh{0.1};
}

// Eq. 3: $/req-mile * miles * req/s * s -> dollars.
u::Dollars wire_bill(u::DollarsPerReqMile c, u::Miles d, u::ReqPerSec r,
                     u::Seconds slot) {
  return c * d * r * slot;
}

// A share of an effective rate keeps the rate's dimension and tag.
u::ServiceRate vm_rate(u::CpuShare phi, u::ServiceRate mu) {
  return phi * mu;
}

// Fully cancelled products collapse to double.
double overhead(u::Seconds deadline, double capacity, u::ServiceRate mu) {
  return u::kOneRequest / (deadline * capacity * mu);
}

// The typed M/M/1 wrappers accept exactly these argument types.
u::Seconds typed_delay(u::CpuShare phi, u::ServiceRate mu,
                       u::ArrivalRate lambda) {
  return palb::mm1::expected_delay(phi, 1.0, mu, lambda);
}
