// The classic Eq. 1 bug: mu and lambda swapped in the delay call. Both
// are req/s, so only the role tags catch it.
#include "queueing/mm1.hpp"
palb::units::Seconds bad() {
  return palb::mm1::expected_delay(palb::units::CpuShare{0.5}, 1.0,
                                   palb::units::ArrivalRate{3.0},
                                   palb::units::ServiceRate{10.0});
}
