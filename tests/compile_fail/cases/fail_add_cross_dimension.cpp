// Adding quantities of different dimensions (a time plus a count).
#include "units/units.hpp"
auto bad() { return palb::units::Seconds{1.0} + palb::units::Requests{1.0}; }
