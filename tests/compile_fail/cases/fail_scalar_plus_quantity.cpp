// Adding a dimensionless scalar to a dimensioned quantity.
#include "units/units.hpp"
auto bad() { return palb::units::Seconds{1.0} + 1.0; }
