// Control case: disciplined use of every annotated primitive must
// compile cleanly under -Wthread-safety -Werror=thread-safety (and
// under gcc, where the annotations expand to nothing). If this control
// fails, the harness flags itself broken rather than letting the
// fail_* verdicts pass vacuously.
#include <utility>

#include "core/plan_handle.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace {

struct Queue {
  palb::Mutex mutex;
  palb::CondVar cv;
  int depth PALB_GUARDED_BY(mutex) = 0;
  bool closed PALB_GUARDED_BY(mutex) = false;

  void push() PALB_EXCLUDES(mutex) {
    {
      palb::MutexLock lock(mutex);
      ++depth;
    }
    cv.notify_one();
  }

  void drain_locked() PALB_REQUIRES(mutex) { depth = 0; }

  int pop_all() PALB_EXCLUDES(mutex) {
    palb::MutexLock lock(mutex);
    while (depth == 0 && !closed) cv.wait(mutex);
    const int seen = depth;
    drain_locked();  // REQUIRES satisfied: lock is held here
    return seen;
  }
};

int use_queue() {
  Queue q;
  q.push();
  return q.pop_all();
}

palb::PlanHandle::Snapshot use_plan_handle(palb::PlanHandle& handle,
                                           palb::DispatchPlan plan,
                                           palb::DispatchPlan next) {
  handle.publish(std::move(plan));  // one-step publish, not holding
  {
    // Two-step read-modify-publish under the publish capability.
    // acquire() is legal here — it takes only the internal snapshot
    // mutex, so inspecting the incumbent mid-sequence does not
    // self-deadlock (and the analysis agrees).
    palb::MutexLock lock(handle.publish_mutex());
    const palb::PlanHandle::Snapshot incumbent = handle.acquire();
    (void)incumbent;
    handle.publish_locked(std::move(next));
  }
  return handle.acquire();
}

// Raw lock()/unlock() balance is legal when it balances on every path.
int balanced_raw_usage(palb::Mutex& mu) {
  mu.lock();
  mu.unlock();
  if (mu.try_lock()) {
    mu.unlock();
    return 1;
  }
  return 0;
}

}  // namespace

int touch_all(palb::PlanHandle& handle, palb::DispatchPlan a,
              palb::DispatchPlan b, palb::Mutex& mu) {
  const palb::PlanHandle::Snapshot snap =
      use_plan_handle(handle, std::move(a), std::move(b));
  return use_queue() + balanced_raw_usage(mu) +
         static_cast<int>(snap.version);
}
