// Thread-safety negative-compilation case: releasing a capability the
// caller does not hold must be rejected.
#include "util/mutex.hpp"

void release_unheld(palb::Mutex& mu) {
  mu.unlock();  // never acquired: must not compile
}
