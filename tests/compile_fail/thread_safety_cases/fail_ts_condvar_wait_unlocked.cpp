// Thread-safety negative-compilation case: CondVar::wait REQUIRES the
// paired mutex — waiting without holding it is UB on the underlying
// condition variable and must be rejected.
#include "util/mutex.hpp"

void wait_unlocked(palb::Mutex& mu, palb::CondVar& cv) {
  cv.wait(mu);  // mutex not held: must not compile
}
