// Thread-safety negative-compilation case: PlanHandle::publish_locked
// REQUIRES the handle's publish mutex; calling it without holding
// publish_mutex() must be rejected.
#include <utility>

#include "core/plan_handle.hpp"

void publish_without_lock(palb::PlanHandle& handle,
                          palb::DispatchPlan plan) {
  handle.publish_locked(std::move(plan));  // mutex not held: must not compile
}
