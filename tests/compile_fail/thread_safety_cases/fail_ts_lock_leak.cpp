// Thread-safety negative-compilation case: a function that acquires a
// capability and returns without releasing it (a lock leak the scoped
// MutexLock makes impossible) must be rejected.
#include "util/mutex.hpp"

void leak_lock(palb::Mutex& mu) {
  mu.lock();
  // returns with mu held: must not compile
}
