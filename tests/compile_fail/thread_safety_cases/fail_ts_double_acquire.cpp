// Thread-safety negative-compilation case: acquiring a capability the
// caller already holds (self-deadlock on a non-recursive mutex) must be
// rejected.
#include "util/mutex.hpp"

void double_acquire(palb::Mutex& mu) {
  mu.lock();
  mu.lock();  // already held: must not compile
  mu.unlock();
  mu.unlock();
}
