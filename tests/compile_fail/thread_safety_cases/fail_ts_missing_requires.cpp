// Thread-safety negative-compilation case: calling a PALB_REQUIRES
// function without holding the capability must be rejected.
#include "util/annotations.hpp"
#include "util/mutex.hpp"

struct Ledger {
  palb::Mutex mutex;
  int entries PALB_GUARDED_BY(mutex) = 0;

  void append() PALB_REQUIRES(mutex) { ++entries; }
};

void call_without_lock(Ledger& ledger) {
  ledger.append();  // REQUIRES(mutex) not satisfied: must not compile
}
