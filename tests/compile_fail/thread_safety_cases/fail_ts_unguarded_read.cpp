// Thread-safety negative-compilation case: reading a PALB_GUARDED_BY
// member without holding its mutex must be rejected by clang's
// -Wthread-safety (promoted to an error by the harness).
#include "util/annotations.hpp"
#include "util/mutex.hpp"

struct Account {
  palb::Mutex mutex;
  int balance PALB_GUARDED_BY(mutex) = 0;
};

int read_unlocked(Account& account) {
  return account.balance;  // no lock held: must not compile
}
