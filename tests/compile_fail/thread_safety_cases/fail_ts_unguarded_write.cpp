// Thread-safety negative-compilation case: writing a PALB_GUARDED_BY
// member without holding its mutex must be rejected.
#include "util/annotations.hpp"
#include "util/mutex.hpp"

struct Account {
  palb::Mutex mutex;
  int balance PALB_GUARDED_BY(mutex) = 0;
};

void write_unlocked(Account& account) {
  account.balance = 7;  // no lock held: must not compile
}
