// Thread-safety negative-compilation case: PlanHandle::publish EXCLUDES
// the publish mutex (it locks internally); calling it while holding
// publish_mutex() would self-deadlock and must be rejected. Exercises
// PALB_RETURN_CAPABILITY: the analysis must recognize the MutexLock on
// publish_mutex() as holding the handle's internal mutex.
#include <utility>

#include "core/plan_handle.hpp"
#include "util/mutex.hpp"

void publish_while_locked(palb::PlanHandle& handle,
                          palb::DispatchPlan plan) {
  palb::MutexLock lock(handle.publish_mutex());
  handle.publish(std::move(plan));  // EXCLUDES violated: must not compile
}
