// Thread-safety negative-compilation case: calling a PALB_EXCLUDES
// function while holding the excluded mutex (the "this locks
// internally" contract — violating it self-deadlocks) must be rejected.
#include "util/annotations.hpp"
#include "util/mutex.hpp"

struct Registry {
  palb::Mutex mutex;

  void register_internally() PALB_EXCLUDES(mutex) {
    palb::MutexLock lock(mutex);
  }
};

void call_while_holding(Registry& registry) {
  palb::MutexLock lock(registry.mutex);
  registry.register_internally();  // EXCLUDES(mutex) violated: must not compile
}
