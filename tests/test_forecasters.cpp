#include "forecast/forecasters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace palb {
namespace {

TEST(NaiveForecaster, PredictsLastValue) {
  NaiveForecaster f;
  EXPECT_DOUBLE_EQ(f.predict(), 0.0);  // no history yet
  f.observe(10.0);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);
  f.observe(4.0);
  EXPECT_DOUBLE_EQ(f.predict(), 4.0);
}

TEST(NaiveForecaster, RejectsNegativeRates) {
  NaiveForecaster f;
  EXPECT_THROW(f.observe(-1.0), InvalidArgument);
}

TEST(EwmaForecaster, ConvergesToConstantStream) {
  EwmaForecaster f(0.5);
  for (int i = 0; i < 30; ++i) f.observe(20.0);
  EXPECT_NEAR(f.predict(), 20.0, 1e-6);
}

TEST(EwmaForecaster, FirstObservationInitializesLevel) {
  EwmaForecaster f(0.1);
  f.observe(50.0);
  EXPECT_DOUBLE_EQ(f.predict(), 50.0);
}

TEST(EwmaForecaster, AlphaControlsResponsiveness) {
  EwmaForecaster fast(0.9), slow(0.1);
  for (auto* f : {&fast, &slow}) {
    f->observe(10.0);
    f->observe(100.0);  // step change
  }
  EXPECT_GT(fast.predict(), slow.predict());
}

TEST(EwmaForecaster, ValidatesAlpha) {
  EXPECT_THROW(EwmaForecaster(0.0), InvalidArgument);
  EXPECT_THROW(EwmaForecaster(1.5), InvalidArgument);
}

TEST(SeasonalNaiveForecaster, RepeatsThePeriod) {
  SeasonalNaiveForecaster f(3);
  f.observe(1.0);
  f.observe(2.0);
  f.observe(3.0);
  // Next slot is a new period start: predict the value 3 slots back.
  EXPECT_DOUBLE_EQ(f.predict(), 1.0);
  f.observe(1.5);
  EXPECT_DOUBLE_EQ(f.predict(), 2.0);
}

TEST(SeasonalNaiveForecaster, FallsBackBeforeFullPeriod) {
  SeasonalNaiveForecaster f(24);
  f.observe(7.0);
  EXPECT_DOUBLE_EQ(f.predict(), 7.0);
}

TEST(SeasonalNaiveForecaster, PerfectOnPeriodicSignal) {
  SeasonalNaiveForecaster f(6);
  const double pattern[6] = {10, 40, 90, 70, 30, 15};
  ForecastError err;
  for (int t = 0; t < 60; ++t) {
    const double actual = pattern[t % 6];
    if (t >= 6) err.add(f.predict(), actual);
    f.observe(actual);
  }
  EXPECT_DOUBLE_EQ(err.mae(), 0.0);
}

TEST(KalmanForecaster, TracksConstantSignalThroughNoise) {
  KalmanForecaster f(1.0, 400.0);
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    f.observe(std::max(0.0, 100.0 + rng.normal(0.0, 20.0)));
  }
  EXPECT_NEAR(f.predict(), 100.0, 8.0);
  // Steady-state gain settles strictly between 0 and 1.
  EXPECT_GT(f.gain(), 0.0);
  EXPECT_LT(f.gain(), 1.0);
}

TEST(KalmanForecaster, CovarianceShrinksFromPrior) {
  KalmanForecaster f(1.0, 100.0);
  f.observe(10.0);
  const double after_first = f.covariance();
  for (int i = 0; i < 50; ++i) f.observe(10.0);
  EXPECT_LT(f.covariance(), after_first + 1e-9);
}

TEST(KalmanForecaster, BeatsNaiveOnNoisyLevel) {
  // On a noisy constant level, filtering must beat echoing the noise.
  KalmanForecaster kalman(0.5, 900.0);
  NaiveForecaster naive;
  ForecastError kalman_err, naive_err;
  Rng rng(11);
  for (int t = 0; t < 500; ++t) {
    const double actual = std::max(0.0, 200.0 + rng.normal(0.0, 30.0));
    if (t > 10) {
      kalman_err.add(kalman.predict(), actual);
      naive_err.add(naive.predict(), actual);
    }
    kalman.observe(actual);
    naive.observe(actual);
  }
  EXPECT_LT(kalman_err.rmse(), naive_err.rmse());
}

TEST(KalmanForecaster, ValidatesNoise) {
  EXPECT_THROW(KalmanForecaster(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(KalmanForecaster(1.0, 0.0), InvalidArgument);
}

TEST(Forecasters, ClonesAreFreshAndIndependent) {
  KalmanForecaster f;
  f.observe(50.0);
  auto clone = f.clone();
  EXPECT_DOUBLE_EQ(clone->predict(), 0.0);  // fresh state
  clone->observe(10.0);
  EXPECT_NE(clone->predict(), f.predict());
}

TEST(ForecastError, KnownValues) {
  ForecastError e;
  e.add(12.0, 10.0);  // err +2
  e.add(9.0, 10.0);   // err -1
  EXPECT_EQ(e.count(), 2u);
  EXPECT_DOUBLE_EQ(e.mae(), 1.5);
  EXPECT_NEAR(e.rmse(), std::sqrt((4.0 + 1.0) / 2.0), 1e-12);
  EXPECT_NEAR(e.mape(), 0.5 * (0.2 + 0.1), 1e-12);
}

TEST(ForecastError, MapeSkipsZeroActuals) {
  ForecastError e;
  e.add(5.0, 0.0);
  e.add(11.0, 10.0);
  EXPECT_NEAR(e.mape(), 0.1, 1e-12);
}

/// On diurnal traffic the seasonal forecaster should dominate the others
/// once a full day of history exists.
TEST(Forecasters, SeasonalWinsOnDiurnalTraffic) {
  Rng rng(5);
  workload::WorldCupParams p;
  p.burst_sigma = 0.05;
  const RateTrace trace = workload::worldcup_like("wc", p, rng);

  SeasonalNaiveForecaster seasonal(24);
  NaiveForecaster naive;
  EwmaForecaster ewma(0.4);
  ForecastError seasonal_err, naive_err, ewma_err;
  for (std::size_t t = 0; t < 24 * 6; ++t) {
    const double actual = trace.at(t);
    if (t >= 24) {
      seasonal_err.add(seasonal.predict(), actual);
      naive_err.add(naive.predict(), actual);
      ewma_err.add(ewma.predict(), actual);
    }
    seasonal.observe(actual);
    naive.observe(actual);
    ewma.observe(actual);
  }
  EXPECT_LT(seasonal_err.rmse(), naive_err.rmse());
  EXPECT_LT(seasonal_err.rmse(), ewma_err.rmse());
}

}  // namespace
}  // namespace palb
