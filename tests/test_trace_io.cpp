#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(TraceIo, RateRoundTrip) {
  const std::vector<RateTrace> traces{
      RateTrace("alpha", {1.0, 2.5, 3.0}),
      RateTrace("beta", {0.0, 10.0, 20.0}),
  };
  std::ostringstream os;
  trace_io::write_rates(os, traces);
  std::istringstream is(os.str());
  const auto back = trace_io::read_rates(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[1].name(), "beta");
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(back[0].at(s), traces[0].at(s));
    EXPECT_DOUBLE_EQ(back[1].at(s), traces[1].at(s));
  }
}

TEST(TraceIo, PriceRoundTrip) {
  const std::vector<PriceTrace> traces{
      PriceTrace("Houston", {0.03, 0.05}),
      PriceTrace("Atlanta", {0.02, 0.04}),
  };
  std::ostringstream os;
  trace_io::write_prices(os, traces);
  std::istringstream is(os.str());
  const auto back = trace_io::read_prices(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].location(), "Houston");
  EXPECT_DOUBLE_EQ(back[1].at(1), 0.04);
}

TEST(TraceIo, MismatchedLengthsRejected) {
  const std::vector<RateTrace> traces{
      RateTrace("a", {1.0, 2.0}),
      RateTrace("b", {1.0}),
  };
  std::ostringstream os;
  EXPECT_THROW(trace_io::write_rates(os, traces), InvalidArgument);
}

TEST(TraceIo, EmptySetRejected) {
  std::ostringstream os;
  EXPECT_THROW(trace_io::write_rates(os, {}), InvalidArgument);
}

TEST(TraceIo, ReadRejectsHeaderOnlyOrNarrow) {
  std::istringstream only_header("slot,a\n");
  EXPECT_THROW(trace_io::read_rates(only_header), InvalidArgument);
  std::istringstream narrow("slot\n0\n");
  EXPECT_THROW(trace_io::read_rates(narrow), InvalidArgument);
}

TEST(TraceIo, ReadRejectsNonNumeric) {
  std::istringstream is("slot,a\n0,abc\n");
  EXPECT_THROW(trace_io::read_rates(is), IoError);
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(TraceIo, NonNumericErrorNamesSourceAndLine) {
  std::istringstream is("slot,web\n0,35\n1,oops\n");
  const std::string what = error_message(
      [&] { (void)trace_io::read_rates(is, "workload.csv"); });
  EXPECT_NE(what.find("workload.csv:3"), std::string::npos) << what;
  EXPECT_NE(what.find("'web'"), std::string::npos) << what;
  EXPECT_NE(what.find("oops"), std::string::npos) << what;
}

TEST(TraceIo, RejectsNonFiniteAndNegativeValues) {
  // JSON-ish junk a corrupted export can carry: strtod parses "nan",
  // "inf" and "1e999" to non-finite doubles — the reader must refuse
  // them, naming the offending line.
  for (const char* bad : {"nan", "inf", "1e999", "-3.5"}) {
    std::istringstream rates(std::string("slot,a\n0,") + bad + "\n");
    const std::string what = error_message(
        [&] { (void)trace_io::read_rates(rates, "bad.csv"); });
    EXPECT_NE(what.find("bad.csv:2"), std::string::npos)
        << bad << " -> " << what;

    std::istringstream prices(std::string("slot,dc\n0,") + bad + "\n");
    EXPECT_THROW((void)trace_io::read_prices(prices, "bad.csv"), IoError)
        << bad;
  }
}

TEST(TraceIo, RejectsWrongColumnCountWithLocation) {
  std::istringstream is("slot,a,b\n0,1,2\n1,3\n");
  const std::string what = error_message(
      [&] { (void)trace_io::read_rates(is, "ragged.csv"); });
  EXPECT_NE(what.find("ragged.csv:3"), std::string::npos) << what;
}

TEST(TraceIo, RejectsEmbeddedNul) {
  const std::string payload = std::string("slot,a\n0,1") + '\0' + "\n";
  std::istringstream is(payload);
  const std::string what = error_message(
      [&] { (void)trace_io::read_rates(is, "nul.csv"); });
  EXPECT_NE(what.find("nul.csv:2"), std::string::npos) << what;
  EXPECT_NE(what.find("NUL"), std::string::npos) << what;
}

TEST(TraceIo, CorruptedFixtureRoundTripsAfterCleaning) {
  // Round-trip through the writer then corrupt one cell on the wire:
  // the clean bytes parse, the corrupted bytes fail with the exact
  // line, and re-writing the parsed traces reproduces the clean bytes.
  const std::vector<RateTrace> traces{RateTrace("alpha", {1.0, 2.5})};
  std::ostringstream os;
  trace_io::write_rates(os, traces);
  const std::string clean = os.str();

  std::istringstream ok(clean);
  const auto parsed = trace_io::read_rates(ok, "clean.csv");
  std::ostringstream rewritten;
  trace_io::write_rates(rewritten, parsed);
  EXPECT_EQ(rewritten.str(), clean);

  std::string corrupted = clean;
  corrupted.replace(corrupted.find("2.5"), 3, "x.y");
  std::istringstream bad(corrupted);
  const std::string what = error_message(
      [&] { (void)trace_io::read_rates(bad, "dirty.csv"); });
  EXPECT_NE(what.find("dirty.csv:3"), std::string::npos) << what;
}

}  // namespace
}  // namespace palb
