#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(TraceIo, RateRoundTrip) {
  const std::vector<RateTrace> traces{
      RateTrace("alpha", {1.0, 2.5, 3.0}),
      RateTrace("beta", {0.0, 10.0, 20.0}),
  };
  std::ostringstream os;
  trace_io::write_rates(os, traces);
  std::istringstream is(os.str());
  const auto back = trace_io::read_rates(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[1].name(), "beta");
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(back[0].at(s), traces[0].at(s));
    EXPECT_DOUBLE_EQ(back[1].at(s), traces[1].at(s));
  }
}

TEST(TraceIo, PriceRoundTrip) {
  const std::vector<PriceTrace> traces{
      PriceTrace("Houston", {0.03, 0.05}),
      PriceTrace("Atlanta", {0.02, 0.04}),
  };
  std::ostringstream os;
  trace_io::write_prices(os, traces);
  std::istringstream is(os.str());
  const auto back = trace_io::read_prices(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].location(), "Houston");
  EXPECT_DOUBLE_EQ(back[1].at(1), 0.04);
}

TEST(TraceIo, MismatchedLengthsRejected) {
  const std::vector<RateTrace> traces{
      RateTrace("a", {1.0, 2.0}),
      RateTrace("b", {1.0}),
  };
  std::ostringstream os;
  EXPECT_THROW(trace_io::write_rates(os, traces), InvalidArgument);
}

TEST(TraceIo, EmptySetRejected) {
  std::ostringstream os;
  EXPECT_THROW(trace_io::write_rates(os, {}), InvalidArgument);
}

TEST(TraceIo, ReadRejectsHeaderOnlyOrNarrow) {
  std::istringstream only_header("slot,a\n");
  EXPECT_THROW(trace_io::read_rates(only_header), InvalidArgument);
  std::istringstream narrow("slot\n0\n");
  EXPECT_THROW(trace_io::read_rates(narrow), InvalidArgument);
}

TEST(TraceIo, ReadRejectsNonNumeric) {
  std::istringstream is("slot,a\n0,abc\n");
  EXPECT_THROW(trace_io::read_rates(is), IoError);
}

}  // namespace
}  // namespace palb
