#include <gtest/gtest.h>

#include "cloud/model.hpp"
#include "cloud/plan.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

/// Tiny 2-class, 2-front-end, 2-DC topology used across the cloud tests.
Topology tiny_topology() {
  Topology topo;
  topo.classes = {
      {"fast", StepTuf::constant(1.0, 0.1), 1e-6},
      {"slow", StepTuf({2.0, 1.0}, {0.2, 0.5}), 2e-6},
  };
  topo.frontends = {{"fe1"}, {"fe2"}};
  topo.datacenters = {
      {"dc1", 4, 1.0, {100.0, 80.0}, {0.001, 0.002}, 1.0},
      {"dc2", 2, 1.0, {120.0, 60.0}, {0.002, 0.001}, 1.2},
  };
  topo.distance_miles = {{100.0, 900.0}, {400.0, 300.0}};
  return topo;
}

SlotInput tiny_input() {
  SlotInput input;
  input.arrival_rate = {{50.0, 40.0}, {30.0, 20.0}};
  input.price = {0.05, 0.08};
  input.slot_seconds = 3600.0;
  return input;
}

TEST(Topology, ValidatesCleanModel) {
  EXPECT_NO_THROW(tiny_topology().validate());
}

TEST(Topology, CatchesDimensionMismatches) {
  Topology topo = tiny_topology();
  topo.datacenters[0].service_rate.pop_back();
  EXPECT_THROW(topo.validate(), InvalidArgument);

  topo = tiny_topology();
  topo.distance_miles.pop_back();
  EXPECT_THROW(topo.validate(), InvalidArgument);

  topo = tiny_topology();
  topo.distance_miles[0].push_back(1.0);
  EXPECT_THROW(topo.validate(), InvalidArgument);
}

TEST(Topology, CatchesBadValues) {
  Topology topo = tiny_topology();
  topo.datacenters[0].num_servers = -1;
  EXPECT_THROW(topo.validate(), InvalidArgument);

  topo = tiny_topology();
  topo.datacenters[1].pue = 0.5;
  EXPECT_THROW(topo.validate(), InvalidArgument);

  topo = tiny_topology();
  topo.datacenters[0].service_rate[0] = 0.0;
  EXPECT_THROW(topo.validate(), InvalidArgument);

  topo = tiny_topology();
  topo.distance_miles[0][0] = -5.0;
  EXPECT_THROW(topo.validate(), InvalidArgument);
}

TEST(Topology, DedicatedCapacityIsPositiveAndBounded) {
  const Topology topo = tiny_topology();
  const double cap = topo.dedicated_capacity(0);
  EXPECT_GT(cap, 0.0);
  // Upper bound: all servers at full mu with no deadline overhead.
  EXPECT_LT(cap, 4 * 100.0 + 2 * 120.0);
  EXPECT_THROW(topo.dedicated_capacity(5), InvalidArgument);
}

TEST(SlotInput, Validation) {
  const Topology topo = tiny_topology();
  SlotInput input = tiny_input();
  EXPECT_NO_THROW(input.validate(topo));
  input.arrival_rate[0].pop_back();
  EXPECT_THROW(input.validate(topo), InvalidArgument);
  input = tiny_input();
  input.price.pop_back();
  EXPECT_THROW(input.validate(topo), InvalidArgument);
  input = tiny_input();
  input.arrival_rate[1][0] = -2.0;
  EXPECT_THROW(input.validate(topo), InvalidArgument);
  input = tiny_input();
  input.slot_seconds = 0.0;
  EXPECT_THROW(input.validate(topo), InvalidArgument);
}

TEST(SlotInput, TotalOffered) {
  const SlotInput input = tiny_input();
  EXPECT_DOUBLE_EQ(input.total_offered(0), 90.0);
  EXPECT_DOUBLE_EQ(input.total_offered(1), 50.0);
}

TEST(DispatchPlan, ZeroPlanIsValid) {
  const Topology topo = tiny_topology();
  const DispatchPlan plan = DispatchPlan::zero(topo);
  EXPECT_TRUE(plan.is_valid(topo, tiny_input()));
  EXPECT_DOUBLE_EQ(plan.total_rate(), 0.0);
}

TEST(DispatchPlan, RateAggregation) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 10.0;
  plan.rate[0][1][0] = 5.0;
  plan.rate[0][0][1] = 2.0;
  EXPECT_DOUBLE_EQ(plan.class_dc_rate(0, 0), 15.0);
  EXPECT_DOUBLE_EQ(plan.class_frontend_rate(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(plan.total_rate(), 17.0);
  plan.dc[0].servers_on = 3;
  EXPECT_DOUBLE_EQ(plan.per_server_rate(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(plan.per_server_rate(0, 1), 0.0);  // no server on
}

TEST(DispatchPlan, DetectsOverdispatch) {
  const Topology topo = tiny_topology();
  const SlotInput input = tiny_input();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 40.0;
  plan.rate[0][0][1] = 40.0;  // 80 > offered 50 at fe1
  plan.dc[0].servers_on = 1;
  plan.dc[0].share[0] = 0.5;
  plan.dc[1].servers_on = 1;
  plan.dc[1].share[0] = 0.5;
  const auto violations = plan.violations(topo, input);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("exceeds offered"), std::string::npos);
}

TEST(DispatchPlan, DetectsShareBudgetBreach) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.dc[0].servers_on = 1;
  plan.dc[0].share = {0.7, 0.6};
  EXPECT_FALSE(plan.is_valid(topo, tiny_input()));
}

TEST(DispatchPlan, DetectsLoadIntoPoweredOffDc) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 1.0;  // dc1 has zero servers on
  EXPECT_FALSE(plan.is_valid(topo, tiny_input()));
}

TEST(DispatchPlan, DetectsLoadIntoZeroShareVm) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 1.0;
  plan.dc[0].servers_on = 1;  // share[0] still 0
  EXPECT_FALSE(plan.is_valid(topo, tiny_input()));
}

TEST(DispatchPlan, DetectsServerOverCommit) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.dc[1].servers_on = 3;  // dc2 only has 2
  EXPECT_FALSE(plan.is_valid(topo, tiny_input()));
}

TEST(DispatchPlan, DetectsNegativeRate) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[1][1][1] = -0.5;
  EXPECT_FALSE(plan.is_valid(topo, tiny_input()));
}

TEST(DispatchPlan, DetectsShapeMismatch) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate.pop_back();
  const auto violations = plan.violations(topo, tiny_input());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("shape"), std::string::npos);
}

TEST(DispatchPlan, AcceptsProperPlan) {
  const Topology topo = tiny_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 30.0;
  plan.rate[1][0][0] = 10.0;
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {0.5, 0.5};
  EXPECT_TRUE(plan.is_valid(topo, tiny_input()));
}

}  // namespace
}  // namespace palb
