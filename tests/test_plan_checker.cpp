// The PlanChecker is the mechanical audit of the paper's constraint
// system (Eq. 6 delay bound, Eq. 7 flow conservation, Eq. 8 CPU budget,
// M/M/1 stability, rate sanity). Two directions are tested here:
// positive — every plan the four policies emit on the paper scenarios is
// violation-free; negative — each deliberate corruption fires its own
// distinct violation code, with the (k, s, l) indices populated.

#include "check/plan_checker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/balanced_policy.hpp"
#include "core/bigm_nlp_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/right_sizing_policy.hpp"
#include "scenario_fixtures.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

/// Valid hand plan for small_topology/small_input; the corruption tests
/// each break exactly one thing about it.
DispatchPlan valid_plan(const Topology& topo) {
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 50.0;  // offered 60
  plan.rate[1][0][0] = 20.0;  // offered 30
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {0.6, 0.4};
  return plan;
}

TEST(PlanChecker, ValidPlanHasNoViolations) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const PlanCheckReport report =
      PlanChecker().check(topo, input, valid_plan(topo));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.summary(), "");
}

TEST(PlanChecker, OverDispatchFiresFlowConservation) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][0][0] = 70.0;  // offered is 60 — Eq. 7 broken
  plan.dc[0].share = {0.9, 0.1};  // keep the queue itself healthy
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kFlowConservation))
      << report.summary();
  for (const auto& v : report.violations) {
    if (v.code != PlanViolationCode::kFlowConservation) continue;
    EXPECT_EQ(v.class_index, 0u);
    EXPECT_EQ(v.frontend_index, 0u);
    EXPECT_NEAR(v.observed, 70.0, 1e-9);
    EXPECT_NEAR(v.bound, 60.0, 1e-9);
    EXPECT_NE(v.message.find("Eq. 7"), std::string::npos);
  }
}

TEST(PlanChecker, ShareSumOverOneFiresShareBudget) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.dc[0].share = {0.7, 0.6};  // each in [0,1], sum 1.3 — Eq. 8 broken
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kShareBudget))
      << report.summary();
  EXPECT_FALSE(report.has(PlanViolationCode::kShareRange));
}

TEST(PlanChecker, StableButLateStreamFiresDeadline) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  // web: per-server lambda 25, share 0.3 -> mu_eff 30: stable (rho 0.83)
  // but delay 1/(30-25) = 0.2 s > 0.1 s final deadline.
  plan.dc[0].share = {0.3, 0.4};
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kDeadlineExceeded))
      << report.summary();
  EXPECT_FALSE(report.has(PlanViolationCode::kUnstableQueue));
  for (const auto& v : report.violations) {
    if (v.code != PlanViolationCode::kDeadlineExceeded) continue;
    EXPECT_EQ(v.class_index, 0u);
    EXPECT_EQ(v.dc_index, 0u);
    EXPECT_NEAR(v.observed, 0.2, 1e-6);
    EXPECT_NEAR(v.bound, 0.1, 1e-12);
  }

  // The same plan passes when the Eq. 6 audit is opted out (baselines
  // that knowingly serve zero-revenue late streams).
  PlanChecker::Options lax;
  lax.check_deadline = false;
  EXPECT_TRUE(PlanChecker(lax).check(topo, input, plan).ok());
}

TEST(PlanChecker, OverloadedQueueFiresUnstable) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  // web: per-server lambda 25, share 0.2 -> mu_eff 20 < 25: rho > 1.
  plan.dc[0].share = {0.2, 0.4};
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kUnstableQueue))
      << report.summary();
  // An unstable queue has no finite delay; Eq. 6 must not double-report.
  EXPECT_FALSE(report.has(PlanViolationCode::kDeadlineExceeded));
}

TEST(PlanChecker, NanRateFiresNonFinite) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][0][0] = std::numeric_limits<double>::quiet_NaN();
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kNonFiniteRate))
      << report.summary();
}

TEST(PlanChecker, NanShareFiresNonFinite) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.dc[0].share[1] = std::numeric_limits<double>::infinity();
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  EXPECT_TRUE(report.has(PlanViolationCode::kNonFiniteRate))
      << report.summary();
}

TEST(PlanChecker, NegativeRateFires) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[1][1][1] = -3.0;
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kNegativeRate))
      << report.summary();
}

TEST(PlanChecker, ServersBeyondFleetFireServerBudget) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.dc[0].servers_on = 10;  // fleet is 4
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kServerBudget))
      << report.summary();
}

TEST(PlanChecker, LoadOnDarkDcFiresOrphanLoad) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][1][1] = 5.0;  // dc2 has no server on
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_TRUE(report.has(PlanViolationCode::kOrphanLoad))
      << report.summary();
}

TEST(PlanChecker, ShareOutOfRangeFires) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.dc[0].share = {1.2, 0.0};
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  EXPECT_TRUE(report.has(PlanViolationCode::kShareRange))
      << report.summary();
}

TEST(PlanChecker, WrongShapeFiresShapeMismatchOnly) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate.pop_back();
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].code, PlanViolationCode::kShapeMismatch);
}

// ---- Degenerate-input edge cases. ------------------------------------------

TEST(PlanChecker, EmptyTopologyPassesVacuously) {
  // No classes, front-ends or data centers: every constraint loop is
  // empty and the zero-shaped plan is trivially violation-free.
  const Topology topo;
  const SlotInput input;
  const DispatchPlan plan = DispatchPlan::zero(topo);
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(PlanChecker, DatacenterWithoutServersFiresOrphanLoad) {
  Topology topo = small_topology();
  topo.datacenters[1].num_servers = 0;  // dc2 exists but is empty
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][1][1] = 10.0;  // routed into the empty data center
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  EXPECT_TRUE(report.has(PlanViolationCode::kOrphanLoad))
      << report.summary();
}

TEST(PlanChecker, ZeroServiceRateReportsUnstableInsteadOfThrowing) {
  // A degenerate mu == 0 must surface as a violation report, not as an
  // InvalidArgument escaping from the queueing layer's domain checks.
  Topology topo = small_topology();
  topo.datacenters[0].service_rate[0] = 0.0;
  const SlotInput input = small_input();
  const DispatchPlan plan = valid_plan(topo);
  PlanCheckReport report;
  EXPECT_NO_THROW(report = PlanChecker().check(topo, input, plan));
  EXPECT_TRUE(report.has(PlanViolationCode::kUnstableQueue))
      << report.summary();
}

TEST(PlanChecker, ZeroCapacityReportsUnstableInsteadOfThrowing) {
  Topology topo = small_topology();
  topo.datacenters[0].server_capacity = 0.0;
  const SlotInput input = small_input();
  const DispatchPlan plan = valid_plan(topo);
  PlanCheckReport report;
  EXPECT_NO_THROW(report = PlanChecker().check(topo, input, plan));
  EXPECT_TRUE(report.has(PlanViolationCode::kUnstableQueue))
      << report.summary();
}

TEST(PlanChecker, ShareSumExactlyOneIsWithinBudget) {
  // Eq. 8 at the exact float boundary: 0.5 + 0.5 sums to 1.0 bit-for-bit
  // and must not trip the budget, and the queues are then evaluated at
  // those shares rather than skipped.
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.dc[0].share = {0.5, 0.5};
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  EXPECT_FALSE(report.has(PlanViolationCode::kShareBudget))
      << report.summary();
  EXPECT_FALSE(report.has(PlanViolationCode::kShareRange));
}

TEST(PlanChecker, FullShareToOneClassEvaluatesAtExactlyOne) {
  // phi == 1.0 exactly is the upper boundary the typed CpuShare permits;
  // the delay evaluation must run (and pass) there.
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 50.0;
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {1.0, 0.0};
  const PlanCheckReport report = PlanChecker().check(topo, input, plan);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(PlanChecker, ViolationCapBoundsTheReport) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  for (auto& per_class : plan.rate) {
    for (auto& per_frontend : per_class) {
      for (double& r : per_frontend) r = -1.0;  // violations everywhere
    }
  }
  PlanChecker::Options opt;
  opt.max_violations = 3;
  const PlanCheckReport report = PlanChecker(opt).check(topo, input, plan);
  EXPECT_EQ(report.violations.size(), 3u);
  EXPECT_TRUE(report.truncated);
  EXPECT_NE(report.summary().find("more"), std::string::npos);
}

TEST(PlanChecker, EnforceThrowsConstraintViolationWithContext) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][0][0] = 500.0;
  try {
    PlanChecker().enforce(topo, input, plan, "UnitTest");
    FAIL() << "enforce must throw on a corrupted plan";
  } catch (const ConstraintViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("UnitTest"), std::string::npos);
    EXPECT_NE(what.find("flow-conservation"), std::string::npos);
  }
}

// ---- repair(): the projection the ResilientController runs every rung
// through (docs/RESILIENCE.md "repair math"). Directed cases; the
// idempotence + always-passes-check() properties are fuzzed in
// tests/test_fuzz.cpp (RepairFuzzTest).

TEST(PlanRepair, CleanPlanComesBackUntouched) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const DispatchPlan plan = valid_plan(topo);
  const PlanRepairReport report = PlanChecker().repair(topo, input, plan);
  EXPECT_FALSE(report.touched());
  EXPECT_EQ(report.adjustments(), 0u);
  EXPECT_EQ(report.plan.rate, plan.rate);
}

TEST(PlanRepair, RenormalizesShareBudget) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.dc[0].share = {0.9, 0.6};  // Eq. 8: sum 1.5
  const PlanRepairReport report = PlanChecker().repair(topo, input, plan);
  EXPECT_EQ(report.budgets_renormalized, 1u);
  EXPECT_NEAR(report.plan.dc[0].share[0] + report.plan.dc[0].share[1], 1.0,
              1e-12);
  // Renormalization keeps the mix: 0.9/0.6 stays 3:2.
  EXPECT_NEAR(report.plan.dc[0].share[0] / report.plan.dc[0].share[1],
              1.5, 1e-9);
  EXPECT_TRUE(PlanChecker().check(topo, input, report.plan).ok());
}

TEST(PlanRepair, ScalesOverDispatchDownToOffered) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();  // offered (0,0) = 60
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][0][0] = 50.0;
  plan.rate[0][0][1] = 40.0;  // 90 dispatched of 60 offered — Eq. 7
  plan.dc[0].share = {0.9, 0.1};
  plan.dc[1].servers_on = 2;
  plan.dc[1].share = {0.9, 0.0};
  const PlanRepairReport report = PlanChecker().repair(topo, input, plan);
  EXPECT_EQ(report.rows_scaled, 1u);
  EXPECT_NEAR(report.plan.rate[0][0][0] + report.plan.rate[0][0][1], 60.0,
              1e-9);
  // Proportional scale-down: the 5:4 split survives.
  EXPECT_NEAR(report.plan.rate[0][0][0] / report.plan.rate[0][0][1],
              50.0 / 40.0, 1e-9);
  EXPECT_TRUE(PlanChecker().check(topo, input, report.plan).ok())
      << PlanChecker().check(topo, input, report.plan).summary();
}

TEST(PlanRepair, ShedsOrphanAndUnstableLoad) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][0][1] = 10.0;  // dc2 is dark: orphan load
  const PlanRepairReport orphan = PlanChecker().repair(topo, input, plan);
  EXPECT_GE(orphan.flows_shed, 1u);
  EXPECT_DOUBLE_EQ(orphan.plan.rate[0][0][1], 0.0);

  // An overload no share can save: all 90 offered req/s of class 0 on
  // dc1's two servers with a thin share — unstable, must be shed or
  // scaled to the deadline-feasible rate.
  DispatchPlan hot = valid_plan(topo);
  hot.rate[0][0][0] = 60.0;
  hot.rate[0][1][0] = 40.0;
  hot.dc[0].share = {0.01, 0.4};
  const PlanRepairReport cooled = PlanChecker().repair(topo, input, hot);
  EXPECT_TRUE(cooled.touched());
  EXPECT_TRUE(PlanChecker().check(topo, input, cooled.plan).ok())
      << PlanChecker().check(topo, input, cooled.plan).summary();
}

TEST(PlanRepair, ZeroesNonFiniteAndNegativeEntries) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][0][0] = std::numeric_limits<double>::quiet_NaN();
  plan.rate[1][0][0] = -5.0;
  plan.dc[0].share[1] = std::numeric_limits<double>::infinity();
  plan.dc[1].servers_on = -3;
  const PlanRepairReport report = PlanChecker().repair(topo, input, plan);
  EXPECT_EQ(report.rates_zeroed, 2u);
  EXPECT_GE(report.shares_clamped, 1u);
  EXPECT_EQ(report.servers_clamped, 1u);
  EXPECT_DOUBLE_EQ(report.plan.rate[0][0][0], 0.0);
  EXPECT_DOUBLE_EQ(report.plan.rate[1][0][0], 0.0);
  EXPECT_DOUBLE_EQ(report.plan.dc[0].share[1], 0.0);
  EXPECT_EQ(report.plan.dc[1].servers_on, 0);
  EXPECT_TRUE(PlanChecker().check(topo, input, report.plan).ok());
}

TEST(PlanRepair, WrongShapeProjectsToTheZeroPlan) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate.pop_back();
  const PlanRepairReport report = PlanChecker().repair(topo, input, plan);
  EXPECT_EQ(report.reshaped, 1u);
  EXPECT_EQ(report.plan.rate.size(), topo.num_classes());
  EXPECT_TRUE(PlanChecker().check(topo, input, report.plan).ok());
  EXPECT_DOUBLE_EQ(report.plan.rate[0][0][0], 0.0);
}

TEST(PlanCheckerGuard, FlagGatesMaybeCheckPlan) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = valid_plan(topo);
  plan.rate[0][0][0] = 500.0;  // corrupt

  const bool prior = check::plan_checks_enabled();
  check::set_plan_checks_enabled(false);
  EXPECT_NO_THROW(check::maybe_check_plan(topo, input, plan, "guard"));
  check::set_plan_checks_enabled(true);
  EXPECT_THROW(check::maybe_check_plan(topo, input, plan, "guard"),
               ConstraintViolation);
  check::set_plan_checks_enabled(prior);
}

// ---- positive sweep: every policy on every paper scenario ------------------

struct PolicyCase {
  const char* scenario;
  const char* policy;
};

class PaperScenarioCheckTest
    : public ::testing::TestWithParam<PolicyCase> {};

Scenario scenario_by_name(const std::string& name) {
  if (name == "basic-low") {
    return paper::basic_synthetic(paper::ArrivalSet::kLow);
  }
  if (name == "basic-high") {
    return paper::basic_synthetic(paper::ArrivalSet::kHigh);
  }
  if (name == "worldcup") return paper::worldcup_study();
  return paper::google_study();
}

std::unique_ptr<Policy> policy_by_name(const std::string& name) {
  if (name == "balanced") return std::make_unique<BalancedPolicy>();
  if (name == "optimized") return std::make_unique<OptimizedPolicy>();
  if (name == "right_sizing") {
    RightSizingPolicy::Options opt;
    opt.switch_cost = 0.05;  // exercise the hold path, not just passthrough
    return std::make_unique<RightSizingPolicy>(opt);
  }
  BigMNlpPolicy::Options opt;
  opt.multistarts = 2;  // keep the NLP tractable in the sweep
  opt.nlp.max_outer = 12;
  opt.nlp.max_inner = 100;
  return std::make_unique<BigMNlpPolicy>(opt);
}

TEST_P(PaperScenarioCheckTest, PoliciesEmitViolationFreePlans) {
  const PolicyCase param = GetParam();
  const Scenario sc = scenario_by_name(param.scenario);
  std::unique_ptr<Policy> policy = policy_by_name(param.policy);
  const PlanChecker checker;
  // First two slots: slot 0 plus one where RightSizing carries state.
  for (std::size_t t = 0; t < 2; ++t) {
    const SlotInput input = sc.slot_input(t);
    const DispatchPlan plan = policy->plan_slot(sc.topology, input);
    const PlanCheckReport report = checker.check(sc.topology, input, plan);
    EXPECT_TRUE(report.ok())
        << param.policy << " on " << param.scenario << " slot " << t
        << ":\n" << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, PaperScenarioCheckTest,
    ::testing::Values(
        PolicyCase{"basic-low", "balanced"},
        PolicyCase{"basic-low", "optimized"},
        PolicyCase{"basic-low", "bigm"},
        PolicyCase{"basic-low", "right_sizing"},
        PolicyCase{"basic-high", "balanced"},
        PolicyCase{"basic-high", "optimized"},
        PolicyCase{"basic-high", "bigm"},
        PolicyCase{"basic-high", "right_sizing"},
        PolicyCase{"worldcup", "balanced"},
        PolicyCase{"worldcup", "optimized"},
        PolicyCase{"worldcup", "bigm"},
        PolicyCase{"worldcup", "right_sizing"},
        PolicyCase{"google", "balanced"},
        PolicyCase{"google", "optimized"},
        PolicyCase{"google", "bigm"},
        PolicyCase{"google", "right_sizing"}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name = std::string(info.param.scenario) + "_" +
                         info.param.policy;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- the PALB_CHECK macro family -------------------------------------------

TEST(CheckMacros, CheckCapturesFileAndLine) {
  try {
    PALB_CHECK(1 == 2, "math still works");
    FAIL() << "must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_plan_checker.cpp"), std::string::npos)
        << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math still works"), std::string::npos);
  }
}

TEST(CheckMacros, RequireAliasAlsoCapturesLocation) {
  try {
    PALB_REQUIRE(false, "legacy alias");
    FAIL() << "must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("test_plan_checker.cpp"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckMacros, CheckFiniteRejectsNanAndInf) {
  EXPECT_NO_THROW(PALB_CHECK_FINITE(1.5, "ok value"));
  const double nan = std::nan("");
  EXPECT_THROW(PALB_CHECK_FINITE(nan, "rate"), InvalidArgument);
  EXPECT_THROW(
      PALB_CHECK_FINITE(std::numeric_limits<double>::infinity(), "rate"),
      InvalidArgument);
}

TEST(CheckMacros, DcheckActiveExactlyInDebug) {
#ifdef NDEBUG
  EXPECT_NO_THROW(PALB_DCHECK(false, "compiled out"));
#else
  EXPECT_THROW(PALB_DCHECK(false, "active in debug"), InvalidArgument);
#endif
}

}  // namespace
}  // namespace palb
