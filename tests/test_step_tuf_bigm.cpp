#include "solver/step_tuf_bigm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

StepTufBigM two_level() {
  return StepTufBigM({20.0, 10.0}, {1.0, 3.0});
}

StepTufBigM three_level() {
  return StepTufBigM({30.0, 18.0, 5.0}, {1.0, 2.0, 4.0});
}

TEST(StepTufBigM, ConstructorValidation) {
  EXPECT_THROW(StepTufBigM({}, {}), InvalidArgument);
  EXPECT_THROW(StepTufBigM({10.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(StepTufBigM({10.0, 12.0}, {1.0, 2.0}),
               InvalidArgument);  // not decreasing
  EXPECT_THROW(StepTufBigM({10.0, 5.0}, {2.0, 1.0}),
               InvalidArgument);  // not increasing
  EXPECT_THROW(StepTufBigM({10.0}, {1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(StepTufBigM({10.0}, {1.0}, 1e6, 0.0), InvalidArgument);
}

TEST(StepTufBigM, OneLevelPinsUtility) {
  StepTufBigM bigm({10.0}, {2.0});
  EXPECT_EQ(bigm.num_constraints(), 1u);
  EXPECT_TRUE(bigm.admits(0.5, 10.0));
  EXPECT_FALSE(bigm.admits(0.5, 9.0));
  EXPECT_EQ(bigm.admitted_level(1.0), 0);
}

TEST(StepTufBigM, TwoLevelConstraintCount) {
  // Eqs. 12 and 13: exactly two constraints.
  EXPECT_EQ(two_level().num_constraints(), 2u);
}

TEST(StepTufBigM, ThreeLevelConstraintCount) {
  // Eqs. 19-22: exactly four constraints.
  EXPECT_EQ(three_level().num_constraints(), 4u);
}

TEST(StepTufBigM, TwoLevelBandSelection) {
  const StepTufBigM bigm = two_level();
  // Band 1: R <= D_1 admits only U_1 (paper's case analysis, §IV-2).
  EXPECT_EQ(bigm.admitted_level(0.5), 0);
  EXPECT_TRUE(bigm.admits(0.5, 20.0));
  EXPECT_FALSE(bigm.admits(0.5, 10.0));
  // Band 2: D_1 < R <= D_2 admits only U_2.
  EXPECT_EQ(bigm.admitted_level(2.0), 1);
  EXPECT_FALSE(bigm.admits(2.0, 20.0));
  EXPECT_TRUE(bigm.admits(2.0, 10.0));
}

TEST(StepTufBigM, ThreeLevelBandSelection) {
  const StepTufBigM bigm = three_level();
  EXPECT_EQ(bigm.admitted_level(0.5), 0);
  EXPECT_EQ(bigm.admitted_level(1.5), 1);
  EXPECT_EQ(bigm.admitted_level(3.0), 2);
}

TEST(StepTufBigM, LabelsAreExposed) {
  const StepTufBigM bigm = three_level();
  for (std::size_t i = 0; i < bigm.num_constraints(); ++i) {
    EXPECT_FALSE(bigm.constraint_label(i).empty());
  }
  EXPECT_NE(bigm.constraint_label(0).find("D_1"), std::string::npos);
}

TEST(StepTufBigM, DirectUtilityMatchesDefinition) {
  const StepTufBigM bigm = three_level();
  EXPECT_DOUBLE_EQ(bigm.direct_utility(0.5), 30.0);
  EXPECT_DOUBLE_EQ(bigm.direct_utility(1.0), 30.0);  // inclusive band edge
  EXPECT_DOUBLE_EQ(bigm.direct_utility(1.5), 18.0);
  EXPECT_DOUBLE_EQ(bigm.direct_utility(4.0), 5.0);
  EXPECT_DOUBLE_EQ(bigm.direct_utility(4.5), 0.0);  // past final deadline
  EXPECT_THROW(bigm.direct_utility(0.0), InvalidArgument);
}

TEST(StepTufBigM, IndexRangeChecked) {
  const StepTufBigM bigm = two_level();
  EXPECT_THROW(bigm.constraint_value(99, 1.0, 10.0), InvalidArgument);
  EXPECT_THROW(bigm.constraint_label(99), InvalidArgument);
}

/// THE equivalence property the paper proves (§IV-2/3): over the whole
/// delay domain (0, D_n], the big-M constraint system admits exactly the
/// level the step TUF dictates — for arbitrary level geometry and level
/// counts.
class BigMEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BigMEquivalenceTest, SystemAdmitsExactlyTheDirectBand) {
  const int case_id = GetParam();
  const int n = 1 + case_id % 5;  // 1..5 levels
  Rng rng(static_cast<std::uint64_t>(case_id) * 6151 + 3);

  std::vector<double> utilities, deadlines;
  double u = rng.uniform(40.0, 90.0);
  double d = rng.uniform(0.2, 1.0);
  for (int q = 0; q < n; ++q) {
    utilities.push_back(u);
    deadlines.push_back(d);
    u -= rng.uniform(2.0, 15.0);
    d += rng.uniform(0.3, 2.0);
  }
  const StepTufBigM bigm(utilities, deadlines);

  const double final_deadline = deadlines.back();
  const double delta = bigm.delta();
  for (int step = 1; step <= 400; ++step) {
    // The equivalence domain is (0, D_n] — the final deadline itself is
    // enforced by Eq. 6, not by the band system — so clamp the grid's
    // last point, which can land an ulp past D_n.
    const double delay = std::min(
        final_deadline, final_deadline * static_cast<double>(step) / 400.0);
    // Skip the paper's half-open delta window right above each
    // sub-deadline, where by construction neither band is admitted yet.
    bool in_delta_gap = false;
    for (int q = 0; q + 1 < n; ++q) {
      const double dq = deadlines[static_cast<std::size_t>(q)];
      if (delay > dq && delay <= dq + delta) in_delta_gap = true;
    }
    if (in_delta_gap) continue;

    const double direct = bigm.direct_utility(delay);
    const int admitted = bigm.admitted_level(delay);
    ASSERT_GE(admitted, 0) << "no unique level admitted at R=" << delay;
    EXPECT_DOUBLE_EQ(utilities[static_cast<std::size_t>(admitted)], direct)
        << "R=" << delay;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, BigMEquivalenceTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace palb
