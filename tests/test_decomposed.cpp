// Differential suite for the solver scale-up pair: the simplex's
// support-walking (sparse) pivot kernel against the dense kernel, and
// the Dantzig-Wolfe decomposed driver against the monolithic simplex.
//
// The sparse kernel's contract is *bitwise*: skipping an exact zero is
// an arithmetic no-op, so pivot sequences, statuses, points, and
// objectives must match the dense kernel exactly. The decomposed
// driver's contract is two-layered: objectives always agree to LP
// tolerance, and on generic instances (random continuous data, so the
// optimum is unique) the crossover + deterministic refactorization land
// on the very same point bitwise. Worker-count invariance of the
// subproblem fan-out is structural and also checked bitwise.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_json.hpp"
#include "core/controller.hpp"
#include "solver/decomposed.hpp"
#include "solver/linear_program.hpp"
#include "solver/simplex.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

/// Block-angular maximization instance: `blocks` independent groups of
/// variables, each with its own "flow" row, tied together by `coupling`
/// dense rows — the same shape as the dispatcher's profile LPs (flow
/// per (class, front-end), capacity per DC). All data is continuous
/// random, so the optimum is unique almost surely.
LinearProgram random_block_lp(std::uint64_t seed, int blocks = 4,
                              int vars_per_block = 3, int coupling = 2) {
  Rng rng(seed * 104729 + 7);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<std::vector<int>> block_vars(
      static_cast<std::size_t>(blocks));
  for (int b = 0; b < blocks; ++b) {
    for (int v = 0; v < vars_per_block; ++v) {
      block_vars[static_cast<std::size_t>(b)].push_back(lp.add_variable(
          0.0, rng.uniform(1.0, 5.0), rng.uniform(0.5, 3.0)));
    }
  }
  for (int b = 0; b < blocks; ++b) {
    std::vector<std::pair<int, double>> terms;
    for (const int v : block_vars[static_cast<std::size_t>(b)]) {
      terms.emplace_back(v, 1.0);
    }
    lp.add_constraint(terms, Relation::kLe, rng.uniform(1.0, 6.0));
  }
  for (int c = 0; c < coupling; ++c) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < lp.num_variables(); ++j) {
      terms.emplace_back(j, rng.uniform(0.2, 1.5));
    }
    lp.add_constraint(terms, Relation::kLe, rng.uniform(2.0, 8.0));
  }
  return lp;
}

/// General (non-block) random LP for the kernel differential: mixed
/// relations, some negative rhs, maximize.
LinearProgram random_general_lp(std::uint64_t seed) {
  Rng rng(seed * 6151 + 11);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int n = 4 + static_cast<int>(rng.uniform_index(5));
  const int m = 3 + static_cast<int>(rng.uniform_index(4));
  for (int j = 0; j < n; ++j) {
    lp.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(-1.0, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < 0.7) {
        terms.emplace_back(j, rng.uniform(-1.0, 2.0));
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double roll = rng.uniform(0.0, 1.0);
    const Relation rel = roll < 0.7   ? Relation::kLe
                         : roll < 0.85 ? Relation::kGe
                                       : Relation::kEq;
    const double rhs = rel == Relation::kGe ? rng.uniform(-2.0, 0.5)
                                            : rng.uniform(0.5, 6.0);
    lp.add_constraint(terms, rel, rhs);
  }
  return lp;
}

// ---- Sparse pivot kernel vs dense kernel --------------------------------

TEST(SparsePivoting, BitIdenticalToDenseKernel) {
  std::uint64_t total_skips = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const LinearProgram lp = seed % 2 == 0 ? random_block_lp(seed)
                                           : random_general_lp(seed);
    SimplexSolver::Options dense_opt;
    dense_opt.sparse_pivoting = false;
    dense_opt.record_pivots = true;
    SimplexSolver::Options sparse_opt;
    sparse_opt.sparse_pivoting = true;
    sparse_opt.record_pivots = true;

    const LpSolution d = SimplexSolver(dense_opt).solve(lp);
    const LpSolution s = SimplexSolver(sparse_opt).solve(lp);
    ASSERT_EQ(d.status, s.status) << "seed " << seed;
    EXPECT_EQ(d.pivot_log, s.pivot_log) << "seed " << seed;
    EXPECT_EQ(d.iterations, s.iterations) << "seed " << seed;
    EXPECT_EQ(d.objective, s.objective) << "seed " << seed;
    EXPECT_EQ(d.x, s.x) << "seed " << seed;
    EXPECT_EQ(d.duals, s.duals) << "seed " << seed;
    EXPECT_EQ(d.sparse_price_skips, 0u) << "dense kernel must not count";
    total_skips += s.sparse_price_skips;
  }
  // The hybrid kernel hands filled-in pivot rows back to the dense
  // loops, so an individual instance may legitimately count nothing;
  // across 40 instances the sparse path must still fire.
  EXPECT_GT(total_skips, 0u) << "sparse path never taken in 40 instances";
}

// ---- Structure detection ------------------------------------------------

TEST(DecomposedSolver, DetectsBlockAngularStructure) {
  const LinearProgram lp = random_block_lp(3, 5, 3, 2);
  DecomposedSolver dec;
  const LpSolution sol = dec.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(dec.stats().decomposed);
  EXPECT_EQ(dec.stats().blocks, 5);
  EXPECT_EQ(dec.stats().coupling_rows, 2);
  EXPECT_GE(dec.stats().master_iterations, 1);
  EXPECT_GE(dec.stats().subproblem_solves, 5);
}

TEST(DecomposedSolver, FallsBackWhenNoSplitExists) {
  // A fully coupled LP: every row touches every variable, so no peel
  // count ever splits the remainder.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (int j = 0; j < 4; ++j) lp.add_variable(0.0, 2.0, 1.0 + 0.1 * j);
  for (int r = 0; r < 3; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < 4; ++j) terms.emplace_back(j, 1.0 + 0.2 * r);
    lp.add_constraint(terms, Relation::kLe, 3.0 + r);
  }
  DecomposedSolver dec;
  const LpSolution sol = dec.solve(lp);
  EXPECT_FALSE(dec.stats().decomposed);
  const LpSolution mono = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, mono.status);
  EXPECT_EQ(sol.x, mono.x);
}

TEST(DecomposedSolver, FallsBackOnInfiniteBounds) {
  LinearProgram lp = random_block_lp(5);
  lp.set_bounds(0, 0.0, kInfinity);  // DW needs bounded vertices
  DecomposedSolver dec;
  const LpSolution sol = dec.solve(lp);
  EXPECT_FALSE(dec.stats().decomposed);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);  // ub row 0 caps var 0 anyway
}

// ---- Monolithic vs decomposed differential ------------------------------

TEST(DecomposedSolver, MatchesMonolithicOnGenericBlockInstances) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const LinearProgram lp = random_block_lp(seed, 3 + seed % 4, 2 + seed % 3,
                                             1 + static_cast<int>(seed % 2));
    const LpSolution mono = SimplexSolver().solve(lp);
    DecomposedSolver dec;
    const LpSolution sol = dec.solve(lp);
    ASSERT_EQ(mono.status, LpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(mono.objective, sol.objective, 1e-9) << "seed " << seed;
    // Generic data => unique optimum => the crossover ends in the same
    // basis and the deterministic refactorization makes the points
    // bitwise equal, not merely close.
    EXPECT_EQ(mono.x, sol.x) << "seed " << seed;
  }
}

TEST(DecomposedSolver, SubproblemWorkerCountInvariant) {
  const LinearProgram lp = random_block_lp(11, 6, 3, 2);
  std::vector<LpSolution> sols;
  std::vector<DecomposedSolver::Stats> stats;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    DecomposedSolver::Options opt;
    opt.subproblem_workers = workers;
    DecomposedSolver dec(opt);
    sols.push_back(dec.solve(lp));
    stats.push_back(dec.stats());
  }
  for (std::size_t i = 1; i < sols.size(); ++i) {
    EXPECT_EQ(sols[0].x, sols[i].x);
    EXPECT_EQ(sols[0].objective, sols[i].objective);
    EXPECT_EQ(sols[0].iterations, sols[i].iterations);
    EXPECT_EQ(stats[0].master_iterations, stats[i].master_iterations);
    EXPECT_EQ(stats[0].subproblem_solves, stats[i].subproblem_solves);
  }
  EXPECT_TRUE(stats[0].decomposed);
}

TEST(DecomposedSolver, AgreesOnInfeasibleInstances) {
  // One block's flow row demands more than its variables' bounds allow.
  LinearProgram lp = random_block_lp(7);
  std::vector<std::pair<int, double>> terms{{0, 1.0}, {1, 1.0}, {2, 1.0}};
  lp.add_constraint(terms, Relation::kGe, 100.0);  // ub sum is < 15
  const LpSolution mono = SimplexSolver().solve(lp);
  const LpSolution sol = DecomposedSolver().solve(lp);
  EXPECT_EQ(mono.status, LpStatus::kInfeasible);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(DecomposedSolver, AgreesOnUnboundedInstances) {
  // Unbounded => an infinite bound exists => the structure check already
  // routed the solve down the monolithic path; statuses must agree.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_variable(0.0, 1.0, 1.0);
  std::vector<std::pair<int, double>> terms{{1, 1.0}};
  lp.add_constraint(terms, Relation::kLe, 1.0);
  DecomposedSolver dec;
  const LpSolution sol = dec.solve(lp);
  EXPECT_FALSE(dec.stats().decomposed);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
  EXPECT_EQ(SimplexSolver().solve(lp).status, LpStatus::kUnbounded);
}

TEST(DecomposedSolver, AgreesOnDegenerateInstances) {
  // Zero-capacity coupling rows force every block to its lower bounds:
  // heavy degeneracy (many optimal bases for the same point). Objectives
  // must still agree to tolerance and both points must be feasible.
  LinearProgram lp = random_block_lp(9, 4, 3, 0);
  std::vector<std::pair<int, double>> terms;
  for (int j = 0; j < lp.num_variables(); ++j) terms.emplace_back(j, 1.0);
  lp.add_constraint(terms, Relation::kLe, 0.0);
  lp.add_constraint(terms, Relation::kLe, 0.0);  // duplicate: redundant row
  const LpSolution mono = SimplexSolver().solve(lp);
  const LpSolution sol = DecomposedSolver().solve(lp);
  ASSERT_EQ(mono.status, LpStatus::kOptimal);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(mono.objective, sol.objective, 1e-9);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
  EXPECT_TRUE(lp.is_feasible(sol.x));
}

TEST(DecomposedSolver, ForwardsWarmBasisToFallbackPath) {
  // On a non-decomposable LP the caller's warm basis must reach the
  // monolithic solver (same contract as calling it directly).
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (int j = 0; j < 4; ++j) lp.add_variable(0.0, 2.0, 1.0 + 0.3 * j);
  for (int r = 0; r < 3; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < 4; ++j) terms.emplace_back(j, 1.0 + 0.1 * (r + j));
    lp.add_constraint(terms, Relation::kLe, 2.5 + r);
  }
  const LpSolution cold = SimplexSolver().solve(lp);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  DecomposedSolver dec;
  const LpSolution warm = dec.solve(lp, &cold.basis);
  EXPECT_FALSE(dec.stats().decomposed);
  EXPECT_TRUE(warm.warm_start_used);
  EXPECT_EQ(cold.x, warm.x);
}

// ---- Policy-level integration -------------------------------------------

std::string plans_fingerprint(const RunResult& run) {
  return plan_json::run_to_json(run).dump(2);
}

TEST(DecomposedPolicy, ForcedOnMatchesOffByteIdentical) {
  // The paper scenarios sit below the kAuto size threshold, so force the
  // decomposed driver on and require the plans (JSON bytes) to match the
  // plain path — the crossover contract end to end.
  for (const auto& scenario :
       {paper::basic_synthetic(paper::ArrivalSet::kLow),
        paper::worldcup_study()}) {
    const SlotController controller(scenario);
    OptimizedPolicy::Options off_opt;
    off_opt.decomposed_solve = OptimizedPolicy::DecomposedSolve::kOff;
    OptimizedPolicy off(off_opt);
    OptimizedPolicy::Options on_opt;
    on_opt.decomposed_solve = OptimizedPolicy::DecomposedSolve::kOn;
    OptimizedPolicy on(on_opt);
    const RunResult off_run = controller.run(off, 3);
    const RunResult on_run = controller.run(on, 3);
    EXPECT_EQ(plans_fingerprint(off_run), plans_fingerprint(on_run));
    EXPECT_DOUBLE_EQ(off_run.total.net_profit(), on_run.total.net_profit());
  }
}

TEST(DecomposedPolicy, CountersFlowIntoPolicyStats) {
  const Scenario scenario = paper::basic_synthetic(paper::ArrivalSet::kHigh);
  OptimizedPolicy::Options opt;
  opt.decomposed_solve = OptimizedPolicy::DecomposedSolve::kOn;
  OptimizedPolicy policy(opt);
  const SlotController controller(scenario);
  (void)controller.run(policy, 2);
  const PolicyStats stats = policy.stats();
  EXPECT_GT(stats.sparse_price_skips, 0u);
  EXPECT_GT(stats.master_iterations, 0u);
  EXPECT_GT(stats.subproblem_solves, 0u);
}

TEST(DecomposedPolicy, DegradedForcesDecompositionOff) {
  // Rung 2 runs under a tight per-LP pivot budget; column generation's
  // many inner solves are pure overhead there, so degraded() pins the
  // switch off — and the budget interaction still returns a plan (the
  // all-off fallback is always available).
  const Scenario scenario = paper::basic_synthetic(paper::ArrivalSet::kLow);
  OptimizedPolicy::Options opt;
  opt.decomposed_solve = OptimizedPolicy::DecomposedSolve::kOn;
  OptimizedPolicy base(opt);
  const auto rung2 = base.degraded();
  const SlotController controller(scenario);
  OptimizedPolicy probe(opt);
  (void)controller.run(probe, 1);  // sanity: kOn itself plans fine
  const RunResult run = controller.run(*rung2, 2);
  EXPECT_EQ(run.slots.size(), 2u);
  // The degraded copy reports zero decomposition work: the switch is off.
  EXPECT_EQ(rung2->stats().master_iterations, 0u);
  EXPECT_EQ(rung2->stats().subproblem_solves, 0u);

  // And a kOn policy under the same tight budget still returns plans.
  OptimizedPolicy::Options tight = opt;
  tight.lp_max_iterations = 3;  // starves almost every LP
  OptimizedPolicy starved(tight);
  const RunResult starved_run = controller.run(starved, 1);
  EXPECT_EQ(starved_run.slots.size(), 1u);
}

}  // namespace
}  // namespace palb
