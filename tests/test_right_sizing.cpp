#include "core/right_sizing_policy.hpp"

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "scenario_fixtures.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

Topology topo_with_idle(double idle_kw) {
  Topology topo = small_topology();
  for (auto& dc : topo.datacenters) dc.idle_power_kw = idle_kw;
  return topo;
}

TEST(RightSizing, ZeroSwitchCostMatchesInnerOptimizer) {
  const Topology topo = small_topology();
  RightSizingPolicy wrapper;  // switch_cost = 0
  OptimizedPolicy inner;
  for (double scale : {0.4, 1.0, 2.0}) {
    const SlotInput input = small_input(scale);
    const DispatchPlan a = wrapper.plan_slot(topo, input);
    const DispatchPlan b = inner.plan_slot(topo, input);
    for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
      EXPECT_EQ(a.dc[l].servers_on, b.dc[l].servers_on);
    }
    EXPECT_DOUBLE_EQ(wrapper.last_switch_cost(), 0.0);
  }
}

TEST(RightSizing, HoldsIdledServersThroughADip) {
  const Topology topo = topo_with_idle(1.0);
  RightSizingPolicy::Options opt;
  opt.switch_cost = 50.0;  // hold window of several slots
  RightSizingPolicy policy(opt);

  const SlotInput busy = small_input(2.0);
  const SlotInput quiet = small_input(0.2);

  const DispatchPlan p1 = policy.plan_slot(topo, busy);
  int busy_servers = 0;
  for (const auto& dc : p1.dc) busy_servers += dc.servers_on;

  const DispatchPlan p2 = policy.plan_slot(topo, quiet);
  int held_servers = 0;
  for (const auto& dc : p2.dc) held_servers += dc.servers_on;
  // The dip does not immediately shed capacity.
  EXPECT_EQ(held_servers, busy_servers);
  // Holding is free of switching dollars.
  EXPECT_DOUBLE_EQ(policy.last_switch_cost(), 0.0);
}

TEST(RightSizing, EventuallyDropsAfterTheHoldWindow) {
  const Topology topo = topo_with_idle(4.0);
  RightSizingPolicy::Options opt;
  opt.switch_cost = 0.2;  // small: short window
  RightSizingPolicy policy(opt);

  (void)policy.plan_slot(topo, small_input(2.0));
  const SlotInput quiet = small_input(0.2);
  int last = 1 << 20;
  bool dropped = false;
  for (int t = 0; t < 8; ++t) {
    const DispatchPlan p = policy.plan_slot(topo, quiet);
    int on = 0;
    for (const auto& dc : p.dc) on += dc.servers_on;
    EXPECT_LE(on, last);
    last = on;
    OptimizedPolicy inner;
    int needed = 0;
    for (const auto& dc : inner.plan_slot(topo, quiet).dc) {
      needed += dc.servers_on;
    }
    if (on == needed) dropped = true;
  }
  EXPECT_TRUE(dropped) << "hold never expired";
}

TEST(RightSizing, ChargesSwitchingOnTransitions) {
  const Topology topo = topo_with_idle(4.0);
  RightSizingPolicy::Options opt;
  opt.switch_cost = 1.0;
  opt.max_hold_slots = 0;  // disable holding: pure transition metering
  RightSizingPolicy policy(opt);

  (void)policy.plan_slot(topo, small_input(2.0));
  const int up_transitions = policy.total_transitions();
  EXPECT_GT(up_transitions, 0);
  EXPECT_NEAR(policy.total_switch_cost(),
              static_cast<double>(up_transitions) * 1.0, 1e-9);

  (void)policy.plan_slot(topo, small_input(0.2));
  EXPECT_GT(policy.total_transitions(), up_transitions);  // downsizing
}

TEST(RightSizing, PlansStayValid) {
  const Topology topo = topo_with_idle(2.0);
  RightSizingPolicy::Options opt;
  opt.switch_cost = 10.0;
  RightSizingPolicy policy(opt);
  for (double scale : {2.0, 0.3, 1.5, 0.1, 0.1, 0.1, 2.5}) {
    const SlotInput input = small_input(scale);
    const DispatchPlan plan = policy.plan_slot(topo, input);
    EXPECT_TRUE(plan.is_valid(topo, input)) << "scale=" << scale;
    // Held servers never exceed the fleet and never undercut need.
    const SlotMetrics m = evaluate_plan(topo, input, plan);
    for (const auto& per_class : m.outcomes) {
      for (const auto& o : per_class) {
        if (o.rate > 1e-9) {
          EXPECT_TRUE(o.stable);
        }
      }
    }
  }
}

TEST(RightSizing, ResetForgetsPowerState) {
  const Topology topo = topo_with_idle(1.0);
  RightSizingPolicy::Options opt;
  opt.switch_cost = 5.0;
  RightSizingPolicy policy(opt);
  (void)policy.plan_slot(topo, small_input(2.0));
  policy.reset();
  EXPECT_EQ(policy.total_transitions(), 0);
  EXPECT_DOUBLE_EQ(policy.total_switch_cost(), 0.0);
  // After reset, a quiet slot powers only what it needs (no held block).
  const DispatchPlan p = policy.plan_slot(topo, small_input(0.2));
  OptimizedPolicy inner;
  const DispatchPlan q = inner.plan_slot(topo, small_input(0.2));
  for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
    EXPECT_EQ(p.dc[l].servers_on, q.dc[l].servers_on);
  }
}

TEST(RightSizing, OptionValidation) {
  RightSizingPolicy::Options opt;
  opt.switch_cost = -1.0;
  EXPECT_THROW(RightSizingPolicy{opt}, InvalidArgument);
  opt.switch_cost = 0.0;
  opt.max_hold_slots = -1;
  EXPECT_THROW(RightSizingPolicy{opt}, InvalidArgument);
}

}  // namespace
}  // namespace palb
