#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace palb {
namespace {

// ---- parsing primitives ------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, Whitespace) {
  const Json v = Json::parse("  \n\t { \"a\" : [ 1 , 2 ] } \r\n");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const Json v = Json::parse(
      R"({"name":"dc1","servers":6,"rates":[1.5,2.5],"meta":{"on":true}})");
  EXPECT_EQ(v.at("name").as_string(), "dc1");
  EXPECT_EQ(v.at("servers").as_index(), 6u);
  EXPECT_DOUBLE_EQ(v.at("rates")[1].as_number(), 2.5);
  EXPECT_TRUE(v.at("meta").at("on").as_bool());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(Json::parse(R"("line\nbreak")").as_string(), "line\nbreak");
  EXPECT_EQ(Json::parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(Json::parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
}

// ---- strictness ----------------------------------------------------------

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,2", "{\"a\":}", "{\"a\" 1}", "{a:1}", "[1,]",
        "{\"a\":1,}", "tru", "nul", "01", "1.", ".5", "+1", "1e",
        "\"unterminated", "\"bad\\escape\"", "[1] tail", "nan",
        "Infinity", "'single'"}) {
    EXPECT_THROW(Json::parse(bad), IoError) << "input: " << bad;
  }
}

TEST(JsonParse, RejectsControlCharInString) {
  EXPECT_THROW(Json::parse("\"a\nb\""), IoError);
}

TEST(JsonParse, ErrorCarriesLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": ??\n}");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// ---- accessors -----------------------------------------------------------

TEST(Json, TypeMismatchesThrow) {
  const Json v = Json::parse("[1]");
  EXPECT_THROW(v.as_object(), IoError);
  EXPECT_THROW(v.as_string(), IoError);
  EXPECT_THROW(v.at("k"), IoError);
  EXPECT_THROW(v[5], IoError);
  EXPECT_THROW(Json(1.5).as_index(), IoError);
  EXPECT_THROW(Json(-2.0).as_index(), IoError);
}

TEST(Json, GetWithFallbacks) {
  const Json v = Json::parse(R"({"a":1,"s":"x","b":true})");
  EXPECT_DOUBLE_EQ(v.get("a", 9.0), 1.0);
  EXPECT_DOUBLE_EQ(v.get("missing", 9.0), 9.0);
  EXPECT_EQ(v.get("s", std::string("y")), "x");
  EXPECT_EQ(v.get("missing", std::string("y")), "y");
  EXPECT_TRUE(v.get("b", false));
  EXPECT_FALSE(v.get("missing", false));
}

TEST(Json, BuilderMutation) {
  Json obj = Json::object();
  obj.set("k", Json(3.0));
  Json arr = Json::array();
  arr.push_back(Json("v"));
  obj.set("list", std::move(arr));
  EXPECT_DOUBLE_EQ(obj.at("k").as_number(), 3.0);
  EXPECT_EQ(obj.at("list")[0].as_string(), "v");
  EXPECT_THROW(obj.push_back(Json(1.0)), IoError);  // object, not array
}

// ---- serialization ---------------------------------------------------------

TEST(JsonDump, CompactForm) {
  const Json v = Json::parse(R"({"b":[1,2],"a":"x"})");
  // std::map orders keys.
  EXPECT_EQ(v.dump(), R"({"a":"x","b":[1,2]})");
}

TEST(JsonDump, PrettyFormHasNewlines) {
  const Json v = Json::parse(R"({"a":[1]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("  \"a\""), std::string::npos);
}

TEST(JsonDump, EscapesSpecials) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
}

TEST(JsonDump, RejectsNonFinite) {
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).dump(),
               IoError);
}

TEST(JsonDump, IntegersStayIntegers) {
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
}

class JsonRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTripTest, ParseDumpParseIsIdentity) {
  const Json first = Json::parse(GetParam());
  const Json second = Json::parse(first.dump());
  EXPECT_TRUE(first == second) << GetParam();
  const Json third = Json::parse(first.dump(2));
  EXPECT_TRUE(first == third) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTripTest,
    ::testing::Values(
        "null", "true", "3.141592653589793", "-0.5", "\"text\"",
        "[]", "{}", "[1,[2,[3,[4]]]]",
        R"({"classes":[{"name":"web","tuf":{"utilities":[0.02,0.01]}}]})",
        R"({"mixed":[null,true,1.5,"s",{"k":[]}]})",
        R"({"esc":"quote\" slash\\ nl\n"})"));

}  // namespace
}  // namespace palb
