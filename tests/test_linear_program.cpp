#include "solver/linear_program.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(LinearProgram, VariableAccounting) {
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 5.0, 2.0, "x");
  const int y = lp.add_variable(-1.0, kInfinity, -3.0);
  EXPECT_EQ(lp.num_variables(), 2);
  EXPECT_DOUBLE_EQ(lp.cost(x), 2.0);
  EXPECT_DOUBLE_EQ(lp.lower_bound(y), -1.0);
  EXPECT_TRUE(std::isinf(lp.upper_bound(y)));
  EXPECT_EQ(lp.variable_name(x), "x");
  EXPECT_EQ(lp.variable_name(y), "x1");  // auto-named
}

TEST(LinearProgram, RejectsInvertedBounds) {
  LinearProgram lp;
  EXPECT_THROW(lp.add_variable(2.0, 1.0), InvalidArgument);
  const int x = lp.add_variable();
  EXPECT_THROW(lp.set_bounds(x, 5.0, 4.0), InvalidArgument);
}

TEST(LinearProgram, ConstraintTermsAccumulate) {
  LinearProgram lp;
  const int x = lp.add_variable();
  const int r = lp.add_constraint(Relation::kLe, 10.0);
  lp.add_term(r, x, 2.0);
  lp.add_term(r, x, 3.0);
  ASSERT_EQ(lp.row_terms(r).size(), 1u);
  EXPECT_DOUBLE_EQ(lp.row_terms(r)[0].second, 5.0);
  lp.set_coefficient(r, x, 7.0);
  EXPECT_DOUBLE_EQ(lp.row_terms(r)[0].second, 7.0);
}

TEST(LinearProgram, RowActivityAndObjective) {
  LinearProgram lp;
  const int x = lp.add_variable(0, kInfinity, 1.0);
  const int y = lp.add_variable(0, kInfinity, 2.0);
  lp.set_objective_offset(5.0);
  const int r = lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEq, 0.0);
  const std::vector<double> point{3.0, 4.0};
  EXPECT_DOUBLE_EQ(lp.row_activity(r, point), -1.0);
  EXPECT_DOUBLE_EQ(lp.objective_value(point), 3.0 + 8.0 + 5.0);
}

TEST(LinearProgram, FeasibilityCheck) {
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 2.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 1.0);
  EXPECT_TRUE(lp.is_feasible({1.5}));
  EXPECT_FALSE(lp.is_feasible({0.5}));   // violates >= row
  EXPECT_FALSE(lp.is_feasible({2.5}));   // violates bound
  EXPECT_FALSE(lp.is_feasible({1.0, 2.0}));  // wrong dimension
}

TEST(LinearProgram, FeasibilityEqualityTolerance) {
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 10.0);
  lp.add_constraint({{x, 1.0}}, Relation::kEq, 3.0);
  EXPECT_TRUE(lp.is_feasible({3.0 + 1e-9}));
  EXPECT_FALSE(lp.is_feasible({3.1}));
}

TEST(LinearProgram, IndexRangeChecks) {
  LinearProgram lp;
  EXPECT_THROW(lp.cost(0), InvalidArgument);
  EXPECT_THROW(lp.rhs(0), InvalidArgument);
  const int x = lp.add_variable();
  const int r = lp.add_constraint(Relation::kLe, 1.0);
  EXPECT_THROW(lp.set_coefficient(r, x + 1, 1.0), InvalidArgument);
  EXPECT_THROW(lp.set_coefficient(r + 1, x, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace palb
