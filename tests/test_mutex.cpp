#include "util/mutex.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace palb {
namespace {

/// Runtime half of the tier-5 thread-safety layer: the wrappers must
/// behave exactly like the std primitives they annotate. The *static*
/// half — that misuse fails to compile — is
/// tests/compile_fail/thread_safety_cases/.

TEST(Mutex, LockUnlockRoundTrips) {
  Mutex mu;
  mu.lock();
  mu.unlock();
  mu.lock();
  mu.unlock();
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mu;
  EXPECT_TRUE(mu.try_lock());
  // Owned by this thread: a second owner must be refused. std::mutex
  // makes same-thread re-try_lock UB, so probe from another thread.
  bool second = true;
  std::thread probe([&] { second = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Mutex, GuardedCounterIsRaceFreeUnderMutexLock) {
  struct Counter {
    Mutex mutex;
    std::size_t value PALB_GUARDED_BY(mutex) = 0;

    void bump() PALB_EXCLUDES(mutex) {
      MutexLock lock(mutex);
      ++value;
    }
    std::size_t read() PALB_EXCLUDES(mutex) {
      MutexLock lock(mutex);
      return value;
    }
  };
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.bump();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.read(), kThreads * kPerThread);
}

TEST(CondVar, WaitReleasesAndReacquires) {
  struct Gate {
    Mutex mutex;
    CondVar cv;
    bool open PALB_GUARDED_BY(mutex) = false;

    void open_gate() PALB_EXCLUDES(mutex) {
      {
        MutexLock lock(mutex);
        open = true;
      }
      cv.notify_all();
    }
    void pass() PALB_EXCLUDES(mutex) {
      MutexLock lock(mutex);
      while (!open) cv.wait(mutex);
    }
  };
  Gate gate;
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&] { gate.pass(); });
  }
  gate.open_gate();
  for (auto& th : waiters) th.join();
  SUCCEED();  // termination is the assertion: wait() must wake and relock
}

TEST(CondVar, ProducerConsumerHandsOffEveryItem) {
  struct Queue {
    Mutex mutex;
    CondVar cv;
    std::vector<int> items PALB_GUARDED_BY(mutex);
    bool done PALB_GUARDED_BY(mutex) = false;
  };
  Queue q;
  constexpr int kItems = 500;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      {
        MutexLock lock(q.mutex);
        q.items.push_back(i);
      }
      q.cv.notify_one();
    }
    {
      MutexLock lock(q.mutex);
      q.done = true;
    }
    q.cv.notify_all();
  });
  std::vector<int> received;
  {
    for (;;) {
      MutexLock lock(q.mutex);
      while (q.items.empty() && !q.done) q.cv.wait(q.mutex);
      for (int v : q.items) received.push_back(v);
      q.items.clear();
      if (q.done) break;
    }
  }
  producer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(Mutex, AssertHeldIsANoOpAtRuntime) {
  Mutex mu;
  MutexLock lock(mu);
  mu.assert_held();  // purely an analysis-side assertion
  SUCCEED();
}

}  // namespace
}  // namespace palb
