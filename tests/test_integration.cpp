#include <gtest/gtest.h>

#include "core/balanced_policy.hpp"
#include "core/bigm_nlp_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "sim/slot_simulator.hpp"
#include "util/stats.hpp"

namespace palb {
namespace {

/// §V headline (Fig. 4): Optimized earns more than Balanced on both
/// synthetic arrival sets.
TEST(Integration, BasicStudyOptimizedBeatsBalanced) {
  for (auto set : {paper::ArrivalSet::kLow, paper::ArrivalSet::kHigh}) {
    const SlotController controller(paper::basic_synthetic(set));
    OptimizedPolicy optimized;
    BalancedPolicy balanced;
    const double opt = controller.run(optimized, 1).total.net_profit();
    const double bal = controller.run(balanced, 1).total.net_profit();
    EXPECT_GT(opt, bal);
  }
}

/// §V heavy-load claim: Optimized pushes through noticeably more
/// requests than Balanced ("around 16% more" in the paper).
TEST(Integration, BasicStudyHighLoadThroughputEdge) {
  const SlotController controller(
      paper::basic_synthetic(paper::ArrivalSet::kHigh));
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  const RunResult opt = controller.run(optimized, 1);
  const RunResult bal = controller.run(balanced, 1);
  // Neither serves everything...
  EXPECT_LT(opt.total.completed_fraction(), 1.0);
  EXPECT_LT(bal.total.completed_fraction(), 1.0);
  // ...but Optimized completes materially more.
  EXPECT_GT(opt.total.completed_requests,
            1.05 * bal.total.completed_requests);
}

/// §VI headline (Fig. 6): over the 24-hour WorldCup day, Optimized's
/// cumulative net profit dominates Balanced's.
TEST(Integration, WorldCupDayOptimizedDominates) {
  const SlotController controller(paper::worldcup_study());
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  const RunResult opt = controller.run(optimized, 24);
  const RunResult bal = controller.run(balanced, 24);
  EXPECT_GT(opt.total.net_profit(), bal.total.net_profit());
  // Per-slot: Optimized never falls below Balanced by more than noise.
  for (std::size_t t = 0; t < 24; ++t) {
    EXPECT_GE(opt.slots[t].net_profit(), bal.slots[t].net_profit() - 1e-6)
        << "hour " << t;
  }
}

/// §VI dispatch shape (Fig. 7): the far/expensive datacenter2 receives
/// much less request1 traffic than datacenter1 or datacenter3.
TEST(Integration, WorldCupDc2GetsLittleTraffic) {
  const SlotController controller(paper::worldcup_study());
  OptimizedPolicy optimized;
  const RunResult opt = controller.run(optimized, 24);
  double to_dc[3] = {0.0, 0.0, 0.0};
  for (const auto& plan : opt.plans) {
    for (std::size_t l = 0; l < 3; ++l) to_dc[l] += plan.class_dc_rate(0, l);
  }
  EXPECT_LT(to_dc[1], to_dc[0]);
  EXPECT_LT(to_dc[1], to_dc[2]);
}

/// §VII headline (Fig. 8): the Google two-level study, hourly profits.
TEST(Integration, GoogleStudyOptimizedBeatsBalanced) {
  const SlotController controller(paper::google_study());
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  const RunResult opt = controller.run(optimized, 6);
  const RunResult bal = controller.run(balanced, 6);
  EXPECT_GT(opt.total.net_profit(), bal.total.net_profit());
}

/// §VII completion claim (Fig. 9): Optimized completes (nearly) all
/// requests; Balanced leaves some on the floor.
TEST(Integration, GoogleStudyCompletionGap) {
  const SlotController controller(paper::google_study());
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  const RunResult opt = controller.run(optimized, 6);
  const RunResult bal = controller.run(balanced, 6);
  EXPECT_GE(opt.total.completed_fraction(),
            bal.total.completed_fraction());
}

/// §VII-B3 (Fig. 10): the profit ordering is workload-independent.
TEST(Integration, GoogleWorkloadEffect) {
  for (double capacity_scale : {1.6, 0.6}) {
    const SlotController controller(
        paper::google_study(7, capacity_scale));
    OptimizedPolicy optimized;
    BalancedPolicy balanced;
    const double opt = controller.run(optimized, 6).total.net_profit();
    const double bal = controller.run(balanced, 6).total.net_profit();
    EXPECT_GT(opt, bal) << "capacity_scale=" << capacity_scale;
  }
}

/// The paper-faithful big-M NLP path also clears the Balanced bar on the
/// Google study (it's "near optimal", not optimal).
TEST(Integration, GoogleStudyBigMNlpBeatsBalanced) {
  const SlotController controller(paper::google_study());
  BigMNlpPolicy::Options opt_nlp;
  opt_nlp.multistarts = 3;
  opt_nlp.nlp.max_outer = 15;
  opt_nlp.nlp.max_inner = 120;
  BigMNlpPolicy nlp(opt_nlp);
  BalancedPolicy balanced;
  const double nlp_profit = controller.run(nlp, 3).total.net_profit();
  const double bal_profit = controller.run(balanced, 3).total.net_profit();
  EXPECT_GT(nlp_profit, bal_profit);
}

/// Cross-validation: replaying the WorldCup optimized plans through the
/// discrete-event simulator lands within 15% of the analytic ledger.
TEST(Integration, WorldCupPlansSurviveStochasticReplay) {
  const Scenario sc = paper::worldcup_study();
  const SlotController controller(sc);
  OptimizedPolicy optimized;
  const RunResult run = controller.run(optimized, 6, 8);  // busy hours
  SlotSimulator sim;
  Rng rng(31);
  double analytic_total = 0.0, simulated_total = 0.0;
  for (std::size_t t = 0; t < run.plans.size(); ++t) {
    const SlotInput input = sc.slot_input(8 + t);
    analytic_total += run.slots[t].net_profit();
    simulated_total +=
        sim.simulate(sc.topology, input, run.plans[t], rng)
            .net_profit_mean_delay();
  }
  EXPECT_LT(relative_difference(analytic_total, simulated_total), 0.15);
}

}  // namespace
}  // namespace palb
