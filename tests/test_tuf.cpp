#include "cloud/tuf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(StepTuf, ConstantTuf) {
  const StepTuf tuf = StepTuf::constant(5.0, 2.0);
  EXPECT_EQ(tuf.levels(), 1u);
  EXPECT_DOUBLE_EQ(tuf.utility(0.1), 5.0);
  EXPECT_DOUBLE_EQ(tuf.utility(2.0), 5.0);  // inclusive edge
  EXPECT_DOUBLE_EQ(tuf.utility(2.1), 0.0);
  EXPECT_DOUBLE_EQ(tuf.final_deadline(), 2.0);
  EXPECT_DOUBLE_EQ(tuf.max_utility(), 5.0);
}

TEST(StepTuf, TwoLevelBands) {
  const StepTuf tuf({20.0, 10.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(tuf.utility(0.5), 20.0);
  EXPECT_DOUBLE_EQ(tuf.utility(1.0), 20.0);
  EXPECT_DOUBLE_EQ(tuf.utility(1.0001), 10.0);
  EXPECT_DOUBLE_EQ(tuf.utility(3.0), 10.0);
  EXPECT_DOUBLE_EQ(tuf.utility(3.5), 0.0);
  EXPECT_EQ(tuf.level_for_delay(0.5), 0);
  EXPECT_EQ(tuf.level_for_delay(2.0), 1);
  EXPECT_EQ(tuf.level_for_delay(9.0), -1);
}

TEST(StepTuf, AccessorsRangeChecked) {
  const StepTuf tuf({20.0, 10.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(tuf.utility_at_level(1), 10.0);
  EXPECT_DOUBLE_EQ(tuf.sub_deadline(0), 1.0);
  EXPECT_THROW(tuf.utility_at_level(2), InvalidArgument);
  EXPECT_THROW(tuf.sub_deadline(2), InvalidArgument);
  EXPECT_THROW(tuf.utility(0.0), InvalidArgument);
  EXPECT_THROW(tuf.utility(-1.0), InvalidArgument);
}

TEST(StepTuf, ConstructorValidation) {
  EXPECT_THROW(StepTuf({}, {}), InvalidArgument);
  EXPECT_THROW(StepTuf({5.0}, {}), InvalidArgument);
  EXPECT_THROW(StepTuf({5.0, 6.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(StepTuf({6.0, 5.0}, {2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(StepTuf({6.0}, {-1.0}), InvalidArgument);
  EXPECT_THROW(StepTuf({0.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(StepTuf({6.0, 6.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(StepTuf, DecayApproximationEndpoints) {
  const StepTuf tuf = StepTuf::approximate_decay(10.0, 2.0, 4);
  EXPECT_EQ(tuf.levels(), 4u);
  EXPECT_DOUBLE_EQ(tuf.final_deadline(), 2.0);
  // First band's value is the midpoint of the first segment of the line.
  EXPECT_NEAR(tuf.utility(0.1), 10.0 * (1.0 - 0.25 / 2.0), 1e-9);
  // Past the deadline: worthless.
  EXPECT_DOUBLE_EQ(tuf.utility(2.5), 0.0);
}

class DecayApproxTest : public ::testing::TestWithParam<int> {};

TEST_P(DecayApproxTest, StaircaseTracksTheLine) {
  const int steps = GetParam();
  const double max_u = 8.0, deadline = 4.0;
  const StepTuf tuf = StepTuf::approximate_decay(max_u, deadline, steps);
  // Max absolute gap between staircase and line shrinks as 1/steps.
  double worst = 0.0;
  for (int i = 1; i < 200; ++i) {
    const double delay = deadline * static_cast<double>(i) / 200.0;
    const double line = max_u * (1.0 - delay / deadline);
    worst = std::max(worst, std::abs(tuf.utility(delay) - line));
  }
  EXPECT_LE(worst, max_u / static_cast<double>(steps) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(StepCounts, DecayApproxTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(StepTuf, DecayValidation) {
  EXPECT_THROW(StepTuf::approximate_decay(10.0, 2.0, 0), InvalidArgument);
  EXPECT_THROW(StepTuf::approximate_decay(0.0, 2.0, 3), InvalidArgument);
  EXPECT_THROW(StepTuf::approximate_decay(1.0, 0.0, 3), InvalidArgument);
}

TEST(StepTuf, UtilityIsNonIncreasingInDelay) {
  const StepTuf tuf({30.0, 18.0, 5.0}, {1.0, 2.0, 4.0});
  double last = tuf.utility(0.01);
  for (double delay = 0.05; delay < 5.0; delay += 0.05) {
    const double u = tuf.utility(delay);
    EXPECT_LE(u, last);
    last = u;
  }
}

}  // namespace
}  // namespace palb
