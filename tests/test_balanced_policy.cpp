#include "core/balanced_policy.hpp"

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "scenario_fixtures.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

TEST(BalancedPolicy, ProducesValidPlan) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_TRUE(plan.is_valid(topo, input)) << [&] {
    std::string all;
    for (const auto& v : plan.violations(topo, input)) all += v + "; ";
    return all;
  }();
}

TEST(BalancedPolicy, NameIsStable) {
  BalancedPolicy policy;
  EXPECT_EQ(policy.name(), "Balanced");
}

TEST(BalancedPolicy, FillsCheapestDataCenterFirst) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  SlotInput input = small_input(0.2);  // light load fits in one DC
  const DispatchPlan plan = policy.plan_slot(topo, input);
  // dc1 (price 0.04) takes everything; dc2 (0.09) stays dark.
  EXPECT_GT(plan.class_dc_rate(0, 0) + plan.class_dc_rate(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(plan.class_dc_rate(0, 1) + plan.class_dc_rate(1, 1),
                   0.0);
  EXPECT_EQ(plan.dc[1].servers_on, 0);
}

TEST(BalancedPolicy, SpillsToSecondDataCenterUnderLoad) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  SlotInput input = small_input(2.5);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_GT(plan.class_dc_rate(0, 1) + plan.class_dc_rate(1, 1), 0.0);
}

TEST(BalancedPolicy, PriceOrderFlipsWithPrices) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  SlotInput input = small_input(0.2);
  std::swap(input.price[0], input.price[1]);  // now dc2 is cheapest
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_DOUBLE_EQ(plan.class_dc_rate(0, 0) + plan.class_dc_rate(1, 0),
                   0.0);
  EXPECT_GT(plan.class_dc_rate(0, 1) + plan.class_dc_rate(1, 1), 0.0);
}

TEST(BalancedPolicy, UsesEvenSharesOnActiveServers) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  const DispatchPlan plan = policy.plan_slot(topo, small_input());
  for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
    if (plan.dc[l].servers_on == 0) continue;
    for (double share : plan.dc[l].share) {
      EXPECT_DOUBLE_EQ(share, 0.5);  // K = 2
    }
  }
}

TEST(BalancedPolicy, DropsExcessDemandRatherThanOverload) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input(20.0);  // far beyond fleet capacity
  const DispatchPlan plan = policy.plan_slot(topo, input);
  ASSERT_TRUE(plan.is_valid(topo, input));
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_LT(m.completed_fraction(), 1.0);
  // Everything dispatched is actually completed (stability respected).
  EXPECT_DOUBLE_EQ(m.completed_requests, m.dispatched_requests);
}

TEST(BalancedPolicy, ResultingPlanIsStableEverywhere) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  for (double scale : {0.3, 1.0, 3.0, 10.0}) {
    const SlotInput input = small_input(scale);
    const DispatchPlan plan = policy.plan_slot(topo, input);
    const SlotMetrics m = evaluate_plan(topo, input, plan);
    for (const auto& per_class : m.outcomes) {
      for (const auto& outcome : per_class) {
        if (outcome.rate > 0.0) {
          EXPECT_TRUE(outcome.stable);
        }
      }
    }
  }
}

TEST(BalancedPolicy, ZeroArrivalsYieldZeroPlan) {
  BalancedPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input(0.0);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_DOUBLE_EQ(plan.total_rate(), 0.0);
  for (const auto& dc : plan.dc) EXPECT_EQ(dc.servers_on, 0);
}

}  // namespace
}  // namespace palb
