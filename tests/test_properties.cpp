// Property tests over the paper's analytic primitives — not example
// checks but invariants swept over parameter grids and random instances:
//
//   1. M/M/1 (Eq. 1): the mean sojourn R = 1/(phi*C*mu - lambda) is
//      strictly increasing in the arrival rate and strictly decreasing
//      in the effective service rate phi*C*mu, and the closed-form
//      inversions (required_share, max_rate) round-trip through it.
//   2. Step TUFs (Eqs. 9/10/16): utility is monotone non-increasing in
//      delay, the level bands tile (0, D_n], and every constructor
//      (explicit, constant, approximate_decay) preserves the ordering
//      invariants.
//   3. Rebalancing: a PlanChecker-clean plan never loses profit when a
//      data center's load is spread over one more identical idle
//      server — delays can only drop, the per-request energy bill is
//      unchanged, and with the paper's free idle capacity the ledger
//      is monotone in servers_on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "check/plan_checker.hpp"
#include "cloud/accounting.hpp"
#include "cloud/model.hpp"
#include "cloud/plan.hpp"
#include "cloud/tuf.hpp"
#include "queueing/mm1.hpp"
#include "scenario_fixtures.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

// ---------------------------------------------------------------------
// 1. M/M/1 monotonicity and round-trips.

TEST(Mm1Property, DelayStrictlyIncreasesInArrivalRate) {
  for (double share : {0.3, 0.55, 1.0}) {
    for (double capacity : {0.8, 1.0, 1.4}) {
      for (double mu : {50.0, 120.0}) {
        const double service = mm1::effective_rate(share, capacity, mu);
        double previous = 0.0;
        bool first = true;
        // Sweep lambda from near-idle to just below the stability edge.
        for (double frac = 0.05; frac < 0.999; frac += 0.05) {
          const double lambda = frac * service;
          ASSERT_TRUE(mm1::is_stable(share, capacity, mu, lambda));
          const double delay =
              mm1::expected_delay(share, capacity, mu, lambda);
          ASSERT_TRUE(std::isfinite(delay));
          ASSERT_GT(delay, 0.0);
          if (!first) {
            EXPECT_GT(delay, previous)
                << "delay must strictly increase in lambda (share=" << share
                << " C=" << capacity << " mu=" << mu << ")";
          }
          previous = delay;
          first = false;
        }
      }
    }
  }
}

TEST(Mm1Property, DelayStrictlyDecreasesInEffectiveServiceRate) {
  // phi*C*mu enters Eq. 1 only as a product, so growing any one factor
  // while the others are fixed must strictly shrink the delay.
  const double lambda = 40.0;
  for (double share = 0.45; share <= 1.0; share += 0.05) {
    const double lo = mm1::expected_delay(share, 1.0, 100.0, lambda);
    const double hi = mm1::expected_delay(share + 0.04, 1.0, 100.0, lambda);
    EXPECT_LT(hi, lo) << "larger share must mean smaller delay";
  }
  for (double capacity = 0.5; capacity <= 2.0; capacity += 0.1) {
    const double lo = mm1::expected_delay(0.9, capacity, 100.0, lambda);
    const double hi =
        mm1::expected_delay(0.9, capacity + 0.08, 100.0, lambda);
    EXPECT_LT(hi, lo) << "larger capacity must mean smaller delay";
  }
  for (double mu = 50.0; mu <= 200.0; mu += 10.0) {
    const double lo = mm1::expected_delay(0.9, 1.0, mu, lambda);
    const double hi = mm1::expected_delay(0.9, 1.0, mu + 8.0, lambda);
    EXPECT_LT(hi, lo) << "faster service must mean smaller delay";
  }
}

TEST(Mm1Property, RequiredShareRoundTripsThroughExpectedDelay) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const double capacity = rng.uniform(0.5, 2.0);
    const double mu = rng.uniform(40.0, 250.0);
    const double lambda = rng.uniform(1.0, 300.0);
    const double deadline = rng.uniform(0.02, 0.5);
    const double share = mm1::required_share(lambda, capacity, mu, deadline);
    ASSERT_GT(share, 0.0);
    if (share > 1.0) {
      // required_share may exceed 1 — exactly when even a whole server
      // cannot meet the deadline. Verify that claim, then skip the
      // round-trip (expected_delay rejects shares outside [0,1]).
      EXPECT_GT(lambda + 1.0 / deadline,
                mm1::effective_rate(1.0, capacity, mu));
      continue;
    }
    const double delay = mm1::expected_delay(share, capacity, mu, lambda);
    EXPECT_NEAR(delay, deadline, 1e-9 * std::max(1.0, deadline));
    // Any smaller share must blow the deadline (or the queue entirely).
    const double shaved = share * (1.0 - 1e-3);
    if (mm1::is_stable(shaved, capacity, mu, lambda)) {
      EXPECT_GT(mm1::expected_delay(shaved, capacity, mu, lambda), deadline);
    }
  }
}

TEST(Mm1Property, MaxRateRoundTripsAndSaturatesDeadline) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const double share = rng.uniform(0.1, 1.0);
    const double capacity = rng.uniform(0.5, 2.0);
    const double mu = rng.uniform(40.0, 250.0);
    const double deadline = rng.uniform(0.02, 0.5);
    const double lambda = mm1::max_rate(share, capacity, mu, deadline);
    ASSERT_GE(lambda, 0.0);
    if (lambda == 0.0) continue;  // deadline unmeetable even when idle
    EXPECT_NEAR(mm1::expected_delay(share, capacity, mu, lambda), deadline,
                1e-9 * std::max(1.0, deadline));
    // One more request per second than the maximum breaks the deadline.
    const double bumped = lambda * (1.0 + 1e-3);
    if (mm1::is_stable(share, capacity, mu, bumped)) {
      EXPECT_GT(mm1::expected_delay(share, capacity, mu, bumped), deadline);
    }
  }
}

TEST(Mm1Property, LittlesLawAndUtilizationConsistent) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const double share = rng.uniform(0.2, 1.0);
    const double capacity = rng.uniform(0.5, 2.0);
    const double mu = rng.uniform(40.0, 250.0);
    const double lambda =
        rng.uniform(0.05, 0.95) * mm1::effective_rate(share, capacity, mu);
    const double delay = mm1::expected_delay(share, capacity, mu, lambda);
    EXPECT_NEAR(mm1::mean_in_system(share, capacity, mu, lambda),
                lambda * delay, 1e-9);
    const double rho = mm1::utilization(share, capacity, mu, lambda);
    EXPECT_GT(rho, 0.0);
    EXPECT_LT(rho, 1.0);
  }
}

// ---------------------------------------------------------------------
// 2. Step-TUF ordering and monotonicity.

std::vector<StepTuf> representative_tufs() {
  std::vector<StepTuf> tufs;
  tufs.push_back(StepTuf::constant(0.01, 0.1));
  tufs.push_back(StepTuf({0.02, 0.01}, {0.05, 0.15}));
  tufs.push_back(StepTuf({0.05, 0.03, 0.011, 0.002},
                         {0.02, 0.06, 0.1, 0.25}));
  tufs.push_back(StepTuf::approximate_decay(0.04, 0.2, 8));
  tufs.push_back(StepTuf::approximate_decay(1.0, 1.0, 32));
  return tufs;
}

TEST(TufProperty, UtilityMonotoneNonIncreasingInDelay) {
  for (const StepTuf& tuf : representative_tufs()) {
    const double horizon = tuf.final_deadline() * 1.5;
    double previous = tuf.max_utility() + 1.0;
    for (double delay = horizon / 2000.0; delay <= horizon;
         delay += horizon / 2000.0) {
      const double u = tuf.utility(delay);
      EXPECT_LE(u, previous) << "utility rose at delay " << delay;
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, tuf.max_utility());
      previous = u;
    }
    EXPECT_EQ(tuf.utility(tuf.final_deadline() * 1.0001), 0.0);
  }
}

TEST(TufProperty, LevelOrderingStrictAcrossDeadlines) {
  // The paper's definition: U_1 > ... > U_n paired with D_1 < ... < D_n.
  // Every constructor must preserve it — stepping down a deadline level
  // never increases utility, always strictly decreases it.
  for (const StepTuf& tuf : representative_tufs()) {
    ASSERT_GE(tuf.levels(), 1u);
    for (std::size_t q = 1; q < tuf.levels(); ++q) {
      EXPECT_LT(tuf.utility_at_level(q), tuf.utility_at_level(q - 1))
          << "utilities must strictly decrease across levels";
      EXPECT_GT(tuf.sub_deadline(q), tuf.sub_deadline(q - 1))
          << "sub-deadlines must strictly increase across levels";
    }
    EXPECT_DOUBLE_EQ(tuf.max_utility(), tuf.utility_at_level(0));
    EXPECT_DOUBLE_EQ(tuf.final_deadline(),
                     tuf.sub_deadline(tuf.levels() - 1));
  }
}

TEST(TufProperty, BandInteriorsMatchLevelValues) {
  for (const StepTuf& tuf : representative_tufs()) {
    double band_start = 0.0;
    for (std::size_t q = 0; q < tuf.levels(); ++q) {
      const double band_end = tuf.sub_deadline(q);
      const double mid = 0.5 * (band_start + band_end);
      EXPECT_EQ(tuf.level_for_delay(mid), static_cast<int>(q));
      EXPECT_DOUBLE_EQ(tuf.utility(mid), tuf.utility_at_level(q));
      // The band is right-closed: U(D_q) = U_q (paper Eq. 10).
      EXPECT_DOUBLE_EQ(tuf.utility(band_end), tuf.utility_at_level(q));
      band_start = band_end;
    }
    EXPECT_EQ(tuf.level_for_delay(tuf.final_deadline() * 2.0), -1);
  }
}

TEST(TufProperty, ApproximateDecayBracketsTheLine) {
  // The staircase approximation of a linear decay must stay a staircase
  // *under* the value at delay 0 and sandwich the line within one step.
  const double max_u = 0.06;
  const double deadline = 0.3;
  for (std::size_t steps : {2u, 5u, 16u, 64u}) {
    const StepTuf tuf = StepTuf::approximate_decay(max_u, deadline, steps);
    EXPECT_EQ(tuf.levels(), steps);
    const double step_height = max_u / static_cast<double>(steps);
    for (double delay = deadline / 500.0; delay < deadline;
         delay += deadline / 500.0) {
      const double line = max_u * (1.0 - delay / deadline);
      EXPECT_LE(std::abs(tuf.utility(delay) - line), step_height + 1e-12)
          << "staircase strayed more than one step from the decay line";
    }
  }
}

// ---------------------------------------------------------------------
// 3. Rebalancing a clean plan onto an extra idle server never loses
//    profit.

/// Routes every class of `input` to dc 0 of the fixture topology and
/// grants shares generous enough to meet every final deadline once at
/// least `min_servers` servers are on.
DispatchPlan all_to_dc0_plan(const Topology& topo, const SlotInput& input,
                             int servers_on) {
  DispatchPlan plan = DispatchPlan::zero(topo);
  for (std::size_t k = 0; k < topo.num_classes(); ++k) {
    for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
      plan.rate[k][s][0] = input.arrival_rate[k][s];
    }
  }
  plan.dc[0].servers_on = servers_on;
  plan.dc[0].share = {0.5, 0.45};
  return plan;
}

TEST(RebalanceProperty, ExtraIdleServerNeverLosesProfit) {
  const Topology topo = testing_fixtures::small_topology();
  const SlotInput input = testing_fixtures::small_input();
  const PlanChecker checker;

  // Three servers already meet every deadline: web sees 100/3 req/s per
  // server against an effective rate of 0.5*100, api 80/3 against
  // 0.45*90. Spreading over the fourth (identical, idle) server only
  // shortens queues.
  double previous_profit = 0.0;
  bool first = true;
  for (int servers_on = 3; servers_on <= topo.datacenters[0].num_servers;
       ++servers_on) {
    const DispatchPlan plan = all_to_dc0_plan(topo, input, servers_on);
    const PlanCheckReport report = checker.check(topo, input, plan);
    ASSERT_TRUE(report.ok()) << report.summary();
    const SlotMetrics metrics = evaluate_plan(topo, input, plan);
    if (!first) {
      EXPECT_GE(metrics.net_profit(), previous_profit)
          << "adding an idle twin server lost money at servers_on="
          << servers_on;
    }
    previous_profit = metrics.net_profit();
    first = false;
  }
}

TEST(RebalanceProperty, ExtraServerTightensEveryDelay) {
  // The mechanism behind the profit monotonicity: per-server load drops,
  // so every loaded (class, DC) delay strictly decreases and no TUF
  // level can get worse.
  const Topology topo = testing_fixtures::small_topology();
  const SlotInput input = testing_fixtures::small_input();
  const SlotMetrics tight =
      evaluate_plan(topo, input, all_to_dc0_plan(topo, input, 3));
  const SlotMetrics spread =
      evaluate_plan(topo, input, all_to_dc0_plan(topo, input, 4));
  for (std::size_t k = 0; k < topo.num_classes(); ++k) {
    const ClassDcOutcome& before = tight.outcomes[k][0];
    const ClassDcOutcome& after = spread.outcomes[k][0];
    ASSERT_GT(before.rate, 0.0);
    EXPECT_LT(after.delay, before.delay);
    EXPECT_GE(after.utility_per_request, before.utility_per_request);
    EXPECT_LE(after.tuf_level, before.tuf_level);
  }
  // Per-request energy and wire bills do not depend on the spread.
  EXPECT_DOUBLE_EQ(tight.energy_cost, spread.energy_cost);
  EXPECT_DOUBLE_EQ(tight.transfer_cost, spread.transfer_cost);
  EXPECT_GE(spread.revenue, tight.revenue);
}

TEST(RebalanceProperty, RandomCleanPlansStayMonotone) {
  // Randomized sweep: random demand scales and share splits; whenever
  // both the n-server and the (n+1)-server spread pass the checker, the
  // wider spread must earn at least as much.
  const Topology topo = testing_fixtures::small_topology();
  const PlanChecker checker;
  Rng rng(424242);
  int verified_pairs = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const SlotInput input =
        testing_fixtures::small_input(rng.uniform(0.4, 1.3));
    DispatchPlan plan = DispatchPlan::zero(topo);
    for (std::size_t k = 0; k < topo.num_classes(); ++k) {
      for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
        plan.rate[k][s][0] = input.arrival_rate[k][s];
      }
    }
    const double web_share = rng.uniform(0.4, 0.6);
    plan.dc[0].share = {web_share, rng.uniform(0.35, 1.0 - web_share)};
    const int n = 2 + static_cast<int>(rng.uniform_index(2));  // 2 or 3
    plan.dc[0].servers_on = n;
    const PlanCheckReport narrow = checker.check(topo, input, plan);
    if (!narrow.ok()) continue;  // undersized draw; property needs clean
    const double narrow_profit =
        evaluate_plan(topo, input, plan).net_profit();
    plan.dc[0].servers_on = n + 1;
    ASSERT_TRUE(checker.check(topo, input, plan).ok())
        << "spreading a clean plan over an idle twin broke a constraint";
    const double wide_profit =
        evaluate_plan(topo, input, plan).net_profit();
    EXPECT_GE(wide_profit, narrow_profit) << "trial " << trial;
    ++verified_pairs;
  }
  // The draw ranges are tuned so most trials produce a clean narrow
  // plan; guard against the sweep silently verifying nothing.
  EXPECT_GE(verified_pairs, 40);
}

TEST(RebalanceProperty, IdlePowerBreaksFreeSpreading) {
  // Contrast case documenting the property's boundary: under the
  // idle-power EXTENSION a powered-on twin is no longer free, so the
  // monotonicity claim is specific to the paper's model. Demand is
  // scaled down so both spreads land in the same TUF bands — revenue is
  // then equal and the extra server is pure static-power loss.
  Topology topo = testing_fixtures::small_topology();
  topo.datacenters[0].idle_power_kw = 5.0;
  const SlotInput input = testing_fixtures::small_input(0.6);
  const SlotMetrics narrow =
      evaluate_plan(topo, input, all_to_dc0_plan(topo, input, 3));
  const SlotMetrics wide =
      evaluate_plan(topo, input, all_to_dc0_plan(topo, input, 4));
  EXPECT_DOUBLE_EQ(wide.revenue, narrow.revenue);
  EXPECT_LT(wide.net_profit(), narrow.net_profit());
}

}  // namespace
}  // namespace palb
