#include "forecast/forecasting_controller.hpp"

#include <gtest/gtest.h>

#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

TEST(ForecastingController, RunsAndScoresAccuracy) {
  const Scenario sc = paper::worldcup_study();
  ForecastingController controller(sc, NaiveForecaster());
  OptimizedPolicy policy;
  const ForecastRunResult result = controller.run(policy, 12, 24);
  ASSERT_EQ(result.run.slots.size(), 12u);
  ASSERT_EQ(result.errors.size(), 3u);
  for (const auto& e : result.errors) {
    EXPECT_EQ(e.count(), 12u * 4u);  // slots * front-ends
    EXPECT_GT(e.rmse(), 0.0);        // last-value lags the diurnal swing
  }
}

TEST(ForecastingController, SeasonalIsExactOnWrappedTraces) {
  // Scenario traces wrap modulo 24 slots, so day 2 repeats day 1 exactly
  // and the seasonal forecaster becomes an oracle — worth pinning down
  // because it calibrates the ablation bench.
  const Scenario sc = paper::worldcup_study();
  ForecastingController controller(sc, SeasonalNaiveForecaster(24));
  OptimizedPolicy policy;
  const ForecastRunResult result = controller.run(policy, 12, 24);
  for (const auto& e : result.errors) EXPECT_DOUBLE_EQ(e.rmse(), 0.0);
}

TEST(ForecastingController, PlansRemainValidAgainstReality) {
  const Scenario sc = paper::worldcup_study();
  ForecastingController controller(sc, KalmanForecaster());
  OptimizedPolicy policy;
  const ForecastRunResult result = controller.run(policy, 8, 24);
  for (std::size_t t = 0; t < result.run.plans.size(); ++t) {
    const SlotInput real = sc.slot_input(24 + t);
    const auto violations =
        result.run.plans[t].violations(sc.topology, real);
    EXPECT_TRUE(violations.empty())
        << "slot " << t << ": " << violations.front();
  }
}

TEST(ForecastingController, OracleUpperBoundsForecastProfit) {
  // Perfect knowledge can only help: the oracle (SlotController) nets at
  // least as much as any causal forecast-driven run, modulo the tiny
  // slack the realized-routing scaling can add; hold to 1%.
  const Scenario sc = paper::worldcup_study();
  OptimizedPolicy policy;
  const RunResult oracle = SlotController(sc).run(policy, 12, 24);
  ForecastingController seasonal(sc, SeasonalNaiveForecaster(24));
  OptimizedPolicy policy2;
  const ForecastRunResult causal = seasonal.run(policy2, 12, 24);
  EXPECT_LE(causal.run.total.net_profit(),
            oracle.total.net_profit() * 1.01);
}

TEST(ForecastingController, BetterForecastsEarnMore) {
  // Seasonal-naive beats plain naive on diurnal traffic both in RMSE and
  // in realized profit.
  const Scenario sc = paper::worldcup_study();
  OptimizedPolicy p1, p2;
  ForecastingController seasonal(sc, SeasonalNaiveForecaster(24));
  ForecastingController naive(sc, NaiveForecaster());
  const ForecastRunResult rs = seasonal.run(p1, 16, 24);
  const ForecastRunResult rn = naive.run(p2, 16, 24);
  EXPECT_LT(rs.errors[0].rmse(), rn.errors[0].rmse());
  EXPECT_GE(rs.run.total.net_profit(), rn.run.total.net_profit());
}

TEST(ForecastingController, ConservativeModeAdmitsOnlyPlannedVolume) {
  const Scenario sc = paper::worldcup_study();
  ForecastingController::Options opt;
  opt.route_actual = false;
  ForecastingController controller(sc, NaiveForecaster(), opt);
  OptimizedPolicy policy;
  const ForecastRunResult result = controller.run(policy, 6, 24);
  // Everything it dispatched must have been planned within the forecast,
  // so every loaded queue stays stable.
  for (const auto& slot : result.run.slots) {
    for (const auto& per_class : slot.outcomes) {
      for (const auto& o : per_class) {
        if (o.rate > 0.0) {
          EXPECT_TRUE(o.stable);
        }
      }
    }
  }
}

TEST(ForecastingController, RejectsZeroSlots) {
  const Scenario sc = paper::worldcup_study();
  ForecastingController controller(sc, NaiveForecaster());
  OptimizedPolicy policy;
  EXPECT_THROW(controller.run(policy, 0), InvalidArgument);
}

}  // namespace
}  // namespace palb
