#include "core/hetero.hpp"

#include <gtest/gtest.h>

#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

TEST(Hetero, SplitPreservesShapeInvariants) {
  const Scenario sc = paper::google_study();
  const Scenario split = hetero::split_datacenter(
      sc, 0, {{4, 1.0, 1.0, -1.0}, {2, 1.5, 0.8, -1.0}});
  EXPECT_EQ(split.topology.num_datacenters(), 3u);
  EXPECT_NO_THROW(split.validate());
  // Location-bound data duplicated.
  EXPECT_DOUBLE_EQ(split.topology.distance_miles[0][0],
                   split.topology.distance_miles[0][1]);
  EXPECT_EQ(split.prices[0].values(), split.prices[1].values());
  // Pool naming and parameters.
  EXPECT_EQ(split.topology.datacenters[0].name, "datacenter1/g1");
  EXPECT_EQ(split.topology.datacenters[1].name, "datacenter1/g2");
  EXPECT_DOUBLE_EQ(split.topology.datacenters[1].server_capacity, 1.5);
  EXPECT_NEAR(split.topology.datacenters[1].energy_per_request_kwh[0],
              0.8 * sc.topology.datacenters[0].energy_per_request_kwh[0],
              1e-12);
  // The untouched DC keeps its position after the splice.
  EXPECT_EQ(split.topology.datacenters[2].name, "datacenter2");
}

TEST(Hetero, IdenticalSplitIsProfitNeutral) {
  // Splitting 6 identical servers into 4 + 2 identical pools must not
  // change what the optimizer can earn (the even-split within one DC is
  // equivalent to an even split across the two pools).
  const Scenario sc = paper::google_study();
  const Scenario split =
      hetero::split_datacenter(sc, 0, {{4, 1.0, 1.0, -1.0},
                                       {2, 1.0, 1.0, -1.0}});
  OptimizedPolicy a, b;
  const double whole =
      SlotController(sc).run(a, 3).total.net_profit();
  const double pooled =
      SlotController(split).run(b, 3).total.net_profit();
  EXPECT_NEAR(pooled, whole, 0.01 * std::abs(whole));
}

TEST(Hetero, FasterGenerationRaisesProfitCeiling) {
  // Upgrading 2 of 6 servers to a 1.5x generation cannot hurt and, on a
  // loaded system, helps.
  const Scenario sc = paper::google_study(7, 1.0, 1.3);  // extra demand
  const Scenario upgraded = hetero::split_datacenter(
      sc, 0, {{4, 1.0, 1.0, -1.0}, {2, 1.5, 1.0, -1.0}});
  OptimizedPolicy a, b;
  const double base = SlotController(sc).run(a, 3).total.net_profit();
  const double faster =
      SlotController(upgraded).run(b, 3).total.net_profit();
  EXPECT_GE(faster, base - 1e-6);
}

TEST(Hetero, PoliciesProduceValidPlansOnSplitFleets) {
  const Scenario sc = paper::google_study();
  const Scenario split = hetero::split_datacenter(
      sc, 1, {{3, 0.8, 1.2, -1.0}, {3, 1.3, 0.9, 0.5}});
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  for (Policy* policy :
       std::initializer_list<Policy*>{&optimized, &balanced}) {
    const SlotInput input = split.slot_input(2);
    const DispatchPlan plan = policy->plan_slot(split.topology, input);
    EXPECT_TRUE(plan.is_valid(split.topology, input)) << policy->name();
  }
}

TEST(Hetero, GroupIdleOverrideApplies) {
  const Scenario sc = paper::google_study();
  const Scenario split = hetero::split_datacenter(
      sc, 0, {{4, 1.0, 1.0, 0.7}, {2, 1.0, 1.0, -1.0}});
  EXPECT_DOUBLE_EQ(split.topology.datacenters[0].idle_power_kw, 0.7);
  EXPECT_DOUBLE_EQ(split.topology.datacenters[1].idle_power_kw,
                   sc.topology.datacenters[0].idle_power_kw);
}

TEST(Hetero, Validation) {
  const Scenario sc = paper::google_study();
  EXPECT_THROW(hetero::split_datacenter(sc, 5, {{2, 1.0, 1.0, -1.0}}),
               InvalidArgument);
  EXPECT_THROW(hetero::split_datacenter(sc, 0, {}), InvalidArgument);
  EXPECT_THROW(hetero::split_datacenter(sc, 0, {{2, 0.0, 1.0, -1.0}}),
               InvalidArgument);
  EXPECT_THROW(hetero::split_datacenter(sc, 0, {{-1, 1.0, 1.0, -1.0}}),
               InvalidArgument);
}

}  // namespace
}  // namespace palb
