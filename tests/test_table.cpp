#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumericRowHelper) {
  TextTable table({"label", "a", "b"});
  table.add_row("row", {1.5, 2.25}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(TextTable, WidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only"}), InvalidArgument);
  EXPECT_THROW(table.add_row("x", {1.0, 2.0, 3.0}), InvalidArgument);
}

TEST(RenderSeries, ContainsValuesAndBars) {
  const std::string out =
      render_series("demo", {0.0, 1.0, 2.0}, {1.0, 3.0, 2.0}, "hour", "$");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("3.000"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(RenderSeries, SizeMismatchThrows) {
  EXPECT_THROW(render_series("x", {0.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(RenderMultiSeries, AlignsSeries) {
  const std::string out = render_multi_series(
      "overlay", {0.0, 1.0}, {"opt", "bal"}, {{5.0, 6.0}, {1.0, 2.0}});
  EXPECT_NE(out.find("opt"), std::string::npos);
  EXPECT_NE(out.find("bal"), std::string::npos);
  EXPECT_NE(out.find("6.000"), std::string::npos);
}

TEST(RenderMultiSeries, Validation) {
  EXPECT_THROW(
      render_multi_series("x", {0.0}, {"a"}, {{1.0}, {2.0}}),
      InvalidArgument);
  EXPECT_THROW(render_multi_series("x", {0.0}, {"a"}, {{1.0, 2.0}}),
               InvalidArgument);
}

}  // namespace
}  // namespace palb
