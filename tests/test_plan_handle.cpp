#include "core/plan_handle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/plan.hpp"
#include "core/balanced_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"
#include "scenario_fixtures.hpp"
#include "util/mutex.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

/// A plan whose every routing entry equals `stamp` — so a reader can
/// verify a snapshot is internally coherent (no torn half-old plan).
DispatchPlan stamped_plan(const Topology& topo, double stamp) {
  DispatchPlan plan = DispatchPlan::zero(topo);
  for (auto& per_class : plan.rate) {
    for (auto& per_frontend : per_class) {
      for (double& rate : per_frontend) rate = stamp;
    }
  }
  return plan;
}

TEST(PlanHandle, EmptyBeforeFirstPublish) {
  PlanHandle handle;
  const PlanHandle::Snapshot snap = handle.acquire();
  EXPECT_FALSE(snap);
  EXPECT_EQ(snap.plan, nullptr);
  EXPECT_EQ(snap.version, 0u);
  EXPECT_EQ(handle.version(), 0u);
}

TEST(PlanHandle, PublishBumpsVersionAndSwapsThePlan) {
  const Topology topo = small_topology();
  PlanHandle handle;
  EXPECT_EQ(handle.publish(stamped_plan(topo, 1.0)), 1u);
  EXPECT_EQ(handle.publish(stamped_plan(topo, 2.0)), 2u);
  EXPECT_EQ(handle.version(), 2u);
  const PlanHandle::Snapshot snap = handle.acquire();
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap.version, 2u);
  EXPECT_DOUBLE_EQ(snap.plan->rate[0][0][0], 2.0);
}

TEST(PlanHandle, SnapshotSurvivesLaterPublishes) {
  const Topology topo = small_topology();
  PlanHandle handle;
  handle.publish(stamped_plan(topo, 1.0));
  const PlanHandle::Snapshot old_snap = handle.acquire();
  handle.publish(stamped_plan(topo, 2.0));
  handle.publish(stamped_plan(topo, 3.0));
  // RCU grace-period semantics: the old snapshot is immutable and alive
  // until this reader lets go, regardless of how many swaps landed.
  ASSERT_TRUE(old_snap);
  EXPECT_EQ(old_snap.version, 1u);
  EXPECT_DOUBLE_EQ(old_snap.plan->rate[1][1][1], 1.0);
  EXPECT_EQ(handle.acquire().version, 3u);
}

TEST(PlanHandle, AcquireIfNewerReturnsEmptyWhenCurrent) {
  const Topology topo = small_topology();
  PlanHandle handle;
  // No plan yet: nothing is newer than anything.
  EXPECT_FALSE(handle.acquire_if_newer(0).has_value());
  handle.publish(stamped_plan(topo, 1.0));
  // since == current: the caller's copy is still current.
  EXPECT_FALSE(handle.acquire_if_newer(1).has_value());
  EXPECT_FALSE(handle.acquire_if_newer(7).has_value());
}

TEST(PlanHandle, AcquireIfNewerReturnsTheNewerSnapshot) {
  const Topology topo = small_topology();
  PlanHandle handle;
  handle.publish(stamped_plan(topo, 1.0));
  handle.publish(stamped_plan(topo, 2.0));
  const auto snap = handle.acquire_if_newer(1);
  ASSERT_TRUE(snap.has_value());
  ASSERT_TRUE(*snap);
  EXPECT_EQ(snap->version, 2u);
  EXPECT_DOUBLE_EQ(snap->plan->rate[0][0][0], 2.0);
  // The returned pair is coherent: one lock round-trip, so the plan and
  // the version come from the same node (never a torn version() +
  // acquire() interleaving).
  EXPECT_DOUBLE_EQ(snap->plan->rate[1][1][1],
                   static_cast<double>(snap->version));
}

TEST(PlanHandle, TwoStepLockedPublishSerializesReadModifyPublish) {
  const Topology topo = small_topology();
  PlanHandle handle;
  handle.publish(stamped_plan(topo, 5.0));
  {
    MutexLock lock(handle.publish_mutex());
    // Decide against the incumbent, then swap atomically w.r.t. other
    // writers — the canonical two-step surface.
    const PlanHandle::Snapshot incumbent = handle.acquire();
    ASSERT_TRUE(incumbent);
    DispatchPlan next = stamped_plan(topo, incumbent.plan->rate[0][0][0] + 1.0);
    EXPECT_EQ(handle.publish_locked(std::move(next)), 2u);
  }
  EXPECT_DOUBLE_EQ(handle.acquire().plan->rate[0][0][0], 6.0);
}

TEST(PlanHandleDeterminism, ConcurrentReadersSeeOnlyCoherentSnapshots) {
  // The dispatcher-seed contract: while a writer hot-swaps stamped
  // plans, every reader snapshot must be (a) internally uniform — all
  // entries carry one stamp, never a torn mix — and (b) version-coherent
  // — the stamp must equal the snapshot's version. Runs under the tsan
  // preset (test name matches the ctest filter).
  const Topology topo = small_topology();
  PlanHandle handle;
  constexpr std::uint64_t kPublishes = 400;
  constexpr std::size_t kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> incoherent{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const PlanHandle::Snapshot snap = handle.acquire();
        if (!snap) continue;
        if (snap.version < last_version) incoherent.fetch_add(1);
        last_version = snap.version;
        const double stamp = static_cast<double>(snap.version);
        for (const auto& per_class : snap.plan->rate) {
          for (const auto& per_frontend : per_class) {
            for (double rate : per_frontend) {
              if (rate != stamp) incoherent.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::uint64_t v = 1; v <= kPublishes; ++v) {
    handle.publish(stamped_plan(topo, static_cast<double>(v)));
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(incoherent.load(), 0u);
  EXPECT_EQ(handle.version(), kPublishes);
}

TEST(PlanHandleDeterminism, ResilientControllerPublishesEveryAppliedPlan) {
  // Dog-food: the ladder publishes each applied plan as it is accepted,
  // so a concurrent reader only ever acquires audited plans and the
  // final version equals the slot count.
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const FaultSchedule schedule;  // clean run: rung 1 everywhere
  const ResilientController controller(sc, schedule);
  PlanHandle live;
  ResilientController::Options options;
  options.live = &live;

  std::atomic<bool> done{false};
  std::atomic<std::size_t> empty_after_first{0};
  std::thread reader([&] {
    bool seen_any = false;
    while (!done.load(std::memory_order_acquire)) {
      const PlanHandle::Snapshot snap = live.acquire();
      if (snap) {
        seen_any = true;
      } else if (seen_any) {
        empty_after_first.fetch_add(1);  // plans must never un-publish
      }
    }
  });

  BalancedPolicy policy;
  constexpr std::size_t kSlots = 6;
  const RunResult result = controller.run(policy, kSlots, 0, options);
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(live.version(), kSlots);
  EXPECT_EQ(empty_after_first.load(), 0u);
  const PlanHandle::Snapshot last = live.acquire();
  ASSERT_TRUE(last);
  // The published plan is byte-identical to the run's applied plan.
  EXPECT_EQ(last.plan->rate, result.plans.back().rate);
}

}  // namespace
}  // namespace palb
