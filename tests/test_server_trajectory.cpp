#include "core/server_trajectory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

/// Brute-force DP oracle over small instances: exact minimum of
/// idle + switching cost with m_t in [needed_t, max].
double dp_oracle(const std::vector<int>& needed,
                 const std::vector<double>& idle, double sc, int max_servers,
                 int initial_on) {
  const std::size_t T = needed.size();
  const std::size_t states = static_cast<std::size_t>(max_servers) + 1;
  std::vector<double> cost(states, 1e300);
  for (int s = needed[0]; s <= max_servers; ++s) {
    cost[static_cast<std::size_t>(s)] =
        idle[0] * s + sc * std::abs(s - initial_on);
  }
  for (std::size_t t = 1; t < T; ++t) {
    std::vector<double> next(states, 1e300);
    for (int s = needed[t]; s <= max_servers; ++s) {
      for (int p = 0; p <= max_servers; ++p) {
        if (cost[static_cast<std::size_t>(p)] >= 1e300) continue;
        next[static_cast<std::size_t>(s)] =
            std::min(next[static_cast<std::size_t>(s)],
                     cost[static_cast<std::size_t>(p)] + idle[t] * s +
                         sc * std::abs(s - p));
      }
    }
    cost = std::move(next);
  }
  return *std::min_element(cost.begin(), cost.end());
}

TEST(ServerTrajectory, FreeSwitchingTracksNeed) {
  const TrajectoryResult r = optimal_server_trajectory(
      {3, 1, 4, 0, 2}, {1.0, 1.0, 1.0, 1.0, 1.0}, 0.0, 6, 0);
  EXPECT_EQ(r.servers, (std::vector<int>{3, 1, 4, 0, 2}));
  EXPECT_DOUBLE_EQ(r.switch_cost, 0.0);
  EXPECT_DOUBLE_EQ(r.idle_cost, 10.0);
}

TEST(ServerTrajectory, ExpensiveSwitchingBridgesTheValley) {
  // needed dips 4 -> 0 -> 4; with idle $1/slot and switch $10, toggling
  // 4 servers off and on costs $80 vs holding them for $4.
  const TrajectoryResult r = optimal_server_trajectory(
      {4, 0, 4}, {1.0, 1.0, 1.0}, 10.0, 6, 4);
  EXPECT_EQ(r.servers, (std::vector<int>{4, 4, 4}));
  EXPECT_DOUBLE_EQ(r.switch_cost, 0.0);  // started at 4, never moved
}

TEST(ServerTrajectory, CheapSwitchingDrainsTheValley) {
  const TrajectoryResult r = optimal_server_trajectory(
      {4, 0, 4}, {10.0, 10.0, 10.0}, 0.1, 6, 4);
  EXPECT_EQ(r.servers, (std::vector<int>{4, 0, 4}));
}

TEST(ServerTrajectory, InitialRampIsCharged) {
  const TrajectoryResult r =
      optimal_server_trajectory({5}, {1.0}, 2.0, 8, 0);
  EXPECT_EQ(r.servers, (std::vector<int>{5}));
  EXPECT_DOUBLE_EQ(r.switch_cost, 10.0);
}

TEST(ServerTrajectory, Validation) {
  EXPECT_THROW(optimal_server_trajectory({}, {}, 1.0, 4), InvalidArgument);
  EXPECT_THROW(optimal_server_trajectory({1}, {}, 1.0, 4),
               InvalidArgument);
  EXPECT_THROW(optimal_server_trajectory({5}, {1.0}, 1.0, 4),
               InvalidArgument);  // needed > max
  EXPECT_THROW(optimal_server_trajectory({1}, {1.0}, -1.0, 4),
               InvalidArgument);
  EXPECT_THROW(optimal_server_trajectory({1}, {1.0}, 1.0, 4, 9),
               InvalidArgument);  // initial_on > max
}

class TrajectoryOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TrajectoryOracleTest, LpMatchesDpOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7349 + 29);
  const int max_servers = 4;
  const std::size_t T = 3 + rng.uniform_index(5);
  std::vector<int> needed(T);
  std::vector<double> idle(T);
  for (std::size_t t = 0; t < T; ++t) {
    needed[t] = static_cast<int>(rng.uniform_index(max_servers + 1));
    idle[t] = rng.uniform(0.1, 5.0);
  }
  const double sc = rng.uniform(0.0, 8.0);
  const int initial = static_cast<int>(rng.uniform_index(max_servers + 1));

  const TrajectoryResult lp =
      optimal_server_trajectory(needed, idle, sc, max_servers, initial);
  const double oracle = dp_oracle(needed, idle, sc, max_servers, initial);
  EXPECT_NEAR(lp.total(), oracle, 1e-6);
  // Feasibility.
  for (std::size_t t = 0; t < T; ++t) {
    EXPECT_GE(lp.servers[t], needed[t]);
    EXPECT_LE(lp.servers[t], max_servers);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryOracleTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace palb
