// Admission-control unit tests (docs/OVERLOAD.md): admit-fraction
// sizing from planned vs offered rates, priority-ordered spare
// redistribution (interactive refills before batch), the rung-5
// shed-all plan shedding 100% deterministically, hash-space purity (no
// counters, byte-identical decisions across any call interleaving), and
// the controller's plan-version / offered-mix refresh discipline.

#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/plan.hpp"
#include "core/plan_handle.hpp"
#include "scenario_fixtures.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using serve::AdmissionController;
using serve::AdmissionTable;
using testing_fixtures::small_input;
using testing_fixtures::small_topology;

DispatchPlan plan_with_rates(
    const Topology& topo,
    const std::vector<std::vector<std::vector<double>>>& rates) {
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate = rates;
  return plan;
}

TEST(AdmissionTable, PlanCoveringOfferedAdmitsEverything) {
  const Topology topo = small_topology();
  const SlotInput offered = small_input();  // 60/40 and 30/50 req/s
  // The plan dispatches exactly the offered rate of every stream.
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 30.0}, {20.0, 20.0}}, {{15.0, 15.0}, {25.0, 25.0}}});
  const AdmissionTable table =
      AdmissionTable::compile(topo, plan, 1, offered, 0.05);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(table.admit_fraction(k, s), 1.0);
      for (std::uint64_t id = 0; id < 200; ++id) {
        EXPECT_TRUE(table.admit(k, s, id));
      }
    }
  }
  EXPECT_EQ(table.plan_version(), 1u);
}

TEST(AdmissionTable, ShedAllPlanShedsEverythingDeterministically) {
  // The rung-5 acceptance case: a shed-all plan provisions nothing, so
  // every admit fraction is exactly 0 and 100% of requests shed — same
  // verdict for every id, every time.
  const Topology topo = small_topology();
  const AdmissionTable table = AdmissionTable::compile(
      topo, DispatchPlan::zero(topo), 5, small_input(), 0.05);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(table.admit_fraction(k, s), 0.0);
      for (std::uint64_t id = 0; id < 500; ++id) {
        EXPECT_FALSE(table.admit(k, s, id));
      }
    }
  }
}

TEST(AdmissionTable, SurgeShedsTheUnprovisionedFraction) {
  const Topology topo = small_topology();
  // Plan sized for the calm mix, demand surged 4x: with zero burst
  // margin each stream admits ~1/4 of its hash space.
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 30.0}, {20.0, 20.0}}, {{15.0, 15.0}, {25.0, 25.0}}});
  const SlotInput surged = small_input(4.0);
  const AdmissionTable table =
      AdmissionTable::compile(topo, plan, 2, surged, 0.0);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_NEAR(table.admit_fraction(k, s), 0.25, 1e-12);
    }
  }
  // And the empirical shed fraction tracks it.
  std::size_t admitted = 0;
  const std::size_t kIds = 20000;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    if (table.admit(0, 0, id)) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted) / kIds, 0.25, 0.02);
}

TEST(AdmissionTable, SpareCapacityRefillsInteractiveBeforeBatch) {
  const Topology topo = small_topology();
  // Front-end 0: class 0 (interactive) offered 90 but planned 60; class
  // 1 offered 10 but planned 40 — 30 spare. Priority order grants all
  // 30 spare to class 0 first, fully covering its deficit.
  SlotInput offered = small_input();
  offered.arrival_rate = {{90.0, 40.0}, {10.0, 50.0}};
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 30.0}, {20.0, 20.0}}, {{20.0, 20.0}, {25.0, 25.0}}});
  const AdmissionTable table =
      AdmissionTable::compile(topo, plan, 1, offered, 0.0);
  EXPECT_EQ(table.admit_fraction(0, 0), 1.0);  // 60 + 30 spare >= 90
  EXPECT_EQ(table.admit_fraction(1, 0), 1.0);  // under its own plan
  // Reverse the roles: batch (class 1) in deficit, interactive spare.
  // Batch gets the leftover spare only.
  offered.arrival_rate = {{10.0, 40.0}, {100.0, 50.0}};
  const AdmissionTable reversed =
      AdmissionTable::compile(topo, plan, 2, offered, 0.0);
  EXPECT_EQ(reversed.admit_fraction(0, 0), 1.0);
  // Class 1 planned 40, plus the 50 spare from class 0 = 90 of 100.
  EXPECT_NEAR(reversed.admit_fraction(1, 0), 0.9, 1e-12);
}

TEST(AdmissionTable, BurstMarginWidensTheGate) {
  const Topology topo = small_topology();
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 30.0}, {20.0, 20.0}}, {{15.0, 15.0}, {25.0, 25.0}}});
  const SlotInput doubled = small_input(2.0);
  const AdmissionTable tight =
      AdmissionTable::compile(topo, plan, 1, doubled, 0.0);
  const AdmissionTable slack =
      AdmissionTable::compile(topo, plan, 1, doubled, 0.10);
  EXPECT_NEAR(tight.admit_fraction(0, 0), 0.50, 1e-12);
  EXPECT_NEAR(slack.admit_fraction(0, 0), 0.55, 1e-12);
}

TEST(AdmissionTable, AdmitIsAPureFunctionOfStreamAndId) {
  const Topology topo = small_topology();
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 30.0}, {20.0, 20.0}}, {{15.0, 15.0}, {25.0, 25.0}}});
  const AdmissionTable table =
      AdmissionTable::compile(topo, plan, 1, small_input(3.0), 0.05);
  // Same verdicts in any evaluation order, and across an identically
  // compiled table — the byte-identical-across-thread-counts root.
  const AdmissionTable twin =
      AdmissionTable::compile(topo, plan, 1, small_input(3.0), 0.05);
  for (std::uint64_t id = 2000; id-- > 0;) {
    EXPECT_EQ(table.admit(0, 0, id), table.admit(0, 0, id));
    EXPECT_EQ(table.admit(0, 0, id), twin.admit(0, 0, id));
    EXPECT_EQ(table.admit(1, 1, id), twin.admit(1, 1, id));
  }
}

TEST(AdmissionTable, ZeroOfferedStreamStaysOpenWhenProvisioned) {
  const Topology topo = small_topology();
  const DispatchPlan plan = plan_with_rates(
      topo, {{{30.0, 30.0}, {0.0, 0.0}}, {{0.0, 0.0}, {25.0, 25.0}}});
  SlotInput offered = small_input();
  offered.arrival_rate = {{0.0, 0.0}, {0.0, 50.0}};
  const AdmissionTable table =
      AdmissionTable::compile(topo, plan, 1, offered, 0.0);
  // Provisioned but quiet: a trickle beyond the forecast routes.
  EXPECT_EQ(table.admit_fraction(0, 0), 1.0);
  // Unprovisioned and quiet: stays closed.
  EXPECT_EQ(table.admit_fraction(0, 1), 0.0);
}

TEST(AdmissionTable, ShapeMismatchThrows) {
  const Topology topo = small_topology();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate.pop_back();
  EXPECT_THROW(AdmissionTable::compile(topo, plan, 1, small_input(), 0.05),
               InvalidArgument);
  EXPECT_THROW(AdmissionTable::compile(topo, DispatchPlan::zero(topo), 1,
                                       small_input(), -0.5),
               InvalidArgument);
}

TEST(AdmissionController, AdmitsEverythingBeforeFirstPlan) {
  const Topology topo = small_topology();
  PlanHandle live;
  const AdmissionController admission(topo, live, small_input());
  EXPECT_EQ(admission.table(), nullptr);
  EXPECT_EQ(admission.table_version(), 0u);
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_TRUE(admission.admit(0, 0, id));
  }
}

TEST(AdmissionController, CompilesOnFirstAdmitAfterPublish) {
  const Topology topo = small_topology();
  PlanHandle live;
  const AdmissionController admission(topo, live, small_input());
  live.publish(DispatchPlan::zero(topo));  // rung-5 shed-all
  EXPECT_FALSE(admission.admit(0, 0, 7));
  EXPECT_EQ(admission.table_version(), 1u);
  EXPECT_EQ(admission.stats().rebuilds, 1u);
}

TEST(AdmissionController, SetOfferedRecompilesAtUnchangedPlanVersion) {
  const Topology topo = small_topology();
  PlanHandle live;
  AdmissionController admission(topo, live, small_input());
  live.publish(plan_with_rates(
      topo, {{{30.0, 30.0}, {20.0, 20.0}}, {{15.0, 15.0}, {25.0, 25.0}}}));
  ASSERT_TRUE(admission.refresh());
  EXPECT_EQ(admission.table()->admit_fraction(0, 0), 1.0);
  // A 4x surge with the same plan version must take effect immediately
  // — the chaos harness re-points the offered mix every slot.
  admission.set_offered(small_input(4.0));
  ASSERT_NE(admission.table(), nullptr);
  EXPECT_NEAR(admission.table()->admit_fraction(0, 0), 0.25 * 1.05, 1e-9);
  EXPECT_EQ(admission.stats().rebuilds, 2u);
}

TEST(AdmissionController, RefreshIsIdempotentAtCurrentVersion) {
  const Topology topo = small_topology();
  PlanHandle live;
  const AdmissionController admission(topo, live, small_input());
  live.publish(DispatchPlan::zero(topo));
  EXPECT_TRUE(admission.refresh());
  EXPECT_FALSE(admission.refresh());
  EXPECT_FALSE(admission.try_refresh());
  EXPECT_EQ(admission.stats().rebuilds, 1u);
}

}  // namespace
}  // namespace palb
