// Kitchen-sink composition: every extension switched on at once —
// SLA drop penalties, per-server idle power, PUE > 1, network
// propagation latency, percentile SLOs, switching costs with the
// right-sizing hold — must still produce valid, stable, profitable
// plans, and the profit-aware optimizer must still dominate the
// baselines. Extensions are only worth shipping if they compose.

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/controller.hpp"
#include "core/right_sizing_policy.hpp"
#include "core/scenario_json.hpp"
#include "core/simple_policies.hpp"
#include "market/price_library.hpp"
#include "sim/slot_simulator.hpp"
#include "workload/generators.hpp"

namespace palb {
namespace {

Scenario kitchen_sink_scenario() {
  Scenario sc;
  sc.topology.classes = {
      {"web", StepTuf({0.012, 0.006}, {0.06, 0.18}), 1e-6, 0.002},
      {"api", StepTuf({0.02, 0.012, 0.006}, {0.04, 0.1, 0.25}), 1.5e-6,
       0.004},
  };
  sc.topology.frontends = {{"east"}, {"west"}};
  sc.topology.datacenters = {
      {"near", 5, 1.0, {120.0, 100.0}, {0.002, 0.003}, 1.15, 60.0},
      {"far", 7, 1.2, {140.0, 110.0}, {0.0015, 0.002}, 1.4, 40.0},
  };
  sc.topology.distance_miles = {{250.0, 1600.0}, {900.0, 400.0}};
  sc.topology.network_latency_s_per_mile = 1.6e-5;

  Rng rng(777);
  workload::WorldCupParams wp;
  wp.base_rate = 40.0;
  wp.daily_peak = 220.0;
  wp.burst_sigma = 0.1;
  const RateTrace base = workload::worldcup_like("ks", wp, rng);
  sc.arrivals = {{base, base.shifted(6)},
                 {base.scaled(0.6).shifted(2), base.scaled(0.8)}};
  sc.prices = {prices::houston_tx(), prices::mountain_view_ca()};
  sc.validate();
  return sc;
}

TEST(ExtensionsCompose, AllKnobsAtOnceStaysSound) {
  const Scenario sc = kitchen_sink_scenario();

  RightSizingPolicy::Options rs;
  rs.switch_cost = 5.0;
  rs.inner.delay_metric = OptimizedPolicy::DelayMetric::kTailPercentile;
  rs.inner.tail_percentile = 0.95;
  RightSizingPolicy optimized(rs);
  BalancedPolicy balanced;
  NearestPolicy nearest;

  double opt_total = 0.0, bal_total = 0.0, near_total = 0.0;
  for (std::size_t hour = 6; hour < 14; ++hour) {
    const SlotInput input = sc.slot_input(hour);
    const DispatchPlan plan = optimized.plan_slot(sc.topology, input);
    ASSERT_TRUE(plan.is_valid(sc.topology, input)) << "hour " << hour;
    const SlotMetrics m = evaluate_plan(sc.topology, input, plan);
    for (const auto& per_class : m.outcomes) {
      for (const auto& o : per_class) {
        if (o.rate > 1e-9) {
          EXPECT_TRUE(o.stable);
        }
      }
    }
    opt_total += m.net_profit();
    bal_total += evaluate_plan(sc.topology, input,
                               balanced.plan_slot(sc.topology, input))
                     .net_profit();
    near_total += evaluate_plan(sc.topology, input,
                                nearest.plan_slot(sc.topology, input))
                      .net_profit();
  }
  opt_total -= optimized.total_switch_cost();
  EXPECT_GT(opt_total, 0.0);
  EXPECT_GT(opt_total, bal_total);
  EXPECT_GT(opt_total, near_total);
}

TEST(ExtensionsCompose, SurvivesJsonRoundTripAndSimulation) {
  const Scenario sc = kitchen_sink_scenario();
  const Scenario back =
      scenario_json::from_json(scenario_json::to_json(sc));
  EXPECT_DOUBLE_EQ(back.topology.network_latency_s_per_mile,
                   sc.topology.network_latency_s_per_mile);
  EXPECT_DOUBLE_EQ(back.topology.classes[1].drop_penalty_per_request,
                   0.004);
  EXPECT_DOUBLE_EQ(back.topology.datacenters[0].idle_power_kw, 60.0);

  SlotInput input = back.slot_input(10);
  input.slot_seconds = 8000.0;
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(back.topology, input);
  const SlotMetrics analytic = evaluate_plan(back.topology, input, plan);
  Rng rng(4242);
  const SimOutcome sim =
      SlotSimulator().simulate(back.topology, input, plan, rng);
  // The stochastic replay has no idle/penalty meters; compare the terms
  // it does model.
  EXPECT_LT(relative_difference(sim.revenue_mean_delay, analytic.revenue),
            0.12);
  EXPECT_LT(relative_difference(sim.transfer_cost, analytic.transfer_cost),
            0.05);
}

}  // namespace
}  // namespace palb
