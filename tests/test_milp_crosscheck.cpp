// Cross-validation of the core band reduction: for one-level TUFs the
// dispatcher's profile enumeration must agree with an *independent*
// MILP encoding of the same problem — binary on/off selectors z_{k,l}
// whose deadline overhead is charged through the capacity row, solved by
// the branch-and-bound MILP over the same simplex. Two formulations, two
// algorithms, one optimum.

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "solver/milp.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

struct Instance {
  Topology topology;
  SlotInput input;
};

Instance random_one_level_instance(std::uint64_t seed) {
  Rng rng(seed * 60013 + 7);
  Instance inst;
  const std::size_t K = 1 + rng.uniform_index(2);
  const std::size_t S = 1 + rng.uniform_index(2);
  const std::size_t L = 1 + rng.uniform_index(2);
  for (std::size_t k = 0; k < K; ++k) {
    inst.topology.classes.push_back(
        RequestClass{"k" + std::to_string(k),
                     StepTuf::constant(rng.uniform(0.005, 0.03),
                                       rng.uniform(0.05, 0.2)),
                     rng.uniform(0.0, 2e-6)});
  }
  for (std::size_t s = 0; s < S; ++s) {
    inst.topology.frontends.push_back(FrontEnd{"s" + std::to_string(s)});
  }
  for (std::size_t l = 0; l < L; ++l) {
    DataCenter dc;
    dc.name = "l" + std::to_string(l);
    dc.num_servers = 2 + static_cast<int>(rng.uniform_index(5));
    dc.server_capacity = rng.uniform(0.6, 1.5);
    for (std::size_t k = 0; k < K; ++k) {
      dc.service_rate.push_back(rng.uniform(60.0, 200.0));
      dc.energy_per_request_kwh.push_back(rng.uniform(0.0, 0.006));
    }
    inst.topology.datacenters.push_back(std::move(dc));
  }
  inst.topology.distance_miles.assign(S, std::vector<double>(L, 0.0));
  for (auto& row : inst.topology.distance_miles) {
    for (double& d : row) d = rng.uniform(0.0, 2000.0);
  }
  inst.input.arrival_rate.assign(K, std::vector<double>(S, 0.0));
  for (auto& row : inst.input.arrival_rate) {
    for (double& r : row) r = rng.uniform(10.0, 500.0);
  }
  inst.input.price.assign(L, 0.0);
  for (double& p : inst.input.price) p = rng.uniform(0.02, 0.12);
  inst.input.slot_seconds = 3600.0;
  return inst;
}

/// Independent MILP: maximize sum (U_k - costs) x_{k,s,l} T subject to
/// flow conservation and, per DC,
///   sum_k X_{k,l}/(C mu_k) + M_l * sum_k z_{k,l}/(D_k C mu_k) <= M_l
///   x_{k,s,l} <= arrival_{k,s} * z_{k,l},  z binary.
/// Mirrors OptimizedPolicy's margin so the optima are comparable.
double milp_optimum(const Instance& inst, double margin) {
  const std::size_t K = inst.topology.num_classes();
  const std::size_t S = inst.topology.num_frontends();
  const std::size_t L = inst.topology.num_datacenters();
  const double T = inst.input.slot_seconds;

  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<int> x(K * S * L), z(K * L);
  std::vector<int> ints;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t l = 0; l < L; ++l) {
      z[k * L + l] = lp.add_variable(0.0, 1.0, 0.0);
      ints.push_back(z[k * L + l]);
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    const auto& cls = inst.topology.classes[k];
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t l = 0; l < L; ++l) {
        const auto& dc = inst.topology.datacenters[l];
        const double value =
            (cls.tuf.max_utility() -
             dc.energy_per_request_kwh[k] * inst.input.price[l] * dc.pue -
             cls.transfer_cost_per_mile *
                 inst.topology.distance_miles[s][l]) *
            T;
        x[(k * S + s) * L + l] = lp.add_variable(
            0.0, inst.input.arrival_rate[k][s], value);
        // Coupling x <= arrival * z.
        lp.add_constraint({{x[(k * S + s) * L + l], 1.0},
                           {z[k * L + l], -inst.input.arrival_rate[k][s]}},
                          Relation::kLe, 0.0);
      }
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t l = 0; l < L; ++l) {
        terms.emplace_back(x[(k * S + s) * L + l], 1.0);
      }
      lp.add_constraint(terms, Relation::kLe,
                        inst.input.arrival_rate[k][s]);
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = inst.topology.datacenters[l];
    const double servers = static_cast<double>(dc.num_servers);
    std::vector<std::pair<int, double>> terms;
    for (std::size_t k = 0; k < K; ++k) {
      const double deadline =
          inst.topology.classes[k].tuf.final_deadline() * (1.0 - margin);
      const double inv = 1.0 / (dc.server_capacity * dc.service_rate[k]);
      for (std::size_t s = 0; s < S; ++s) {
        terms.emplace_back(x[(k * S + s) * L + l], inv);
      }
      terms.emplace_back(z[k * L + l], servers * inv / deadline);
    }
    lp.add_constraint(terms, Relation::kLe, servers);
  }

  const MilpSolution sol = MilpSolver().solve(lp, ints);
  EXPECT_EQ(sol.status, MilpStatus::kOptimal);
  return std::max(0.0, sol.objective);
}

class MilpCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpCrossCheckTest, EnumerationMatchesIndependentMilp) {
  const Instance inst =
      random_one_level_instance(static_cast<std::uint64_t>(GetParam()));
  OptimizedPolicy::Options opt;
  opt.distribute_spare_share = false;  // compare the pure LP objectives
  OptimizedPolicy policy(opt);
  const DispatchPlan plan =
      policy.plan_slot(inst.topology, inst.input);
  const double enumerated =
      evaluate_plan(inst.topology, inst.input, plan).net_profit();
  const double milp = milp_optimum(inst, opt.deadline_margin);
  // The realization rounds server counts up (never hurting the LP value)
  // and accounting equals the LP objective for one-level TUFs, so the
  // two independent optima must agree tightly.
  EXPECT_NEAR(enumerated, milp, 1e-5 * std::max(1.0, milp))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpCrossCheckTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace palb
