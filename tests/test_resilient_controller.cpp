#include "fault/resilient_controller.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "check/plan_checker.hpp"
#include "cloud/accounting.hpp"
#include "cloud/plan.hpp"
#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_json.hpp"
#include "fault/fault.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

/// A policy whose rung 1 (and rung 2, via degraded() = nullptr) always
/// fails — every slot must fall through to the lower rungs.
class AlwaysThrowingPolicy : public Policy {
 public:
  const std::string& name() const override {
    static const std::string kName = "AlwaysThrowing";
    return kName;
  }
  DispatchPlan plan_slot(const Topology&, const SlotInput&) override {
    throw NumericalError("synthetic planner crash");
  }
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<AlwaysThrowingPolicy>();
  }
};

double shed_all_baseline(const Scenario& sc, const FaultSchedule& schedule,
                         std::size_t slots) {
  double profit = 0.0;
  for (std::size_t t = 0; t < slots; ++t) {
    const FaultedSlot world = schedule.materialize(sc, t);
    profit += evaluate_plan(world.topology, world.input,
                            DispatchPlan::zero(world.topology))
                  .net_profit();
  }
  return profit;
}

// The ISSUE's acceptance run: basic-low under the canned 24-slot
// schedule (DC 0 dark 8-11, corrupted rate trace at 3 and 15, a forced
// solver failure at 19).
TEST(ResilientController, CannedScheduleCompletesAuditedAndProfitable) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const FaultSchedule schedule = fault_gen::canned_acceptance();
  const ResilientController controller(sc, schedule);
  OptimizedPolicy policy;

  RunResult run;
  ASSERT_NO_THROW(run = controller.run(policy, 24));
  ASSERT_EQ(run.plans.size(), 24u);
  ASSERT_EQ(run.fallback_rungs.size(), 24u);
  EXPECT_EQ(run.faulted_slots, 7u);

  // Every applied plan passes the full constraint audit against the
  // faulted world it was applied to.
  const PlanChecker checker;
  for (std::size_t t = 0; t < 24; ++t) {
    const FaultedSlot world = schedule.materialize(sc, t);
    const PlanCheckReport report =
        checker.check(world.topology, world.input, run.plans[t]);
    EXPECT_TRUE(report.ok()) << "slot " << t << ":\n" << report.summary();
  }

  // Recorded rungs match the schedule: the forced solver failure at 19
  // lands on the reduced-effort re-solve; everything else (including
  // the imputed-gap and dark-DC slots, which rung 1 handles from the
  // sanitized world) stays on the full solve.
  for (std::size_t t = 0; t < 24; ++t) {
    const FallbackRung expected =
        t == 19 ? FallbackRung::kReducedResolve : FallbackRung::kFullSolve;
    EXPECT_EQ(run.fallback_rungs[t], static_cast<int>(expected))
        << "slot " << t;
  }

  // Worth more than giving up: the ladder must beat shedding the whole
  // horizon.
  EXPECT_GE(run.total.net_profit(), shed_all_baseline(sc, schedule, 24));
}

TEST(ResilientController, UnwrappedPolicyFailsTheSameRun) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const FaultSchedule schedule = fault_gen::canned_acceptance();
  OptimizedPolicy policy;
  // Slot 3's raw telemetry is NaN: a policy driven without the ladder
  // (and without the sanitized input) dies on its own input validation.
  const FaultedSlot world = schedule.materialize(sc, 3);
  EXPECT_THROW((void)policy.plan_slot(world.topology, world.raw_input),
               std::exception);
}

TEST(ResilientController, ByteIdenticalAcrossWorkerCounts) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const FaultSchedule schedule = fault_gen::canned_acceptance();
  const ResilientController controller(sc, schedule);

  OptimizedPolicy::Options popt;
  popt.parallel = false;
  ResilientController::Options serial_opt;
  serial_opt.workers = 1;
  OptimizedPolicy serial_policy(popt);
  const RunResult serial = controller.run(serial_policy, 24, 0, serial_opt);

  ResilientController::Options parallel_opt;
  parallel_opt.workers = 4;
  OptimizedPolicy parallel_policy(popt);
  const RunResult parallel =
      controller.run(parallel_policy, 24, 0, parallel_opt);

  EXPECT_EQ(plan_json::run_to_json(serial).dump(),
            plan_json::run_to_json(parallel).dump());
  EXPECT_EQ(serial.fallback_rungs, parallel.fallback_rungs);
  EXPECT_EQ(serial.repair_adjustments, parallel.repair_adjustments);
  EXPECT_EQ(serial.faulted_slots, parallel.faulted_slots);
}

TEST(ResilientController, LadderFallsToHeuristicWhenThePolicyDies) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const ResilientController controller(sc, FaultSchedule());
  AlwaysThrowingPolicy policy;
  const RunResult run = controller.run(policy, 4);
  // Slot 0 has no previous plan, so the first failure lands on the
  // heuristic; later slots reuse that plan at rung 3 (previous-plan
  // outranks re-running the heuristic).
  EXPECT_EQ(run.fallback_rungs[0],
            static_cast<int>(FallbackRung::kHeuristic));
  for (std::size_t t = 1; t < 4; ++t) {
    EXPECT_EQ(run.fallback_rungs[t],
              static_cast<int>(FallbackRung::kPreviousPlan))
        << "slot " << t;
  }
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_GT(run.slots[t].dispatched_requests, 0.0) << "slot " << t;
  }
}

TEST(ResilientController, LadderBottomsOutAtShedAllThenPreviousPlan) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const ResilientController controller(sc, FaultSchedule());
  AlwaysThrowingPolicy policy;
  AlwaysThrowingPolicy broken_heuristic;
  ResilientController::Options opt;
  opt.heuristic = &broken_heuristic;
  const RunResult run = controller.run(policy, 3, 0, opt);
  // Slot 0 has no previous plan: only the shed-all floor remains. From
  // slot 1 on, re-applying the previous (zero) plan is rung 3.
  EXPECT_EQ(run.fallback_rungs[0], static_cast<int>(FallbackRung::kShedAll));
  for (std::size_t t = 1; t < 3; ++t) {
    EXPECT_EQ(run.fallback_rungs[t],
              static_cast<int>(FallbackRung::kPreviousPlan))
        << "slot " << t;
  }
  EXPECT_DOUBLE_EQ(run.total.dispatched_requests, 0.0);
}

TEST(ResilientController, FallbackRungNamesAreStable) {
  EXPECT_STREQ(to_string(FallbackRung::kFullSolve), "full-solve");
  EXPECT_STREQ(to_string(FallbackRung::kReducedResolve), "reduced-resolve");
  EXPECT_STREQ(to_string(FallbackRung::kPreviousPlan), "previous-plan");
  EXPECT_STREQ(to_string(FallbackRung::kHeuristic), "heuristic");
  EXPECT_STREQ(to_string(FallbackRung::kShedAll), "shed-all");
}

TEST(ResilientController, RejectsInvalidConfiguration) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  FaultEvent out_of_range;
  out_of_range.kind = FaultKind::kDcOutage;
  out_of_range.dc = 99;
  EXPECT_THROW(ResilientController(sc, FaultSchedule({out_of_range})),
               InvalidArgument);
}

}  // namespace
}  // namespace palb
