// The SlotController's parallel-run contract: for any worker count, the
// plans (and therefore the ledger) are byte-identical to the 1-worker
// run. 16 scenarios — the four built-ins plus twelve generated worlds —
// each serialized via plan_json and compared as strings. The tsan preset
// runs this suite to certify the pipeline data-race-free.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/balanced_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_json.hpp"
#include "core/right_sizing_policy.hpp"
#include "core/scenario_gen.hpp"
#include "core/simple_policies.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"

namespace palb {
namespace {

struct Case {
  std::string name;
  Scenario scenario;
  std::size_t slots;
};

/// Generated worlds kept small enough that OptimizedPolicy stays on the
/// exhaustive-enumeration path (the bit-identical guarantee covers that
/// path plus the deterministic local search; small spaces keep the
/// 16-scenario sweep fast even under TSan).
scenario_gen::Options small_world() {
  scenario_gen::Options opt;
  opt.max_classes = 2;
  opt.max_frontends = 3;
  opt.max_datacenters = 3;
  opt.max_servers = 6;
  opt.max_tuf_levels = 2;
  opt.slots = 6;
  return opt;
}

std::vector<Case> sixteen_scenarios() {
  std::vector<Case> cases;
  cases.push_back({"basic-low",
                   paper::basic_synthetic(paper::ArrivalSet::kLow), 3});
  cases.push_back({"basic-high",
                   paper::basic_synthetic(paper::ArrivalSet::kHigh), 3});
  cases.push_back({"worldcup", paper::worldcup_study(), 4});
  cases.push_back({"google", paper::google_study(), 3});
  const scenario_gen::Options opt = small_world();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    cases.push_back({"random:" + std::to_string(seed),
                     scenario_gen::generate(seed, opt), 4});
  }
  return cases;
}

std::string plans_fingerprint(const RunResult& run) {
  return plan_json::run_to_json(run).dump(2);
}

/// Runs `make_policy()` twice over every scenario — once serial, once
/// with `workers` — and requires byte-identical plan JSON.
template <typename MakePolicy>
void expect_worker_invariant(std::size_t workers, MakePolicy make_policy) {
  for (const Case& c : sixteen_scenarios()) {
    const SlotController controller(c.scenario);
    auto serial_policy = make_policy();
    auto parallel_policy = make_policy();
    const RunResult serial =
        controller.run(*serial_policy, c.slots, 0, {.workers = 1});
    const RunResult parallel =
        controller.run(*parallel_policy, c.slots, 0, {.workers = workers});
    EXPECT_EQ(plans_fingerprint(serial), plans_fingerprint(parallel))
        << c.name << " diverged at " << workers << " workers";
    EXPECT_DOUBLE_EQ(serial.total.net_profit(),
                     parallel.total.net_profit())
        << c.name;
  }
}

TEST(ParallelDeterminism, OptimizedFourWorkersMatchesSerial) {
  expect_worker_invariant(4, [] {
    OptimizedPolicy::Options opt;
    opt.parallel = false;  // isolate slot-level fan-out
    return std::make_unique<OptimizedPolicy>(opt);
  });
}

TEST(ParallelDeterminism, OptimizedHardwareWorkersMatchesSerial) {
  expect_worker_invariant(0, [] {
    return std::make_unique<OptimizedPolicy>();
  });
}

TEST(ParallelDeterminism, WarmStartOffMatchesWarmStartOn) {
  // The incumbent-bound warm start must be plan-preserving: skipped
  // profiles are strictly worse than the incumbent, ties go to the
  // lowest profile index either way.
  for (const Case& c : sixteen_scenarios()) {
    const SlotController controller(c.scenario);
    OptimizedPolicy::Options cold_opt;
    cold_opt.warm_start = false;
    OptimizedPolicy cold(cold_opt);
    OptimizedPolicy warm;  // warm_start defaults on
    const RunResult cold_run = controller.run(cold, c.slots);
    const RunResult warm_run = controller.run(warm, c.slots);
    EXPECT_EQ(plans_fingerprint(cold_run), plans_fingerprint(warm_run))
        << c.name << ": warm start changed a plan";
  }
}

TEST(ParallelDeterminism, BalancedManyWorkersMatchesSerial) {
  expect_worker_invariant(3, [] {
    return std::make_unique<BalancedPolicy>();
  });
}

TEST(ParallelDeterminism, SimplePoliciesMatchSerial) {
  expect_worker_invariant(2, [] {
    return std::make_unique<NearestPolicy>();
  });
  expect_worker_invariant(5, [] {
    return std::make_unique<CostMinPolicy>();
  });
}

TEST(ParallelDeterminism, SingleSlotRunsSerially) {
  // Regression: workers > slots must shrink the pool to the job count
  // (one slot => pure serial path), not spin up idle threads.
  const Scenario sc = paper::google_study();
  const SlotController controller(sc);
  OptimizedPolicy a, b;
  const RunResult serial = controller.run(a, 1, 0, {.workers = 1});
  const RunResult wide = controller.run(b, 1, 0, {.workers = 16});
  EXPECT_EQ(plans_fingerprint(serial), plans_fingerprint(wide));
}

TEST(ParallelDeterminism, UncloneablePolicyFallsBackToSerial) {
  // RightSizingPolicy is stateful across slots and opts out of clone();
  // the controller must run it serially (same plans) instead of failing.
  const Scenario sc = paper::worldcup_study();
  const SlotController controller(sc);
  RightSizingPolicy::Options opt;
  opt.switch_cost = 0.02;
  RightSizingPolicy serial_policy(opt), wide_policy(opt);
  const RunResult serial = controller.run(serial_policy, 4, 0, {.workers = 1});
  const RunResult wide = controller.run(wide_policy, 4, 0, {.workers = 8});
  EXPECT_EQ(plans_fingerprint(serial), plans_fingerprint(wide));
}

TEST(ParallelDeterminism, StatsAggregateAcrossWorkers) {
  // Parallel runs must surface the summed solver counters of all worker
  // clones; profile sweeps are partition-invariant (every slot examines
  // the profile space exactly once whoever owns it).
  const Scenario sc = paper::google_study();
  const SlotController controller(sc);
  OptimizedPolicy::Options opt;
  opt.warm_start = false;  // hit/miss splits depend on block boundaries
  OptimizedPolicy a(opt), b(opt);
  const RunResult serial = controller.run(a, 4, 0, {.workers = 1});
  const RunResult wide = controller.run(b, 4, 0, {.workers = 4});
  EXPECT_GT(serial.stats.profiles_examined, 0u);
  EXPECT_EQ(serial.stats.profiles_examined, wide.stats.profiles_examined);
  EXPECT_EQ(serial.stats.lp_iterations, wide.stats.lp_iterations);
}

TEST(ParallelDeterminism, FaultInjectedRunsMatchAcrossWorkerCounts) {
  // The resilient path inherits the contract: materialize() is a pure
  // function of (scenario, schedule, slot) and the ladder's serial
  // phase B sees identical candidates whatever the phase-A partition,
  // so a fault-injected run is byte-identical for workers in {1, N} —
  // rungs and repair counters included.
  for (const Case& c : sixteen_scenarios()) {
    fault_gen::Options gopt;
    gopt.slots = c.slots;
    gopt.fault_rate = 0.4;
    const FaultSchedule schedule =
        fault_gen::generate(c.scenario.topology, 21, gopt);
    const ResilientController controller(c.scenario, schedule);

    OptimizedPolicy::Options popt;
    popt.parallel = false;
    ResilientController::Options serial_opt;
    serial_opt.workers = 1;
    OptimizedPolicy serial_policy(popt);
    const RunResult serial =
        controller.run(serial_policy, c.slots, 0, serial_opt);

    for (const std::size_t workers : {std::size_t{4}, std::size_t{0}}) {
      ResilientController::Options wide_opt;
      wide_opt.workers = workers;
      OptimizedPolicy wide_policy(popt);
      const RunResult wide =
          controller.run(wide_policy, c.slots, 0, wide_opt);
      EXPECT_EQ(plans_fingerprint(serial), plans_fingerprint(wide))
          << c.name << " diverged at " << workers << " workers";
      EXPECT_EQ(serial.fallback_rungs, wide.fallback_rungs) << c.name;
      EXPECT_EQ(serial.repair_adjustments, wide.repair_adjustments)
          << c.name;
      EXPECT_EQ(serial.faulted_slots, wide.faulted_slots) << c.name;
    }
  }
}

TEST(ParallelDeterminism, DecomposedSolveMatchesAcrossWorkerCounts) {
  // The Dantzig-Wolfe driver's subproblem fan-out must be invisible:
  // for any (slot workers, subproblem workers) pair, plans are
  // byte-identical to the all-serial run. Forcing kOn exercises the
  // decomposed path even on these small scenarios; running it under
  // this suite puts the nested pool under TSan in CI.
  for (const Case& c : sixteen_scenarios()) {
    const SlotController controller(c.scenario);
    OptimizedPolicy::Options base;
    base.decomposed_solve = OptimizedPolicy::DecomposedSolve::kOn;
    base.decomposed_workers = 1;
    OptimizedPolicy serial_policy(base);
    const RunResult serial =
        controller.run(serial_policy, c.slots, 0, {.workers = 1});
    for (const std::size_t sub_workers : {std::size_t{2}, std::size_t{4}}) {
      OptimizedPolicy::Options opt = base;
      opt.decomposed_workers = sub_workers;
      OptimizedPolicy wide_policy(opt);
      const RunResult wide =
          controller.run(wide_policy, c.slots, 0, {.workers = 4});
      EXPECT_EQ(plans_fingerprint(serial), plans_fingerprint(wide))
          << c.name << " diverged at " << sub_workers
          << " subproblem workers";
    }
  }
}

TEST(ParallelDeterminism, CannedScheduleMatchesAcrossWorkerCounts) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const ResilientController controller(sc,
                                       fault_gen::canned_acceptance());
  OptimizedPolicy::Options popt;
  popt.parallel = false;
  ResilientController::Options serial_opt;
  serial_opt.workers = 1;
  OptimizedPolicy serial_policy(popt);
  const RunResult serial = controller.run(serial_policy, 24, 0, serial_opt);
  ResilientController::Options wide_opt;
  wide_opt.workers = 4;
  OptimizedPolicy wide_policy(popt);
  const RunResult wide = controller.run(wide_policy, 24, 0, wide_opt);
  EXPECT_EQ(plans_fingerprint(serial), plans_fingerprint(wide));
  EXPECT_EQ(serial.fallback_rungs, wide.fallback_rungs);
  EXPECT_EQ(serial.repair_adjustments, wide.repair_adjustments);
}

}  // namespace
}  // namespace palb
