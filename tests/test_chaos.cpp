// Chaos-harness and watchdog tests (docs/OVERLOAD.md): the canned
// overload schedule keeps the dispatcher serving — zero stalled routes,
// bounded nonzero shed during the stale-plan window, stale exposure
// within the TTL, decisions byte-identical across driver thread counts
// — and two identical chaos runs agree bit for bit. The AsyncPlanner
// watchdog: an impossible deadline expires, retries descend the effort
// ladder, and every slot still ends with an applied, audited plan.

#include "serve/chaos.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <future>

#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_handle.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"
#include "serve/async_planner.hpp"

namespace palb {
namespace {

using serve::AsyncPlanner;
using serve::ChaosOptions;
using serve::ChaosReport;
using serve::run_chaos;

ChaosOptions smoke_options() {
  ChaosOptions opt;
  opt.num_slots = 20;
  opt.requests_per_slot = 2048;
  opt.stale_plan_ttl_slots = 3;
  return opt;
}

TEST(Chaos, CannedScheduleKeepsTheDispatcherServing) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const FaultSchedule schedule = fault_gen::canned_chaos();
  BalancedPolicy policy;
  const ChaosReport report =
      run_chaos(sc, schedule, policy, smoke_options());

  EXPECT_EQ(report.slots, 20u);
  // Planner stalled slots 6-8, publishes suppressed 4-6 and 12-15.
  EXPECT_EQ(report.stalled_solves, 3u);
  EXPECT_GT(report.delayed_publishes, 0u);
  // The surge-onset delay window outlives the TTL, so escalation fires.
  EXPECT_GE(report.ttl_escalations, 1u);

  // The acceptance gates: serving never stalls, decisions deterministic
  // across {1, 2, 4} driver threads, staleness within the TTL, shedding
  // nonzero (the stale pre-surge plan faced 3x demand) but bounded.
  EXPECT_EQ(report.stalled_routes, 0u);
  EXPECT_TRUE(report.decisions_identical);
  EXPECT_LE(report.max_stale_slots, 3u);
  EXPECT_GT(report.shed, 0u);
  EXPECT_LT(report.shed_fraction(), 0.5);
}

TEST(Chaos, ReportIsAPureFunctionOfItsInputs) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const FaultSchedule schedule = fault_gen::canned_chaos();
  ChaosOptions opt = smoke_options();
  opt.num_slots = 12;
  opt.requests_per_slot = 1024;
  BalancedPolicy first_policy, second_policy;
  const ChaosReport a = run_chaos(sc, schedule, first_policy, opt);
  const ChaosReport b = run_chaos(sc, schedule, second_policy, opt);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.no_route, b.no_route);
  EXPECT_EQ(a.fallback_rungs, b.fallback_rungs);
  EXPECT_EQ(a.max_stale_slots, b.max_stale_slots);
  EXPECT_EQ(a.ttl_escalations, b.ttl_escalations);
}

TEST(Chaos, StallsWithoutSurgeShedNothing) {
  // A schedule with planner stalls but no demand change: the ladder
  // serves the previous slot's plan, which is sized for the same
  // offered mix — admission never triggers.
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  FaultEvent stall;
  stall.kind = FaultKind::kPlannerStall;
  stall.first_slot = 2;
  stall.last_slot = 5;
  const FaultSchedule schedule({stall});
  BalancedPolicy policy;
  ChaosOptions opt = smoke_options();
  opt.num_slots = 8;
  const ChaosReport report = run_chaos(sc, schedule, policy, opt);
  EXPECT_EQ(report.stalled_solves, 4u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.stalled_routes, 0u);
  EXPECT_TRUE(report.decisions_identical);
}

TEST(Watchdog, ImpossibleDeadlineDegradesButEverySlotStillPlans) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  PlanHandle live;
  AsyncPlanner::Options options;
  options.watchdog.solve_deadline_seconds = 1e-9;  // expires immediately
  options.watchdog.max_retries = 2;
  options.watchdog.backoff_base_seconds = 1e-4;  // keep the test fast
  AsyncPlanner planner(sc, FaultSchedule{}, live, options);

  OptimizedPolicy policy;
  const RunResult run = planner.solve_async(policy, 3).get();

  // The first attempt and both retries launch (the last attempt can
  // occasionally finish before its watchdog observes the expiry, so the
  // expiration count is >= 2, not == 3); each retry descends one effort
  // rung, and the stale window spans the whole retry phase.
  const AsyncPlanner::WatchdogStats stats = planner.watchdog_stats();
  EXPECT_GE(stats.deadline_expirations, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_GT(stats.stale_plan_ns, 0u);

  // Graceful degradation, not an outage: the returned run is the final
  // attempt, capped at kPreviousPlan effort — rungs 1-2 skipped — and
  // every slot still carries an applied, audited plan, with the live
  // handle following along.
  ASSERT_EQ(run.plans.size(), 3u);
  for (const int rung : run.fallback_rungs) {
    EXPECT_GE(rung, static_cast<int>(FallbackRung::kPreviousPlan));
  }
  EXPECT_GT(live.version(), 0u);
}

TEST(Watchdog, DisabledWatchdogRunsCleanly) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  PlanHandle live;
  AsyncPlanner planner(sc, FaultSchedule{}, live);  // deadline 0 = off
  BalancedPolicy policy;
  const RunResult run = planner.solve_async(policy, 2).get();
  EXPECT_EQ(run.plans.size(), 2u);
  const AsyncPlanner::WatchdogStats stats = planner.watchdog_stats();
  EXPECT_EQ(stats.deadline_expirations, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.stale_plan_ns, 0u);
}

}  // namespace
}  // namespace palb
