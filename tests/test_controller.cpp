#include "core/controller.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/error.hpp"

#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "market/price_library.hpp"
#include "scenario_fixtures.hpp"
#include "workload/generators.hpp"

namespace palb {
namespace {

Scenario small_scenario() {
  Scenario sc;
  sc.topology = testing_fixtures::small_topology();
  sc.arrivals.resize(2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      sc.arrivals[k].push_back(RateTrace(
          "a", {30.0 + 10.0 * static_cast<double>(k + s), 50.0, 20.0, 80.0}));
    }
  }
  sc.prices = {prices::flat("dc1", 0.04, 4), prices::flat("dc2", 0.08, 4)};
  sc.slot_seconds = 3600.0;
  return sc;
}

TEST(Scenario, ValidatesCleanScenario) {
  EXPECT_NO_THROW(small_scenario().validate());
}

TEST(Scenario, CatchesShapeErrors) {
  Scenario sc = small_scenario();
  sc.arrivals.pop_back();
  EXPECT_THROW(sc.validate(), InvalidArgument);
  sc = small_scenario();
  sc.prices.pop_back();
  EXPECT_THROW(sc.validate(), InvalidArgument);
  sc = small_scenario();
  sc.slot_seconds = 0.0;
  EXPECT_THROW(sc.validate(), InvalidArgument);
}

TEST(Scenario, RejectsBadPricesNamingTheCoordinate) {
  // RateTrace's constructor already refuses NaN and negative rates, so
  // the deep re-check in validate() is a second layer there; PriceTrace
  // deliberately admits negative and infinite market prints, making the
  // scenario-level audit the one that has to name the coordinate.
  const auto message_of = [](const Scenario& sc) {
    try {
      sc.validate();
    } catch (const std::exception& e) {
      return std::string(e.what());
    }
    return std::string();
  };

  Scenario sc = small_scenario();
  sc.prices[1] = PriceTrace(
      "dc2", {0.08, 0.08, std::numeric_limits<double>::infinity(), 0.08});
  std::string what = message_of(sc);
  EXPECT_NE(what.find("data center 1"), std::string::npos) << what;
  EXPECT_NE(what.find("slot 2"), std::string::npos) << what;

  sc = small_scenario();
  sc.prices[0] = PriceTrace("dc1", {0.04, -0.02, 0.04, 0.04});
  what = message_of(sc);
  EXPECT_NE(what.find("data center 0"), std::string::npos) << what;
  EXPECT_NE(what.find("slot 1"), std::string::npos) << what;
}

TEST(RateTraceGuard, ConstructorRefusesNaNAndNegativeRates) {
  EXPECT_THROW(
      RateTrace("a", {1.0, std::numeric_limits<double>::quiet_NaN()}),
      InvalidArgument);
  EXPECT_THROW(RateTrace("a", {1.0, -0.5}), InvalidArgument);
}

TEST(Scenario, RejectsMismatchedTraceLengthsAndEmptyTopology) {
  // RateTrace::at wraps modulo its length, so a short trace would
  // silently phase-shift instead of failing — validate() must catch the
  // mismatch up front.
  Scenario sc = small_scenario();
  sc.arrivals[1][1] = RateTrace("short", {30.0, 50.0});
  EXPECT_THROW(sc.validate(), InvalidArgument);

  sc = small_scenario();
  sc.prices[0] = prices::flat("dc1", 0.04, 2);
  EXPECT_THROW(sc.validate(), InvalidArgument);

  Scenario empty;
  EXPECT_THROW(empty.validate(), InvalidArgument);
}

TEST(Scenario, SlotInputRevalidatesMaterializedValues) {
  Scenario sc = small_scenario();
  sc.prices[1] = PriceTrace(
      "dc2", {0.08, std::numeric_limits<double>::infinity(), 0.08, 0.08});
  // Clean slots still materialize...
  EXPECT_NO_THROW((void)sc.slot_input(0));
  // ...the corrupted one fails, naming (data center, slot).
  try {
    (void)sc.slot_input(1);
    FAIL() << "slot_input must reject the non-finite price";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("data center 1"), std::string::npos) << what;
    EXPECT_NE(what.find("slot 1"), std::string::npos) << what;
  }
}

TEST(Scenario, SlotInputMaterialization) {
  const Scenario sc = small_scenario();
  const SlotInput input = sc.slot_input(1);
  EXPECT_DOUBLE_EQ(input.arrival_rate[0][0], 50.0);
  EXPECT_DOUBLE_EQ(input.price[1], 0.08);
  EXPECT_DOUBLE_EQ(input.slot_seconds, 3600.0);
  // Traces wrap.
  EXPECT_DOUBLE_EQ(sc.slot_input(5).arrival_rate[0][0], 50.0);
}

TEST(SlotController, RunsAllSlotsAndAccumulates) {
  const SlotController controller(small_scenario());
  BalancedPolicy policy;
  const RunResult result = controller.run(policy, 4);
  ASSERT_EQ(result.slots.size(), 4u);
  ASSERT_EQ(result.plans.size(), 4u);
  double sum = 0.0;
  for (const auto& s : result.slots) sum += s.net_profit();
  EXPECT_NEAR(result.total.net_profit(), sum, 1e-9);
}

TEST(SlotController, SeriesHelpers) {
  const SlotController controller(small_scenario());
  OptimizedPolicy policy;
  const RunResult result = controller.run(policy, 3);
  EXPECT_EQ(result.net_profit_series().size(), 3u);
  EXPECT_EQ(result.class_dc_rate_series(0, 1).size(), 3u);
}

TEST(SlotController, FirstSlotOffsetApplies) {
  const SlotController controller(small_scenario());
  BalancedPolicy policy;
  const RunResult a = controller.run(policy, 1, 0);
  const RunResult b = controller.run(policy, 1, 3);
  // Slot 3 carries much more demand (80 vs 30 req/s) => more dispatched.
  EXPECT_GT(b.total.dispatched_requests, a.total.dispatched_requests);
}

TEST(SlotController, RejectsZeroSlots) {
  const SlotController controller(small_scenario());
  BalancedPolicy policy;
  EXPECT_THROW(controller.run(policy, 0), InvalidArgument);
}

TEST(SlotController, EveryPlanPassesValidation) {
  const SlotController controller(small_scenario());
  OptimizedPolicy policy;
  const RunResult result = controller.run(policy, 4);
  for (std::size_t t = 0; t < result.plans.size(); ++t) {
    EXPECT_TRUE(result.plans[t].is_valid(controller.scenario().topology,
                                         controller.scenario().slot_input(t)));
  }
}

}  // namespace
}  // namespace palb
