#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "market/price_library.hpp"
#include "scenario_fixtures.hpp"
#include "workload/generators.hpp"

namespace palb {
namespace {

Scenario small_scenario() {
  Scenario sc;
  sc.topology = testing_fixtures::small_topology();
  sc.arrivals.resize(2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      sc.arrivals[k].push_back(RateTrace(
          "a", {30.0 + 10.0 * static_cast<double>(k + s), 50.0, 20.0, 80.0}));
    }
  }
  sc.prices = {prices::flat("dc1", 0.04, 4), prices::flat("dc2", 0.08, 4)};
  sc.slot_seconds = 3600.0;
  return sc;
}

TEST(Scenario, ValidatesCleanScenario) {
  EXPECT_NO_THROW(small_scenario().validate());
}

TEST(Scenario, CatchesShapeErrors) {
  Scenario sc = small_scenario();
  sc.arrivals.pop_back();
  EXPECT_THROW(sc.validate(), InvalidArgument);
  sc = small_scenario();
  sc.prices.pop_back();
  EXPECT_THROW(sc.validate(), InvalidArgument);
  sc = small_scenario();
  sc.slot_seconds = 0.0;
  EXPECT_THROW(sc.validate(), InvalidArgument);
}

TEST(Scenario, SlotInputMaterialization) {
  const Scenario sc = small_scenario();
  const SlotInput input = sc.slot_input(1);
  EXPECT_DOUBLE_EQ(input.arrival_rate[0][0], 50.0);
  EXPECT_DOUBLE_EQ(input.price[1], 0.08);
  EXPECT_DOUBLE_EQ(input.slot_seconds, 3600.0);
  // Traces wrap.
  EXPECT_DOUBLE_EQ(sc.slot_input(5).arrival_rate[0][0], 50.0);
}

TEST(SlotController, RunsAllSlotsAndAccumulates) {
  const SlotController controller(small_scenario());
  BalancedPolicy policy;
  const RunResult result = controller.run(policy, 4);
  ASSERT_EQ(result.slots.size(), 4u);
  ASSERT_EQ(result.plans.size(), 4u);
  double sum = 0.0;
  for (const auto& s : result.slots) sum += s.net_profit();
  EXPECT_NEAR(result.total.net_profit(), sum, 1e-9);
}

TEST(SlotController, SeriesHelpers) {
  const SlotController controller(small_scenario());
  OptimizedPolicy policy;
  const RunResult result = controller.run(policy, 3);
  EXPECT_EQ(result.net_profit_series().size(), 3u);
  EXPECT_EQ(result.class_dc_rate_series(0, 1).size(), 3u);
}

TEST(SlotController, FirstSlotOffsetApplies) {
  const SlotController controller(small_scenario());
  BalancedPolicy policy;
  const RunResult a = controller.run(policy, 1, 0);
  const RunResult b = controller.run(policy, 1, 3);
  // Slot 3 carries much more demand (80 vs 30 req/s) => more dispatched.
  EXPECT_GT(b.total.dispatched_requests, a.total.dispatched_requests);
}

TEST(SlotController, RejectsZeroSlots) {
  const SlotController controller(small_scenario());
  BalancedPolicy policy;
  EXPECT_THROW(controller.run(policy, 0), InvalidArgument);
}

TEST(SlotController, EveryPlanPassesValidation) {
  const SlotController controller(small_scenario());
  OptimizedPolicy policy;
  const RunResult result = controller.run(policy, 4);
  for (std::size_t t = 0; t < result.plans.size(); ++t) {
    EXPECT_TRUE(result.plans[t].is_valid(controller.scenario().topology,
                                         controller.scenario().slot_input(t)));
  }
}

}  // namespace
}  // namespace palb
