#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ComputesSameResultAsSerial) {
  std::vector<double> parallel_out(257), serial_out(257);
  ThreadPool pool(6);
  parallel_for(pool, parallel_out.size(), [&](std::size_t i) {
    parallel_out[i] = static_cast<double>(i) * 1.5 + 1.0;
  });
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    serial_out[i] = static_cast<double>(i) * 1.5 + 1.0;
  }
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw InvalidArgument("i==37");
                            }),
               InvalidArgument);
}

TEST(ParallelFor, TransientPoolOverload) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, DefaultSizeIsHardwareBound) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace palb
