#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ComputesSameResultAsSerial) {
  std::vector<double> parallel_out(257), serial_out(257);
  ThreadPool pool(6);
  parallel_for(pool, parallel_out.size(), [&](std::size_t i) {
    parallel_out[i] = static_cast<double>(i) * 1.5 + 1.0;
  });
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    serial_out[i] = static_cast<double>(i) * 1.5 + 1.0;
  }
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw InvalidArgument("i==37");
                            }),
               InvalidArgument);
}

TEST(ParallelFor, TransientPoolOverload) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, DefaultSizeIsHardwareBound) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), InvalidArgument);
}

TEST(ThreadPool, ShutdownRunsEveryQueuedJob) {
  // More jobs than workers, then immediate shutdown: the queue must be
  // drained, not dropped.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&executed] { ++executed; }));
  }
  pool.shutdown();
  for (auto& f : futures) f.get();
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPool, ConcurrentSubmitAndShutdownStress) {
  // Producers hammer submit() while the main thread shuts the pool down
  // (and a second thread races the shutdown itself). Every job that
  // submit() accepted must run; late submits must throw, never hang.
  // This is the test the tsan preset exists for.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    constexpr int kProducers = 4;
    std::vector<std::vector<std::future<void>>> futures(kProducers);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 50; ++i) {
          try {
            futures[p].push_back(
                pool.submit([&executed] { ++executed; }));
            ++accepted;
          } catch (const InvalidArgument&) {
            return;  // pool is shutting down; acceptable from here on
          }
        }
      });
    }
    std::thread racing_shutdown([&pool] { pool.shutdown(); });
    pool.shutdown();
    racing_shutdown.join();
    for (auto& t : producers) t.join();
    for (auto& per_producer : futures) {
      for (auto& f : per_producer) f.get();  // accepted => completed
    }
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

TEST(BoundedWorkers, NeverExceedsJobs) {
  EXPECT_EQ(bounded_workers(8, 3), 3u);
  EXPECT_EQ(bounded_workers(2, 100), 2u);
  EXPECT_EQ(bounded_workers(5, 5), 5u);
}

TEST(BoundedWorkers, AtLeastOne) {
  EXPECT_EQ(bounded_workers(4, 0), 1u);
  EXPECT_EQ(bounded_workers(1, 1), 1u);
}

TEST(BoundedWorkers, ZeroRequestsHardwareConcurrency) {
  const std::size_t resolved = bounded_workers(0, 1000);
  EXPECT_GE(resolved, 1u);
  EXPECT_LE(resolved,
            std::max<std::size_t>(1, std::thread::hardware_concurrency()));
}

TEST(ParallelCollect, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const std::vector<int> out = parallel_collect<int>(
      pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelCollect, TransientMatchesSerialAndSingleWorker) {
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i) * 0.5 - 3.0;
  };
  const std::vector<double> one = parallel_collect<double>(1, 64, fn);
  const std::vector<double> many = parallel_collect<double>(4, 64, fn);
  EXPECT_EQ(one, many);
}

TEST(ParallelCollect, ZeroItemsGivesEmpty) {
  EXPECT_TRUE(parallel_collect<int>(3, 0, [](std::size_t) { return 1; })
                  .empty());
}

TEST(ParallelCollect, MovableNonTrivialResults) {
  ThreadPool pool(3);
  const std::vector<std::string> out = parallel_collect<std::string>(
      pool, 9, [](std::size_t i) { return std::string(i, 'x'); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].size(), i);
  }
}

TEST(ParallelFor, LowestIndexExceptionWinsDeterministically) {
  ThreadPool pool(8);
  // Several iterations throw; whichever thread finishes first, the
  // caller must always see the lowest-index failure.
  for (int round = 0; round < 20; ++round) {
    try {
      parallel_for(pool, 64, [](std::size_t i) {
        if (i == 11 || i == 40 || i == 63) {
          throw InvalidArgument("i==" + std::to_string(i));
        }
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("i==11"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ParallelCollect, RandomThrowingSubsetDrainsAndRethrows) {
  // The ISSUE's ThreadPool fault path, run under the tsan preset: a
  // random subset of tasks throwing must never terminate() or deadlock,
  // every non-throwing task must still have executed (workers drain),
  // and the caller gets the first (lowest-index) exception.
  std::mt19937_64 rng(1234);
  ThreadPool pool(8);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 80;
    std::vector<std::uint8_t> throws(n, 0);
    std::size_t first_thrower = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng() % 5 == 0) {
        throws[i] = 1;
        first_thrower = std::min(first_thrower, i);
      }
    }
    std::atomic<std::size_t> executed{0};
    try {
      (void)parallel_collect<int>(pool, n, [&](std::size_t i) -> int {
        ++executed;
        if (throws[i]) {
          throw NumericalError("task " + std::to_string(i));
        }
        return static_cast<int>(i);
      });
      EXPECT_EQ(first_thrower, n) << "round " << round;
    } catch (const NumericalError& e) {
      ASSERT_LT(first_thrower, n) << "round " << round;
      EXPECT_NE(std::string(e.what())
                    .find("task " + std::to_string(first_thrower)),
                std::string::npos)
          << e.what();
    }
    // No worker bailed early: every iteration ran exactly once.
    EXPECT_EQ(executed.load(), n) << "round " << round;
  }
}

}  // namespace
}  // namespace palb
