// Plan-swap coherence under fire: readers hammer Dispatcher::route()
// while a writer publishes thousands of plan versions, and every
// decision must be attributable to exactly one published version —
// versions never run backwards per thread, no route ever stalls on a
// swap, and mid-stream fault-injected swaps never send a request over
// a cut link or into a fully-outaged data center. The tsan preset runs
// this suite (it is the torn-read certificate for the serving path).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "cloud/plan.hpp"
#include "core/balanced_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_handle.hpp"
#include "fault/fault.hpp"
#include "scenario_fixtures.hpp"
#include "serve/admission.hpp"
#include "serve/async_planner.hpp"
#include "serve/dispatcher.hpp"
#include "serve/load_driver.hpp"
#include "serve/routing_table.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

/// All-streams-positive plan whose rates encode `stamp` (so any table
/// compiled from it is attributable by construction).
DispatchPlan stamped_plan(const Topology& topo, double stamp) {
  DispatchPlan plan = DispatchPlan::zero(topo);
  for (auto& per_class : plan.rate) {
    for (auto& per_frontend : per_class) {
      for (double& rate : per_frontend) rate = stamp;
    }
  }
  return plan;
}

TEST(PlanSwapCoherence, ReadersStayCoherentAcross10kPublishes) {
  const Topology topo = small_topology();
  PlanHandle live;
  const serve::Dispatcher dispatcher(topo, live);
  constexpr std::uint64_t kPublishes = 10000;
  constexpr std::size_t kReaders = 4;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> incoherent{0};
  std::atomic<std::uint64_t> routed{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_version = 0;
      std::uint64_t id = r;
      while (!done.load(std::memory_order_acquire)) {
        const serve::Route route =
            dispatcher.route(id % topo.num_classes(),
                             id % topo.num_frontends(), id);
        ++id;
        if (!route.routed()) continue;  // only before the first publish
        routed.fetch_add(1, std::memory_order_relaxed);
        // Attributability: exactly one publish, version in range and
        // never running backwards for this reader.
        if (route.plan_version == 0 || route.plan_version > kPublishes ||
            route.plan_version < last_version) {
          incoherent.fetch_add(1);
        }
        last_version = route.plan_version;
      }
    });
  }

  for (std::uint64_t v = 1; v <= kPublishes; ++v) {
    live.publish(stamped_plan(topo, static_cast<double>(v)));
  }
  // Writer done; let readers observe the final version, then stop them.
  while (dispatcher.table_version() < kPublishes &&
         routed.load(std::memory_order_relaxed) < kPublishes) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  dispatcher.refresh();

  EXPECT_EQ(incoherent.load(), 0u);
  EXPECT_GT(routed.load(), 0u);
  EXPECT_EQ(dispatcher.table_version(), kPublishes);
  const serve::Dispatcher::Stats stats = dispatcher.stats();
  // The zero-stall contract: readers never block behind a table build.
  EXPECT_EQ(stats.stalled_routes, 0u);
  // Rebuilds cannot exceed publishes (each swap targets one version).
  EXPECT_LE(stats.rebuilds, kPublishes);
  EXPECT_GE(stats.rebuilds, 1u);
}

TEST(PlanSwapCoherence, AdmissionGateStaysCoherentAcross10kPublishes) {
  // The PR 10 hammer: the same publish storm, now with the admission
  // gate in front of route(). Readers run the full decide path —
  // admit() (which lazily refreshes the gate) then route() — while the
  // writer lands 10k plan versions, and the gate's table version must
  // never run backwards for any reader nor overshoot the publish count.
  const Topology topo = small_topology();
  PlanHandle live;
  const serve::Dispatcher dispatcher(topo, live);
  const serve::AdmissionController admission(topo, live, small_input());
  constexpr std::uint64_t kPublishes = 10000;
  constexpr std::size_t kReaders = 4;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> admitted_and_routed{0};
  std::atomic<std::uint64_t> incoherent{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_version = 0;
      std::uint64_t id = r;
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t k = id % topo.num_classes();
        const std::size_t s = id % topo.num_frontends();
        if (admission.admit(k, s, id)) {
          const serve::Route route = dispatcher.route(k, s, id);
          if (route.routed()) {
            admitted_and_routed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        const std::shared_ptr<const serve::AdmissionTable> gate =
            admission.table();
        if (gate != nullptr) {
          if (gate->plan_version() > kPublishes ||
              gate->plan_version() < last_version) {
            incoherent.fetch_add(1);
          }
          last_version = gate->plan_version();
        }
        ++id;
      }
    });
  }

  // Rates >= the offered mix everywhere, so admission stays open and the
  // admitted-and-routed counter is guaranteed to move.
  for (std::uint64_t v = 1; v <= kPublishes; ++v) {
    live.publish(stamped_plan(topo, 60.0 + static_cast<double>(v % 7)));
  }
  while (admitted_and_routed.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  admission.refresh();
  dispatcher.refresh();
  EXPECT_EQ(incoherent.load(), 0u);
  EXPECT_GT(admitted_and_routed.load(), 0u);
  EXPECT_EQ(admission.table_version(), kPublishes);
  EXPECT_EQ(dispatcher.table_version(), kPublishes);
  const serve::AdmissionController::Stats stats = admission.stats();
  // One compile per swap target at most; never zero once published.
  EXPECT_GE(stats.rebuilds, 1u);
  EXPECT_LE(stats.rebuilds, kPublishes);
  EXPECT_EQ(dispatcher.stats().stalled_routes, 0u);
}

/// Link fe0->dc0 cut for slots 1-3, DC 0 fully dark for slots 4-6.
FaultSchedule cut_and_outage_schedule() {
  FaultEvent cut;
  cut.kind = FaultKind::kLinkCut;
  cut.first_slot = 1;
  cut.last_slot = 3;
  cut.frontend = 0;
  cut.dc = 0;
  FaultEvent outage;
  outage.kind = FaultKind::kDcOutage;
  outage.first_slot = 4;
  outage.last_slot = 6;
  outage.dc = 0;
  outage.magnitude = 1.0;
  return FaultSchedule({cut, outage});
}

struct Observed {
  std::uint64_t version;
  std::size_t klass, frontend, dc;
};

TEST(PlanSwapCoherence, FaultSwapsNeverRouteToCutLinkOrDarkDc) {
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const FaultSchedule schedule = cut_and_outage_schedule();
  constexpr std::size_t kSlots = 8;

  PlanHandle live;
  const serve::Dispatcher dispatcher(sc.topology, live);
  serve::AsyncPlanner planner(sc, schedule, live);
  BalancedPolicy policy;
  std::future<RunResult> solve = planner.solve_async(policy, kSlots);

  // Readers hammer route() while the ladder applies and publishes the
  // fault-adjusted plans mid-stream; every routed observation is
  // checked against the world of the plan version that produced it.
  constexpr std::size_t kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> routed_total{0};
  std::vector<std::vector<Observed>> seen(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t id = r;
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t k = id % sc.topology.num_classes();
        const std::size_t s = id % sc.topology.num_frontends();
        const serve::Route route = dispatcher.route(k, s, id);
        ++id;
        if (route.routed()) {
          seen[r].push_back({route.plan_version, k, s, route.dc});
          routed_total.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const RunResult run = solve.get();
  // On a loaded machine the whole solve can finish before a reader is
  // ever scheduled; the final plan stays published, so wait for at
  // least one routed observation before stopping them (the suite
  // timeout bounds this if routing were actually broken).
  while (routed_total.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  // Live observations: the version stamp names the slot (plans publish
  // in slot order), and that slot's faulted world must allow the hop.
  std::size_t observations = 0;
  for (const auto& per_reader : seen) {
    for (const Observed& o : per_reader) {
      ASSERT_GE(o.version, 1u);
      ASSERT_LE(o.version, kSlots);
      const FaultedSlot world =
          schedule.materialize(sc, static_cast<std::size_t>(o.version - 1));
      EXPECT_FALSE(world.blocked(o.frontend, o.dc))
          << "version " << o.version << " routed over the cut link";
      EXPECT_GT(world.topology.datacenters[o.dc].num_servers, 0)
          << "version " << o.version << " routed into a dark DC";
      ++observations;
    }
  }
  EXPECT_GT(observations, 0u);

  // Deterministic audit, independent of reader scheduling: the table
  // compiled from every applied plan must exclude cut links and dark
  // DCs for every hash value, not just the ids the readers drew.
  ASSERT_EQ(run.plans.size(), kSlots);
  for (std::size_t t = 0; t < kSlots; ++t) {
    const FaultedSlot world = schedule.materialize(sc, t);
    const serve::RoutingTable table = serve::RoutingTable::compile(
        sc.topology, run.plans[t], static_cast<std::uint64_t>(t + 1));
    for (std::size_t k = 0; k < sc.topology.num_classes(); ++k) {
      for (std::size_t s = 0; s < sc.topology.num_frontends(); ++s) {
        for (const auto& [dc, cum] : table.cdf(k, s)) {
          EXPECT_FALSE(world.blocked(s, dc))
              << "slot " << t << " CDF contains the cut link";
          EXPECT_GT(world.topology.datacenters[dc].num_servers, 0)
              << "slot " << t << " CDF contains a dark DC";
        }
      }
    }
  }
  EXPECT_EQ(dispatcher.stats().stalled_routes, 0u);
}

TEST(PlanSwapCoherence, BatchSnapshotSurvivesSwaps) {
  // The QPS driver's batch surface: a held table snapshot stays valid
  // and keeps routing its own version while newer plans land (RCU grace
  // period at the table layer).
  const Topology topo = small_topology();
  PlanHandle live;
  const serve::Dispatcher dispatcher(topo, live);
  live.publish(stamped_plan(topo, 1.0));
  dispatcher.refresh();
  const std::shared_ptr<const serve::RoutingTable> held =
      dispatcher.tables();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->plan_version(), 1u);
  for (double v = 2.0; v <= 64.0; v += 1.0) {
    live.publish(stamped_plan(topo, v));
  }
  dispatcher.refresh();
  EXPECT_EQ(dispatcher.table_version(), 64u);
  // The held snapshot still routes, still stamped with its own version.
  const serve::Route r = held->route(0, 0, 7);
  ASSERT_TRUE(r.routed());
  EXPECT_EQ(r.plan_version, 1u);
}

}  // namespace
}  // namespace palb
