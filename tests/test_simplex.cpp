#include "solver/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace palb {
namespace {

const SimplexSolver solver;

TEST(Simplex, TextbookTwoVariableMax) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum (2, 6) = 36.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 3.0);
  const int y = lp.add_variable(0, kInfinity, 5.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{y, 2.0}}, Relation::kLe, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGeRows) {
  // min 2x + 3y  s.t. x + y >= 4, x + 3y >= 6. Optimum at (3, 1) = 9.
  LinearProgram lp;
  const int x = lp.add_variable(0, kInfinity, 2.0);
  const int y = lp.add_variable(0, kInfinity, 3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kGe, 6.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 9.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y  s.t. x + y = 3, x <= 1. Optimum (1, 2) = 5.
  LinearProgram lp;
  const int x = lp.add_variable(0, 1.0, 1.0);
  const int y = lp.add_variable(0, kInfinity, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 3.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  const int x = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(solver.solve(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsBoundInfeasibility) {
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 5.0);
  EXPECT_EQ(solver.solve(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 1.0);
  const int y = lp.add_variable(0, kInfinity, 0.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLe, 1.0);
  EXPECT_EQ(solver.solve(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, HandlesVariableUpperBounds) {
  // max x + y with x <= 2, y <= 3 via bounds only.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  lp.add_variable(0.0, 2.0, 1.0);
  lp.add_variable(0.0, 3.0, 1.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-8);
}

TEST(Simplex, HandlesShiftedLowerBounds) {
  // min x with x >= 2.5 and x + y <= 10, y >= 1 -> x = 2.5.
  LinearProgram lp;
  const int x = lp.add_variable(2.5, kInfinity, 1.0);
  const int y = lp.add_variable(1.0, kInfinity, 0.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 10.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.5, 1e-8);
}

TEST(Simplex, HandlesNegativeLowerBounds) {
  // min x + y, x >= -5, y >= -3, x + y >= -6 -> objective -6.
  LinearProgram lp;
  const int x = lp.add_variable(-5.0, kInfinity, 1.0);
  const int y = lp.add_variable(-3.0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, -6.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -6.0, 1e-7);
}

TEST(Simplex, HandlesFreeVariables) {
  // min |shape|: free variable pushed negative by the objective but held
  // by a row: min x s.t. x >= -7 expressed as a row, x free.
  LinearProgram lp;
  const int x = lp.add_variable(-kInfinity, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, -7.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], -7.0, 1e-7);
}

TEST(Simplex, HandlesReflectedVariables) {
  // max x with x in (-inf, 9].
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  lp.add_variable(-kInfinity, 9.0, 1.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 9.0, 1e-8);
}

TEST(Simplex, ObjectiveOffsetIncluded) {
  LinearProgram lp;
  lp.set_objective_offset(100.0);
  lp.add_variable(0.0, 1.0, 1.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 100.0, 1e-8);
}

TEST(Simplex, RedundantRowsAreHarmless) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kEq, 4.0);
  lp.add_constraint({{x, 2.0}}, Relation::kEq, 8.0);  // same hyperplane
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-7);
}

TEST(Simplex, DegenerateVerticesTerminate) {
  // Classic degeneracy: multiple constraints meeting at the optimum.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0, kInfinity, 1.0);
  const int y = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{y, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kLe, 2.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(Simplex, SolutionSatisfiesModel) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int a = lp.add_variable(0.0, 10.0, 4.0);
  const int b = lp.add_variable(1.0, 8.0, -1.0);
  const int c = lp.add_variable(0.0, kInfinity, 2.5);
  lp.add_constraint({{a, 1.0}, {b, 2.0}, {c, 1.0}}, Relation::kLe, 20.0);
  lp.add_constraint({{a, 1.0}, {c, -1.0}}, Relation::kGe, -2.0);
  lp.add_constraint({{b, 1.0}, {c, 1.0}}, Relation::kLe, 12.0);
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.is_feasible(sol.x, 1e-6));
  EXPECT_NEAR(lp.objective_value(sol.x), sol.objective, 1e-6);
}

TEST(ToString, LpStatusNames) {
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
}

/// Property sweep: random bounded LPs solved by simplex must (a) be
/// feasible per the model, (b) dominate a cloud of random feasible points
/// (no random point may beat the "optimum").
class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, DominatesRandomFeasiblePoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = 2 + static_cast<int>(rng.uniform_index(4));  // 2..5 vars
  const int m = 1 + static_cast<int>(rng.uniform_index(4));  // 1..4 rows

  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (int j = 0; j < n; ++j) {
    lp.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(-1.0, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      terms.emplace_back(j, rng.uniform(0.0, 2.0));
    }
    // rhs chosen positive so x = 0 is always feasible -> LP is feasible
    // and bounded (box above).
    lp.add_constraint(terms, Relation::kLe, rng.uniform(1.0, 6.0));
  }

  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  ASSERT_TRUE(lp.is_feasible(sol.x, 1e-6));
  EXPECT_NEAR(lp.objective_value(sol.x), sol.objective, 1e-6);

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> candidate(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      candidate[static_cast<std::size_t>(j)] =
          rng.uniform(0.0, lp.upper_bound(j));
    }
    if (!lp.is_feasible(candidate, 0.0)) continue;
    EXPECT_LE(lp.objective_value(candidate), sol.objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest, ::testing::Range(0, 25));

TEST(SimplexDeterminism, DantzigTiesBreakToLowestIndex) {
  // max x0 + x1 s.t. x0 + x1 <= 1: both columns price identically, so the
  // documented tie-break (lowest column index enters) decides which of
  // the two alternate optima the solver reports. This pins the plan-level
  // determinism contract: ties must resolve to (1, 0), never (0, 1).
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x0 = lp.add_variable(0, kInfinity, 1.0);
  const int x1 = lp.add_variable(0, kInfinity, 1.0);
  lp.add_constraint({{x0, 1.0}, {x1, 1.0}}, Relation::kLe, 1.0);
  SimplexSolver::Options opt;
  opt.record_pivots = true;
  const LpSolution sol = SimplexSolver(opt).solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
  ASSERT_EQ(sol.pivot_log.size(), 1u);
  EXPECT_EQ(sol.pivot_log[0].first, 0);  // internal column of x0
}

TEST(SimplexDeterminism, RepeatedSolvesPivotIdentically) {
  // The same model solved repeatedly — including by a freshly constructed
  // solver — must walk the exact same pivot sequence and reproduce the
  // solution bit-for-bit. This is the regression guard for the
  // deterministic pricing rules (candidate list refilled by full Dantzig
  // scans, lowest-index ties, Bland fallback): any hidden source of
  // nondeterminism (iteration order over a hash map, uninitialized
  // scratch, address-dependent ordering) breaks it.
  Rng rng(20240806);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int n = 12, m = 9;
  for (int j = 0; j < n; ++j) {
    lp.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(-1.0, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) terms.emplace_back(j, rng.uniform(0.0, 2.0));
    lp.add_constraint(terms, Relation::kLe, rng.uniform(2.0, 8.0));
  }
  SimplexSolver::Options opt;
  opt.record_pivots = true;
  const SimplexSolver first_solver(opt);
  const LpSolution first = first_solver.solve(lp);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  ASSERT_FALSE(first.pivot_log.empty());
  for (int rep = 0; rep < 3; ++rep) {
    const SimplexSolver fresh(opt);
    const LpSolution again =
        (rep % 2 == 0 ? first_solver : fresh).solve(lp);
    ASSERT_EQ(again.status, LpStatus::kOptimal);
    EXPECT_EQ(again.pivot_log, first.pivot_log) << "rep " << rep;
    EXPECT_EQ(again.x, first.x) << "rep " << rep;  // bitwise, not NEAR
    EXPECT_EQ(again.objective, first.objective) << "rep " << rep;
    EXPECT_EQ(again.iterations, first.iterations) << "rep " << rep;
  }
}

TEST(SimplexDeterminism, WarmStartedSolvesPivotIdentically) {
  // Warm starts trade pivots for path dependence on the supplied basis —
  // but for a FIXED basis the path must still be reproducible.
  Rng rng(77);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int n = 8, m = 6;
  for (int j = 0; j < n; ++j) {
    lp.add_variable(0.0, rng.uniform(1.0, 3.0), rng.uniform(0.5, 2.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) terms.emplace_back(j, rng.uniform(0.1, 1.5));
    lp.add_constraint(terms, Relation::kLe, rng.uniform(2.0, 6.0));
  }
  SimplexSolver::Options opt;
  opt.record_pivots = true;
  const SimplexSolver solver_rec(opt);
  const LpSolution cold = solver_rec.solve(lp);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  const LpSolution warm1 = solver_rec.solve(lp, &cold.basis);
  const LpSolution warm2 = solver_rec.solve(lp, &cold.basis);
  ASSERT_EQ(warm1.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm1.warm_start_used);
  EXPECT_EQ(warm1.pivot_log, warm2.pivot_log);
  EXPECT_EQ(warm1.x, warm2.x);
  // Same optimum as the cold solve; the arithmetic path differs (the warm
  // install recomputes basics from scratch) so compare numerically.
  EXPECT_NEAR(warm1.objective, cold.objective, 1e-9);
}

}  // namespace
}  // namespace palb
