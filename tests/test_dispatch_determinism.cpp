// The dispatcher fast path's determinism battery: for a fixed (plan,
// seed), the recorded routing decisions of the QPS driver are
// byte-identical no matter how many driver threads partition the
// stream, and identical again on a repeated run. 16 scenarios — the
// four built-ins plus twelve generated worlds — mirroring the parallel
// slot-pipeline sweep (test_parallel_determinism.cpp). The tsan preset
// runs this suite, so the same property is certified race-free.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/balanced_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_handle.hpp"
#include "core/scenario_gen.hpp"
#include "serve/dispatcher.hpp"
#include "serve/load_driver.hpp"

namespace palb {
namespace {

struct Case {
  std::string name;
  Scenario scenario;
};

/// Same generated-world envelope as the slot-pipeline determinism sweep:
/// small spaces keep 16 scenarios fast even under TSan.
scenario_gen::Options small_world() {
  scenario_gen::Options opt;
  opt.max_classes = 2;
  opt.max_frontends = 3;
  opt.max_datacenters = 3;
  opt.max_servers = 6;
  opt.max_tuf_levels = 2;
  opt.slots = 6;
  return opt;
}

std::vector<Case> sixteen_scenarios() {
  std::vector<Case> cases;
  cases.push_back(
      {"basic-low", paper::basic_synthetic(paper::ArrivalSet::kLow)});
  cases.push_back(
      {"basic-high", paper::basic_synthetic(paper::ArrivalSet::kHigh)});
  cases.push_back({"worldcup", paper::worldcup_study()});
  cases.push_back({"google", paper::google_study()});
  const scenario_gen::Options opt = small_world();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    cases.push_back(
        {"random:" + std::to_string(seed), scenario_gen::generate(seed, opt)});
  }
  return cases;
}

constexpr std::uint64_t kRequests = 1u << 13;

/// Routes `kRequests` stream indices with `threads` drivers against a
/// quiescent plan and returns the recorded decision words.
std::vector<std::uint64_t> record_decisions(
    const serve::Dispatcher& dispatcher, const serve::RequestStream& stream,
    std::size_t threads) {
  serve::QpsOptions opt;
  opt.threads = threads;
  opt.total_requests = kRequests;
  opt.record_decisions = true;
  const serve::QpsReport report = run_qps(dispatcher, stream, opt);
  EXPECT_EQ(report.requests, kRequests);
  EXPECT_EQ(report.dispatcher.stalled_routes, 0u);
  return report.decisions;
}

TEST(DispatchDeterminism, DecisionsByteIdenticalAcrossThreadCounts) {
  for (const Case& c : sixteen_scenarios()) {
    PlanHandle live;
    const serve::Dispatcher dispatcher(c.scenario.topology, live);
    BalancedPolicy policy;
    live.publish(
        policy.plan_slot(c.scenario.topology, c.scenario.slot_input(0)));
    const serve::RequestStream stream = serve::RequestStream::compile(
        c.scenario.topology, c.scenario.slot_input(0), /*seed=*/17);

    const std::vector<std::uint64_t> lone =
        record_decisions(dispatcher, stream, 1);
    ASSERT_EQ(lone.size(), kRequests) << c.name;
    for (const std::size_t threads : {2u, 4u}) {
      const std::vector<std::uint64_t> many =
          record_decisions(dispatcher, stream, threads);
      EXPECT_EQ(lone, many)
          << c.name << ": decisions diverge at " << threads << " threads";
    }
    // Every routed request attributable to exactly the one published
    // plan (version stamp in the high bits of each decision word).
    for (const std::uint64_t word : lone) {
      if (word != 0) {
        EXPECT_EQ(word >> 16, live.version()) << c.name;
      }
    }
  }
}

TEST(DispatchDeterminism, RepeatedRunsAreByteIdentical) {
  for (const Case& c : sixteen_scenarios()) {
    PlanHandle live;
    const serve::Dispatcher dispatcher(c.scenario.topology, live);
    BalancedPolicy policy;
    live.publish(
        policy.plan_slot(c.scenario.topology, c.scenario.slot_input(0)));
    const serve::RequestStream stream = serve::RequestStream::compile(
        c.scenario.topology, c.scenario.slot_input(0), /*seed=*/23);
    const std::vector<std::uint64_t> first =
        record_decisions(dispatcher, stream, 4);
    const std::vector<std::uint64_t> second =
        record_decisions(dispatcher, stream, 4);
    EXPECT_EQ(first, second) << c.name;
  }
}

TEST(DispatchDeterminism, SeedSelectsADifferentStream) {
  // The seed must matter (otherwise "seeded synthetic request streams"
  // is vacuous): two seeds over the same plan produce different
  // decision sequences while each remains internally deterministic.
  const Scenario sc = paper::worldcup_study();
  PlanHandle live;
  const serve::Dispatcher dispatcher(sc.topology, live);
  BalancedPolicy policy;
  live.publish(policy.plan_slot(sc.topology, sc.slot_input(0)));
  const serve::RequestStream a =
      serve::RequestStream::compile(sc.topology, sc.slot_input(0), 1);
  const serve::RequestStream b =
      serve::RequestStream::compile(sc.topology, sc.slot_input(0), 2);
  EXPECT_NE(record_decisions(dispatcher, a, 2),
            record_decisions(dispatcher, b, 2));
}

}  // namespace
}  // namespace palb
