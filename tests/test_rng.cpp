#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SubstreamsAreIndependentAndDeterministic) {
  Rng root(99);
  Rng s1 = root.substream(1);
  Rng s2 = root.substream(2);
  Rng s1_again = root.substream(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s1.next_u64() == s2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(4);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(7);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgument);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  EXPECT_NEAR(m, mean, std::max(0.05, 0.03 * mean));
  EXPECT_NEAR(var, mean, std::max(0.2, 0.08 * mean));
}

INSTANTIATE_TEST_SUITE_P(MeanSweep, RngPoissonTest,
                         ::testing::Values(0.5, 2.0, 8.0, 25.0, 60.0, 300.0));

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(8);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, LognormalMean) {
  // E[exp(N(mu, sigma^2))] = exp(mu + sigma^2/2).
  Rng rng(10);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(0.0, 0.5);
  EXPECT_NEAR(sum / n, std::exp(0.125), 0.02);
}

}  // namespace
}  // namespace palb
