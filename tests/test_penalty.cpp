// SLA drop-penalty extension: worthless requests (never admitted,
// unstable, or past the final deadline) forfeit a per-request fee, after
// the penalty TUFs of the authors' predecessor work [17].

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "core/scenario_json.hpp"
#include "core/paper_scenarios.hpp"
#include "scenario_fixtures.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

TEST(Penalty, ZeroPenaltyReproducesPaperLedger) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_DOUBLE_EQ(m.penalty_cost, 0.0);
}

TEST(Penalty, ChargesExactlyTheWorthlessVolume) {
  Topology topo = small_topology();
  topo.classes[0].drop_penalty_per_request = 0.002;
  const SlotInput input = small_input();
  // Serve nothing: every offered class-0 request forfeits the fee.
  const SlotMetrics m =
      evaluate_plan(topo, input, DispatchPlan::zero(topo));
  const double offered0 = input.total_offered(0) * input.slot_seconds;
  EXPECT_NEAR(m.penalty_cost, 0.002 * offered0, 1e-6);
  EXPECT_NEAR(m.net_profit(), -m.penalty_cost, 1e-9);
}

TEST(Penalty, LateCompletionStillForfeits) {
  // A stable queue that misses the final deadline earns nothing AND
  // pays the fee (completion without timeliness is worthless).
  Topology topo = small_topology();
  topo.classes = {{"c", StepTuf::constant(0.01, 0.05), 0.0, 0.001}};
  topo.datacenters.resize(1);
  topo.datacenters[0].service_rate = {100.0};
  topo.datacenters[0].energy_per_request_kwh = {0.0};
  topo.distance_miles = {{0.0}, {0.0}};

  SlotInput input;
  input.arrival_rate = {{30.0, 0.0}};
  input.price = {0.05};
  input.slot_seconds = 3600.0;

  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 30.0;
  plan.dc[0].servers_on = 1;
  plan.dc[0].share = {0.4};  // mu_eff 40, delay 0.1 s > deadline 0.05 s
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_DOUBLE_EQ(m.revenue, 0.0);
  EXPECT_NEAR(m.penalty_cost, 0.001 * 30.0 * 3600.0, 1e-6);
}

TEST(Penalty, OptimizerServesMarginalTrafficUnderPenalty) {
  // Build a class whose utility does not cover its wire cost: without a
  // penalty the optimizer drops it; with a penalty above the net loss of
  // serving, it serves.
  Topology topo = small_topology();
  topo.classes = {{"marginal", StepTuf::constant(0.001, 0.1), 3e-6, 0.0}};
  for (auto& dc : topo.datacenters) {
    dc.service_rate = {100.0};
    dc.energy_per_request_kwh = {0.001};
  }
  topo.distance_miles = {{800.0, 900.0}, {850.0, 950.0}};  // wire > utility

  SlotInput input;
  input.arrival_rate = {{40.0, 40.0}};
  input.price = {0.05, 0.05};
  input.slot_seconds = 3600.0;

  OptimizedPolicy no_penalty;
  EXPECT_DOUBLE_EQ(no_penalty.plan_slot(topo, input).total_rate(), 0.0);

  topo.classes[0].drop_penalty_per_request = 0.01;  // fee >> serving loss
  OptimizedPolicy with_penalty;
  const DispatchPlan plan = with_penalty.plan_slot(topo, input);
  EXPECT_GT(plan.total_rate(), 0.0);
  // And serving beats dropping on the true ledger.
  const double served_profit = evaluate_plan(topo, input, plan).net_profit();
  const double dropped_profit =
      evaluate_plan(topo, input, DispatchPlan::zero(topo)).net_profit();
  EXPECT_GT(served_profit, dropped_profit);
}

TEST(Penalty, ScenarioJsonRoundTripsTheFee) {
  Scenario sc = paper::google_study();
  sc.topology.classes[0].drop_penalty_per_request = 0.0042;
  const Scenario back =
      scenario_json::from_json(scenario_json::to_json(sc));
  EXPECT_DOUBLE_EQ(back.topology.classes[0].drop_penalty_per_request,
                   0.0042);
  EXPECT_DOUBLE_EQ(back.topology.classes[1].drop_penalty_per_request, 0.0);
}

TEST(Penalty, ValidationRejectsNegative) {
  Topology topo = small_topology();
  topo.classes[1].drop_penalty_per_request = -0.1;
  EXPECT_THROW(topo.validate(), InvalidArgument);
}

TEST(Penalty, AccumulateCarriesPenalty) {
  SlotMetrics a, b;
  a.penalty_cost = 2.5;
  b.penalty_cost = 1.5;
  const SlotMetrics total = accumulate({a, b});
  EXPECT_DOUBLE_EQ(total.penalty_cost, 4.0);
  EXPECT_DOUBLE_EQ(total.net_profit(), -4.0);
}

}  // namespace
}  // namespace palb
