#include "solver/milp.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace palb {
namespace {

const MilpSolver solver;

TEST(Milp, PureLpPassesThrough) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  lp.add_variable(0.0, 3.5, 2.0);
  const MilpSolution sol = solver.solve(lp, {});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-7);
}

TEST(Milp, RoundsDownFractionalOptimum) {
  // max x s.t. 2x <= 7, x integer -> x = 3.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_constraint({{x, 2.0}}, Relation::kLe, 7.0);
  const MilpSolution sol = solver.solve(lp, {x});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
}

TEST(Milp, KnapsackAgainstBruteForce) {
  // 0/1 knapsack with 8 items; brute force is the oracle.
  const std::vector<double> value = {9, 7, 6, 5, 12, 3, 8, 4};
  const std::vector<double> weight = {4, 3, 3, 2, 6, 1, 5, 2};
  const double capacity = 11.0;

  double best = 0.0;
  for (int mask = 0; mask < (1 << 8); ++mask) {
    double v = 0.0, w = 0.0;
    for (int i = 0; i < 8; ++i) {
      if (mask & (1 << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    }
    if (w <= capacity) best = std::max(best, v);
  }

  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<int> ints;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 8; ++i) {
    const int v = lp.add_variable(0.0, 1.0, value[static_cast<std::size_t>(i)]);
    ints.push_back(v);
    row.emplace_back(v, weight[static_cast<std::size_t>(i)]);
  }
  lp.add_constraint(row, Relation::kLe, capacity);
  const MilpSolution sol = solver.solve(lp, ints);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, best, 1e-6);
  for (int v : ints) {
    const double x = sol.x[static_cast<std::size_t>(v)];
    EXPECT_NEAR(x, std::round(x), 1e-6);
  }
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2i + c  s.t. i + c <= 4.3, c <= 1.8, i integer -> i=2, c=1.8? No:
  // i + c <= 4.3 allows i=4,c=0.3 -> 8.3; check against that.
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int i = lp.add_variable(0.0, kInfinity, 2.0);
  const int c = lp.add_variable(0.0, 1.8, 1.0);
  lp.add_constraint({{i, 1.0}, {c, 1.0}}, Relation::kLe, 4.3);
  const MilpSolution sol = solver.solve(lp, {i});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 0.3, 1e-6);
  EXPECT_NEAR(sol.objective, 8.3, 1e-6);
}

TEST(Milp, InfeasibleIntegerBand) {
  // 1.2 <= x <= 1.8 with x integer has no solution.
  LinearProgram lp;
  const int x = lp.add_variable(1.2, 1.8, 1.0);
  const MilpSolution sol = solver.solve(lp, {x});
  EXPECT_EQ(sol.status, MilpStatus::kInfeasible);
}

TEST(Milp, InfeasibleLpReported) {
  LinearProgram lp;
  const int x = lp.add_variable(0.0, 1.0, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 3.0);
  EXPECT_EQ(solver.solve(lp, {x}).status, MilpStatus::kInfeasible);
}

TEST(Milp, UnboundedReported) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0.0, kInfinity, 1.0);
  EXPECT_EQ(solver.solve(lp, {x}).status, MilpStatus::kUnbounded);
}

TEST(Milp, NodeLimitReported) {
  MilpSolver::Options opt;
  opt.max_nodes = 1;
  const MilpSolver limited(opt);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  const int x = lp.add_variable(0.0, kInfinity, 1.0);
  const int y = lp.add_variable(0.0, kInfinity, 1.0);
  lp.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kLe, 7.0);
  const MilpSolution sol = limited.solve(lp, {x, y});
  EXPECT_EQ(sol.status, MilpStatus::kNodeLimit);
}

TEST(Milp, MinimizationDirection) {
  // min 3x + 2y  s.t. x + y >= 2.5, x,y integer -> (0,3) or (1,2): cost 6
  // vs 7 -> 6.
  LinearProgram lp;
  const int x = lp.add_variable(0.0, kInfinity, 3.0);
  const int y = lp.add_variable(0.0, kInfinity, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 2.5);
  const MilpSolution sol = solver.solve(lp, {x, y});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 6.0, 1e-6);
}

TEST(Milp, RejectsBadIntegerIndex) {
  LinearProgram lp;
  lp.add_variable();
  EXPECT_THROW(solver.solve(lp, {5}), InvalidArgument);
}

class MilpRandomKnapsack : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomKnapsack, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  const int n = 6;
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.uniform(1.0, 10.0);
    weight[static_cast<std::size_t>(i)] = rng.uniform(1.0, 6.0);
  }
  const double capacity = rng.uniform(5.0, 15.0);

  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0.0, w = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    }
    if (w <= capacity) best = std::max(best, v);
  }

  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<int> ints;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < n; ++i) {
    const int v =
        lp.add_variable(0.0, 1.0, value[static_cast<std::size_t>(i)]);
    ints.push_back(v);
    row.emplace_back(v, weight[static_cast<std::size_t>(i)]);
  }
  lp.add_constraint(row, Relation::kLe, capacity);
  const MilpSolution sol = solver.solve(lp, ints);
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomKnapsack, ::testing::Range(0, 15));

}  // namespace
}  // namespace palb
