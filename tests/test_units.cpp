#include "units/units.hpp"

#include <type_traits>

#include <gtest/gtest.h>

#include "cloud/model.hpp"
#include "queueing/mm1.hpp"

namespace palb {
namespace {

namespace u = units;

// ---- Compile-time algebra: the dimension arithmetic itself. ----------------
// These static_asserts are the positive half of the suite; the negative
// half (expressions that must NOT compile) lives in tests/compile_fail/.

// Rate * time -> requests; requests / time -> rate; requests / rate -> time.
static_assert(
    std::is_same_v<decltype(u::ReqPerSec{1.0} * u::Seconds{1.0}),
                   u::Requests>);
static_assert(
    std::is_same_v<decltype(u::Requests{1.0} / u::Seconds{1.0}),
                   u::ReqPerSec>);
static_assert(
    std::is_same_v<decltype(u::Requests{1.0} / u::ReqPerSec{1.0}),
                   u::Seconds>);

// Eq. 2 chain: kWh/req * req/s -> kW; kW * s -> kWh; kWh * $/kWh -> $.
static_assert(std::is_same_v<
              decltype(u::KwhPerReq{1.0} * u::ReqPerSec{1.0}), u::Kw>);
static_assert(std::is_same_v<decltype(u::Kw{1.0} * u::Seconds{1.0}), u::Kwh>);
static_assert(std::is_same_v<
              decltype(u::Kwh{1.0} * u::DollarsPerKwh{1.0}), u::Dollars>);

// Eq. 3 chain: $/req-mile * miles -> $/req; * req/s -> $/s; * s -> $.
static_assert(std::is_same_v<
              decltype(u::DollarsPerReqMile{1.0} * u::Miles{1.0}),
              u::DollarsPerReq>);
static_assert(std::is_same_v<
              decltype(u::DollarsPerReq{1.0} * u::ReqPerSec{1.0}),
              u::DollarsPerSec>);
static_assert(std::is_same_v<
              decltype(u::DollarsPerSec{1.0} * u::Seconds{1.0}), u::Dollars>);

// The LP coefficient: $/req * s -> $.s/req, and back out via a rate.
static_assert(std::is_same_v<
              decltype(u::DollarsPerReq{1.0} * u::Seconds{1.0}),
              u::DollarsPerRate>);
static_assert(std::is_same_v<
              decltype(u::DollarsPerRate{1.0} * u::ReqPerSec{1.0}),
              u::Dollars>);

// Fully cancelled quotients collapse to plain double.
static_assert(std::is_same_v<
              decltype(u::Seconds{1.0} / u::Seconds{2.0}), double>);
static_assert(std::is_same_v<
              decltype(u::kOneRequest /
                       (u::Seconds{1.0} * 1.0 * u::ServiceRate{2.0})),
              double>);

// Tags wash out under dimension-composing algebra...
static_assert(std::is_same_v<
              decltype(u::ServiceRate{1.0} * u::Seconds{1.0}), u::Requests>);
// ... are preserved by scalar and Fraction scaling ...
static_assert(std::is_same_v<decltype(u::ServiceRate{1.0} * 2.0),
                             u::ServiceRate>);
static_assert(std::is_same_v<
              decltype(u::CpuShare{0.5} * u::ServiceRate{1.0}),
              u::ServiceRate>);
// ... and same-dimension different-tag values still compare.
static_assert(u::ArrivalRate{1.0} < u::ServiceRate{2.0});

// Scalar / quantity inverts the dimension.
static_assert(std::is_same_v<
              decltype(1.0 / u::Seconds{2.0}),
              u::Quantity<u::Dim<-1, 0, 0, 0, 0>>>);

// Zero-overhead representation (the fig06 bench gate relies on this).
static_assert(sizeof(u::Quantity<u::TimeDim>) == sizeof(double));
static_assert(sizeof(u::ServiceRate) == sizeof(double));
static_assert(sizeof(u::Fraction) == sizeof(double));
static_assert(std::is_trivially_copyable_v<u::Dollars>);

// Scaled-unit factories are constexpr-correct: 3600 kW for 2 h at
// $0.25/kWh is exactly $1800 (all values exactly representable, so the
// equality is safe to assert at compile time).
static_assert(u::kilowatts(3600.0) * u::hours(2.0) *
                  u::DollarsPerKwh{0.25} ==
              u::Dollars{1800.0});
static_assert(u::as_kilowatts(u::kilowatts(7.5)) == 7.5);
static_assert(u::hours(0.5) == u::seconds(1800.0));

TEST(Units, ArithmeticMatchesRawDoubles) {
  const u::ReqPerSec rate{12.5};
  const u::Seconds slot{3600.0};
  EXPECT_EQ((rate * slot).value(), 12.5 * 3600.0);
  EXPECT_EQ((rate * slot / slot).value(), 12.5 * 3600.0 / 3600.0);
  EXPECT_EQ((u::kOneRequest / rate).value(), 1.0 / 12.5);
}

TEST(Units, AccumulationOperators) {
  u::DollarsPerSec total{};
  total += u::DollarsPerReq{0.1} * u::ReqPerSec{10.0};
  total += u::DollarsPerReq{0.2} * u::ReqPerSec{5.0};
  EXPECT_DOUBLE_EQ(total.value(), 0.1 * 10.0 + 0.2 * 5.0);
  total -= u::DollarsPerSec{1.0};
  EXPECT_DOUBLE_EQ(total.value(), 0.1 * 10.0 + 0.2 * 5.0 - 1.0);
}

TEST(Units, ExplicitRetagIsAllowed) {
  const u::ArrivalRate lambda{4.0};
  const u::ServiceRate as_mu{lambda};  // explicit role assertion
  EXPECT_EQ(as_mu.value(), 4.0);
  const u::ReqPerSec untagged{u::ServiceRate{9.0}};
  EXPECT_EQ(untagged.value(), 9.0);
}

TEST(Units, FractionScalesQuantities) {
  const u::CpuShare phi{0.25};
  const u::ServiceRate mu{40.0};
  const u::ServiceRate vm = phi * mu;
  EXPECT_EQ(vm.value(), 0.25 * 40.0);
  EXPECT_EQ((mu * phi).value(), 40.0 * 0.25);
}

TEST(Units, FractionAcceptsRenormalizationSlack) {
  // Renormalized share sums can land an ulp above 1; the debug assert
  // must tolerate that (and exact bounds, obviously).
  EXPECT_EQ(u::CpuShare{1.0}.value(), 1.0);
  EXPECT_EQ(u::CpuShare{0.0}.value(), 0.0);
  const double just_above = 1.0 + 1e-12;
  EXPECT_EQ(u::CpuShare{just_above}.value(), just_above);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(UnitsDeathTest, FractionRejectsOutOfRange) {
  EXPECT_DEATH(u::CpuShare{1.5}, "Fraction");
  EXPECT_DEATH(u::CpuShare{-0.5}, "Fraction");
}
#endif

TEST(Units, TypedMm1AgreesWithRawCore) {
  const u::CpuShare phi{0.5};
  const double capacity = 2.0;
  const u::ServiceRate mu{30.0};
  const u::ArrivalRate lambda{10.0};
  EXPECT_EQ(mm1::effective_rate(phi, capacity, mu).value(),
            mm1::effective_rate(0.5, 2.0, 30.0));
  EXPECT_EQ(mm1::expected_delay(phi, capacity, mu, lambda).value(),
            mm1::expected_delay(0.5, 2.0, 30.0, 10.0));
  EXPECT_EQ(mm1::required_share(lambda, capacity, mu, u::Seconds{0.25})
                .value(),
            mm1::required_share(10.0, 2.0, 30.0, 0.25));
  EXPECT_EQ(mm1::max_rate(phi, capacity, mu, u::Seconds{0.25}).value(),
            mm1::max_rate(0.5, 2.0, 30.0, 0.25));
  EXPECT_EQ(mm1::is_stable(phi, capacity, mu, lambda),
            mm1::is_stable(0.5, 2.0, 30.0, 10.0));
}

TEST(Units, ModelAccessorsWrapRawFields) {
  DataCenter dc;
  dc.service_rate = {20.0};
  dc.energy_per_request_kwh = {3e-4};
  dc.idle_power_kw = 1.2;
  EXPECT_EQ(dc.service_rate_of(0).value(), 20.0);
  EXPECT_EQ(dc.energy_per_request(0).value(), 3e-4);
  EXPECT_DOUBLE_EQ(u::as_kilowatts(dc.idle_power()), 1.2);

  SlotInput input;
  input.arrival_rate = {{5.0}};
  input.price = {0.08};
  input.slot_seconds = 3600.0;
  EXPECT_EQ(input.offered(0, 0).value(), 5.0);
  EXPECT_EQ(input.price_at(0).value(), 0.08);
  EXPECT_EQ(input.slot_duration().value(), 3600.0);
}

}  // namespace
}  // namespace palb
