// Differential tests across the three solver layers. On one family of
// random knapsack-style instances the relaxation chain must hold:
//
//   LP relaxation >= MILP optimum >= any NLP-found integer-feasible point
//
// (each layer only *removes* feasible points, so the optima can only
// fall). The MILP claims optimality — the NLP acts as an independent
// adversary trying to beat it, the simplex as the upper bound it must
// stay under. The second half pits the paper's Lagrange level selector
// (Eq. 25/26) against brute-force enumeration of the TUF levels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "solver/lagrange_selector.hpp"
#include "solver/linear_program.hpp"
#include "solver/milp.hpp"
#include "solver/nlp.hpp"
#include "solver/simplex.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

struct Knapsack {
  std::vector<double> value;
  std::vector<double> weight;
  double budget = 0.0;

  std::size_t size() const { return value.size(); }

  double total(const std::vector<double>& x) const {
    double v = 0.0;
    for (std::size_t i = 0; i < size(); ++i) v += value[i] * x[i];
    return v;
  }
  double load(const std::vector<double>& x) const {
    double w = 0.0;
    for (std::size_t i = 0; i < size(); ++i) w += weight[i] * x[i];
    return w;
  }
};

Knapsack random_knapsack(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  Knapsack ks;
  const std::size_t n = 4 + rng.uniform_index(5);  // 4..8 items
  for (std::size_t i = 0; i < n; ++i) {
    ks.value.push_back(rng.uniform(1.0, 10.0));
    ks.weight.push_back(rng.uniform(1.0, 6.0));
  }
  // Budget admits some but not all items, so the instance is non-trivial.
  const double total_weight =
      std::accumulate(ks.weight.begin(), ks.weight.end(), 0.0);
  ks.budget = rng.uniform(0.3, 0.7) * total_weight;
  return ks;
}

LinearProgram knapsack_lp(const Knapsack& ks) {
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<std::pair<int, double>> row;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int var = lp.add_variable(0.0, 1.0, ks.value[i]);
    row.emplace_back(var, ks.weight[i]);
  }
  lp.add_constraint(row, Relation::kLe, ks.budget, "budget");
  return lp;
}

/// The same knapsack as an NLP: maximize value (minimize its negation)
/// over the box, with the budget as an inequality and integrality forced
/// through the non-convex equalities x_i (1 - x_i) = 0. The augmented
/// Lagrangian has no optimality certificate here — it just has to find
/// *some* feasible 0/1 point, which the MILP optimum must then dominate.
NlpProblem knapsack_nlp(const Knapsack& ks) {
  NlpProblem problem;
  problem.dimension = ks.size();
  problem.lower.assign(ks.size(), 0.0);
  problem.upper.assign(ks.size(), 1.0);
  problem.objective = [ks](const std::vector<double>& x) {
    return -ks.total(x);
  };
  problem.inequalities.push_back([ks](const std::vector<double>& x) {
    return ks.load(x) - ks.budget;
  });
  for (std::size_t i = 0; i < ks.size(); ++i) {
    problem.equalities.push_back(
        [i](const std::vector<double>& x) { return x[i] * (1.0 - x[i]); });
  }
  return problem;
}

/// Rounds an NLP point to 0/1 and greedily sheds the worst value/weight
/// items until the budget holds — always lands on an integer-feasible
/// point, whatever the solver returned (the empty selection has zero
/// load, so the loop terminates feasible).
std::vector<double> repair_to_feasible(const Knapsack& ks,
                                       const std::vector<double>& x) {
  std::vector<double> repaired(ks.size(), 0.0);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    repaired[i] = x[i] >= 0.5 ? 1.0 : 0.0;
  }
  while (ks.load(repaired) > ks.budget) {
    std::size_t worst = ks.size();
    double worst_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ks.size(); ++i) {
      if (repaired[i] == 0.0) continue;
      const double ratio = ks.value[i] / ks.weight[i];
      if (ratio < worst_ratio) {
        worst_ratio = ratio;
        worst = i;
      }
    }
    if (worst == ks.size()) break;  // unreachable: empty load is 0
    repaired[worst] = 0.0;
  }
  return repaired;
}

TEST(SolverDifferential, RelaxationChainHoldsOnRandomKnapsacks) {
  constexpr double kTol = 1e-6;
  const SimplexSolver simplex;
  const MilpSolver milp;
  const AugLagSolver nlp;
  int nlp_matched_milp = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Knapsack ks = random_knapsack(seed);
    const LinearProgram lp = knapsack_lp(ks);

    const LpSolution relaxed = simplex.solve(lp);
    ASSERT_EQ(relaxed.status, LpStatus::kOptimal) << "seed " << seed;

    std::vector<int> integer_vars(ks.size());
    std::iota(integer_vars.begin(), integer_vars.end(), 0);
    const MilpSolution integral = milp.solve(lp, integer_vars);
    ASSERT_EQ(integral.status, MilpStatus::kOptimal) << "seed " << seed;

    // Layer 1 vs layer 2: dropping the integrality relaxation can only
    // help, so the LP bound sits on or above the MILP optimum.
    EXPECT_GE(relaxed.objective, integral.objective - kTol)
        << "seed " << seed;
    // The MILP's point must actually be integral and feasible in the LP.
    ASSERT_EQ(integral.x.size(), ks.size());
    for (double xi : integral.x) {
      EXPECT_NEAR(xi, std::round(xi), 1e-6);
    }
    EXPECT_TRUE(lp.is_feasible(integral.x, 1e-6)) << "seed " << seed;

    // Layer 3: the NLP hunts for an integer-feasible point via the big-M
    // style non-convex encoding; whatever it finds, repaired onto the
    // feasible set, must not beat the branch-and-bound optimum.
    std::vector<double> x0(ks.size(), 0.5);
    const NlpResult searched =
        nlp.solve_multistart(knapsack_nlp(ks), x0, 6, Rng(seed));
    const std::vector<double> feasible =
        repair_to_feasible(ks, searched.x.empty() ? x0 : searched.x);
    const double nlp_objective = ks.total(feasible);
    EXPECT_LE(nlp_objective, integral.objective + kTol) << "seed " << seed;
    EXPECT_LE(ks.load(feasible), ks.budget + kTol);
    if (std::abs(nlp_objective - integral.objective) <= 1e-6) {
      ++nlp_matched_milp;
    }
  }
  // The NLP is a heuristic, but on 4-8 item knapsacks the multistart
  // should actually *reach* the optimum a fair share of the time — if it
  // never does, the differential is vacuous.
  EXPECT_GE(nlp_matched_milp, 8);
}

// ---------------------------------------------------------------------
// Lagrange selector vs brute force.

TEST(SolverDifferential, LagrangeSelectorReproducesEveryLevelExactly) {
  Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(6);  // 1..6 levels
    std::vector<double> levels(n);
    double u = rng.uniform(0.5, 1.0);
    for (std::size_t q = 0; q < n; ++q) {
      levels[q] = u;
      u *= rng.uniform(0.3, 0.9);  // strictly decreasing
    }
    for (std::size_t x = 1; x <= n; ++x) {
      EXPECT_NEAR(lagrange_level_select(levels, static_cast<int>(x)),
                  levels[x - 1], 1e-9 * std::max(1.0, levels[x - 1]))
          << "trial " << trial << " level " << x;
    }
  }
}

TEST(SolverDifferential, LagrangeArgmaxMatchesBruteForceEnumeration) {
  // An integer program choosing the TUF level that maximizes
  // utility(x) - price * x can evaluate utility through the Lagrange
  // polynomial instead of a table lookup; both routes must crown the
  // same level with the same net value.
  Rng rng(5150);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(5);  // 2..6 levels
    std::vector<double> levels(n);
    double u = rng.uniform(0.5, 1.0);
    for (std::size_t q = 0; q < n; ++q) {
      levels[q] = u;
      u *= rng.uniform(0.3, 0.9);
    }
    const double price_per_level = rng.uniform(0.0, 0.2);

    int best_brute = -1;
    double best_brute_value = -std::numeric_limits<double>::infinity();
    for (std::size_t x = 1; x <= n; ++x) {
      const double value =
          levels[x - 1] - price_per_level * static_cast<double>(x);
      if (value > best_brute_value) {
        best_brute_value = value;
        best_brute = static_cast<int>(x);
      }
    }

    int best_lagrange = -1;
    double best_lagrange_value = -std::numeric_limits<double>::infinity();
    for (std::size_t x = 1; x <= n; ++x) {
      const double value =
          lagrange_level_select(levels, static_cast<int>(x)) -
          price_per_level * static_cast<double>(x);
      if (value > best_lagrange_value) {
        best_lagrange_value = value;
        best_lagrange = static_cast<int>(x);
      }
    }

    EXPECT_EQ(best_lagrange, best_brute) << "trial " << trial;
    EXPECT_NEAR(best_lagrange_value, best_brute_value, 1e-9);
  }
}

TEST(SolverDifferential, LagrangePolynomialInterpolatesBetweenLevels) {
  // The continuous extension must pass through every integer point and
  // stay finite in between (relaxation solvers probe those values).
  const std::vector<double> levels = {0.9, 0.5, 0.2};
  for (std::size_t x = 1; x <= levels.size(); ++x) {
    EXPECT_NEAR(lagrange_level_polynomial(levels, static_cast<double>(x)),
                levels[x - 1], 1e-9);
  }
  for (double x = 1.0; x <= 3.0; x += 0.125) {
    EXPECT_TRUE(std::isfinite(lagrange_level_polynomial(levels, x)));
  }
}

}  // namespace
}  // namespace palb
