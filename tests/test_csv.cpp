#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaGetsQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteGetsDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvSplit, SimpleFields) {
  const auto fields = csv_split("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvSplit, EmptyFields) {
  const auto fields = csv_split("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvSplit, QuotedCommaAndQuote) {
  const auto fields = csv_split("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
}

TEST(CsvTable, RoundTrip) {
  CsvTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"with,comma", "2"});
  std::ostringstream os;
  table.write(os);
  std::istringstream is(os.str());
  const CsvTable back = CsvTable::read(is);
  ASSERT_EQ(back.rows(), 2u);
  EXPECT_EQ(back.cell(1, 0), "with,comma");
  EXPECT_DOUBLE_EQ(back.cell_as_double(0, 1), 1.5);
}

TEST(CsvTable, ColumnLookup) {
  CsvTable table({"a", "b"});
  EXPECT_EQ(table.column("b"), 1u);
  EXPECT_THROW(table.column("c"), InvalidArgument);
}

TEST(CsvTable, RowWidthEnforced) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(CsvTable, NonNumericCellThrows) {
  CsvTable table({"a"});
  table.add_row({"not-a-number"});
  EXPECT_THROW(table.cell_as_double(0, 0), IoError);
  CsvTable table2({"a"});
  table2.add_row({"1.5x"});
  EXPECT_THROW(table2.cell_as_double(0, 0), IoError);
}

TEST(CsvTable, ReadRejectsRaggedRows) {
  std::istringstream is("a,b\n1,2\n3\n");
  EXPECT_THROW(CsvTable::read(is), IoError);
}

TEST(CsvTable, ReadSkipsBlankLinesAndCr) {
  std::istringstream is("a,b\r\n1,2\r\n\r\n3,4\n");
  const CsvTable table = CsvTable::read(is);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cell(1, 1), "4");
}

TEST(CsvTable, EmptyStreamThrows) {
  std::istringstream is("");
  EXPECT_THROW(CsvTable::read(is), IoError);
}

TEST(CsvTable, MissingFileThrows) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/x.csv"), IoError);
}

TEST(CsvTable, CellRangeChecked) {
  CsvTable table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.cell(1, 0), InvalidArgument);
  EXPECT_THROW(table.cell(0, 1), InvalidArgument);
  EXPECT_THROW(table.row(5), InvalidArgument);
}

// ---- malformed-input diagnostics: errors must carry the source name
// and the 1-based line number so a bad row in a 100k-line trace file is
// findable without a bisect.

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(CsvTable, ReadRecordsSourceAndLineNumbers) {
  std::istringstream is("slot,a\n0,1.5\n\n1,2.5\n");
  const CsvTable table = CsvTable::read(is, "trace.csv");
  EXPECT_EQ(table.source(), "trace.csv");
  // Line numbers survive blank-line skipping: the header is line 1.
  EXPECT_EQ(table.row_line(0), 2u);
  EXPECT_EQ(table.row_line(1), 4u);
  // Programmatic rows have no provenance.
  CsvTable built({"x"});
  built.add_row({"1"});
  EXPECT_EQ(built.source(), "<memory>");
  EXPECT_EQ(built.row_line(0), 0u);
}

TEST(CsvTable, NonNumericCellNamesSourceLineAndColumn) {
  std::istringstream is("slot,rate\n0,12\n1,banana\n");
  const CsvTable table = CsvTable::read(is, "rates.csv");
  const std::string what =
      error_message([&] { (void)table.cell_as_double(1, 1); });
  EXPECT_NE(what.find("rates.csv:3"), std::string::npos) << what;
  EXPECT_NE(what.find("'rate'"), std::string::npos) << what;
  EXPECT_NE(what.find("banana"), std::string::npos) << what;
}

TEST(CsvTable, WidthMismatchNamesSourceAndLine) {
  std::istringstream is("a,b\n1,2\n3\n");
  const std::string what = error_message(
      [&] { (void)CsvTable::read(is, "wide.csv"); });
  EXPECT_NE(what.find("wide.csv:3"), std::string::npos) << what;
  EXPECT_NE(what.find("got 1"), std::string::npos) << what;
  EXPECT_NE(what.find("expected 2"), std::string::npos) << what;
}

TEST(CsvTable, EmbeddedNulRejectedWithLocation) {
  const std::string header_nul =
      std::string("a,b") + '\0' + "c\n1,2\n";
  std::istringstream h(header_nul);
  EXPECT_NE(error_message([&] { (void)CsvTable::read(h, "nul.csv"); })
                .find("nul.csv:1"),
            std::string::npos);

  const std::string row_nul =
      std::string("a,b\n1,2") + '\0' + "\n";
  std::istringstream r(row_nul);
  EXPECT_NE(error_message([&] { (void)CsvTable::read(r, "nul.csv"); })
                .find("nul.csv:2"),
            std::string::npos);
}

TEST(CsvTable, RoundTripPreservesValuesAfterRead) {
  CsvTable table({"slot", "v"});
  table.add_row({"0", "1.25"});
  table.add_row({"1", "2.75"});
  std::ostringstream os;
  table.write(os);
  std::istringstream is(os.str());
  const CsvTable back = CsvTable::read(is, "round.csv");
  ASSERT_EQ(back.rows(), 2u);
  EXPECT_DOUBLE_EQ(back.cell_as_double(0, 1), 1.25);
  EXPECT_DOUBLE_EQ(back.cell_as_double(1, 1), 2.75);
  EXPECT_EQ(back.row_line(1), 3u);
}

}  // namespace
}  // namespace palb
