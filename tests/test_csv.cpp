#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaGetsQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteGetsDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvSplit, SimpleFields) {
  const auto fields = csv_split("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvSplit, EmptyFields) {
  const auto fields = csv_split("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvSplit, QuotedCommaAndQuote) {
  const auto fields = csv_split("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
}

TEST(CsvTable, RoundTrip) {
  CsvTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"with,comma", "2"});
  std::ostringstream os;
  table.write(os);
  std::istringstream is(os.str());
  const CsvTable back = CsvTable::read(is);
  ASSERT_EQ(back.rows(), 2u);
  EXPECT_EQ(back.cell(1, 0), "with,comma");
  EXPECT_DOUBLE_EQ(back.cell_as_double(0, 1), 1.5);
}

TEST(CsvTable, ColumnLookup) {
  CsvTable table({"a", "b"});
  EXPECT_EQ(table.column("b"), 1u);
  EXPECT_THROW(table.column("c"), InvalidArgument);
}

TEST(CsvTable, RowWidthEnforced) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(CsvTable, NonNumericCellThrows) {
  CsvTable table({"a"});
  table.add_row({"not-a-number"});
  EXPECT_THROW(table.cell_as_double(0, 0), IoError);
  CsvTable table2({"a"});
  table2.add_row({"1.5x"});
  EXPECT_THROW(table2.cell_as_double(0, 0), IoError);
}

TEST(CsvTable, ReadRejectsRaggedRows) {
  std::istringstream is("a,b\n1,2\n3\n");
  EXPECT_THROW(CsvTable::read(is), IoError);
}

TEST(CsvTable, ReadSkipsBlankLinesAndCr) {
  std::istringstream is("a,b\r\n1,2\r\n\r\n3,4\n");
  const CsvTable table = CsvTable::read(is);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cell(1, 1), "4");
}

TEST(CsvTable, EmptyStreamThrows) {
  std::istringstream is("");
  EXPECT_THROW(CsvTable::read(is), IoError);
}

TEST(CsvTable, MissingFileThrows) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/x.csv"), IoError);
}

TEST(CsvTable, CellRangeChecked) {
  CsvTable table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.cell(1, 0), InvalidArgument);
  EXPECT_THROW(table.cell(0, 1), InvalidArgument);
  EXPECT_THROW(table.row(5), InvalidArgument);
}

}  // namespace
}  // namespace palb
