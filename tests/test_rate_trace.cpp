#include "workload/rate_trace.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(RateTrace, BasicAccessorsAndWrap) {
  RateTrace t("w", {10.0, 20.0, 30.0});
  EXPECT_EQ(t.slots(), 3u);
  EXPECT_DOUBLE_EQ(t.at(1), 20.0);
  EXPECT_DOUBLE_EQ(t.at(4), 20.0);
  EXPECT_DOUBLE_EQ(t.peak(), 30.0);
  EXPECT_DOUBLE_EQ(t.mean(), 20.0);
  EXPECT_EQ(t.name(), "w");
}

TEST(RateTrace, RejectsEmptyAndNegative) {
  EXPECT_THROW(RateTrace("x", {}), InvalidArgument);
  EXPECT_THROW(RateTrace("x", {1.0, -0.5}), InvalidArgument);
}

TEST(RateTrace, ShiftRotatesForward) {
  RateTrace t("w", {1.0, 2.0, 3.0, 4.0});
  const RateTrace s = t.shifted(1);
  // Value that was at slot 0 now appears at slot 1.
  EXPECT_DOUBLE_EQ(s.at(1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(0), 4.0);
  // Shifting by the period is the identity.
  const RateTrace full = t.shifted(4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(full.at(i), t.at(i));
  }
}

TEST(RateTrace, ShiftPreservesMass) {
  RateTrace t("w", {5.0, 1.0, 7.0, 2.0, 9.0});
  EXPECT_DOUBLE_EQ(t.shifted(3).mean(), t.mean());
  EXPECT_DOUBLE_EQ(t.shifted(3).peak(), t.peak());
}

TEST(RateTrace, ScaledMultiplies) {
  RateTrace t("w", {2.0, 4.0});
  const RateTrace s = t.scaled(1.5);
  EXPECT_DOUBLE_EQ(s.at(0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(1), 6.0);
  EXPECT_THROW(t.scaled(-1.0), InvalidArgument);
}

TEST(RateTrace, ResampledPreservesMassAndShape) {
  RateTrace t("w", {10.0, 30.0, 20.0, 40.0});
  const RateTrace fine = t.resampled(4);
  EXPECT_EQ(fine.slots(), 16u);
  // Linear interpolation of a wrapping signal preserves the mean.
  EXPECT_NEAR(fine.mean(), t.mean(), 1e-9);
  // Interpolation never escapes the original envelope.
  for (double v : fine.values()) {
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 40.0);
  }
  // The ramp from slot 0 (10) toward slot 1 (30) is monotone and stays
  // strictly between the two slot means.
  EXPECT_GT(fine.at(3), 10.0);
  EXPECT_LT(fine.at(3), 30.0);
  EXPECT_LT(fine.at(2), fine.at(3));
}

TEST(RateTrace, ResampledIdentityAndValidation) {
  RateTrace t("w", {5.0, 7.0});
  const RateTrace same = t.resampled(1);
  EXPECT_EQ(same.slots(), 2u);
  EXPECT_DOUBLE_EQ(same.at(1), 7.0);
  EXPECT_THROW(t.resampled(0), InvalidArgument);
}

TEST(RateTrace, WindowWraps) {
  RateTrace t("w", {1.0, 2.0, 3.0});
  const RateTrace w = t.window(2, 3);
  EXPECT_DOUBLE_EQ(w.at(0), 3.0);
  EXPECT_DOUBLE_EQ(w.at(1), 1.0);
  EXPECT_DOUBLE_EQ(w.at(2), 2.0);
  EXPECT_THROW(t.window(0, 0), InvalidArgument);
}

}  // namespace
}  // namespace palb
