#include "core/simple_policies.hpp"

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "scenario_fixtures.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

TEST(NearestPolicy, ProducesValidPlan) {
  NearestPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_TRUE(plan.is_valid(topo, input));
  EXPECT_EQ(policy.name(), "Nearest");
}

TEST(NearestPolicy, PrefersTheCloseDataCenter) {
  NearestPolicy policy;
  const Topology topo = small_topology();  // fe1: 200 vs 1500 miles
  const SlotInput input = small_input(0.2);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  // Light load: everything from fe1 lands at dc1 (closest).
  EXPECT_GT(plan.rate[0][0][0], 0.0);
  EXPECT_DOUBLE_EQ(plan.rate[0][0][1], 0.0);
}

TEST(NearestPolicy, IgnoresPrices) {
  NearestPolicy policy;
  const Topology topo = small_topology();
  SlotInput cheap_far = small_input(0.2);
  cheap_far.price = {0.50, 0.001};  // far DC nearly free
  const DispatchPlan plan = policy.plan_slot(topo, cheap_far);
  // Still routes to the close, expensive one.
  EXPECT_GT(plan.class_dc_rate(0, 0), plan.class_dc_rate(0, 1));
}

TEST(NearestPolicy, SpillsWhenTheCloseOneFills) {
  NearestPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input(4.0);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_GT(plan.class_dc_rate(0, 1) + plan.class_dc_rate(1, 1), 0.0);
  EXPECT_TRUE(plan.is_valid(topo, input));
}

TEST(CostMinPolicy, ProducesValidPlan) {
  CostMinPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_TRUE(plan.is_valid(topo, input));
  EXPECT_EQ(policy.name(), "CostMin");
}

TEST(CostMinPolicy, ServesEverythingItCan) {
  // Volume is lexicographically first: at feasible load, completion is
  // total even when serving costs money.
  CostMinPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input(0.8);
  const SlotMetrics m =
      evaluate_plan(topo, input, policy.plan_slot(topo, input));
  EXPECT_NEAR(m.completed_fraction(), 1.0, 1e-9);
}

TEST(CostMinPolicy, MinimizesCostAmongVolumeMaximalPlans) {
  // Two identical DCs, one with much cheaper energy: all load must go
  // to the cheap one.
  Topology topo = small_topology();
  topo.classes = {{"c", StepTuf::constant(0.01, 0.1), 0.0}};
  for (auto& dc : topo.datacenters) {
    dc.service_rate = {100.0};
    dc.energy_per_request_kwh = {0.004};
  }
  SlotInput input;
  input.arrival_rate = {{50.0, 50.0}};
  input.price = {0.02, 0.14};
  input.slot_seconds = 3600.0;
  CostMinPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_GT(plan.class_dc_rate(0, 0), 0.0);
  EXPECT_NEAR(plan.class_dc_rate(0, 1), 0.0, 1e-6);
}

TEST(CostMinPolicy, BlindToUpperTufBands) {
  // A two-level class at light load: CostMin plans only for the final
  // deadline, so its shares sit at the stability minimum while the
  // optimizer buys the top band. The optimizer must strictly win.
  OptimizedPolicy optimized;
  CostMinPolicy costmin;
  const Topology topo = small_topology();
  const SlotInput input = small_input(1.0);
  const double opt =
      evaluate_plan(topo, input, optimized.plan_slot(topo, input))
          .net_profit();
  const double cm =
      evaluate_plan(topo, input, costmin.plan_slot(topo, input))
          .net_profit();
  EXPECT_GT(opt, cm);
}

TEST(SimplePolicies, StableWhereverTheyRoute) {
  const Topology topo = small_topology();
  NearestPolicy nearest;
  CostMinPolicy costmin;
  for (double scale : {0.3, 1.0, 5.0, 15.0}) {
    const SlotInput input = small_input(scale);
    for (Policy* policy :
         std::initializer_list<Policy*>{&nearest, &costmin}) {
      const SlotMetrics m =
          evaluate_plan(topo, input, policy->plan_slot(topo, input));
      for (const auto& per_class : m.outcomes) {
        for (const auto& o : per_class) {
          if (o.rate > 1e-9) {
            EXPECT_TRUE(o.stable)
                << policy->name() << " scale=" << scale;
          }
        }
      }
    }
  }
}

TEST(SimplePolicies, ZeroLoadYieldsZeroPlan) {
  const Topology topo = small_topology();
  const SlotInput input = small_input(0.0);
  NearestPolicy nearest;
  CostMinPolicy costmin;
  for (Policy* policy :
       std::initializer_list<Policy*>{&nearest, &costmin}) {
    const DispatchPlan plan = policy->plan_slot(topo, input);
    EXPECT_DOUBLE_EQ(plan.total_rate(), 0.0) << policy->name();
  }
}

}  // namespace
}  // namespace palb
