#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace palb {
namespace {

TEST(Generators, ConstantTrace) {
  const RateTrace t = workload::constant("c", 12.5, 10);
  EXPECT_EQ(t.slots(), 10u);
  EXPECT_DOUBLE_EQ(t.peak(), 12.5);
  EXPECT_DOUBLE_EQ(t.mean(), 12.5);
  EXPECT_THROW(workload::constant("c", -1.0, 10), InvalidArgument);
  EXPECT_THROW(workload::constant("c", 1.0, 0), InvalidArgument);
}

TEST(Generators, WorldCupDeterministicShape) {
  workload::WorldCupParams p;
  p.burst_sigma = 0.0;  // deterministic
  Rng rng(1);
  const RateTrace t = workload::worldcup_like("wc", p, rng);
  ASSERT_EQ(t.slots(), 24u);
  // Trough near 04:00 is close to the base rate; daytime well above it.
  EXPECT_LT(t.at(4), p.base_rate * 1.2);
  EXPECT_GT(t.at(14), p.base_rate * 3.0);
  // Match window boost: 19:00 beats the same diurnal phase without boost.
  workload::WorldCupParams no_boost = p;
  no_boost.match_boost = 1.0;
  Rng rng2(1);
  const RateTrace base = workload::worldcup_like("wc0", no_boost, rng2);
  EXPECT_NEAR(t.at(19), base.at(19) * p.match_boost, 1e-9);
  EXPECT_DOUBLE_EQ(t.at(12), base.at(12));  // outside the window
}

TEST(Generators, WorldCupPhaseShiftRotates) {
  workload::WorldCupParams p;
  p.burst_sigma = 0.0;
  workload::WorldCupParams shifted = p;
  shifted.phase_shift = 5;
  Rng r1(1), r2(1);
  const RateTrace a = workload::worldcup_like("a", p, r1);
  const RateTrace b = workload::worldcup_like("b", shifted, r2);
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_NEAR(b.at(h), a.at((h + 5) % 24), 1e-9);
  }
}

TEST(Generators, WorldCupBurstNoiseIsMeanOne) {
  workload::WorldCupParams p;
  p.burst_sigma = 0.3;
  p.slots = 24;
  workload::WorldCupParams clean = p;
  clean.burst_sigma = 0.0;
  double noisy_sum = 0.0, clean_sum = 0.0;
  for (int rep = 0; rep < 300; ++rep) {
    Rng rng(static_cast<std::uint64_t>(rep) + 100);
    noisy_sum += workload::worldcup_like("n", p, rng).mean();
  }
  Rng rng(1);
  clean_sum = workload::worldcup_like("c", clean, rng).mean();
  EXPECT_NEAR(noisy_sum / 300.0, clean_sum, 0.05 * clean_sum);
}

TEST(Generators, WorldCupValidation) {
  workload::WorldCupParams p;
  p.daily_peak = p.base_rate - 1.0;
  Rng rng(1);
  EXPECT_THROW(workload::worldcup_like("x", p, rng), InvalidArgument);
  p = {};
  p.match_boost = 0.5;
  EXPECT_THROW(workload::worldcup_like("x", p, rng), InvalidArgument);
}

TEST(Generators, GoogleTraceShape) {
  workload::GoogleParams p;
  Rng rng(9);
  const RateTrace t = workload::google_like("g", p, rng);
  EXPECT_EQ(t.slots(), 7u);
  EXPECT_GT(t.mean(), 0.0);
  EXPECT_THROW(
      [] {
        workload::GoogleParams bad;
        bad.lull_probability = 1.5;
        Rng r(1);
        workload::google_like("g", bad, r);
      }(),
      InvalidArgument);
}

TEST(Generators, GoogleLullReducesRate) {
  workload::GoogleParams always_lull;
  always_lull.burst_sigma = 0.0;
  always_lull.lull_probability = 1.0;
  workload::GoogleParams never_lull = always_lull;
  never_lull.lull_probability = 0.0;
  Rng r1(2), r2(2);
  const RateTrace lulled = workload::google_like("l", always_lull, r1);
  const RateTrace flat = workload::google_like("f", never_lull, r2);
  for (std::size_t s = 0; s < lulled.slots(); ++s) {
    EXPECT_NEAR(lulled.at(s), flat.at(s) * always_lull.lull_factor, 1e-9);
  }
}

TEST(Generators, FrontendFamilyIsDiverse) {
  workload::WorldCupParams base;
  base.burst_sigma = 0.0;
  Rng rng(3);
  const auto family = workload::worldcup_frontends(4, base, rng);
  ASSERT_EQ(family.size(), 4u);
  // Later front-ends have larger magnitude (distinct trace days).
  EXPECT_GT(family[3].peak(), family[0].peak());
  // Phases differ: the argmax hour differs between fe0 and fe2.
  auto argmax = [](const RateTrace& t) {
    std::size_t best = 0;
    for (std::size_t h = 1; h < t.slots(); ++h) {
      if (t.at(h) > t.at(best)) best = h;
    }
    return best;
  };
  EXPECT_NE(argmax(family[0]), argmax(family[2]));
}

TEST(Generators, SynthesizeTypesShifts) {
  const RateTrace base("b", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const auto types = workload::synthesize_types(base, 3, 2);
  ASSERT_EQ(types.size(), 3u);
  EXPECT_DOUBLE_EQ(types[0].at(0), 1.0);
  EXPECT_DOUBLE_EQ(types[1].at(2), 1.0);
  EXPECT_DOUBLE_EQ(types[2].at(4), 1.0);
  EXPECT_THROW(workload::synthesize_types(base, 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace palb
