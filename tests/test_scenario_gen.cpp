#include "core/scenario_gen.hpp"

#include <gtest/gtest.h>

#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

TEST(ScenarioGen, DeterministicPerSeed) {
  const Scenario a = scenario_gen::generate(42);
  const Scenario b = scenario_gen::generate(42);
  const Scenario c = scenario_gen::generate(43);
  EXPECT_EQ(a.topology.num_classes(), b.topology.num_classes());
  EXPECT_EQ(a.topology.num_datacenters(), b.topology.num_datacenters());
  EXPECT_DOUBLE_EQ(a.arrivals[0][0].at(5), b.arrivals[0][0].at(5));
  EXPECT_DOUBLE_EQ(a.prices[0].at(7), b.prices[0].at(7));
  // Different seed, different world (with overwhelming probability).
  const bool differs =
      a.topology.num_classes() != c.topology.num_classes() ||
      a.topology.num_datacenters() != c.topology.num_datacenters() ||
      a.arrivals[0][0].at(5) != c.arrivals[0][0].at(5);
  EXPECT_TRUE(differs);
}

TEST(ScenarioGen, RespectsBounds) {
  scenario_gen::Options opt;
  opt.min_classes = opt.max_classes = 2;
  opt.min_frontends = opt.max_frontends = 3;
  opt.min_datacenters = opt.max_datacenters = 5;
  opt.min_servers = 4;
  opt.max_servers = 4;
  opt.slots = 12;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Scenario sc = scenario_gen::generate(seed, opt);
    EXPECT_EQ(sc.topology.num_classes(), 2u);
    EXPECT_EQ(sc.topology.num_frontends(), 3u);
    EXPECT_EQ(sc.topology.num_datacenters(), 5u);
    for (const auto& dc : sc.topology.datacenters) {
      EXPECT_EQ(dc.num_servers, 4);
    }
    EXPECT_EQ(sc.arrivals[0][0].slots(), 12u);
    EXPECT_EQ(sc.prices[0].size(), 12u);
  }
}

TEST(ScenarioGen, EveryWorldIsRunnable) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const Scenario sc = scenario_gen::generate(seed);
    const SlotController controller(sc);
    OptimizedPolicy optimized;
    BalancedPolicy balanced;
    const RunResult opt = controller.run(optimized, 2);
    const RunResult bal = controller.run(balanced, 2);
    EXPECT_GE(opt.total.net_profit(), -1e-6) << "seed " << seed;
    EXPECT_GE(opt.total.net_profit(), bal.total.net_profit() - 1e-6)
        << "seed " << seed;
  }
}

TEST(ScenarioGen, OptionValidation) {
  scenario_gen::Options opt;
  opt.min_classes = 3;
  opt.max_classes = 2;
  EXPECT_THROW(scenario_gen::generate(1, opt), InvalidArgument);
  opt = {};
  opt.slots = 0;
  EXPECT_THROW(scenario_gen::generate(1, opt), InvalidArgument);
  opt = {};
  opt.max_tuf_levels = 0;
  EXPECT_THROW(scenario_gen::generate(1, opt), InvalidArgument);
}

}  // namespace
}  // namespace palb
