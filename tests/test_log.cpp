#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace palb {
namespace {

/// The logger writes to stderr or a registered sink; these tests pin
/// the level gate, the sink-registration contract (no check-then-act
/// window: a message is delivered to exactly the sink registered at
/// emission time, under the sink mutex), and the thread-safety contract
/// (no crashes under concurrent emission + registration churn).

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

/// Restores the default stderr sink on scope exit.
class LogSinkGuard {
 public:
  LogSinkGuard() = default;
  ~LogSinkGuard() { set_log_sink(LogSink{}); }
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet in benches/tests unless asked.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, EmissionBelowThresholdIsDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Captured behaviourally: emitting below threshold must be a no-op
  // (nothing to assert on stderr portably; the call must simply return).
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kInfo, "dropped");
  log_message(LogLevel::kWarn, "dropped");
  SUCCEED();
}

TEST(Log, StreamMacroBuildsMessages) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // keep the test output clean
  PALB_DEBUG << "value=" << 42 << " ratio=" << 1.5;
  PALB_INFO << "composed " << std::string("message");
  PALB_WARN << "warning path";
  SUCCEED();
}

TEST(Log, SinkReceivesLevelPassingMessagesOnly) {
  LogLevelGuard level_guard;
  LogSinkGuard sink_guard;
  set_log_level(LogLevel::kWarn);
  std::vector<std::pair<LogLevel, std::string>> seen;
  set_log_sink([&seen](LogLevel level, const std::string& message) {
    seen.emplace_back(level, message);
  });
  log_message(LogLevel::kDebug, "below threshold");
  log_message(LogLevel::kWarn, "at threshold");
  log_message(LogLevel::kError, "above threshold");
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, LogLevel::kWarn);
  EXPECT_EQ(seen[0].second, "at threshold");
  EXPECT_EQ(seen[1].first, LogLevel::kError);
  EXPECT_EQ(seen[1].second, "above threshold");
}

TEST(Log, SetSinkReturnsThePreviousSink) {
  LogSinkGuard sink_guard;
  LogSink previous = set_log_sink(
      [](LogLevel, const std::string&) { /* first sink */ });
  EXPECT_FALSE(previous);  // default stderr sink reports as empty
  previous = set_log_sink(LogSink{});
  EXPECT_TRUE(previous);  // the first sink comes back out
}

TEST(Log, StreamMacrosReachTheSink) {
  LogLevelGuard level_guard;
  LogSinkGuard sink_guard;
  set_log_level(LogLevel::kDebug);
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& message) {
    lines.push_back(message);
  });
  PALB_DEBUG << "value=" << 42;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "value=42");
}

TEST(Log, ConcurrentEmissionAndSinkChurnIsSafe) {
  // The regression this pins: emitters racing set_log_sink() must never
  // invoke a torn-down sink (the old check-then-act window). The
  // counting sink outlives the churn, so any use-after-swap would be a
  // TSan hit or a crash rather than a flaky count.
  LogLevelGuard level_guard;
  LogSinkGuard sink_guard;
  set_log_level(LogLevel::kDebug);
  struct Counter {
    Mutex mutex;
    std::size_t count PALB_GUARDED_BY(mutex) = 0;
    void bump() PALB_EXCLUDES(mutex) {
      MutexLock lock(mutex);
      ++count;
    }
  };
  auto counter = std::make_shared<Counter>();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        log_message(LogLevel::kError,
                    "thread " + std::to_string(t) + " line " +
                        std::to_string(i));
      }
    });
  }
  threads.emplace_back([&counter] {
    for (int i = 0; i < 50; ++i) {
      set_log_sink([counter](LogLevel, const std::string&) {
        counter->bump();
      });
      set_log_sink([](LogLevel, const std::string&) { /* drop */ });
    }
    set_log_sink([](LogLevel, const std::string&) { /* final: quiet */ });
  });
  for (auto& th : threads) th.join();
  SUCCEED();
}

TEST(Log, ConcurrentEmissionIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        log_message(LogLevel::kDebug,
                    "thread " + std::to_string(t) + " line " +
                        std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

}  // namespace
}  // namespace palb
