#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace palb {
namespace {

/// The logger writes to stderr; these tests pin the level gate and the
/// thread-safety contract (no crashes under concurrent emission).

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet in benches/tests unless asked.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, EmissionBelowThresholdIsDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Captured behaviourally: emitting below threshold must be a no-op
  // (nothing to assert on stderr portably; the call must simply return).
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kInfo, "dropped");
  log_message(LogLevel::kWarn, "dropped");
  SUCCEED();
}

TEST(Log, StreamMacroBuildsMessages) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // keep the test output clean
  PALB_DEBUG << "value=" << 42 << " ratio=" << 1.5;
  PALB_INFO << "composed " << std::string("message");
  PALB_WARN << "warning path";
  SUCCEED();
}

TEST(Log, ConcurrentEmissionIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        log_message(LogLevel::kDebug,
                    "thread " + std::to_string(t) + " line " +
                        std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

}  // namespace
}  // namespace palb
