// Bench-report schema tests (tools/bench_json.hpp): the palb-qps-v1
// section carries the overload counters (shed_requests, retry_count,
// stale_plan_ns), the palb-chaos-v1 section serializes the chaos
// harness verdicts, sections accumulate into one document without
// clobbering each other, and write_file's write/re-parse roundtrip
// self-check holds for documents carrying every section at once.

#include "bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/json.hpp"

namespace palb {
namespace {

/// Unique-ish temp path per test; removed on teardown.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string("/tmp/palb_bench_json_test_") + name + ".json") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

benchjson::QpsResult sample_qps() {
  benchjson::QpsResult q;
  q.scenario = "worldcup";
  q.slots = 24;
  q.threads = 4;
  q.requests = 1000000;
  q.routed = 900000;
  q.no_route = 50000;
  q.qps = 2.5e7;
  q.identical_across_threads = true;
  q.shed_requests = 50000;
  q.retry_count = 2;
  q.stale_plan_ns = 1234567;
  return q;
}

benchjson::ChaosResult sample_chaos() {
  benchjson::ChaosResult c;
  c.scenario = "basic-low";
  c.schedule = "canned-chaos";
  c.slots = 20;
  c.faulted_slots = 11;
  c.stalled_solves = 3;
  c.delayed_publishes = 6;
  c.ttl_escalations = 1;
  c.fallback_rungs = {1, 1, 1, 1, 1, 3, 3, 3, 3, 1};
  c.requests = 40960;
  c.routed = 36000;
  c.no_route = 0;
  c.shed = 4960;
  c.shed_fraction = 0.1211;
  c.max_stale_slots = 3;
  c.mean_stale_slots = 0.45;
  c.stale_plan_ttl_slots = 3;
  c.stalled_routes = 0;
  c.decisions_identical = true;
  c.thread_counts = {1, 2, 4};
  return c;
}

TEST(BenchJson, QpsSectionCarriesTheOverloadCounters) {
  const Json doc = to_json(sample_qps());
  EXPECT_EQ(doc.at("schema").as_string(), benchjson::kQpsSchema);
  EXPECT_EQ(doc.at("shed_requests").as_number(), 50000.0);
  EXPECT_EQ(doc.at("retry_count").as_number(), 2.0);
  EXPECT_EQ(doc.at("stale_plan_ns").as_number(), 1234567.0);
  // Keys are emitted even when zero — consumers never branch on
  // presence.
  benchjson::QpsResult calm = sample_qps();
  calm.shed_requests = 0;
  calm.retry_count = 0;
  calm.stale_plan_ns = 0;
  const Json calm_doc = to_json(calm);
  EXPECT_TRUE(calm_doc.contains("shed_requests"));
  EXPECT_TRUE(calm_doc.contains("retry_count"));
  EXPECT_TRUE(calm_doc.contains("stale_plan_ns"));
  EXPECT_EQ(calm_doc.at("shed_requests").as_number(), 0.0);
}

TEST(BenchJson, ChaosSectionSerializesTheHarnessVerdicts) {
  const Json doc = to_json(sample_chaos());
  EXPECT_EQ(doc.at("schema").as_string(), benchjson::kChaosSchema);
  EXPECT_EQ(doc.at("scenario").as_string(), "basic-low");
  EXPECT_EQ(doc.at("schedule").as_string(), "canned-chaos");
  EXPECT_EQ(doc.at("stalled_solves").as_number(), 3.0);
  EXPECT_EQ(doc.at("ttl_escalations").as_number(), 1.0);
  EXPECT_EQ(doc.at("shed").as_number(), 4960.0);
  EXPECT_EQ(doc.at("max_stale_slots").as_number(), 3.0);
  EXPECT_EQ(doc.at("stalled_routes").as_number(), 0.0);
  EXPECT_TRUE(doc.at("decisions_identical").as_bool());
  EXPECT_EQ(doc.at("fallback_rungs").size(), 10u);
  EXPECT_EQ(doc.at("thread_counts").size(), 3u);
  EXPECT_EQ(doc.at("thread_counts")[2].as_number(), 4.0);
}

TEST(BenchJson, SectionsAccumulateWithoutClobbering) {
  const TempFile file("accumulate");
  // qps lands first in a fresh skeleton...
  Json doc = benchjson::with_qps_section(file.path(), sample_qps());
  benchjson::write_file(file.path(), doc);
  // ...then chaos accumulates into the same document.
  doc = benchjson::with_chaos_section(file.path(), sample_chaos());
  benchjson::write_file(file.path(), doc);
  EXPECT_EQ(doc.at("schema").as_string(), benchjson::kSchema);
  ASSERT_TRUE(doc.contains("qps"));
  ASSERT_TRUE(doc.contains("chaos"));
  EXPECT_EQ(doc.at("qps").at("schema").as_string(), benchjson::kQpsSchema);
  EXPECT_EQ(doc.at("chaos").at("schema").as_string(),
            benchjson::kChaosSchema);
  // Re-writing one section leaves the other untouched.
  benchjson::ChaosResult updated = sample_chaos();
  updated.shed = 9999;
  doc = benchjson::with_chaos_section(file.path(), updated);
  EXPECT_EQ(doc.at("chaos").at("shed").as_number(), 9999.0);
  EXPECT_EQ(doc.at("qps").at("qps").as_number(), 2.5e7);
}

TEST(BenchJson, WriteFileRoundTripsEverySection) {
  const TempFile file("roundtrip");
  Json doc = benchjson::with_qps_section(file.path(), sample_qps());
  benchjson::write_file(file.path(), doc);
  doc = benchjson::with_chaos_section(file.path(), sample_chaos());
  // write_file itself re-parses and compares — a schema that cannot
  // round-trip throws IoError here.
  EXPECT_NO_THROW(benchjson::write_file(file.path(), doc));
}

TEST(BenchJson, UnparseableReportIsReplacedWholesale) {
  const TempFile file("garbage");
  {
    FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not json at all {{{", f);
    std::fclose(f);
  }
  const Json doc = benchjson::with_chaos_section(file.path(), sample_chaos());
  EXPECT_EQ(doc.at("schema").as_string(), benchjson::kSchema);
  EXPECT_TRUE(doc.contains("chaos"));
  EXPECT_FALSE(doc.contains("qps"));
}

}  // namespace
}  // namespace palb
