#include "sim/closed_loop.hpp"

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "fault/resilient_controller.hpp"
#include "market/price_library.hpp"
#include "scenario_fixtures.hpp"
#include "util/error.hpp"
#include "workload/generators.hpp"

namespace palb {
namespace {

Scenario small_scenario(double demand_scale = 1.0) {
  Scenario sc;
  sc.topology = testing_fixtures::small_topology();
  sc.arrivals.resize(2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      sc.arrivals[k].push_back(RateTrace(
          "t", {40.0 * demand_scale, 70.0 * demand_scale,
                30.0 * demand_scale, 55.0 * demand_scale}));
    }
  }
  sc.prices = {prices::flat("a", 0.04, 4), prices::flat("b", 0.08, 4)};
  sc.slot_seconds = 2000.0;
  return sc;
}

TEST(ClosedLoop, ConservationInvariants) {
  const Scenario sc = small_scenario();
  OptimizedPolicy policy;
  ClosedLoopSimulator sim;
  const ClosedLoopResult r = sim.run(sc, policy, 4);
  ASSERT_EQ(r.slots.size(), 4u);

  std::uint64_t arrivals = 0, dispatched = 0, dropped = 0, completed = 0;
  for (const auto& s : r.slots) {
    arrivals += s.arrivals;
    dispatched += s.dispatched;
    dropped += s.dropped;
    completed += s.completions;
    EXPECT_GE(s.revenue, 0.0);
    EXPECT_GE(s.energy_cost, 0.0);
  }
  // `dropped` = front-end rejections + backlog lost to power-downs, so
  // it covers at least the non-dispatched arrivals.
  EXPECT_LE(dispatched, arrivals);
  EXPECT_GE(dropped, arrivals - dispatched);
  // Every dispatched request either completed, was dropped in a
  // migration, or is stranded at the horizon.
  EXPECT_LE(completed + r.stranded, dispatched);
  EXPECT_EQ(completed + r.stranded + (dropped - (arrivals - dispatched)),
            dispatched);
  EXPECT_GT(arrivals, 0u);
  EXPECT_GT(completed, 0u);
}

TEST(ClosedLoop, MatchesAnalyticLedgerOnSteadyState) {
  // Constant rates, constant prices, ample capacity: boundary effects
  // vanish and the closed loop should land near the per-slot analytic
  // chain (per-request utility is the stricter accounting, so allow a
  // modest downward gap but no blow-up).
  Scenario sc = small_scenario(0.8);
  sc.slot_seconds = 8000.0;  // long slots -> transients negligible
  OptimizedPolicy policy;
  const RunResult analytic = SlotController(sc).run(policy, 3);

  OptimizedPolicy loop_policy;
  ClosedLoopSimulator sim;
  const ClosedLoopResult r = sim.run(sc, loop_policy, 3);
  EXPECT_GT(r.total_profit(), 0.55 * analytic.total.net_profit());
  EXPECT_LT(r.total_profit(), 1.05 * analytic.total.net_profit());
}

TEST(ClosedLoop, LatencyStatsAreQueuePlusPropagation) {
  Scenario sc = small_scenario(0.5);
  sc.topology.network_latency_s_per_mile = 1e-4;  // large, visible
  OptimizedPolicy policy;
  ClosedLoopSimulator sim;
  const ClosedLoopResult r = sim.run(sc, policy, 3);
  double min_prop = 1e9;
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t l = 0; l < 2; ++l) {
      min_prop = std::min(min_prop, sc.topology.propagation_delay(s, l));
    }
  }
  for (const auto& slot : r.slots) {
    if (slot.completions > 0) {
      EXPECT_GE(slot.total_latency.min(), min_prop);
    }
  }
}

TEST(ClosedLoop, DeterministicPerSeed) {
  const Scenario sc = small_scenario();
  ClosedLoopSimulator::Options opt;
  opt.seed = 99;
  OptimizedPolicy p1, p2;
  const ClosedLoopResult a = ClosedLoopSimulator(opt).run(sc, p1, 3);
  const ClosedLoopResult b = ClosedLoopSimulator(opt).run(sc, p2, 3);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t t = 0; t < a.slots.size(); ++t) {
    EXPECT_EQ(a.slots[t].arrivals, b.slots[t].arrivals);
    EXPECT_DOUBLE_EQ(a.slots[t].revenue, b.slots[t].revenue);
  }
}

TEST(ClosedLoop, MeasuredPlanningLagsOracleOnSwings) {
  // Demand doubles mid-run: the measured-rates controller plans slot t
  // from slot t-1 and under-provisions the jump.
  Scenario sc = small_scenario();
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      sc.arrivals[k][s] =
          RateTrace("swing", {30.0, 30.0, 140.0, 140.0, 30.0, 140.0});
    }
  }
  ClosedLoopSimulator::Options oracle_opt;
  ClosedLoopSimulator::Options causal_opt;
  causal_opt.planning_input =
      ClosedLoopSimulator::Options::PlanningInput::kMeasuredPreviousSlot;
  OptimizedPolicy p1, p2;
  const double oracle =
      ClosedLoopSimulator(oracle_opt).run(sc, p1, 6).total_profit();
  const double causal =
      ClosedLoopSimulator(causal_opt).run(sc, p2, 6).total_profit();
  EXPECT_GT(oracle, causal);
  EXPECT_GT(causal, 0.0);
}

TEST(ClosedLoop, OptimizedBeatsBalancedInTheLoop) {
  const Scenario sc = paper::google_study();
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  ClosedLoopSimulator::Options opt;
  opt.seed = 5;
  const double a =
      ClosedLoopSimulator(opt).run(sc, optimized, 4).total_profit();
  const double b =
      ClosedLoopSimulator(opt).run(sc, balanced, 4).total_profit();
  EXPECT_GT(a, b);
}

TEST(ClosedLoop, RejectsZeroSlots) {
  const Scenario sc = small_scenario();
  OptimizedPolicy policy;
  ClosedLoopSimulator sim;
  EXPECT_THROW(sim.run(sc, policy, 0), InvalidArgument);
}

TEST(ClosedLoop, EmptyFaultScheduleLeavesTheSamplePathBitIdentical) {
  const Scenario sc = small_scenario();
  ClosedLoopSimulator::Options plain;
  plain.seed = 7;
  ClosedLoopSimulator::Options with_empty_schedule = plain;
  with_empty_schedule.faults = FaultSchedule();
  OptimizedPolicy p1, p2;
  const ClosedLoopResult a = ClosedLoopSimulator(plain).run(sc, p1, 4);
  const ClosedLoopResult b =
      ClosedLoopSimulator(with_empty_schedule).run(sc, p2, 4);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t t = 0; t < a.slots.size(); ++t) {
    EXPECT_EQ(a.slots[t].arrivals, b.slots[t].arrivals);
    EXPECT_EQ(a.slots[t].completions, b.slots[t].completions);
    EXPECT_DOUBLE_EQ(a.slots[t].net_profit(), b.slots[t].net_profit());
    EXPECT_EQ(b.fallback_rungs[t],
              static_cast<int>(FallbackRung::kFullSolve));
  }
  EXPECT_EQ(b.faulted_slots, 0u);
}

TEST(ClosedLoop, ConsumesFaultScheduleMidRunWithoutThrowing) {
  const Scenario sc = small_scenario();
  FaultEvent outage;
  outage.kind = FaultKind::kDcOutage;
  outage.first_slot = 1;
  outage.last_slot = 2;
  outage.dc = 0;
  FaultEvent gap;
  gap.kind = FaultKind::kTraceGap;
  gap.first_slot = 1;
  gap.last_slot = 1;
  FaultEvent crash;
  crash.kind = FaultKind::kSolverFailure;
  crash.first_slot = 2;
  crash.last_slot = 2;
  ClosedLoopSimulator::Options opt;
  opt.faults = FaultSchedule({outage, gap, crash});
  OptimizedPolicy policy;
  ClosedLoopResult r;
  ASSERT_NO_THROW(r = ClosedLoopSimulator(opt).run(sc, policy, 4));
  ASSERT_EQ(r.fallback_rungs.size(), 4u);
  // Slots 1 and 2 are each faulted (overlapping events count once).
  EXPECT_EQ(r.faulted_slots, 2u);
  // The in-loop ladder is {1 policy, 3 previous plan, 5 shed-all}: the
  // forced solver failure at slot 2 falls back to the previous plan.
  EXPECT_EQ(r.fallback_rungs[0],
            static_cast<int>(FallbackRung::kFullSolve));
  EXPECT_EQ(r.fallback_rungs[2],
            static_cast<int>(FallbackRung::kPreviousPlan));
  // The run still serves traffic around the disturbance.
  EXPECT_GT(r.total_profit(), 0.0);
  std::uint64_t arrivals = 0, dispatched = 0;
  for (const auto& s : r.slots) {
    arrivals += s.arrivals;
    dispatched += s.dispatched;
  }
  EXPECT_LE(dispatched, arrivals);
  EXPECT_GT(dispatched, 0u);
}

TEST(ClosedLoop, LinkCutDropsTrafficRoutedOverIt) {
  // Cut every link into dc1 (the stronger DC for class 0 traffic) for
  // the middle slots; the loop must keep running and the cut slots must
  // not route anything over the dark links.
  const Scenario sc = small_scenario();
  FaultEvent cut;
  cut.kind = FaultKind::kLinkCut;
  cut.first_slot = 1;
  cut.last_slot = 2;
  cut.dc = 1;
  ClosedLoopSimulator::Options opt;
  opt.faults = FaultSchedule({cut});
  OptimizedPolicy policy;
  ClosedLoopResult r;
  ASSERT_NO_THROW(r = ClosedLoopSimulator(opt).run(sc, policy, 4));
  EXPECT_EQ(r.faulted_slots, 2u);
  EXPECT_GT(r.total_profit(), 0.0);
}

TEST(ClosedLoop, FaultScheduleValidatedUpFront) {
  const Scenario sc = small_scenario();
  FaultEvent bad;
  bad.kind = FaultKind::kDcOutage;
  bad.dc = 42;
  ClosedLoopSimulator::Options opt;
  opt.faults = FaultSchedule({bad});
  OptimizedPolicy policy;
  EXPECT_THROW(ClosedLoopSimulator(opt).run(sc, policy, 2),
               InvalidArgument);
}

}  // namespace
}  // namespace palb
