// Property-based fuzzing over random scenarios: whatever the topology,
// TUF geometry, prices and load, every policy must emit a structurally
// valid plan and the accounting invariants must hold. This is the
// broadest net in the suite — each seed builds a different system.

#include <gtest/gtest.h>

#include <cstdlib>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

/// Base offset added to every fuzz seed. Defaults to 0 so a given test
/// run is reproducible bit-for-bit (the sanitizer CI pins this); set
/// PALB_FUZZ_SEED_OFFSET=N to explore a fresh block of random systems
/// without touching the code.
std::uint64_t fuzz_seed_offset() {
  static const std::uint64_t offset = [] {
    const char* env = std::getenv("PALB_FUZZ_SEED_OFFSET");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : std::uint64_t{0};
  }();
  return offset;
}

struct FuzzCase {
  Topology topology;
  SlotInput input;
};

FuzzCase make_case(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 11);
  FuzzCase fc;
  const std::size_t K = 1 + rng.uniform_index(3);
  const std::size_t S = 1 + rng.uniform_index(3);
  const std::size_t L = 1 + rng.uniform_index(3);

  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t levels = 1 + rng.uniform_index(3);
    std::vector<double> utilities, deadlines;
    double u = rng.uniform(0.005, 0.05);
    double d = rng.uniform(0.02, 0.2);
    for (std::size_t q = 0; q < levels; ++q) {
      utilities.push_back(u);
      deadlines.push_back(d);
      u *= rng.uniform(0.3, 0.8);
      d *= rng.uniform(1.5, 3.0);
    }
    fc.topology.classes.push_back(
        RequestClass{"k" + std::to_string(k),
                     StepTuf(std::move(utilities), std::move(deadlines)),
                     rng.uniform(0.0, 3e-6),
                     // SLA fees on ~30% of classes (extension knob).
                     rng.bernoulli(0.3) ? rng.uniform(0.0, 0.01) : 0.0});
  }
  // Wire-time extension on ~25% of the worlds.
  if (rng.bernoulli(0.25)) {
    fc.topology.network_latency_s_per_mile = rng.uniform(0.0, 2e-5);
  }
  for (std::size_t s = 0; s < S; ++s) {
    fc.topology.frontends.push_back(FrontEnd{"s" + std::to_string(s)});
  }
  for (std::size_t l = 0; l < L; ++l) {
    DataCenter dc;
    dc.name = "l" + std::to_string(l);
    dc.num_servers = 1 + static_cast<int>(rng.uniform_index(8));
    dc.server_capacity = rng.uniform(0.5, 2.0);
    dc.pue = rng.uniform(1.0, 1.8);
    dc.idle_power_kw = rng.bernoulli(0.3) ? rng.uniform(0.0, 5.0) : 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      dc.service_rate.push_back(rng.uniform(40.0, 250.0));
      dc.energy_per_request_kwh.push_back(rng.uniform(0.0, 0.01));
    }
    fc.topology.datacenters.push_back(std::move(dc));
  }
  fc.topology.distance_miles.assign(S, std::vector<double>(L, 0.0));
  for (auto& row : fc.topology.distance_miles) {
    for (double& d : row) d = rng.uniform(0.0, 3000.0);
  }

  fc.input.arrival_rate.assign(K, std::vector<double>(S, 0.0));
  for (auto& row : fc.input.arrival_rate) {
    for (double& r : row) {
      r = rng.bernoulli(0.1) ? 0.0 : rng.uniform(1.0, 600.0);
    }
  }
  fc.input.price.assign(L, 0.0);
  for (double& p : fc.input.price) p = rng.uniform(0.01, 0.15);
  fc.input.slot_seconds = 3600.0;
  return fc;
}

class PolicyFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyFuzzTest, InvariantsHoldOnRandomSystems) {
  const FuzzCase fc =
      make_case(static_cast<std::uint64_t>(GetParam()) + fuzz_seed_offset());
  ASSERT_NO_THROW(fc.topology.validate());
  ASSERT_NO_THROW(fc.input.validate(fc.topology));

  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  double optimized_profit = 0.0, balanced_profit = 0.0;
  for (Policy* policy :
       std::initializer_list<Policy*>{&optimized, &balanced}) {
    const DispatchPlan plan = policy->plan_slot(fc.topology, fc.input);

    // 1. Structural validity (Eq. 7, Eq. 8, shapes, server budgets).
    const auto violations = plan.violations(fc.topology, fc.input);
    ASSERT_TRUE(violations.empty())
        << policy->name() << ": " << violations.front();

    // 2. Ledger invariants.
    const SlotMetrics m = evaluate_plan(fc.topology, fc.input, plan);
    EXPECT_GE(m.revenue, 0.0);
    EXPECT_GE(m.energy_cost, 0.0);
    EXPECT_GE(m.transfer_cost, 0.0);
    EXPECT_LE(m.dispatched_requests, m.offered_requests + 1e-6);
    EXPECT_LE(m.completed_requests, m.dispatched_requests + 1e-6);
    EXPECT_LE(m.valuable_requests, m.completed_requests + 1e-6);

    // 3. Every stream the policy loaded must be stable (neither policy
    // is allowed to plan an unstable queue).
    for (const auto& per_class : m.outcomes) {
      for (const auto& o : per_class) {
        if (o.rate > 1e-9) {
          EXPECT_TRUE(o.stable) << policy->name();
        }
      }
    }
    (policy == &optimized ? optimized_profit : balanced_profit) =
        m.net_profit();
  }

  // 4. The optimizer is never materially beaten by the static baseline
  // or by serving nothing (with SLA fees the do-nothing floor can be
  // negative — unavoidable fees on unserveable traffic).
  const double do_nothing =
      evaluate_plan(fc.topology, fc.input, DispatchPlan::zero(fc.topology))
          .net_profit();
  EXPECT_GE(optimized_profit, do_nothing - 1e-6);
  EXPECT_GE(optimized_profit, balanced_profit - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyFuzzTest, ::testing::Range(0, 60));

class EnumVsSearchFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EnumVsSearchFuzzTest, LocalSearchStaysNearExhaustive) {
  const FuzzCase fc = make_case(static_cast<std::uint64_t>(GetParam()) +
                                5000 + fuzz_seed_offset());
  OptimizedPolicy::Options exhaustive;
  OptimizedPolicy::Options search;
  search.max_enumerated_profiles = 1;  // force hill climbing
  OptimizedPolicy full(exhaustive), climber(search);
  const double best =
      evaluate_plan(fc.topology, fc.input, full.plan_slot(fc.topology, fc.input))
          .net_profit();
  const double found = evaluate_plan(fc.topology, fc.input,
                                     climber.plan_slot(fc.topology, fc.input))
                           .net_profit();
  if (best > 1e-6) {
    EXPECT_GE(found, 0.7 * best);
  } else {
    // With SLA fees the floor can be negative; hill climbing must still
    // reach at least the do-nothing profit.
    const double do_nothing =
        evaluate_plan(fc.topology, fc.input,
                      DispatchPlan::zero(fc.topology))
            .net_profit();
    EXPECT_GE(found, do_nothing - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumVsSearchFuzzTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace palb
