// Property-based fuzzing over random scenarios: whatever the topology,
// TUF geometry, prices and load, every policy must emit a structurally
// valid plan and the accounting invariants must hold. This is the
// broadest net in the suite — each seed builds a different system.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "check/plan_checker.hpp"
#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

/// Base offset added to every fuzz seed. Defaults to 0 so a given test
/// run is reproducible bit-for-bit (the sanitizer CI pins this); set
/// PALB_FUZZ_SEED_OFFSET=N to explore a fresh block of random systems
/// without touching the code.
std::uint64_t fuzz_seed_offset() {
  static const std::uint64_t offset = [] {
    const char* env = std::getenv("PALB_FUZZ_SEED_OFFSET");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : std::uint64_t{0};
  }();
  return offset;
}

struct FuzzCase {
  Topology topology;
  SlotInput input;
};

FuzzCase make_case(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 11);
  FuzzCase fc;
  const std::size_t K = 1 + rng.uniform_index(3);
  const std::size_t S = 1 + rng.uniform_index(3);
  const std::size_t L = 1 + rng.uniform_index(3);

  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t levels = 1 + rng.uniform_index(3);
    std::vector<double> utilities, deadlines;
    double u = rng.uniform(0.005, 0.05);
    double d = rng.uniform(0.02, 0.2);
    for (std::size_t q = 0; q < levels; ++q) {
      utilities.push_back(u);
      deadlines.push_back(d);
      u *= rng.uniform(0.3, 0.8);
      d *= rng.uniform(1.5, 3.0);
    }
    fc.topology.classes.push_back(
        RequestClass{"k" + std::to_string(k),
                     StepTuf(std::move(utilities), std::move(deadlines)),
                     rng.uniform(0.0, 3e-6),
                     // SLA fees on ~30% of classes (extension knob).
                     rng.bernoulli(0.3) ? rng.uniform(0.0, 0.01) : 0.0});
  }
  // Wire-time extension on ~25% of the worlds.
  if (rng.bernoulli(0.25)) {
    fc.topology.network_latency_s_per_mile = rng.uniform(0.0, 2e-5);
  }
  for (std::size_t s = 0; s < S; ++s) {
    fc.topology.frontends.push_back(FrontEnd{"s" + std::to_string(s)});
  }
  for (std::size_t l = 0; l < L; ++l) {
    DataCenter dc;
    dc.name = "l" + std::to_string(l);
    dc.num_servers = 1 + static_cast<int>(rng.uniform_index(8));
    dc.server_capacity = rng.uniform(0.5, 2.0);
    dc.pue = rng.uniform(1.0, 1.8);
    dc.idle_power_kw = rng.bernoulli(0.3) ? rng.uniform(0.0, 5.0) : 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      dc.service_rate.push_back(rng.uniform(40.0, 250.0));
      dc.energy_per_request_kwh.push_back(rng.uniform(0.0, 0.01));
    }
    fc.topology.datacenters.push_back(std::move(dc));
  }
  fc.topology.distance_miles.assign(S, std::vector<double>(L, 0.0));
  for (auto& row : fc.topology.distance_miles) {
    for (double& d : row) d = rng.uniform(0.0, 3000.0);
  }

  fc.input.arrival_rate.assign(K, std::vector<double>(S, 0.0));
  for (auto& row : fc.input.arrival_rate) {
    for (double& r : row) {
      r = rng.bernoulli(0.1) ? 0.0 : rng.uniform(1.0, 600.0);
    }
  }
  fc.input.price.assign(L, 0.0);
  for (double& p : fc.input.price) p = rng.uniform(0.01, 0.15);
  fc.input.slot_seconds = 3600.0;
  return fc;
}

class PolicyFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyFuzzTest, InvariantsHoldOnRandomSystems) {
  const FuzzCase fc =
      make_case(static_cast<std::uint64_t>(GetParam()) + fuzz_seed_offset());
  ASSERT_NO_THROW(fc.topology.validate());
  ASSERT_NO_THROW(fc.input.validate(fc.topology));

  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  double optimized_profit = 0.0, balanced_profit = 0.0;
  for (Policy* policy :
       std::initializer_list<Policy*>{&optimized, &balanced}) {
    const DispatchPlan plan = policy->plan_slot(fc.topology, fc.input);

    // 1. Structural validity (Eq. 7, Eq. 8, shapes, server budgets).
    const auto violations = plan.violations(fc.topology, fc.input);
    ASSERT_TRUE(violations.empty())
        << policy->name() << ": " << violations.front();

    // 2. Ledger invariants.
    const SlotMetrics m = evaluate_plan(fc.topology, fc.input, plan);
    EXPECT_GE(m.revenue, 0.0);
    EXPECT_GE(m.energy_cost, 0.0);
    EXPECT_GE(m.transfer_cost, 0.0);
    EXPECT_LE(m.dispatched_requests, m.offered_requests + 1e-6);
    EXPECT_LE(m.completed_requests, m.dispatched_requests + 1e-6);
    EXPECT_LE(m.valuable_requests, m.completed_requests + 1e-6);

    // 3. Every stream the policy loaded must be stable (neither policy
    // is allowed to plan an unstable queue).
    for (const auto& per_class : m.outcomes) {
      for (const auto& o : per_class) {
        if (o.rate > 1e-9) {
          EXPECT_TRUE(o.stable) << policy->name();
        }
      }
    }
    (policy == &optimized ? optimized_profit : balanced_profit) =
        m.net_profit();
  }

  // 4. The optimizer is never materially beaten by the static baseline
  // or by serving nothing (with SLA fees the do-nothing floor can be
  // negative — unavoidable fees on unserveable traffic).
  const double do_nothing =
      evaluate_plan(fc.topology, fc.input, DispatchPlan::zero(fc.topology))
          .net_profit();
  EXPECT_GE(optimized_profit, do_nothing - 1e-6);
  EXPECT_GE(optimized_profit, balanced_profit - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyFuzzTest, ::testing::Range(0, 60));

class EnumVsSearchFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EnumVsSearchFuzzTest, LocalSearchStaysNearExhaustive) {
  const FuzzCase fc = make_case(static_cast<std::uint64_t>(GetParam()) +
                                5000 + fuzz_seed_offset());
  OptimizedPolicy::Options exhaustive;
  OptimizedPolicy::Options search;
  search.max_enumerated_profiles = 1;  // force hill climbing
  OptimizedPolicy full(exhaustive), climber(search);
  const double best =
      evaluate_plan(fc.topology, fc.input, full.plan_slot(fc.topology, fc.input))
          .net_profit();
  const double found = evaluate_plan(fc.topology, fc.input,
                                     climber.plan_slot(fc.topology, fc.input))
                           .net_profit();
  if (best > 1e-6) {
    EXPECT_GE(found, 0.7 * best);
  } else {
    // With SLA fees the floor can be negative; hill climbing must still
    // reach at least the do-nothing profit.
    const double do_nothing =
        evaluate_plan(fc.topology, fc.input,
                      DispatchPlan::zero(fc.topology))
            .net_profit();
    EXPECT_GE(found, do_nothing - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumVsSearchFuzzTest,
                         ::testing::Range(0, 20));

/// Exact (bitwise) plan equality — repair() promises idempotence at
/// this strength, not within a tolerance.
bool plans_identical(const DispatchPlan& a, const DispatchPlan& b) {
  if (a.rate != b.rate || a.dc.size() != b.dc.size()) return false;
  for (std::size_t l = 0; l < a.dc.size(); ++l) {
    if (a.dc[l].servers_on != b.dc[l].servers_on ||
        a.dc[l].share != b.dc[l].share) {
      return false;
    }
  }
  return true;
}

class RepairFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RepairFuzzTest, RepairIsIdempotentAndItsOutputPassesCheck) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(GetParam()) + 9000 + fuzz_seed_offset();
  const FuzzCase fc = make_case(seed);
  BalancedPolicy policy;
  const DispatchPlan valid = policy.plan_slot(fc.topology, fc.input);
  const PlanChecker checker;

  // A check-clean plan must come back byte-identical and untouched.
  {
    const PlanRepairReport report =
        checker.repair(fc.topology, fc.input, valid);
    EXPECT_FALSE(report.touched());
    EXPECT_EQ(report.adjustments(), 0u);
    EXPECT_TRUE(plans_identical(report.plan, valid));
  }

  // Corrupt the plan every way the fault taxonomy can: negative and
  // non-finite rates, over-dispatch, share blowups, server budgets.
  Rng rng(seed * 97 + 13);
  DispatchPlan corrupted = valid;
  for (auto& per_class : corrupted.rate) {
    for (auto& row : per_class) {
      for (double& r : row) {
        const double dice = rng.uniform(0.0, 1.0);
        if (dice < 0.15) {
          r = -rng.uniform(0.1, 50.0);
        } else if (dice < 0.25) {
          r = std::numeric_limits<double>::quiet_NaN();
        } else if (dice < 0.35) {
          r = std::numeric_limits<double>::infinity();
        } else if (dice < 0.5) {
          r = (r + 1.0) * rng.uniform(2.0, 20.0);  // over-dispatch
        }
      }
    }
  }
  for (auto& dc : corrupted.dc) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.3) {
      dc.servers_on += 1 + static_cast<int>(rng.uniform_index(100));
    } else if (dice < 0.5) {
      dc.servers_on = -dc.servers_on - 1;
    }
    for (double& phi : dc.share) {
      const double d2 = rng.uniform(0.0, 1.0);
      if (d2 < 0.2) {
        phi = rng.uniform(1.5, 10.0);
      } else if (d2 < 0.3) {
        phi = -rng.uniform(0.1, 2.0);
      } else if (d2 < 0.4) {
        phi = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }

  const PlanRepairReport first =
      checker.repair(fc.topology, fc.input, corrupted);
  EXPECT_TRUE(checker.check(fc.topology, fc.input, first.plan).ok())
      << checker.check(fc.topology, fc.input, first.plan).summary();

  // repair o repair = repair: the second pass finds nothing.
  const PlanRepairReport second =
      checker.repair(fc.topology, fc.input, first.plan);
  EXPECT_EQ(second.adjustments(), 0u);
  EXPECT_FALSE(second.touched());
  EXPECT_TRUE(plans_identical(second.plan, first.plan));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairFuzzTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace palb
