#include "queueing/mg1.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mm1_simulator.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

TEST(Mg1, ExponentialServiceReducesToMm1) {
  // SCV = 1 recovers 1/(mu - lambda).
  EXPECT_NEAR(mg1::expected_sojourn_fcfs(10.0, 6.0, 1.0), 1.0 / 4.0, 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesTheWait) {
  // M/D/1 waits are exactly half the M/M/1 waits.
  const double wait_md1 = mg1::expected_wait_fcfs(10.0, 6.0, 0.0);
  const double wait_mm1 = mg1::expected_wait_fcfs(10.0, 6.0, 1.0);
  EXPECT_NEAR(wait_md1, 0.5 * wait_mm1, 1e-12);
}

TEST(Mg1, WaitGrowsLinearlyInScv) {
  const double w0 = mg1::expected_wait_fcfs(10.0, 5.0, 0.0);
  const double w1 = mg1::expected_wait_fcfs(10.0, 5.0, 1.0);
  const double w3 = mg1::expected_wait_fcfs(10.0, 5.0, 3.0);
  EXPECT_NEAR(w1 - w0, (w3 - w1) / 2.0, 1e-12);
}

TEST(Mg1, PsIsInsensitive) {
  EXPECT_DOUBLE_EQ(mg1::expected_sojourn_ps(10.0, 6.0), 0.25);
}

TEST(Mg1, Validation) {
  EXPECT_THROW(mg1::expected_wait_fcfs(10.0, 10.0, 1.0), InvalidArgument);
  EXPECT_THROW(mg1::expected_wait_fcfs(10.0, 5.0, -1.0), InvalidArgument);
  EXPECT_THROW(mg1::expected_wait_fcfs(0.0, 0.0, 1.0), InvalidArgument);
}

TEST(Mmm, SingleServerMatchesMm1) {
  EXPECT_NEAR(mmm::expected_sojourn(1, 10.0, 6.0), 0.25, 1e-12);
  EXPECT_NEAR(mmm::erlang_c(1, 10.0, 6.0), 0.6, 1e-12);  // rho
}

TEST(Mmm, ErlangCKnownValue) {
  // m=2, mu=1, lambda=1 (offered a=1, rho=0.5): C = 1/3.
  EXPECT_NEAR(mmm::erlang_c(2, 1.0, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(Mmm, PoolingBeatsSplitting) {
  // One pooled M/M/2 beats two separate M/M/1s at the same total load.
  const double pooled = mmm::expected_sojourn(2, 10.0, 12.0);
  const double split = 1.0 / (10.0 - 6.0);  // each M/M/1 sees lambda 6
  EXPECT_LT(pooled, split);
}

TEST(Mmm, SojournDecreasesWithServers) {
  double last = 1e9;
  for (int m = 2; m <= 10; ++m) {
    const double sojourn = mmm::expected_sojourn(m, 5.0, 9.0);
    EXPECT_LT(sojourn, last);
    last = sojourn;
  }
}

TEST(Mmm, ServersForDeadline) {
  const double mu = 5.0, lambda = 9.0;
  const int m = mmm::servers_for_deadline(mu, lambda, 0.25);
  EXPECT_LE(mmm::expected_sojourn(m, mu, lambda), 0.25);
  if (m > 1 && lambda < static_cast<double>(m - 1) * mu) {
    EXPECT_GT(mmm::expected_sojourn(m - 1, mu, lambda), 0.25);
  }
  EXPECT_EQ(mmm::servers_for_deadline(5.0, 0.0, 1.0), 1);
  EXPECT_THROW(mmm::servers_for_deadline(5.0, 9.0, 0.1), InvalidArgument);
}

TEST(Mmm, Validation) {
  EXPECT_THROW(mmm::erlang_c(0, 1.0, 0.5), InvalidArgument);
  EXPECT_THROW(mmm::erlang_c(2, 1.0, 2.0), InvalidArgument);
}

// ---- Empirical validation of the distribution-shape story -------------

struct ShapeCase {
  ServiceDistribution::Kind kind;
  double scv;
};

class Mg1SimulationTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(Mg1SimulationTest, FcfsMatchesPollaczekKhinchine) {
  const ShapeCase c = GetParam();
  Mm1Simulator::Params p;
  p.service_rate = 12.0;
  p.arrival_rate = 7.0;
  p.horizon = 60000.0;
  p.warmup = 500.0;
  p.service.kind = c.kind;
  p.service.scv = c.scv;
  Rng rng(static_cast<std::uint64_t>(c.scv * 100.0) + 41);
  const Mm1SimResult r = Mm1Simulator::run_fcfs(p, rng);
  const double analytic = mg1::expected_sojourn_fcfs(
      p.service_rate, p.arrival_rate, p.service.theoretical_scv());
  ASSERT_GT(r.sojourn.count(), 10000u);
  EXPECT_NEAR(r.sojourn.mean(), analytic, 0.08 * analytic);
}

TEST_P(Mg1SimulationTest, PsIsInsensitiveToShape) {
  // The paper's VM model: whatever the work distribution, the PS mean
  // sojourn equals the M/M/1 value — Eq. 1 is exact for VMs.
  const ShapeCase c = GetParam();
  Mm1Simulator::Params p;
  p.service_rate = 12.0;
  p.arrival_rate = 7.0;
  p.horizon = 60000.0;
  p.warmup = 500.0;
  p.service.kind = c.kind;
  p.service.scv = c.scv;
  Rng rng(static_cast<std::uint64_t>(c.scv * 100.0) + 43);
  const Mm1SimResult r = Mm1Simulator::run_processor_sharing(p, rng);
  const double insensitive =
      mg1::expected_sojourn_ps(p.service_rate, p.arrival_rate);
  ASSERT_GT(r.sojourn.count(), 10000u);
  EXPECT_NEAR(r.sojourn.mean(), insensitive, 0.10 * insensitive);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Mg1SimulationTest,
    ::testing::Values(
        ShapeCase{ServiceDistribution::Kind::kExponential, 1.0},
        ShapeCase{ServiceDistribution::Kind::kDeterministic, 0.0},
        ShapeCase{ServiceDistribution::Kind::kLognormal, 0.5},
        ShapeCase{ServiceDistribution::Kind::kLognormal, 2.0}));

TEST(ServiceDistribution, SampleMoments) {
  Rng rng(9);
  ServiceDistribution logn{ServiceDistribution::Kind::kLognormal, 2.0};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(logn.sample(0.5, rng));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  // SCV = var / mean^2 = 2.
  EXPECT_NEAR(stats.variance() / (stats.mean() * stats.mean()), 2.0, 0.25);

  ServiceDistribution det{ServiceDistribution::Kind::kDeterministic, 0.0};
  EXPECT_DOUBLE_EQ(det.sample(0.7, rng), 0.7);
  EXPECT_DOUBLE_EQ(det.theoretical_scv(), 0.0);
}

}  // namespace
}  // namespace palb
