#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "scenario_fixtures.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

TEST(IdlePower, ZeroIdlePowerReproducesPaperLedger) {
  const Topology topo = small_topology();  // idle_power_kw defaults to 0
  const SlotInput input = small_input();
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics base = evaluate_plan(topo, input, plan);

  Topology with_field = topo;
  for (auto& dc : with_field.datacenters) dc.idle_power_kw = 0.0;
  const SlotMetrics same = evaluate_plan(with_field, input, plan);
  EXPECT_DOUBLE_EQ(base.energy_cost, same.energy_cost);
}

TEST(IdlePower, LedgerChargesPerServerHour) {
  Topology topo = small_topology();
  topo.datacenters[0].idle_power_kw = 0.4;
  const SlotInput input = small_input();

  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 20.0;
  plan.dc[0].servers_on = 3;
  plan.dc[0].share = {0.5, 0.0};
  const SlotMetrics with_idle = evaluate_plan(topo, input, plan);

  topo.datacenters[0].idle_power_kw = 0.0;
  const SlotMetrics without = evaluate_plan(topo, input, plan);
  // 3 servers * 0.4 kW * 1 h * price * PUE(=1).
  EXPECT_NEAR(with_idle.energy_cost - without.energy_cost,
              3.0 * 0.4 * 1.0 * input.price[0], 1e-9);
}

TEST(IdlePower, ValidationRejectsNegative) {
  Topology topo = small_topology();
  topo.datacenters[1].idle_power_kw = -0.1;
  EXPECT_THROW(topo.validate(), InvalidArgument);
}

TEST(IdlePower, OptimizerProfitFallsMonotonically) {
  const SlotInput input = small_input();
  double last = 1e300;
  for (double idle : {0.0, 0.2, 0.5, 1.0}) {
    Topology topo = small_topology();
    for (auto& dc : topo.datacenters) dc.idle_power_kw = idle;
    OptimizedPolicy policy;
    const DispatchPlan plan = policy.plan_slot(topo, input);
    const double profit = evaluate_plan(topo, input, plan).net_profit();
    EXPECT_LE(profit, last + 1e-6) << "idle=" << idle;
    last = profit;
  }
}

TEST(IdlePower, OptimizerStopsServingWhenIdleDwarfsUtility) {
  // With a per-server bill far above any revenue the flow can earn,
  // powering anything is a loss; the optimizer must prefer the zero
  // plan (profit 0 is always in its search space).
  Topology topo = small_topology();
  for (auto& dc : topo.datacenters) dc.idle_power_kw = 1e6;
  const SlotInput input = small_input(0.1);
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_GE(m.net_profit(), 0.0);
  EXPECT_EQ(m.servers_on, 0);
}

TEST(IdlePower, OptimizerAccountsIdleBillInItsChoice) {
  // Two identical DCs except dc1 burns idle power: the optimizer must
  // prefer dc0 once the idle bill outweighs dc0's higher price.
  Topology topo = small_topology();
  topo.classes = {{"c", StepTuf::constant(0.01, 0.1), 0.0}};
  for (auto& dc : topo.datacenters) {
    dc.service_rate = {100.0};
    dc.energy_per_request_kwh = {0.001};
  }
  // Idle bill must beat dc1's per-kWh advantage: moving the ~60 req/s to
  // dc1 saves 0.001 kWh * 60 * 3600 * (0.06-0.04) ~ $4.3/h, so make the
  // single powered server cost well more than that when idle-hungry.
  topo.datacenters[1].idle_power_kw = 500.0;  // $20/h at dc1's price
  SlotInput input;
  input.arrival_rate = {{60.0, 60.0}};
  input.price = {0.06, 0.04};  // dc1 cheaper per kWh, but idle-hungry
  input.slot_seconds = 3600.0;

  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_GT(plan.class_dc_rate(0, 0), plan.class_dc_rate(0, 1));
}

}  // namespace
}  // namespace palb
