#include "core/optimized_policy.hpp"

#include <gtest/gtest.h>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "scenario_fixtures.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

TEST(OptimizedPolicy, ProducesValidPlan) {
  OptimizedPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_TRUE(plan.is_valid(topo, input)) << [&] {
    std::string all;
    for (const auto& v : plan.violations(topo, input)) all += v + "; ";
    return all;
  }();
  EXPECT_GT(policy.profiles_examined(), 0u);
}

TEST(OptimizedPolicy, NetProfitIsNonNegative) {
  // The all-off plan (profit 0) is always in the search space.
  OptimizedPolicy policy;
  const Topology topo = small_topology();
  for (double scale : {0.0, 0.5, 1.0, 5.0, 20.0}) {
    const SlotInput input = small_input(scale);
    const DispatchPlan plan = policy.plan_slot(topo, input);
    const SlotMetrics m = evaluate_plan(topo, input, plan);
    EXPECT_GE(m.net_profit(), -1e-6) << "scale=" << scale;
  }
}

TEST(OptimizedPolicy, BeatsBalancedOnTheFixture) {
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  const Topology topo = small_topology();
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    const SlotInput input = small_input(scale);
    const double opt =
        evaluate_plan(topo, input, optimized.plan_slot(topo, input))
            .net_profit();
    const double bal =
        evaluate_plan(topo, input, balanced.plan_slot(topo, input))
            .net_profit();
    EXPECT_GE(opt, bal - 1e-6) << "scale=" << scale;
  }
}

TEST(OptimizedPolicy, AllRoutedQueuesAreStableAndInBand) {
  OptimizedPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input(3.0);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  for (const auto& per_class : m.outcomes) {
    for (const auto& outcome : per_class) {
      if (outcome.rate <= 0.0) continue;
      EXPECT_TRUE(outcome.stable);
      // Every served stream lands inside some paying band.
      EXPECT_GE(outcome.tuf_level, 0);
    }
  }
}

TEST(OptimizedPolicy, ServesEverythingWhenCapacityIsAmple) {
  OptimizedPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input(0.4);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  // With utilities orders of magnitude above costs, dropping traffic is
  // never optimal at light load.
  EXPECT_NEAR(m.completed_fraction(), 1.0, 1e-9);
}

TEST(OptimizedPolicy, PowersOffIdleDataCenters) {
  OptimizedPolicy policy;
  const Topology topo = small_topology();
  SlotInput input = small_input(0.0);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  for (const auto& dc : plan.dc) EXPECT_EQ(dc.servers_on, 0);
}

TEST(OptimizedPolicy, ChasesCheapElectricityWhenCostsDominate) {
  // Strip wire costs and make energy the whole story: with equal muscle,
  // the optimizer must prefer the cheap-price DC.
  Topology topo = small_topology();
  topo.classes = {{"heavy", StepTuf::constant(0.02, 0.1), 0.0}};
  topo.datacenters[0].service_rate = {100.0};
  topo.datacenters[1].service_rate = {100.0};
  topo.datacenters[0].energy_per_request_kwh = {0.05};
  topo.datacenters[1].energy_per_request_kwh = {0.05};

  SlotInput input;
  input.arrival_rate = {{80.0, 80.0}};  // fits comfortably in one DC
  input.price = {0.03, 0.15};
  input.slot_seconds = 3600.0;

  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_GT(plan.class_dc_rate(0, 0), plan.class_dc_rate(0, 1));
}

TEST(OptimizedPolicy, AvoidsFarDataCenterWhenWireCostsDominate) {
  Topology topo = small_topology();
  topo.classes = {{"chatty", StepTuf::constant(0.01, 0.1), 4e-6}};
  topo.datacenters[0].service_rate = {100.0};
  topo.datacenters[1].service_rate = {100.0};
  topo.datacenters[0].energy_per_request_kwh = {0.001};
  topo.datacenters[1].energy_per_request_kwh = {0.001};
  topo.distance_miles = {{100.0, 2500.0}, {100.0, 2500.0}};

  SlotInput input;
  input.arrival_rate = {{60.0, 60.0}};
  input.price = {0.05, 0.05};
  input.slot_seconds = 3600.0;

  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  EXPECT_GT(plan.class_dc_rate(0, 0), plan.class_dc_rate(0, 1));
}

TEST(OptimizedPolicy, DegradesToLowerBandUnderPressure) {
  // Load exceeding top-band capacity: the two-level class should (partly)
  // run in its second band rather than drop traffic.
  OptimizedPolicy policy;
  const Topology topo = small_topology();
  const SlotInput input = small_input(6.0);
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_GT(m.dispatched_requests, 0.0);
  EXPECT_GE(m.net_profit(), 0.0);
}

TEST(OptimizedPolicy, SpareShareImprovesOrMatchesRealizedProfit) {
  const Topology topo = small_topology();
  const SlotInput input = small_input(0.6);
  OptimizedPolicy::Options with;
  with.distribute_spare_share = true;
  OptimizedPolicy::Options without;
  without.distribute_spare_share = false;
  OptimizedPolicy p_with(with), p_without(without);
  const double profit_with =
      evaluate_plan(topo, input, p_with.plan_slot(topo, input)).net_profit();
  const double profit_without =
      evaluate_plan(topo, input, p_without.plan_slot(topo, input))
          .net_profit();
  EXPECT_GE(profit_with, profit_without - 1e-9);
}

TEST(OptimizedPolicy, SerialAndParallelSweepsAgree) {
  const Topology topo = small_topology();
  const SlotInput input = small_input(1.3);
  OptimizedPolicy::Options serial;
  serial.parallel = false;
  OptimizedPolicy p_serial(serial), p_parallel;
  const double a =
      evaluate_plan(topo, input, p_serial.plan_slot(topo, input))
          .net_profit();
  const double b =
      evaluate_plan(topo, input, p_parallel.plan_slot(topo, input))
          .net_profit();
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(OptimizedPolicy, LocalSearchFindsEnumerationOptimumHere) {
  // Force the local-search path on a space small enough to also
  // enumerate; on this instance the hill climb should reach the optimum.
  const Topology topo = small_topology();
  const SlotInput input = small_input(1.0);
  OptimizedPolicy::Options enumerate_all;
  OptimizedPolicy::Options force_search;
  force_search.max_enumerated_profiles = 1;  // space (3*2)^... > 1
  OptimizedPolicy full(enumerate_all), search(force_search);
  const double best =
      evaluate_plan(topo, input, full.plan_slot(topo, input)).net_profit();
  const double found =
      evaluate_plan(topo, input, search.plan_slot(topo, input)).net_profit();
  EXPECT_GT(found, 0.0);
  EXPECT_GE(found, 0.85 * best);
}

TEST(OptimizedPolicy, TracksLpIterationCounters) {
  OptimizedPolicy policy;
  const Topology topo = small_topology();
  policy.plan_slot(topo, small_input());
  EXPECT_GT(policy.lp_iterations(), 0u);
}

}  // namespace
}  // namespace palb
