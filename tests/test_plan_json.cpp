#include "core/plan_json.hpp"

#include <gtest/gtest.h>

#include "core/optimized_policy.hpp"
#include "scenario_fixtures.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

TEST(PlanJson, RoundTripsAnOptimizedPlan) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);

  const Json doc = plan_json::to_json(plan);
  const DispatchPlan back =
      plan_json::from_json(Json::parse(doc.dump(2)), topo);

  for (std::size_t k = 0; k < topo.num_classes(); ++k) {
    for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
      for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
        EXPECT_DOUBLE_EQ(back.rate[k][s][l], plan.rate[k][s][l]);
      }
    }
  }
  for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
    EXPECT_EQ(back.dc[l].servers_on, plan.dc[l].servers_on);
    EXPECT_EQ(back.dc[l].share, plan.dc[l].share);
  }
  EXPECT_TRUE(back.is_valid(topo, input));
}

TEST(PlanJson, FromJsonShapeChecks) {
  const Topology topo = small_topology();
  const Json doc =
      plan_json::to_json(DispatchPlan::zero(topo));
  // Dropping a data center from every row must be rejected.
  Json truncated = Json::object();
  truncated.set("rate", doc.at("rate"));
  Json dcs = Json::array();
  dcs.push_back(doc.at("datacenters")[0]);
  truncated.set("datacenters", std::move(dcs));
  EXPECT_THROW(plan_json::from_json(truncated, topo), InvalidArgument);
  // Missing section.
  Json empty = Json::object();
  EXPECT_THROW(plan_json::from_json(empty, topo), IoError);
}

TEST(PlanJson, MetricsExportCarriesTheLedger) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  const Json doc = plan_json::metrics_to_json(m);
  EXPECT_DOUBLE_EQ(doc.at("net_profit").as_number(), m.net_profit());
  EXPECT_DOUBLE_EQ(doc.at("revenue").as_number(), m.revenue);
  EXPECT_DOUBLE_EQ(doc.at("servers_on").as_number(),
                   static_cast<double>(m.servers_on));
}

TEST(PlanJson, RunExportHasOneEntryPerSlot) {
  Scenario sc;
  sc.topology = small_topology();
  sc.arrivals.resize(2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      sc.arrivals[k].push_back(RateTrace("t", {40.0, 60.0, 20.0}));
    }
  }
  sc.prices = {PriceTrace("a", {0.04, 0.05, 0.06}),
               PriceTrace("b", {0.08, 0.03, 0.07})};
  const SlotController controller(sc);
  OptimizedPolicy policy;
  const RunResult run = controller.run(policy, 3);
  const Json doc = plan_json::run_to_json(run);
  EXPECT_EQ(doc.at("slots").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("total").at("net_profit").as_number(),
                   run.total.net_profit());
  // Entries parse back into valid plans.
  for (std::size_t t = 0; t < 3; ++t) {
    const DispatchPlan back = plan_json::from_json(
        doc.at("slots")[t].at("plan"), sc.topology);
    EXPECT_TRUE(back.is_valid(sc.topology, sc.slot_input(t)));
  }
}

}  // namespace
}  // namespace palb
