#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "fault/fault_json.hpp"
#include "market/price_library.hpp"
#include "scenario_fixtures.hpp"
#include "util/error.hpp"
#include "workload/generators.hpp"

namespace palb {
namespace {

Scenario small_scenario() {
  Scenario sc;
  sc.topology = testing_fixtures::small_topology();
  sc.arrivals.resize(2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      sc.arrivals[k].push_back(RateTrace(
          "t", {40.0 + 10.0 * static_cast<double>(k + s), 70.0, 30.0,
                55.0}));
    }
  }
  sc.prices = {prices::flat("a", 0.04, 4), prices::flat("b", 0.08, 4)};
  sc.slot_seconds = 3600.0;
  return sc;
}

FaultEvent event(FaultKind kind, std::size_t first, std::size_t last) {
  FaultEvent e;
  e.kind = kind;
  e.first_slot = first;
  e.last_slot = last;
  return e;
}

TEST(FaultSchedule, FaultedAndCountFaulted) {
  FaultEvent outage = event(FaultKind::kDcOutage, 1, 2);
  outage.dc = 0;
  const FaultSchedule schedule({outage});
  EXPECT_FALSE(schedule.faulted(0));
  EXPECT_TRUE(schedule.faulted(1));
  EXPECT_TRUE(schedule.faulted(2));
  EXPECT_FALSE(schedule.faulted(3));
  EXPECT_EQ(schedule.count_faulted(4), 2u);
  EXPECT_EQ(schedule.count_faulted(2, 2), 1u);
  EXPECT_TRUE(FaultSchedule().empty());
}

TEST(FaultSchedule, ValidateRejectsBadEvents) {
  const Topology topo = testing_fixtures::small_topology();

  FaultEvent inverted = event(FaultKind::kSolverFailure, 3, 1);
  EXPECT_THROW(FaultSchedule({inverted}).validate(topo), InvalidArgument);

  FaultEvent out_of_range = event(FaultKind::kDcOutage, 0, 0);
  out_of_range.dc = 7;
  EXPECT_THROW(FaultSchedule({out_of_range}).validate(topo),
               InvalidArgument);

  FaultEvent anonymous_outage = event(FaultKind::kDcOutage, 0, 0);
  EXPECT_THROW(FaultSchedule({anonymous_outage}).validate(topo),
               InvalidArgument);

  FaultEvent bad_fraction = event(FaultKind::kDcOutage, 0, 0);
  bad_fraction.dc = 0;
  bad_fraction.magnitude = 1.5;
  EXPECT_THROW(FaultSchedule({bad_fraction}).validate(topo),
               InvalidArgument);

  FaultEvent bad_spike = event(FaultKind::kPriceSpike, 0, 0);
  bad_spike.magnitude = 0.0;
  EXPECT_THROW(FaultSchedule({bad_spike}).validate(topo), InvalidArgument);
}

TEST(FaultSchedule, OutageRemovesServersAndPartialOutagesStack) {
  const Scenario sc = small_scenario();
  FaultEvent half = event(FaultKind::kDcOutage, 0, 0);
  half.dc = 0;
  half.magnitude = 0.5;
  // Two overlapping half outages of the *original* 4-server fleet stack
  // to a full blackout, not 0.5 * 0.5 = a quarter fleet.
  const FaultSchedule schedule({half, half});
  schedule.validate(sc.topology);
  const FaultedSlot world = schedule.materialize(sc, 0);
  EXPECT_EQ(world.topology.datacenters[0].num_servers, 0);
  EXPECT_EQ(world.topology.datacenters[1].num_servers, 4);
  EXPECT_TRUE(world.faulted);
  EXPECT_FALSE(world.solver_failure);
}

TEST(FaultSchedule, PriceSpikeMultipliesOneOrAllDataCenters) {
  const Scenario sc = small_scenario();
  FaultEvent one = event(FaultKind::kPriceSpike, 0, 0);
  one.dc = 1;
  one.magnitude = 10.0;
  FaultedSlot world = FaultSchedule({one}).materialize(sc, 0);
  EXPECT_DOUBLE_EQ(world.input.price[0], 0.04);
  EXPECT_DOUBLE_EQ(world.input.price[1], 0.8);

  FaultEvent all = event(FaultKind::kPriceSpike, 0, 0);
  all.magnitude = 2.0;
  world = FaultSchedule({all}).materialize(sc, 0);
  EXPECT_DOUBLE_EQ(world.input.price[0], 0.08);
  EXPECT_DOUBLE_EQ(world.input.price[1], 0.16);
}

TEST(FaultSchedule, LinkCutMarksBlockedPairs) {
  const Scenario sc = small_scenario();
  FaultEvent cut = event(FaultKind::kLinkCut, 0, 0);
  cut.frontend = 1;
  cut.dc = 0;
  const FaultedSlot world = FaultSchedule({cut}).materialize(sc, 0);
  EXPECT_TRUE(world.has_blocked_link);
  EXPECT_TRUE(world.blocked(1, 0));
  EXPECT_FALSE(world.blocked(0, 0));
  EXPECT_FALSE(world.blocked(1, 1));

  // kNoIndex fans out over the whole axis.
  FaultEvent dark_dc = event(FaultKind::kLinkCut, 0, 0);
  dark_dc.dc = 1;
  const FaultedSlot fanned = FaultSchedule({dark_dc}).materialize(sc, 0);
  EXPECT_TRUE(fanned.blocked(0, 1));
  EXPECT_TRUE(fanned.blocked(1, 1));
  EXPECT_FALSE(fanned.blocked(0, 0));
}

TEST(FaultSchedule, TraceGapLeavesNaNRawAndImputesSanitized) {
  const Scenario sc = small_scenario();
  FaultEvent gap = event(FaultKind::kTraceGap, 1, 2);
  gap.frontend = 0;
  const FaultSchedule schedule({gap});

  const FaultedSlot world = schedule.materialize(sc, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    // Raw telemetry carries the corruption...
    EXPECT_TRUE(std::isnan(world.raw_input.arrival_rate[k][0]));
    // ...the sanitized input imputes the last clean reading, skipping
    // the also-gapped slot 1 back to slot 0.
    EXPECT_DOUBLE_EQ(world.input.arrival_rate[k][0],
                     sc.arrivals[k][0].at(0));
    // Untouched streams pass through.
    EXPECT_DOUBLE_EQ(world.input.arrival_rate[k][1],
                     sc.arrivals[k][1].at(2));
    EXPECT_FALSE(std::isnan(world.raw_input.arrival_rate[k][1]));
  }
}

TEST(FaultSchedule, GapAtHorizonStartImputesZero) {
  const Scenario sc = small_scenario();
  FaultEvent gap = event(FaultKind::kTraceGap, 0, 0);
  const FaultedSlot world = FaultSchedule({gap}).materialize(sc, 0);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_TRUE(std::isnan(world.raw_input.arrival_rate[k][s]));
      EXPECT_DOUBLE_EQ(world.input.arrival_rate[k][s], 0.0);
    }
  }
}

TEST(FaultSchedule, SolverFailureSetsTheFlagOnly) {
  const Scenario sc = small_scenario();
  const FaultSchedule schedule({event(FaultKind::kSolverFailure, 1, 1)});
  EXPECT_FALSE(schedule.materialize(sc, 0).solver_failure);
  const FaultedSlot world = schedule.materialize(sc, 1);
  EXPECT_TRUE(world.solver_failure);
  EXPECT_EQ(world.topology.datacenters[0].num_servers, 4);
}

TEST(FaultSchedule, PlannerStallAndPublishDelaySetFlagsOnly) {
  const Scenario sc = small_scenario();
  const FaultSchedule schedule({event(FaultKind::kPlannerStall, 1, 1),
                                event(FaultKind::kPublishDelay, 1, 2)});
  schedule.validate(sc.topology);

  const FaultedSlot calm = schedule.materialize(sc, 0);
  EXPECT_FALSE(calm.planner_stall);
  EXPECT_FALSE(calm.publish_delayed);

  const FaultedSlot both = schedule.materialize(sc, 1);
  EXPECT_TRUE(both.planner_stall);
  EXPECT_TRUE(both.publish_delayed);
  // Serving-path kinds never touch the planning world itself.
  EXPECT_EQ(both.topology.datacenters[0].num_servers, 4);
  EXPECT_FALSE(both.solver_failure);
  EXPECT_DOUBLE_EQ(both.input.arrival_rate[0][0],
                   sc.arrivals[0][0].at(1));

  const FaultedSlot delayed = schedule.materialize(sc, 2);
  EXPECT_FALSE(delayed.planner_stall);
  EXPECT_TRUE(delayed.publish_delayed);
}

TEST(FaultSchedule, DemandSurgeMultipliesBothViewsAndHonorsPins) {
  const Scenario sc = small_scenario();
  FaultEvent global = event(FaultKind::kDemandSurge, 1, 1);
  global.magnitude = 3.0;
  const FaultedSlot surged = FaultSchedule({global}).materialize(sc, 1);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t s = 0; s < 2; ++s) {
      // Real demand, not a telemetry artifact: the sanitized planning
      // input AND the raw observed telemetry both carry the 3x.
      EXPECT_DOUBLE_EQ(surged.input.arrival_rate[k][s], 3.0 * 70.0);
      EXPECT_DOUBLE_EQ(surged.raw_input.arrival_rate[k][s], 3.0 * 70.0);
    }
  }

  // Front-end / class pins confine the surge to one stream.
  FaultEvent pinned = event(FaultKind::kDemandSurge, 0, 0);
  pinned.frontend = 1;
  pinned.klass = 0;
  pinned.magnitude = 2.0;
  const FaultedSlot partial = FaultSchedule({pinned}).materialize(sc, 0);
  EXPECT_DOUBLE_EQ(partial.input.arrival_rate[0][1],
                   2.0 * sc.arrivals[0][1].at(0));
  EXPECT_DOUBLE_EQ(partial.input.arrival_rate[0][0],
                   sc.arrivals[0][0].at(0));
  EXPECT_DOUBLE_EQ(partial.input.arrival_rate[1][1],
                   sc.arrivals[1][1].at(0));

  // Overlapping surges stack multiplicatively.
  FaultEvent twice = event(FaultKind::kDemandSurge, 0, 0);
  twice.magnitude = 2.0;
  const FaultedSlot stacked =
      FaultSchedule({twice, twice}).materialize(sc, 0);
  EXPECT_DOUBLE_EQ(stacked.input.arrival_rate[1][1],
                   4.0 * sc.arrivals[1][1].at(0));
}

TEST(FaultSchedule, GapHidesTheSurgeFromImputation) {
  // The double fault: a surged stream whose telemetry is also gapped
  // imputes from the *unsurged* scenario history — the planner
  // under-sizes, and the ladder (plus admission) must absorb it.
  const Scenario sc = small_scenario();
  FaultEvent surge = event(FaultKind::kDemandSurge, 1, 1);
  surge.magnitude = 3.0;
  FaultEvent gap = event(FaultKind::kTraceGap, 1, 1);
  gap.frontend = 0;
  const FaultedSlot world = FaultSchedule({surge, gap}).materialize(sc, 1);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_TRUE(std::isnan(world.raw_input.arrival_rate[k][0]));
    EXPECT_DOUBLE_EQ(world.input.arrival_rate[k][0],
                     sc.arrivals[k][0].at(0));  // unsurged slot 0
    EXPECT_DOUBLE_EQ(world.input.arrival_rate[k][1], 3.0 * 70.0);
  }
}

TEST(FaultSchedule, ValidateRejectsBadSurgeMagnitude) {
  const Topology topo = testing_fixtures::small_topology();
  FaultEvent zero = event(FaultKind::kDemandSurge, 0, 0);
  zero.magnitude = 0.0;
  EXPECT_THROW(FaultSchedule({zero}).validate(topo), InvalidArgument);
  FaultEvent inf = event(FaultKind::kDemandSurge, 0, 0);
  inf.magnitude = std::numeric_limits<double>::infinity();
  EXPECT_THROW(FaultSchedule({inf}).validate(topo), InvalidArgument);
}

TEST(FaultJson, RoundTripsEverySchemaField) {
  FaultEvent outage = event(FaultKind::kDcOutage, 8, 11);
  outage.dc = 0;
  outage.magnitude = 0.75;
  FaultEvent gap = event(FaultKind::kTraceGap, 3, 3);
  gap.frontend = 1;
  gap.klass = 0;
  const FaultSchedule schedule(
      {outage, gap, event(FaultKind::kSolverFailure, 19, 19)});

  const FaultSchedule reread =
      fault_json::from_json(fault_json::to_json(schedule));
  ASSERT_EQ(reread.events().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const FaultEvent& a = schedule.events()[i];
    const FaultEvent& b = reread.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.first_slot, b.first_slot);
    EXPECT_EQ(a.last_slot, b.last_slot);
    EXPECT_EQ(a.dc, b.dc);
    EXPECT_EQ(a.frontend, b.frontend);
    EXPECT_EQ(a.klass, b.klass);
    EXPECT_DOUBLE_EQ(a.magnitude, b.magnitude);
  }
}

TEST(FaultJson, RejectsWrongSchemaAndUnknownKind) {
  Json doc = fault_json::to_json(FaultSchedule());
  doc.set("schema", Json("palb-bench-v1"));
  EXPECT_THROW(fault_json::from_json(doc), IoError);

  Json bad_kind = Json::object();
  bad_kind.set("kind", Json("meteor-strike"));
  bad_kind.set("first_slot", Json(std::size_t{0}));
  bad_kind.set("last_slot", Json(std::size_t{0}));
  Json events = Json::array();
  events.push_back(std::move(bad_kind));
  Json schedule = Json::object();
  schedule.set("schema", Json(fault_json::kSchema));
  schedule.set("events", std::move(events));
  EXPECT_THROW(fault_json::from_json(schedule), IoError);
}

TEST(FaultJson, SaveLoadRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "palb_fault_roundtrip.json";
  fault_json::save(fault_gen::canned_acceptance(), path);
  const FaultSchedule reread = fault_json::load(path);
  EXPECT_EQ(reread.events().size(),
            fault_gen::canned_acceptance().events().size());
  EXPECT_TRUE(reread.faulted(9));
  EXPECT_TRUE(reread.faulted(19));
  EXPECT_FALSE(reread.faulted(20));
  std::remove(path.c_str());
}

TEST(FaultGen, DeterministicPerSeedAndValid) {
  const Topology topo = testing_fixtures::small_topology();
  fault_gen::Options opt;
  opt.slots = 48;
  opt.fault_rate = 0.5;
  const FaultSchedule a = fault_gen::generate(topo, 11, opt);
  const FaultSchedule b = fault_gen::generate(topo, 11, opt);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].first_slot, b.events()[i].first_slot);
    EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  EXPECT_NO_THROW(a.validate(topo));

  const FaultSchedule other = fault_gen::generate(topo, 12, opt);
  EXPECT_NO_THROW(other.validate(topo));

  fault_gen::Options quiet;
  quiet.fault_rate = 0.0;
  EXPECT_TRUE(fault_gen::generate(topo, 11, quiet).empty());
}

TEST(FaultGen, CannedAcceptanceMatchesTheIssueSchedule) {
  const FaultSchedule schedule = fault_gen::canned_acceptance();
  // DC 0 dark 8-11, trace gaps at 3 and 15, solver failure at 19.
  EXPECT_EQ(schedule.count_faulted(24), 7u);
  for (const std::size_t t : {8u, 9u, 10u, 11u, 3u, 15u, 19u}) {
    EXPECT_TRUE(schedule.faulted(t)) << "slot " << t;
  }
  EXPECT_FALSE(schedule.faulted(12));
  const Scenario sc = small_scenario();
  EXPECT_EQ(schedule.materialize(sc, 8).topology.datacenters[0].num_servers,
            0);
  EXPECT_TRUE(schedule.materialize(sc, 19).solver_failure);
  EXPECT_TRUE(
      std::isnan(schedule.materialize(sc, 3).raw_input.arrival_rate[0][0]));
}

TEST(FaultJson, RoundTripsTheChaosKinds) {
  FaultEvent surge = event(FaultKind::kDemandSurge, 4, 9);
  surge.frontend = 1;
  surge.magnitude = 3.0;
  const FaultSchedule schedule({surge,
                                event(FaultKind::kPlannerStall, 6, 8),
                                event(FaultKind::kPublishDelay, 12, 15)});
  const FaultSchedule reread =
      fault_json::from_json(fault_json::to_json(schedule));
  ASSERT_EQ(reread.events().size(), 3u);
  EXPECT_EQ(reread.events()[0].kind, FaultKind::kDemandSurge);
  EXPECT_EQ(reread.events()[0].frontend, 1u);
  EXPECT_DOUBLE_EQ(reread.events()[0].magnitude, 3.0);
  EXPECT_EQ(reread.events()[1].kind, FaultKind::kPlannerStall);
  EXPECT_EQ(reread.events()[2].kind, FaultKind::kPublishDelay);
  EXPECT_STREQ(to_string(FaultKind::kPlannerStall), "planner-stall");
  EXPECT_STREQ(to_string(FaultKind::kPublishDelay), "publish-delay");
  EXPECT_STREQ(to_string(FaultKind::kDemandSurge), "demand-surge");
}

TEST(FaultGen, CannedChaosMatchesTheOverloadSchedule) {
  const FaultSchedule schedule = fault_gen::canned_chaos();
  const Scenario sc = small_scenario();
  schedule.validate(sc.topology);
  // Surge 4-9, stall 6-8, delays 4-6 and 12-15, price spike at 18:
  // eleven distinct faulted slots in the 24-slot horizon.
  EXPECT_EQ(schedule.count_faulted(24), 11u);

  // Surge onset under a suppressed publish — the shed window.
  const FaultedSlot onset = schedule.materialize(sc, 5);
  EXPECT_TRUE(onset.publish_delayed);
  EXPECT_FALSE(onset.planner_stall);
  EXPECT_DOUBLE_EQ(onset.input.arrival_rate[0][0],
                   3.0 * sc.arrivals[0][0].at(5));

  // Mid-surge the planner stalls too.
  const FaultedSlot stalled = schedule.materialize(sc, 7);
  EXPECT_TRUE(stalled.planner_stall);
  EXPECT_DOUBLE_EQ(stalled.input.arrival_rate[1][1],
                   3.0 * sc.arrivals[1][1].at(7));

  // The calm delay window: stale plan, unchanged demand, no shedding.
  const FaultedSlot calm = schedule.materialize(sc, 13);
  EXPECT_TRUE(calm.publish_delayed);
  EXPECT_DOUBLE_EQ(calm.input.arrival_rate[0][0],
                   sc.arrivals[0][0].at(13));

  const FaultedSlot spiked = schedule.materialize(sc, 18);
  EXPECT_DOUBLE_EQ(spiked.input.price[0], 5.0 * 0.04);
}

TEST(FaultGen, ChaosKindsStayOffUnlessOptedIn) {
  const Topology topo = testing_fixtures::small_topology();
  fault_gen::Options opt;
  opt.slots = 96;
  opt.fault_rate = 0.6;
  // Defaults: no serving-path chaos kinds ever drawn, so schedules from
  // pre-existing seeds stay byte-identical.
  const FaultSchedule legacy = fault_gen::generate(topo, 7, opt);
  for (const FaultEvent& e : legacy.events()) {
    EXPECT_NE(e.kind, FaultKind::kPlannerStall);
    EXPECT_NE(e.kind, FaultKind::kPublishDelay);
    EXPECT_NE(e.kind, FaultKind::kDemandSurge);
  }
  // Opted in, the new kinds appear and the schedule still validates.
  opt.planner_stalls = true;
  opt.publish_delays = true;
  opt.demand_surges = true;
  const FaultSchedule chaotic = fault_gen::generate(topo, 7, opt);
  EXPECT_NO_THROW(chaotic.validate(topo));
  bool any_chaos = false;
  for (const FaultEvent& e : chaotic.events()) {
    if (e.kind == FaultKind::kPlannerStall ||
        e.kind == FaultKind::kPublishDelay ||
        e.kind == FaultKind::kDemandSurge) {
      any_chaos = true;
      if (e.kind == FaultKind::kDemandSurge) {
        EXPECT_GE(e.magnitude, opt.min_surge);
        EXPECT_LE(e.magnitude, opt.max_surge);
      }
    }
  }
  EXPECT_TRUE(any_chaos);
}

}  // namespace
}  // namespace palb
