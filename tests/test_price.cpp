#include <gtest/gtest.h>

#include <cmath>

#include "market/price_generator.hpp"
#include "market/price_library.hpp"
#include "market/price_trace.hpp"
#include "util/error.hpp"

namespace palb {
namespace {

TEST(PriceTrace, BasicAccessorsAndWrap) {
  PriceTrace t("x", {1.0, 2.0, 3.0});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(4), 2.0);  // wraps
  EXPECT_DOUBLE_EQ(t.min_price(), 1.0);
  EXPECT_DOUBLE_EQ(t.max_price(), 3.0);
  EXPECT_DOUBLE_EQ(t.mean_price(), 2.0);
}

TEST(PriceTrace, RejectsEmptyAndNan) {
  EXPECT_THROW(PriceTrace("x", {}), InvalidArgument);
  EXPECT_THROW(PriceTrace("x", {1.0, std::nan("")}), InvalidArgument);
}

TEST(PriceTrace, ScaledAndWindow) {
  PriceTrace t("x", {1.0, 2.0, 3.0, 4.0});
  const PriceTrace doubled = t.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.at(1), 4.0);
  const PriceTrace win = t.window(3, 3);  // wraps: 4, 1, 2
  ASSERT_EQ(win.size(), 3u);
  EXPECT_DOUBLE_EQ(win.at(0), 4.0);
  EXPECT_DOUBLE_EQ(win.at(1), 1.0);
  EXPECT_THROW(t.window(0, 0), InvalidArgument);
}

TEST(PriceLibrary, CurvesAreDayLong) {
  for (const auto& t : prices::figure1_set()) {
    EXPECT_EQ(t.size(), 24u) << t.location();
    EXPECT_GT(t.min_price(), 0.0) << t.location();
  }
}

TEST(PriceLibrary, CaliforniaIsMostExpensiveOnAverage) {
  // Fig. 1's qualitative feature the substitution must preserve.
  const double ca = prices::mountain_view_ca().mean_price();
  EXPECT_GT(ca, prices::houston_tx().mean_price());
  EXPECT_GT(ca, prices::atlanta_ga().mean_price());
}

TEST(PriceLibrary, CheapestLocationChangesDuringTheDay) {
  // The arbitrage opportunity exists only if the curves cross.
  const auto set = prices::figure1_set();
  std::size_t cheapest_at_4 = 0, cheapest_at_15 = 0;
  for (std::size_t i = 1; i < set.size(); ++i) {
    if (set[i].at(4) < set[cheapest_at_4].at(4)) cheapest_at_4 = i;
    if (set[i].at(15) < set[cheapest_at_15].at(15)) cheapest_at_15 = i;
  }
  EXPECT_NE(cheapest_at_4, cheapest_at_15);
}

TEST(PriceLibrary, HoustonPeaksInTheAfternoon) {
  const PriceTrace tx = prices::houston_tx();
  double peak_hour = 0;
  double peak = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    if (tx.at(h) > peak) {
      peak = tx.at(h);
      peak_hour = static_cast<double>(h);
    }
  }
  EXPECT_GE(peak_hour, 13.0);
  EXPECT_LE(peak_hour, 18.0);
}

TEST(PriceLibrary, FlatTrace) {
  const PriceTrace f = prices::flat("f", 0.05, 10);
  EXPECT_EQ(f.size(), 10u);
  EXPECT_DOUBLE_EQ(f.min_price(), f.max_price());
}

TEST(OuPriceGenerator, RespectsFloorAndLength) {
  OuPriceGenerator::Params params;
  params.mean = 0.05;
  params.floor = 0.02;
  params.volatility = 0.05;  // violent noise to stress the floor
  OuPriceGenerator gen(params);
  Rng rng(5);
  const PriceTrace t = gen.generate("loc", 200, rng);
  EXPECT_EQ(t.size(), 200u);
  EXPECT_GE(t.min_price(), params.floor);
}

TEST(OuPriceGenerator, MeanRevertsToDiurnalLevel) {
  OuPriceGenerator::Params params;
  params.mean = 0.06;
  params.diurnal_amplitude = 0.0;  // flat base isolates the OU part
  params.volatility = 0.004;
  OuPriceGenerator gen(params);
  Rng rng(6);
  const PriceTrace t = gen.generate("loc", 24 * 200, rng);
  EXPECT_NEAR(t.mean_price(), 0.06, 0.003);
}

TEST(OuPriceGenerator, DiurnalShapeHasAfternoonPeak) {
  OuPriceGenerator::Params params;
  params.peak_hour = 15.0;
  params.volatility = 0.0;  // deterministic base
  OuPriceGenerator gen(params);
  Rng rng(7);
  const PriceTrace t = gen.generate("loc", 24, rng);
  EXPECT_GT(t.at(15), t.at(3));
}

TEST(OuPriceGenerator, Validation) {
  OuPriceGenerator::Params params;
  params.mean = 0.0;
  EXPECT_THROW(OuPriceGenerator{params}, InvalidArgument);
  params.mean = 0.05;
  params.volatility = -1.0;
  EXPECT_THROW(OuPriceGenerator{params}, InvalidArgument);
  params.volatility = 0.001;
  OuPriceGenerator gen(params);
  Rng rng(1);
  EXPECT_THROW(gen.generate("loc", 0, rng), InvalidArgument);
}

}  // namespace
}  // namespace palb
