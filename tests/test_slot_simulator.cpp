#include "sim/slot_simulator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/optimized_policy.hpp"
#include "queueing/mm1.hpp"
#include "scenario_fixtures.hpp"
#include "util/stats.hpp"

namespace palb {
namespace {

using testing_fixtures::small_input;
using testing_fixtures::small_topology;

DispatchPlan hand_plan(const Topology& topo) {
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 50.0;
  plan.rate[1][0][0] = 20.0;
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {0.6, 0.4};
  return plan;
}

TEST(SlotSimulator, EmpiricalDelaysMatchEquationOne) {
  const Topology topo = small_topology();
  SlotInput input = small_input();
  input.slot_seconds = 20000.0;  // long slot for tight statistics
  const DispatchPlan plan = hand_plan(topo);
  Rng rng(11);
  const SimOutcome out = SlotSimulator().simulate(topo, input, plan, rng);

  const SlotMetrics analytic = evaluate_plan(topo, input, plan);
  for (std::size_t k = 0; k < 2; ++k) {
    const auto& expected = analytic.outcomes[k][0];
    if (expected.rate <= 0.0) continue;
    ASSERT_GT(out.sojourn[k][0].count(), 500u);
    EXPECT_NEAR(out.sojourn[k][0].mean(), expected.delay,
                0.12 * expected.delay)
        << "class " << k;
  }
}

TEST(SlotSimulator, LedgerTracksAnalyticAccounting) {
  const Topology topo = small_topology();
  SlotInput input = small_input();
  input.slot_seconds = 20000.0;
  const DispatchPlan plan = hand_plan(topo);
  Rng rng(13);
  const SimOutcome out = SlotSimulator().simulate(topo, input, plan, rng);
  const SlotMetrics analytic = evaluate_plan(topo, input, plan);

  EXPECT_LT(relative_difference(out.energy_cost, analytic.energy_cost),
            0.05);
  EXPECT_LT(relative_difference(out.transfer_cost, analytic.transfer_cost),
            0.05);
  EXPECT_LT(relative_difference(out.revenue_mean_delay, analytic.revenue),
            0.10);
}

TEST(SlotSimulator, PerRequestRevenueNeverExceedsTopLevelMass) {
  const Topology topo = small_topology();
  SlotInput input = small_input();
  input.slot_seconds = 5000.0;
  const DispatchPlan plan = hand_plan(topo);
  Rng rng(17);
  const SimOutcome out = SlotSimulator().simulate(topo, input, plan, rng);
  double bound = 0.0;
  for (std::size_t k = 0; k < topo.num_classes(); ++k) {
    bound += topo.classes[k].tuf.max_utility() * plan.class_dc_rate(k, 0) *
             input.slot_seconds;
  }
  EXPECT_GT(out.revenue_per_request, 0.0);
  EXPECT_LE(out.revenue_per_request, bound * 1.1);
}

TEST(SlotSimulator, DeterministicUnderSameSeed) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  const DispatchPlan plan = hand_plan(topo);
  Rng a(5), b(5);
  const SimOutcome ra = SlotSimulator().simulate(topo, input, plan, a);
  const SimOutcome rb = SlotSimulator().simulate(topo, input, plan, b);
  EXPECT_EQ(ra.arrivals, rb.arrivals);
  EXPECT_DOUBLE_EQ(ra.revenue_per_request, rb.revenue_per_request);
}

TEST(SlotSimulator, ReplicationsTightenWithoutBias) {
  const Topology topo = small_topology();
  SlotInput input = small_input();
  input.slot_seconds = 3000.0;
  const DispatchPlan plan = hand_plan(topo);
  SlotSimulator::Options opt;
  opt.replications = 4;
  Rng rng(23);
  const SimOutcome out =
      SlotSimulator(opt).simulate(topo, input, plan, rng);
  const SlotMetrics analytic = evaluate_plan(topo, input, plan);
  EXPECT_LT(relative_difference(out.energy_cost, analytic.energy_cost),
            0.05);
}

TEST(SlotSimulator, RejectsPlanRoutingIntoWall) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 5.0;  // no server on at dc1
  Rng rng(1);
  EXPECT_THROW(SlotSimulator().simulate(topo, input, plan, rng),
               InvalidArgument);
}

TEST(SlotSimulator, EmptyPlanIsQuiet) {
  const Topology topo = small_topology();
  const SlotInput input = small_input();
  Rng rng(1);
  const SimOutcome out =
      SlotSimulator().simulate(topo, input, DispatchPlan::zero(topo), rng);
  EXPECT_EQ(out.arrivals, 0u);
  EXPECT_DOUBLE_EQ(out.net_profit_mean_delay(), 0.0);
}

TEST(SlotSimulator, ValidatesOptimizedPlanEndToEnd) {
  // The flagship check: the optimizer's planned profit is realized by an
  // independent stochastic replay (mean-delay accounting, 15% band).
  const Topology topo = small_topology();
  SlotInput input = small_input();
  input.slot_seconds = 20000.0;
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(topo, input);
  const SlotMetrics analytic = evaluate_plan(topo, input, plan);
  Rng rng(29);
  SlotSimulator::Options opt;
  opt.replications = 2;
  const SimOutcome out = SlotSimulator(opt).simulate(topo, input, plan, rng);
  EXPECT_LT(relative_difference(out.net_profit_mean_delay(),
                                analytic.net_profit()),
            0.15);
}

}  // namespace
}  // namespace palb
