#include "solver/lagrange_selector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace palb {
namespace {

TEST(LagrangeSelector, SingleLevel) {
  EXPECT_DOUBLE_EQ(lagrange_level_select({7.5}, 1), 7.5);
}

TEST(LagrangeSelector, TwoLevelsExact) {
  const std::vector<double> levels{20.0, 10.0};
  EXPECT_NEAR(lagrange_level_select(levels, 1), 20.0, 1e-12);
  EXPECT_NEAR(lagrange_level_select(levels, 2), 10.0, 1e-12);
}

TEST(LagrangeSelector, ThreeLevelsExact) {
  const std::vector<double> levels{30.0, 18.0, 5.0};
  EXPECT_NEAR(lagrange_level_select(levels, 1), 30.0, 1e-12);
  EXPECT_NEAR(lagrange_level_select(levels, 2), 18.0, 1e-12);
  EXPECT_NEAR(lagrange_level_select(levels, 3), 5.0, 1e-12);
}

TEST(LagrangeSelector, RejectsOutOfRangeIndex) {
  const std::vector<double> levels{3.0, 2.0};
  EXPECT_THROW(lagrange_level_select(levels, 0), InvalidArgument);
  EXPECT_THROW(lagrange_level_select(levels, 3), InvalidArgument);
  EXPECT_THROW(lagrange_level_select({}, 1), InvalidArgument);
}

/// The paper's closed form (Eq. 25/26) and the standard Lagrange basis
/// are the same polynomial: they must agree at every integer node for
/// every level count.
class SelectorEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectorEquivalenceTest, PaperFormulaMatchesStandardBasis) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  // Strictly decreasing positive utilities, as the paper requires.
  std::vector<double> levels;
  double v = rng.uniform(50.0, 100.0);
  for (int i = 0; i < n; ++i) {
    levels.push_back(v);
    v -= rng.uniform(1.0, 10.0);
  }
  for (int x = 1; x <= n; ++x) {
    const double paper = lagrange_level_select(levels, x);
    const double standard =
        lagrange_level_polynomial(levels, static_cast<double>(x));
    EXPECT_NEAR(paper, levels[static_cast<std::size_t>(x - 1)], 1e-9)
        << "n=" << n << " x=" << x;
    EXPECT_NEAR(paper, standard, 1e-9) << "n=" << n << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(LevelCounts, SelectorEquivalenceTest,
                         ::testing::Range(1, 9));

TEST(LagrangePolynomial, InterpolatesBetweenNodes) {
  // Between nodes the polynomial is smooth but need not be monotone; it
  // must at least stay finite and hit the endpoints.
  const std::vector<double> levels{10.0, 6.0, 1.0};
  for (double x = 1.0; x <= 3.0; x += 0.125) {
    const double y = lagrange_level_polynomial(levels, x);
    EXPECT_TRUE(std::isfinite(y));
  }
  EXPECT_NEAR(lagrange_level_polynomial(levels, 1.0), 10.0, 1e-12);
  EXPECT_NEAR(lagrange_level_polynomial(levels, 3.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace palb
