#include "cloud/accounting.hpp"

#include <gtest/gtest.h>

#include "queueing/mm1.hpp"

namespace palb {
namespace {

/// One class, one front-end, one DC: every ledger line is checkable by
/// hand.
Topology one_lane_topology() {
  Topology topo;
  topo.classes = {{"req", StepTuf({2.0, 1.0}, {0.05, 0.2}), 1e-6}};
  topo.frontends = {{"fe"}};
  topo.datacenters = {{"dc", 2, 1.0, {100.0}, {0.003}, 1.0}};
  topo.distance_miles = {{500.0}};
  return topo;
}

SlotInput one_lane_input() {
  SlotInput input;
  input.arrival_rate = {{60.0}};
  input.price = {0.05};
  input.slot_seconds = 3600.0;
  return input;
}

TEST(Accounting, EmptyPlanEarnsAndCostsNothing) {
  const Topology topo = one_lane_topology();
  const SlotInput input = one_lane_input();
  const SlotMetrics m = evaluate_plan(topo, input, DispatchPlan::zero(topo));
  EXPECT_DOUBLE_EQ(m.revenue, 0.0);
  EXPECT_DOUBLE_EQ(m.energy_cost, 0.0);
  EXPECT_DOUBLE_EQ(m.transfer_cost, 0.0);
  EXPECT_DOUBLE_EQ(m.net_profit(), 0.0);
  EXPECT_DOUBLE_EQ(m.offered_requests, 60.0 * 3600.0);
  EXPECT_DOUBLE_EQ(m.dispatched_requests, 0.0);
  EXPECT_EQ(m.servers_on, 0);
}

TEST(Accounting, HandComputedLedger) {
  const Topology topo = one_lane_topology();
  const SlotInput input = one_lane_input();

  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 60.0;
  plan.dc[0].servers_on = 2;   // 30 req/s per server
  plan.dc[0].share = {0.5};    // mu_eff = 50 req/s

  const SlotMetrics m = evaluate_plan(topo, input, plan);
  // Delay = 1/(50-30) = 0.05 s -> exactly the first band edge -> $2/req.
  const auto& outcome = m.outcomes[0][0];
  EXPECT_NEAR(outcome.delay, 0.05, 1e-12);
  EXPECT_EQ(outcome.tuf_level, 0);
  EXPECT_DOUBLE_EQ(outcome.utility_per_request, 2.0);
  EXPECT_TRUE(outcome.stable);

  const double requests = 60.0 * 3600.0;
  EXPECT_NEAR(m.revenue, 2.0 * requests, 1e-6);
  EXPECT_NEAR(m.energy_cost, 0.003 * 60.0 * 0.05 * 3600.0, 1e-9);
  EXPECT_NEAR(m.transfer_cost, 1e-6 * 500.0 * 60.0 * 3600.0, 1e-9);
  EXPECT_NEAR(m.net_profit(),
              m.revenue - m.energy_cost - m.transfer_cost, 1e-9);
  EXPECT_DOUBLE_EQ(m.completed_requests, requests);
  EXPECT_DOUBLE_EQ(m.valuable_requests, requests);
  EXPECT_DOUBLE_EQ(m.completed_fraction(), 1.0);
}

TEST(Accounting, SecondBandUtility) {
  const Topology topo = one_lane_topology();
  const SlotInput input = one_lane_input();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 60.0;
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {0.38};  // mu_eff 38; delay = 1/8 = 0.125 s -> band 2
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_EQ(m.outcomes[0][0].tuf_level, 1);
  EXPECT_DOUBLE_EQ(m.outcomes[0][0].utility_per_request, 1.0);
}

TEST(Accounting, MissedFinalDeadlineEarnsNothingButPays) {
  const Topology topo = one_lane_topology();
  const SlotInput input = one_lane_input();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 60.0;
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {0.32};  // mu_eff 32; delay = 0.5 s > 0.2 s deadline
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_EQ(m.outcomes[0][0].tuf_level, -1);
  EXPECT_DOUBLE_EQ(m.revenue, 0.0);
  EXPECT_GT(m.energy_cost, 0.0);
  EXPECT_GT(m.transfer_cost, 0.0);
  EXPECT_LT(m.net_profit(), 0.0);
  // Queue is stable, so requests complete (just too late to be worth $).
  EXPECT_DOUBLE_EQ(m.completed_requests, 60.0 * 3600.0);
  EXPECT_DOUBLE_EQ(m.valuable_requests, 0.0);
}

TEST(Accounting, UnstableQueuePaysWithoutRevenue) {
  const Topology topo = one_lane_topology();
  const SlotInput input = one_lane_input();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 60.0;
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {0.25};  // mu_eff 25 < 30 per-server load
  const SlotMetrics m = evaluate_plan(topo, input, plan);
  EXPECT_FALSE(m.outcomes[0][0].stable);
  EXPECT_DOUBLE_EQ(m.revenue, 0.0);
  EXPECT_GT(m.energy_cost, 0.0);
  EXPECT_DOUBLE_EQ(m.completed_requests, 0.0);
}

TEST(Accounting, PueScalesEnergyOnly) {
  Topology topo = one_lane_topology();
  const SlotInput input = one_lane_input();
  DispatchPlan plan = DispatchPlan::zero(topo);
  plan.rate[0][0][0] = 40.0;
  plan.dc[0].servers_on = 2;
  plan.dc[0].share = {0.5};
  const SlotMetrics base = evaluate_plan(topo, input, plan);
  topo.datacenters[0].pue = 1.5;
  const SlotMetrics scaled = evaluate_plan(topo, input, plan);
  EXPECT_NEAR(scaled.energy_cost, 1.5 * base.energy_cost, 1e-9);
  EXPECT_DOUBLE_EQ(scaled.revenue, base.revenue);
  EXPECT_DOUBLE_EQ(scaled.transfer_cost, base.transfer_cost);
}

TEST(Accounting, AccumulateSums) {
  SlotMetrics a, b;
  a.revenue = 10.0;
  a.energy_cost = 2.0;
  a.offered_requests = 100.0;
  a.servers_on = 3;
  b.revenue = 5.0;
  b.transfer_cost = 1.0;
  b.offered_requests = 50.0;
  b.servers_on = 2;
  const SlotMetrics total = accumulate({a, b});
  EXPECT_DOUBLE_EQ(total.revenue, 15.0);
  EXPECT_DOUBLE_EQ(total.energy_cost, 2.0);
  EXPECT_DOUBLE_EQ(total.transfer_cost, 1.0);
  EXPECT_DOUBLE_EQ(total.net_profit(), 12.0);
  EXPECT_DOUBLE_EQ(total.offered_requests, 150.0);
  EXPECT_EQ(total.servers_on, 5);
}

TEST(Accounting, CompletedFractionOnEmptyOffered) {
  SlotMetrics m;
  EXPECT_DOUBLE_EQ(m.completed_fraction(), 1.0);
}

}  // namespace
}  // namespace palb
