#include "forecast/forecasting_controller.hpp"

#include <algorithm>

#include "check/plan_checker.hpp"
#include "util/error.hpp"

namespace palb {

ForecastingController::ForecastingController(Scenario scenario,
                                             const Forecaster& prototype)
    : ForecastingController(std::move(scenario), prototype, Options{}) {}

ForecastingController::ForecastingController(Scenario scenario,
                                             const Forecaster& prototype,
                                             Options options)
    : scenario_(std::move(scenario)),
      prototype_(prototype.clone()),
      options_(options) {
  scenario_.validate();
}

ForecastRunResult ForecastingController::run(Policy& policy,
                                             std::size_t num_slots,
                                             std::size_t first_slot) const {
  PALB_REQUIRE(num_slots > 0, "need at least one slot");
  const std::size_t K = scenario_.topology.num_classes();
  const std::size_t S = scenario_.topology.num_frontends();

  // One forecaster per (class, front-end) stream.
  std::vector<std::vector<std::unique_ptr<Forecaster>>> streams(K);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      streams[k].push_back(prototype_->clone());
    }
  }

  // Prime on history strictly before the scored window.
  const std::size_t warmup = std::min(options_.warmup_slots, first_slot);
  for (std::size_t t = first_slot - warmup; t < first_slot; ++t) {
    const SlotInput real = scenario_.slot_input(t);
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t s = 0; s < S; ++s) {
        streams[k][s]->observe(real.arrival_rate[k][s]);
      }
    }
  }

  ForecastRunResult out;
  out.errors.resize(K);
  out.run.slots.reserve(num_slots);
  out.run.plans.reserve(num_slots);

  for (std::size_t t = 0; t < num_slots; ++t) {
    const SlotInput real = scenario_.slot_input(first_slot + t);

    // Plan from the forecast...
    SlotInput forecast = real;
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t s = 0; s < S; ++s) {
        const double predicted = streams[k][s]->predict();
        forecast.arrival_rate[k][s] =
            predicted * options_.forecast_inflation;
        // Accuracy is scored on the raw prediction, not the hedge.
        out.errors[k].add(predicted, real.arrival_rate[k][s]);
      }
    }
    DispatchPlan plan = policy.plan_slot(scenario_.topology, forecast);
    // The plan must be feasible for the *forecast* it was built from;
    // against reality it may legitimately over- or under-dispatch.
    check::maybe_check_plan(scenario_.topology, forecast, plan,
                            "ForecastingController");

    // ... settle against reality.
    if (options_.route_actual) {
      // Scale each (class, front-end) row to the realized volume,
      // preserving the planned destination split. More traffic than
      // predicted overloads the planned shares (the accounting then
      // zeroes revenue on any queue pushed past stability); less traffic
      // under-uses them.
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t s = 0; s < S; ++s) {
          double planned = 0.0;
          for (double r : plan.rate[k][s]) planned += r;
          const double actual = real.arrival_rate[k][s];
          if (planned <= 0.0) continue;
          const double scale =
              std::min(actual, forecast.arrival_rate[k][s]) > 0.0
                  ? actual / forecast.arrival_rate[k][s]
                  : 0.0;
          for (double& r : plan.rate[k][s]) {
            r = std::min(r * scale, actual);
          }
        }
      }
    }
    // Either way the plan must remain structurally valid vs reality.
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t s = 0; s < S; ++s) {
        double dispatched = 0.0;
        for (double r : plan.rate[k][s]) dispatched += r;
        const double cap = real.arrival_rate[k][s];
        if (dispatched > cap && dispatched > 0.0) {
          const double fix = cap / dispatched;
          for (double& r : plan.rate[k][s]) r *= fix;
        }
      }
    }

    out.run.slots.push_back(
        evaluate_plan(scenario_.topology, real, plan));
    out.run.plans.push_back(std::move(plan));

    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t s = 0; s < S; ++s) {
        streams[k][s]->observe(real.arrival_rate[k][s]);
      }
    }
  }
  out.run.total = accumulate(out.run.slots);
  return out;
}

}  // namespace palb
