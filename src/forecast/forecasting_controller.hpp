#pragma once

#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "forecast/forecasters.hpp"

namespace palb {

/// Causal variant of SlotController: the policy plans slot t from
/// *forecast* arrival rates (one forecaster per (class, front-end)
/// stream, primed on history), while the ledger is settled against the
/// *realized* rates — the plan's shares and server counts face traffic
/// they did not exactly anticipate, exactly as a deployed controller
/// would. Under-forecasting shows up as either dropped flow (the plan
/// dispatches at most its predicted volume) or, with
/// `route_actual = true`, as overload on the planned allocation.
struct ForecastRunResult {
  RunResult run;
  /// Accuracy per class (aggregated over front-ends).
  std::vector<ForecastError> errors;
};

class ForecastingController {
 public:
  struct Options {
    /// Slots of history fed to the forecasters before the scored run.
    std::size_t warmup_slots = 24;
    /// If true, realized traffic is routed proportionally to the planned
    /// split (the plan meets real demand, possibly overloading queues).
    /// If false, only the planned volume is admitted (conservative).
    bool route_actual = true;
    /// Multiplier applied to every prediction before planning. The loss
    /// is asymmetric — an under-forecast pushes queues past the
    /// stability edge (zero revenue) while an over-forecast merely
    /// wastes shares — so operators provision above the point forecast;
    /// values around 1.1-1.3 hedge typical burst noise.
    double forecast_inflation = 1.0;
  };

  ForecastingController(Scenario scenario, const Forecaster& prototype);
  ForecastingController(Scenario scenario, const Forecaster& prototype,
                        Options options);

  const Scenario& scenario() const { return scenario_; }

  ForecastRunResult run(Policy& policy, std::size_t num_slots,
                        std::size_t first_slot = 0) const;

 private:
  Scenario scenario_;
  std::unique_ptr<Forecaster> prototype_;
  Options options_;
};

}  // namespace palb
