#include "forecast/forecasters.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace palb {

// ---- NaiveForecaster -------------------------------------------------------

double NaiveForecaster::predict() { return seen_ ? std::max(0.0, last_) : 0.0; }

void NaiveForecaster::observe(double rate) {
  PALB_REQUIRE(rate >= 0.0, "observed rate must be >= 0");
  last_ = rate;
  seen_ = true;
}

std::unique_ptr<Forecaster> NaiveForecaster::clone() const {
  return std::make_unique<NaiveForecaster>();
}

// ---- EwmaForecaster --------------------------------------------------------

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(alpha) {
  PALB_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
}

double EwmaForecaster::predict() { return seen_ ? std::max(0.0, level_) : 0.0; }

void EwmaForecaster::observe(double rate) {
  PALB_REQUIRE(rate >= 0.0, "observed rate must be >= 0");
  level_ = seen_ ? alpha_ * rate + (1.0 - alpha_) * level_ : rate;
  seen_ = true;
}

std::unique_ptr<Forecaster> EwmaForecaster::clone() const {
  return std::make_unique<EwmaForecaster>(alpha_);
}

// ---- SeasonalNaiveForecaster -----------------------------------------------

SeasonalNaiveForecaster::SeasonalNaiveForecaster(std::size_t period)
    : period_(period) {
  PALB_REQUIRE(period > 0, "season period must be > 0");
}

double SeasonalNaiveForecaster::predict() {
  if (history_.empty()) return 0.0;
  if (history_.size() >= period_) {
    // The value one full period before the upcoming slot.
    return history_[history_.size() - period_];
  }
  return history_.back();
}

void SeasonalNaiveForecaster::observe(double rate) {
  PALB_REQUIRE(rate >= 0.0, "observed rate must be >= 0");
  history_.push_back(rate);
}

std::unique_ptr<Forecaster> SeasonalNaiveForecaster::clone() const {
  return std::make_unique<SeasonalNaiveForecaster>(period_);
}

// ---- KalmanForecaster ------------------------------------------------------

KalmanForecaster::KalmanForecaster(double process_noise,
                                   double measurement_noise)
    : q_(process_noise), r_(measurement_noise) {
  PALB_REQUIRE(q_ > 0.0 && r_ > 0.0, "Kalman noise variances must be > 0");
}

double KalmanForecaster::predict() { return seen_ ? std::max(0.0, x_) : 0.0; }

void KalmanForecaster::observe(double rate) {
  PALB_REQUIRE(rate >= 0.0, "observed rate must be >= 0");
  if (!seen_) {
    // First measurement initializes the state directly.
    x_ = rate;
    p_ = r_;
    seen_ = true;
    return;
  }
  // Time update (random walk): covariance grows by the process noise.
  const double p_pred = p_ + q_;
  // Measurement update.
  k_ = p_pred / (p_pred + r_);
  x_ += k_ * (rate - x_);
  p_ = (1.0 - k_) * p_pred;
}

std::unique_ptr<Forecaster> KalmanForecaster::clone() const {
  return std::make_unique<KalmanForecaster>(q_, r_);
}

// ---- ForecastError ---------------------------------------------------------

void ForecastError::add(double predicted, double actual) {
  const double err = predicted - actual;
  ++n_;
  abs_sum_ += std::abs(err);
  sq_sum_ += err * err;
  if (actual > 1e-9) {
    pct_sum_ += std::abs(err) / actual;
    ++pct_n_;
  }
}

double ForecastError::mae() const {
  return n_ == 0 ? 0.0 : abs_sum_ / static_cast<double>(n_);
}

double ForecastError::rmse() const {
  return n_ == 0 ? 0.0 : std::sqrt(sq_sum_ / static_cast<double>(n_));
}

double ForecastError::mape(double floor) const {
  (void)floor;
  return pct_n_ == 0 ? 0.0 : pct_sum_ / static_cast<double>(pct_n_);
}

}  // namespace palb
