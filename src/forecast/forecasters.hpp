#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace palb {

/// One-step-ahead arrival-rate forecaster. The paper's controller plans
/// each slot from that slot's average arrival rate and defers prediction
/// to "existing methods (e.g. the Kalman Filter [18])" — this module
/// supplies those methods so the controller can run *causally* (plan
/// slot t from history up to t-1) instead of with oracle rates.
///
/// Protocol: call predict() for the upcoming slot, then observe() with
/// the realized rate once the slot ends.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual const std::string& name() const = 0;
  /// Forecast of the next slot's average rate (req/s, always >= 0).
  virtual double predict() = 0;
  /// Feed the realized rate of the slot just finished.
  virtual void observe(double rate) = 0;
  /// Fresh instance with the same configuration (per-stream state).
  virtual std::unique_ptr<Forecaster> clone() const = 0;
};

/// Predicts the last observed value (random-walk baseline).
class NaiveForecaster final : public Forecaster {
 public:
  const std::string& name() const override { return name_; }
  double predict() override;
  void observe(double rate) override;
  std::unique_ptr<Forecaster> clone() const override;

 private:
  std::string name_ = "naive";
  double last_ = 0.0;
  bool seen_ = false;
};

/// Exponentially weighted moving average.
class EwmaForecaster final : public Forecaster {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit EwmaForecaster(double alpha = 0.4);
  const std::string& name() const override { return name_; }
  double predict() override;
  void observe(double rate) override;
  std::unique_ptr<Forecaster> clone() const override;

 private:
  std::string name_ = "ewma";
  double alpha_;
  double level_ = 0.0;
  bool seen_ = false;
};

/// Seasonal-naive: predicts the value observed one period (e.g. 24
/// slots) ago; falls back to the last value until a full period exists.
/// The natural choice for diurnal web traffic.
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(std::size_t period = 24);
  const std::string& name() const override { return name_; }
  double predict() override;
  void observe(double rate) override;
  std::unique_ptr<Forecaster> clone() const override;

 private:
  std::string name_ = "seasonal-naive";
  std::size_t period_;
  std::vector<double> history_;
};

/// Scalar Kalman filter on a local-level (random-walk + noise) model —
/// the method the paper cites ([18], Welch & Bishop):
///
///   state:        x_t = x_{t-1} + w,  w ~ N(0, q)
///   measurement:  z_t = x_t + v,      v ~ N(0, r)
///
/// predict() returns the current state estimate; observe() runs the
/// predict/update cycle. The gain adapts: noisy streams lean on the
/// model, clean streams track measurements.
class KalmanForecaster final : public Forecaster {
 public:
  /// `process_noise` (q) and `measurement_noise` (r) must be > 0.
  KalmanForecaster(double process_noise = 25.0,
                   double measurement_noise = 100.0);
  const std::string& name() const override { return name_; }
  double predict() override;
  void observe(double rate) override;
  std::unique_ptr<Forecaster> clone() const override;

  /// Current error covariance (exposed for tests/diagnostics).
  double covariance() const { return p_; }
  /// Last Kalman gain applied.
  double gain() const { return k_; }

 private:
  std::string name_ = "kalman";
  double q_;
  double r_;
  double x_ = 0.0;   // state estimate
  double p_ = 1e6;   // error covariance (uninformative prior)
  double k_ = 0.0;   // last gain
  bool seen_ = false;
};

/// Forecast-accuracy accumulator: mean absolute error, RMSE and mean
/// absolute percentage error over a stream of (predicted, actual) pairs.
class ForecastError {
 public:
  void add(double predicted, double actual);
  std::size_t count() const { return n_; }
  double mae() const;
  double rmse() const;
  /// MAPE over samples with actual > floor (zero-rate slots excluded).
  double mape(double floor = 1e-9) const;

 private:
  std::size_t n_ = 0;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double pct_sum_ = 0.0;
  std::size_t pct_n_ = 0;
};

}  // namespace palb
