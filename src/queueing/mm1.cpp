#include "queueing/mm1.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace palb::mm1 {

namespace {
void check_params(double share, double capacity, double mu) {
  PALB_REQUIRE(share >= 0.0 && share <= 1.0, "CPU share must be in [0,1]");
  PALB_REQUIRE(capacity > 0.0, "capacity must be > 0");
  PALB_REQUIRE(mu > 0.0, "service rate mu must be > 0");
}
}  // namespace

double effective_rate(double share, double capacity, double mu) {
  check_params(share, capacity, mu);
  return share * capacity * mu;
}

bool is_stable(double share, double capacity, double mu, double lambda) {
  check_params(share, capacity, mu);
  PALB_REQUIRE(lambda >= 0.0, "arrival rate must be >= 0");
  return lambda < effective_rate(share, capacity, mu);
}

double expected_delay(double share, double capacity, double mu,
                      double lambda) {
  PALB_REQUIRE(is_stable(share, capacity, mu, lambda),
               "M/M/1 delay undefined for an unstable queue");
  return 1.0 / (effective_rate(share, capacity, mu) - lambda);
}

double required_share(double lambda, double capacity, double mu,
                      double deadline) {
  PALB_REQUIRE(lambda >= 0.0, "arrival rate must be >= 0");
  PALB_REQUIRE(capacity > 0.0 && mu > 0.0, "capacity and mu must be > 0");
  PALB_REQUIRE(deadline > 0.0, "deadline must be > 0");
  return (lambda + 1.0 / deadline) / (capacity * mu);
}

double max_rate(double share, double capacity, double mu, double deadline) {
  check_params(share, capacity, mu);
  PALB_REQUIRE(deadline > 0.0, "deadline must be > 0");
  return std::max(0.0, effective_rate(share, capacity, mu) - 1.0 / deadline);
}

double mean_in_system(double share, double capacity, double mu,
                      double lambda) {
  return lambda * expected_delay(share, capacity, mu, lambda);
}

double utilization(double share, double capacity, double mu, double lambda) {
  PALB_REQUIRE(lambda >= 0.0, "arrival rate must be >= 0");
  const double rate = effective_rate(share, capacity, mu);
  PALB_REQUIRE(rate > 0.0, "utilization undefined at zero service rate");
  return lambda / rate;
}

double delay_tail_probability(double share, double capacity, double mu,
                              double lambda, double t) {
  PALB_REQUIRE(t >= 0.0, "tail time must be >= 0");
  PALB_REQUIRE(is_stable(share, capacity, mu, lambda),
               "tail undefined for an unstable queue");
  return std::exp(-(effective_rate(share, capacity, mu) - lambda) * t);
}

}  // namespace palb::mm1
