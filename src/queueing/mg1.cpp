#include "queueing/mg1.hpp"

#include <cmath>

#include "util/error.hpp"

namespace palb {

namespace mg1 {

namespace {
void check(double mu, double lambda) {
  PALB_REQUIRE(mu > 0.0, "service rate must be > 0");
  PALB_REQUIRE(lambda >= 0.0, "arrival rate must be >= 0");
  PALB_REQUIRE(lambda < mu, "M/G/1 requires lambda < mu");
}
}  // namespace

double expected_wait_fcfs(double mu, double lambda, double scv) {
  check(mu, lambda);
  PALB_REQUIRE(scv >= 0.0, "SCV must be >= 0");
  const double rho = lambda / mu;
  // Pollaczek-Khinchine: W_q = rho (1 + c^2) / (2 (mu - lambda)).
  return rho * (1.0 + scv) / (2.0 * (mu - lambda));
}

double expected_sojourn_fcfs(double mu, double lambda, double scv) {
  return expected_wait_fcfs(mu, lambda, scv) + 1.0 / mu;
}

double expected_sojourn_ps(double mu, double lambda) {
  check(mu, lambda);
  return 1.0 / (mu - lambda);
}

}  // namespace mg1

namespace mmm {

double erlang_c(int servers, double mu, double lambda) {
  PALB_REQUIRE(servers >= 1, "need at least one server");
  PALB_REQUIRE(mu > 0.0, "service rate must be > 0");
  PALB_REQUIRE(lambda >= 0.0, "arrival rate must be >= 0");
  const double offered = lambda / mu;  // Erlangs
  PALB_REQUIRE(offered < static_cast<double>(servers),
               "M/M/m requires lambda < m*mu");
  if (lambda == 0.0) return 0.0;
  // Numerically stable iterative Erlang-B, then convert to Erlang-C.
  double erlang_b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    erlang_b = offered * erlang_b / (static_cast<double>(k) + offered * erlang_b);
  }
  const double rho = offered / static_cast<double>(servers);
  return erlang_b / (1.0 - rho + rho * erlang_b);
}

double expected_sojourn(int servers, double mu, double lambda) {
  const double c = erlang_c(servers, mu, lambda);
  const double m = static_cast<double>(servers);
  return c / (m * mu - lambda) + 1.0 / mu;
}

int servers_for_deadline(double mu, double lambda, double deadline,
                         int max_servers) {
  PALB_REQUIRE(deadline > 0.0, "deadline must be > 0");
  PALB_REQUIRE(mu > 0.0 && lambda >= 0.0, "rates must be valid");
  PALB_REQUIRE(deadline >= 1.0 / mu,
               "deadline below the bare service time is unreachable");
  if (lambda == 0.0) return 1;
  for (int m = 1; m <= max_servers; ++m) {
    if (lambda >= static_cast<double>(m) * mu) continue;  // unstable yet
    if (expected_sojourn(m, mu, lambda) <= deadline) return m;
  }
  throw NumericalError("servers_for_deadline exceeded max_servers");
}

}  // namespace mmm
}  // namespace palb
