#pragma once

namespace palb {

/// M/M/1 sojourn-time algebra behind the paper's Eq. 1:
///
///   R_k = 1 / (phi_k * C * mu_k - lambda_k)
///
/// A VM that owns CPU share `phi` of a server with capacity `C` serving
/// type-k requests at full-capacity rate `mu_k` behaves as an M/M/1 queue
/// with effective service rate `phi*C*mu_k`. All helpers below are pure
/// inversions of that formula; every one validates stability and domain.
namespace mm1 {

/// Effective service rate of the VM.
double effective_rate(double share, double capacity, double mu);

/// True iff the queue is stable (arrival < effective service rate).
bool is_stable(double share, double capacity, double mu, double lambda);

/// Expected sojourn (response) time R = 1/(phi*C*mu - lambda).
/// Requires stability.
double expected_delay(double share, double capacity, double mu,
                      double lambda);

/// Smallest CPU share meeting mean-delay deadline D at arrival rate
/// lambda: phi = (lambda + 1/D) / (C*mu). May exceed 1 (caller decides
/// feasibility).
double required_share(double lambda, double capacity, double mu,
                      double deadline);

/// Largest sustainable arrival rate at share phi under deadline D:
/// lambda = phi*C*mu - 1/D (clamped at 0).
double max_rate(double share, double capacity, double mu, double deadline);

/// Mean number in system L = lambda * R (Little's law).
double mean_in_system(double share, double capacity, double mu,
                      double lambda);

/// Utilization rho = lambda / (phi*C*mu).
double utilization(double share, double capacity, double mu, double lambda);

/// P(sojourn > t) = exp(-(mu_eff - lambda) t) for M/M/1-FCFS; used by the
/// simulator cross-checks and the percentile reporting extension.
double delay_tail_probability(double share, double capacity, double mu,
                              double lambda, double t);

}  // namespace mm1
}  // namespace palb
