#pragma once

#include "units/units.hpp"

namespace palb {

/// M/M/1 sojourn-time algebra behind the paper's Eq. 1:
///
///   R_k = 1 / (phi_k * C * mu_k - lambda_k)
///
/// A VM that owns CPU share `phi` of a server with capacity `C` serving
/// type-k requests at full-capacity rate `mu_k` behaves as an M/M/1 queue
/// with effective service rate `phi*C*mu_k`. All helpers below are pure
/// inversions of that formula; every one validates stability and domain.
///
/// The *typed* signatures are the primary API: `mu` and `lambda` are both
/// req/s but carry distinct role tags, so a swapped pair is a compile
/// error; delays and deadlines are `Seconds`, never bare doubles. The raw
/// double overloads below them are the solver-facing core (solvers hand
/// us untyped matrix entries); typed code must not call them directly.
namespace mm1 {

// ---- Raw core (solver seams and the typed wrappers only). -----------------

/// Effective service rate of the VM.
double effective_rate(double share, double capacity, double mu);

/// True iff the queue is stable (arrival < effective service rate).
bool is_stable(double share, double capacity, double mu, double lambda);

/// Expected sojourn (response) time R = 1/(phi*C*mu - lambda).
/// Requires stability.
double expected_delay(double share, double capacity, double mu,
                      double lambda);

/// Smallest CPU share meeting mean-delay deadline D at arrival rate
/// lambda: phi = (lambda + 1/D) / (C*mu). May exceed 1 (caller decides
/// feasibility).
double required_share(double lambda, double capacity, double mu,
                      double deadline);

/// Largest sustainable arrival rate at share phi under deadline D:
/// lambda = phi*C*mu - 1/D (clamped at 0).
double max_rate(double share, double capacity, double mu, double deadline);

/// Mean number in system L = lambda * R (Little's law).
double mean_in_system(double share, double capacity, double mu,
                      double lambda);

/// Utilization rho = lambda / (phi*C*mu).
double utilization(double share, double capacity, double mu, double lambda);

/// P(sojourn > t) = exp(-(mu_eff - lambda) t) for M/M/1-FCFS; used by the
/// simulator cross-checks and the percentile reporting extension.
double delay_tail_probability(double share, double capacity, double mu,
                              double lambda, double t);

// ---- Typed API (Eq. 1 with its dimensions enforced). ----------------------
// `capacity` stays a plain double: it is the paper's dimensionless C_l
// scale factor (normalized to 1), and `CpuShare` is already a distinct
// type, so the two cannot be swapped for each other or for a rate.

inline units::ServiceRate effective_rate(units::CpuShare share,
                                         double capacity,
                                         units::ServiceRate mu) {
  return units::ServiceRate{
      effective_rate(share.value(), capacity, mu.value())};
}

inline bool is_stable(units::CpuShare share, double capacity,
                      units::ServiceRate mu, units::ArrivalRate lambda) {
  return is_stable(share.value(), capacity, mu.value(), lambda.value());
}

inline units::Seconds expected_delay(units::CpuShare share, double capacity,
                                     units::ServiceRate mu,
                                     units::ArrivalRate lambda) {
  return units::Seconds{
      expected_delay(share.value(), capacity, mu.value(), lambda.value())};
}

inline units::CpuShare required_share(units::ArrivalRate lambda,
                                      double capacity, units::ServiceRate mu,
                                      units::Seconds deadline) {
  return units::CpuShare{
      required_share(lambda.value(), capacity, mu.value(), deadline.value())};
}

inline units::ReqPerSec max_rate(units::CpuShare share, double capacity,
                                 units::ServiceRate mu,
                                 units::Seconds deadline) {
  return units::ReqPerSec{
      max_rate(share.value(), capacity, mu.value(), deadline.value())};
}

inline units::Requests mean_in_system(units::CpuShare share, double capacity,
                                      units::ServiceRate mu,
                                      units::ArrivalRate lambda) {
  return units::Requests{
      mean_in_system(share.value(), capacity, mu.value(), lambda.value())};
}

inline double utilization(units::CpuShare share, double capacity,
                          units::ServiceRate mu, units::ArrivalRate lambda) {
  return utilization(share.value(), capacity, mu.value(), lambda.value());
}

inline double delay_tail_probability(units::CpuShare share, double capacity,
                                     units::ServiceRate mu,
                                     units::ArrivalRate lambda,
                                     units::Seconds t) {
  return delay_tail_probability(share.value(), capacity, mu.value(),
                                lambda.value(), t.value());
}

}  // namespace mm1
}  // namespace palb
