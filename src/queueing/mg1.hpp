#pragma once

#include "units/units.hpp"

namespace palb {

/// Beyond-M/M/1 queueing analytics.
///
/// Why they are here: the paper's Eq. 1 assumes exponential service. Two
/// classical results bound how much that assumption matters for this
/// system:
///
/// * M/G/1-FCFS (Pollaczek-Khinchine): the mean sojourn depends on the
///   service distribution only through its squared coefficient of
///   variation (SCV) — heavier-tailed work inflates delays.
/// * M/G/1-PS (processor sharing, i.e. the VM model the paper actually
///   describes): the mean sojourn is *insensitive* to the service
///   distribution — Eq. 1 is exact for any work distribution with the
///   same mean. The simulator tests demonstrate both facts empirically.
///
/// M/M/m (Erlang-C) covers pooling several whole servers into one queue,
/// an alternative to the paper's independent-server split.
namespace mg1 {

/// Mean sojourn of an M/G/1-FCFS queue: service rate `mu` (mean service
/// time 1/mu), arrival rate `lambda` < mu, squared coefficient of
/// variation `scv` >= 0 of the service time (0 = deterministic,
/// 1 = exponential).
double expected_sojourn_fcfs(double mu, double lambda, double scv);

/// Mean wait in queue (excluding service) of the same M/G/1-FCFS queue.
double expected_wait_fcfs(double mu, double lambda, double scv);

/// Mean sojourn of an M/G/1-PS queue — insensitive: equals the M/M/1
/// value 1/(mu - lambda) for every service distribution.
double expected_sojourn_ps(double mu, double lambda);

// ---- Typed API: rates are role-tagged req/s, sojourns are Seconds. --------

inline units::Seconds expected_sojourn_fcfs(units::ServiceRate mu,
                                            units::ArrivalRate lambda,
                                            double scv) {
  return units::Seconds{expected_sojourn_fcfs(mu.value(), lambda.value(),
                                              scv)};
}

inline units::Seconds expected_wait_fcfs(units::ServiceRate mu,
                                         units::ArrivalRate lambda,
                                         double scv) {
  return units::Seconds{expected_wait_fcfs(mu.value(), lambda.value(), scv)};
}

inline units::Seconds expected_sojourn_ps(units::ServiceRate mu,
                                          units::ArrivalRate lambda) {
  return units::Seconds{expected_sojourn_ps(mu.value(), lambda.value())};
}

}  // namespace mg1

namespace mmm {

/// Erlang-C: probability an arrival waits in an M/M/m queue with per-
/// server rate `mu`, `servers` servers and arrival rate `lambda`
/// (lambda < m*mu).
double erlang_c(int servers, double mu, double lambda);

/// Mean sojourn of the M/M/m queue.
double expected_sojourn(int servers, double mu, double lambda);

/// Smallest server count keeping the M/M/m mean sojourn within
/// `deadline` (returns a count even if large; throws only on invalid
/// arguments or an unreachable deadline < 1/mu).
int servers_for_deadline(double mu, double lambda, double deadline,
                         int max_servers = 100000);

// ---- Typed API. -----------------------------------------------------------

inline double erlang_c(int servers, units::ServiceRate mu,
                       units::ArrivalRate lambda) {
  return erlang_c(servers, mu.value(), lambda.value());
}

inline units::Seconds expected_sojourn(int servers, units::ServiceRate mu,
                                       units::ArrivalRate lambda) {
  return units::Seconds{expected_sojourn(servers, mu.value(), lambda.value())};
}

inline int servers_for_deadline(units::ServiceRate mu,
                                units::ArrivalRate lambda,
                                units::Seconds deadline,
                                int max_servers = 100000) {
  return servers_for_deadline(mu.value(), lambda.value(), deadline.value(),
                              max_servers);
}

}  // namespace mmm
}  // namespace palb
