#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace palb {

/// Discrete-event simulation of a single M/M/1 queue — the empirical
/// counterpart of Eq. 1. Used by tests and the validation benches to show
/// the analytic sojourn time the dispatcher plans with actually emerges
/// from a stochastic system.
struct Mm1SimResult {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  RunningStats sojourn;  ///< per-request time in system
  /// Time-weighted mean number in system over (warmup, horizon) — the
  /// quantity Little's law relates to the mean sojourn.
  double time_avg_in_system = 0.0;
  double busy_fraction = 0.0;
};

/// Service-time law for the simulators. Mean is always 1/service_rate;
/// the shape varies:
///  * kExponential — the M/M/1 of Eq. 1 (SCV 1)
///  * kDeterministic — constant service (SCV 0, the M/D/1 case)
///  * kLognormal — heavy-ish tail with the given SCV (> 0)
struct ServiceDistribution {
  enum class Kind { kExponential, kDeterministic, kLognormal };
  Kind kind = Kind::kExponential;
  /// Squared coefficient of variation; used by kLognormal only.
  double scv = 1.0;

  /// Theoretical SCV of this law (0 / 1 / scv).
  double theoretical_scv() const;
  /// Draws one service time with mean `mean`.
  double sample(double mean, Rng& rng) const;
};

class Mm1Simulator {
 public:
  struct Params {
    double arrival_rate = 1.0;   ///< lambda
    double service_rate = 2.0;   ///< mu_eff = phi * C * mu
    double horizon = 10000.0;    ///< simulated seconds
    double warmup = 100.0;       ///< stats discarded before this time
    ServiceDistribution service;  ///< service-time law (default M/M/1)
  };

  /// FCFS service order (classic M/M/1; Eq. 1's mean holds for any
  /// work-conserving order, which the tests demonstrate).
  static Mm1SimResult run_fcfs(const Params& params, Rng& rng);

  /// Processor-sharing service order (the virtualization story of the
  /// paper: many requests share the VM's CPU). Mean sojourn matches FCFS.
  static Mm1SimResult run_processor_sharing(const Params& params, Rng& rng);
};

}  // namespace palb
