#include "queueing/mm1_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace palb {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();

void check(const Mm1Simulator::Params& p) {
  PALB_REQUIRE(p.arrival_rate >= 0.0, "arrival rate must be >= 0");
  PALB_REQUIRE(p.service_rate > 0.0, "service rate must be > 0");
  PALB_REQUIRE(p.horizon > p.warmup && p.warmup >= 0.0,
               "need horizon > warmup >= 0");
  if (p.service.kind == ServiceDistribution::Kind::kLognormal) {
    PALB_REQUIRE(p.service.scv > 0.0, "lognormal SCV must be > 0");
  }
}
}  // namespace

double ServiceDistribution::theoretical_scv() const {
  switch (kind) {
    case Kind::kExponential:
      return 1.0;
    case Kind::kDeterministic:
      return 0.0;
    case Kind::kLognormal:
      return scv;
  }
  return 1.0;
}

double ServiceDistribution::sample(double mean, Rng& rng) const {
  switch (kind) {
    case Kind::kExponential:
      return rng.exponential(1.0 / mean);
    case Kind::kDeterministic:
      return mean;
    case Kind::kLognormal: {
      // Match mean and SCV: for X = exp(N(m, s^2)),
      // E[X] = exp(m + s^2/2), SCV = exp(s^2) - 1.
      const double sigma2 = std::log(1.0 + scv);
      const double m = std::log(mean) - 0.5 * sigma2;
      return rng.lognormal(m, std::sqrt(sigma2));
    }
  }
  return mean;
}

Mm1SimResult Mm1Simulator::run_fcfs(const Params& p, Rng& rng) {
  check(p);
  Mm1SimResult out;
  if (p.arrival_rate == 0.0) return out;

  double now = 0.0;
  double next_arrival = rng.exponential(p.arrival_rate);
  double departure = -1.0;  // < 0 means server idle
  double busy_time = 0.0;
  double queue_area = 0.0;  // integral of N(t) dt past warmup
  std::deque<double> queue;  // arrival stamps, head in service

  while (now < p.horizon) {
    const bool serve_next =
        departure >= 0.0 && (departure < next_arrival);
    const double t = serve_next ? departure : next_arrival;
    if (t >= p.horizon) break;
    if (t > p.warmup) {
      const double span = t - std::max(now, p.warmup);
      if (!queue.empty()) busy_time += span;
      queue_area += span * static_cast<double>(queue.size());
    }
    now = t;

    if (serve_next) {
      const double arrived = queue.front();
      queue.pop_front();
      ++out.completions;
      if (arrived >= p.warmup) out.sojourn.add(now - arrived);
      departure =
          queue.empty() ? -1.0 : now + p.service.sample(1.0 / p.service_rate, rng);
    } else {
      ++out.arrivals;
      queue.push_back(now);
      if (queue.size() == 1) {
        departure = now + p.service.sample(1.0 / p.service_rate, rng);
      }
      next_arrival = now + rng.exponential(p.arrival_rate);
    }
  }
  out.busy_fraction = busy_time / (p.horizon - p.warmup);
  out.time_avg_in_system = queue_area / (p.horizon - p.warmup);
  return out;
}

Mm1SimResult Mm1Simulator::run_processor_sharing(const Params& p, Rng& rng) {
  check(p);
  Mm1SimResult out;
  if (p.arrival_rate == 0.0) return out;

  struct Job {
    double arrived;
    double remaining;  // remaining service requirement (seconds at rate 1)
  };
  std::vector<Job> jobs;
  double now = 0.0;
  double next_arrival = rng.exponential(p.arrival_rate);
  double busy_time = 0.0;
  double queue_area = 0.0;

  while (now < p.horizon) {
    // Next completion under equal sharing: the job with least remaining
    // work finishes after min_remaining * n / mu_eff... each of n jobs
    // progresses at service_rate / n (work measured in service units).
    double completion_at = kNever;
    std::size_t completing = 0;
    if (!jobs.empty()) {
      double min_rem = jobs[0].remaining;
      completing = 0;
      for (std::size_t i = 1; i < jobs.size(); ++i) {
        if (jobs[i].remaining < min_rem) {
          min_rem = jobs[i].remaining;
          completing = i;
        }
      }
      completion_at =
          now + min_rem * static_cast<double>(jobs.size()) / p.service_rate;
    }

    const double t = std::min(next_arrival, completion_at);
    if (t >= p.horizon) break;
    if (t > p.warmup) {
      const double span = t - std::max(now, p.warmup);
      if (!jobs.empty()) busy_time += span;
      queue_area += span * static_cast<double>(jobs.size());
    }
    if (!jobs.empty()) {
      // Progress all jobs by the elapsed share of work.
      const double done =
          (t - now) * p.service_rate / static_cast<double>(jobs.size());
      for (auto& j : jobs) j.remaining -= done;
    }
    now = t;

    if (completion_at <= next_arrival && !jobs.empty()) {
      const Job finished = jobs[completing];
      jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(completing));
      ++out.completions;
      if (finished.arrived >= p.warmup) out.sojourn.add(now - finished.arrived);
    } else {
      ++out.arrivals;
      // Service demand in "work units"; rate 1 => exponential(1) work,
      // server drains work at service_rate.
      jobs.push_back({now, p.service.sample(1.0, rng)});
      next_arrival = now + rng.exponential(p.arrival_rate);
    }
  }
  out.busy_fraction = busy_time / (p.horizon - p.warmup);
  out.time_avg_in_system = queue_area / (p.horizon - p.warmup);
  return out;
}

}  // namespace palb
