#pragma once

#include <cstdint>
#include <vector>

#include "core/controller.hpp"
#include "core/policy.hpp"
#include "fault/fault.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace palb {

/// Closed-loop, event-driven simulation of the whole control story.
///
/// SlotSimulator replays one slot's plan against fresh queues — the
/// paper's implicit assumption that every hour starts from steady state.
/// This engine instead runs the *entire horizon* as one discrete-event
/// simulation with the policy in the loop:
///
///  * Poisson arrivals per (class, front-end) stream at each slot's rate;
///  * each arrival is routed per the current plan's split (or dropped),
///    pays its network propagation, and queues FCFS on one of the DC's
///    per-class VM queues (exponential service at phi*C*mu);
///  * at every slot boundary the policy re-plans — from the true next
///    rates (oracle) or from the rates *measured* over the previous slot
///    (a fully causal controller) — shares and service rates change in
///    place, powered-down servers migrate their backlog to surviving
///    ones (or drop it if the DC goes dark), and queues carry over;
///  * the ledger is per-request: the TUF is evaluated on each request's
///    realized total latency, energy per completion at the price of the
///    completion's slot, idle power integrated over server-hours,
///    penalties on every request that earned nothing.
///
/// Comparing its totals with the analytic chain quantifies what the
/// paper's steady-state-per-slot accounting hides (boundary transients,
/// per-request band straddling, carried backlog).
struct ClosedLoopSlotStats {
  std::uint64_t arrivals = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t dropped = 0;      ///< not admitted by the plan
  std::uint64_t completions = 0;
  double revenue = 0.0;           ///< per-request TUF dollars
  double energy_cost = 0.0;       ///< per-request + idle energy
  double transfer_cost = 0.0;
  double penalty_cost = 0.0;
  RunningStats total_latency;     ///< propagation + sojourn, completed req
  double net_profit() const {
    return revenue - energy_cost - transfer_cost - penalty_cost;
  }
};

struct ClosedLoopResult {
  std::vector<ClosedLoopSlotStats> slots;
  /// Jobs still in queues when the horizon ends (abandoned, penalized).
  std::uint64_t stranded = 0;

  /// Resilience telemetry, mirroring RunResult's: which ladder rung
  /// produced slot t's applied plan (the in-loop ladder is {1 policy,
  /// 3 previous plan, 5 shed-all}; see docs/RESILIENCE.md) and how many
  /// PlanChecker::repair() fixes it needed. All rung 1 / zero repairs
  /// when Options::faults is empty.
  std::vector<int> fallback_rungs;
  std::vector<std::size_t> repair_adjustments;
  std::size_t faulted_slots = 0;

  double total_profit() const {
    double p = 0.0;
    for (const auto& s : slots) p += s.net_profit();
    return p;
  }
};

class ClosedLoopSimulator {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// What the policy sees at each boundary: the true upcoming rates
    /// (the paper's assumption) or the previous slot's measured rates.
    enum class PlanningInput { kOracleRates, kMeasuredPreviousSlot };
    PlanningInput planning_input = PlanningInput::kOracleRates;
    /// Mid-slot disturbances, applied at each boundary: an outage clamps
    /// the plan onto the surviving fleet (the existing backlog-migration
    /// path absorbs the dark servers), a cut link drops the requests
    /// routed over it, spiked prices bill every completion, and the
    /// policy plans from the sanitized (gap-imputed) input behind an
    /// in-loop {policy, previous-plan, shed-all} ladder. Empty (the
    /// default) leaves the sample path bit-identical to a fault-free
    /// build of this simulator.
    FaultSchedule faults;
  };

  ClosedLoopSimulator() = default;
  explicit ClosedLoopSimulator(Options options) : options_(options) {}

  /// Randomness is split per slot: slot t draws from substream
  /// (seed, first_slot + t), so a slot's sample path does not depend on
  /// how many events earlier slots consumed and any slot range replays
  /// bit-identically.
  ClosedLoopResult run(const Scenario& scenario, Policy& policy,
                       std::size_t num_slots, std::size_t first_slot = 0);

  /// Runs `replications` statistically independent simulations of the
  /// same horizon, fanned across `workers` threads (0 = one per hardware
  /// thread, capped at the replication count). Replication r simulates
  /// with a SplitMix64-mixed seed derived from (Options::seed, r) and
  /// its own Policy::clone(), so results are identical for every worker
  /// count. A policy that cannot clone (nullptr) runs every replication
  /// serially on the caller's instance instead.
  std::vector<ClosedLoopResult> run_replications(const Scenario& scenario,
                                                 Policy& policy,
                                                 std::size_t num_slots,
                                                 std::size_t replications,
                                                 std::size_t workers = 0,
                                                 std::size_t first_slot = 0);

 private:
  Options options_;
};

}  // namespace palb
