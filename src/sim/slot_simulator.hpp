#pragma once

#include <cstdint>
#include <vector>

#include "cloud/accounting.hpp"
#include "cloud/model.hpp"
#include "cloud/plan.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace palb {

/// Result of stochastically replaying one slot of a plan.
struct SimOutcome {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  /// Revenue with the paper's accounting: the TUF evaluated at the
  /// *empirical mean* delay of each (class, DC) stream.
  double revenue_mean_delay = 0.0;
  /// Revenue with per-request accounting: the TUF evaluated at every
  /// individual sojourn time (stricter; quantifies what averaging hides).
  double revenue_per_request = 0.0;
  double energy_cost = 0.0;
  double transfer_cost = 0.0;
  /// sojourn[k][l]: empirical sojourn stats of the class-k stream at DC l.
  std::vector<std::vector<RunningStats>> sojourn;
  /// Raw per-request sojourn samples per (class, DC) when
  /// Options::record_samples is set (empty otherwise) — for percentile
  /// SLO verification.
  std::vector<std::vector<SampleSet>> sojourn_samples;

  double net_profit_mean_delay() const {
    return revenue_mean_delay - energy_cost - transfer_cost;
  }
  double net_profit_per_request() const {
    return revenue_per_request - energy_cost - transfer_cost;
  }
};

/// Discrete-event replay of a DispatchPlan: Poisson arrivals at the
/// planned rates, each (class, server) VM an M/M/1-FCFS queue with
/// service rate phi * C * mu, per-request latency and dollar accounting.
///
/// This is the empirical check on the controller's analytic model: the
/// Eq. 1 delays the optimizer plans with should match the simulated
/// means, and the analytic ledger of evaluate_plan() should match the
/// simulated ledger (tests and bench/ablation_sim_vs_analytic hold both
/// to tolerance).
class SlotSimulator {
 public:
  struct Options {
    /// Replications averaged per (class, server) queue — the slot is
    /// replayed this many times with different substreams.
    int replications = 1;
    /// Retain every sojourn sample (memory ~ arrivals) so callers can
    /// read exact percentiles from SimOutcome::sojourn_samples.
    bool record_samples = false;
  };

  SlotSimulator() = default;
  explicit SlotSimulator(Options options) : options_(options) {}

  SimOutcome simulate(const Topology& topology, const SlotInput& input,
                      const DispatchPlan& plan, Rng& rng) const;

 private:
  Options options_;
};

}  // namespace palb
