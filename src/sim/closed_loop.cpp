#include "sim/closed_loop.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>

#include "check/plan_checker.hpp"
#include "fault/resilient_controller.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace palb {

namespace {

struct Job {
  double front_end_arrival = 0.0;  ///< stamp at the front-end
  double propagation = 0.0;        ///< one-way+return wire time it pays
  std::size_t klass = 0;
};

/// One VM queue (class k on one powered server of DC l), FCFS,
/// exponential service whose rate may change at slot boundaries
/// (memoryless, so rate changes simply resample the head's remainder).
struct VmQueue {
  std::deque<Job> jobs;
  /// Generation counter invalidating stale departure events.
  std::uint64_t generation = 0;
};

enum class EventType { kArrival, kDeparture, kSlotBoundary };

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  // kArrival: stream index (k*S+s). kDeparture: queue id + generation.
  std::size_t a = 0;
  std::uint64_t generation = 0;

  bool operator>(const Event& other) const { return time > other.time; }
};

}  // namespace

ClosedLoopResult ClosedLoopSimulator::run(const Scenario& scenario,
                                          Policy& policy,
                                          std::size_t num_slots,
                                          std::size_t first_slot) {
  scenario.validate();
  PALB_REQUIRE(num_slots > 0, "need at least one slot");
  const FaultSchedule& faults = options_.faults;
  if (!faults.empty()) faults.validate(scenario.topology);
  const Topology& topo = scenario.topology;
  const std::size_t K = topo.num_classes();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.num_datacenters();
  const double T = scenario.slot_seconds;
  const double horizon = T * static_cast<double>(num_slots);

  // Per-slot substreams (see header): the master never draws directly.
  const Rng master(options_.seed);
  Rng rng = master.substream(static_cast<std::uint64_t>(first_slot));

  ClosedLoopResult result;
  result.slots.resize(num_slots);
  result.fallback_rungs.assign(num_slots, 0);
  result.repair_adjustments.assign(num_slots, 0);
  result.faulted_slots = faults.count_faulted(num_slots, first_slot);

  // ---- mutable world state -------------------------------------------------
  // Queue id layout: (l, k, server i) -> flat index; servers per (l)
  // bounded by the fleet, queues exist for every potential server.
  std::vector<std::size_t> queue_base(L, 0);
  std::size_t total_queues = 0;
  for (std::size_t l = 0; l < L; ++l) {
    queue_base[l] = total_queues;
    total_queues +=
        K * static_cast<std::size_t>(topo.datacenters[l].num_servers);
  }
  const auto queue_id = [&](std::size_t l, std::size_t k, int server) {
    return queue_base[l] +
           k * static_cast<std::size_t>(topo.datacenters[l].num_servers) +
           static_cast<std::size_t>(server);
  };
  std::vector<VmQueue> queues(total_queues);
  std::vector<double> service_rate(total_queues, 0.0);  // phi*C*mu

  DispatchPlan plan = DispatchPlan::zero(topo);
  SlotInput current_input;  // the slot's true input (prices for billing)
  std::size_t slot_index = 0;

  // Measured arrivals (per stream) over the current slot, for causal
  // re-planning.
  std::vector<double> measured(K * S, 0.0);
  std::vector<double> previous_measured(K * S, 0.0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  // ---- helpers ---------------------------------------------------------------
  const auto schedule_departure = [&](std::size_t qid, double now) {
    if (queues[qid].jobs.empty() || service_rate[qid] <= 0.0) return;
    events.push(Event{now + rng.exponential(service_rate[qid]),
                      EventType::kDeparture, qid,
                      queues[qid].generation});
  };

  const auto invalidate_queue = [&](std::size_t qid) {
    ++queues[qid].generation;
  };

  const auto charge_worthless = [&](std::size_t k,
                                    ClosedLoopSlotStats& stats) {
    stats.penalty_cost += topo.classes[k].drop_penalty_per_request;
  };

  // Applies a freshly computed plan at time `now`: updates service rates,
  // migrates backlog off powered-down servers, reschedules departures.
  const auto apply_plan = [&](const DispatchPlan& next, double now,
                              ClosedLoopSlotStats& stats) {
    for (std::size_t l = 0; l < L; ++l) {
      const auto& dc = topo.datacenters[l];
      const int servers_next = next.dc[l].servers_on;
      for (std::size_t k = 0; k < K; ++k) {
        const double share =
            next.dc[l].share.empty() ? 0.0 : next.dc[l].share[k];
        const double rate = share * dc.server_capacity * dc.service_rate[k];
        // Migrate backlog from servers beyond the new count.
        for (int i = servers_next; i < dc.num_servers; ++i) {
          const std::size_t from = queue_id(l, k, i);
          invalidate_queue(from);
          while (!queues[from].jobs.empty()) {
            Job job = queues[from].jobs.front();
            queues[from].jobs.pop_front();
            if (servers_next > 0 && rate > 0.0) {
              const int target = static_cast<int>(rng.uniform_index(
                  static_cast<std::uint64_t>(servers_next)));
              queues[queue_id(l, k, target)].jobs.push_back(job);
            } else {
              // DC (or this class's VM) went dark with backlog: the
              // requests are lost and penalized.
              ++stats.dropped;
              charge_worthless(k, stats);
            }
          }
          service_rate[from] = 0.0;
        }
        // Live servers: new rate; memoryless service lets us resample.
        for (int i = 0; i < servers_next; ++i) {
          const std::size_t qid = queue_id(l, k, i);
          service_rate[qid] = rate;
          invalidate_queue(qid);
          schedule_departure(qid, now);
        }
      }
    }
    plan = next;
  };

  // ---- prime slot 0 ----------------------------------------------------------
  // The slot's faulted world: surviving topology, sanitized planning
  // input, cut links. With an empty schedule this is just the scenario's
  // slot verbatim and the fault paths below all no-op.
  FaultedSlot world;
  const PlanChecker repair_checker;

  const auto plan_for_slot = [&](std::size_t t) {
    SlotInput input = world.input;  // sanitized: gaps imputed, spikes in
    if (options_.planning_input ==
            Options::PlanningInput::kMeasuredPreviousSlot &&
        t > 0) {
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t s = 0; s < S; ++s) {
          input.arrival_rate[k][s] = previous_measured[k * S + s] / T;
        }
      }
    }
    if (faults.empty()) {
      // Fault-free fast path, exactly the pre-fault behaviour: audit
      // against the rates the policy planned from (under measured-rate
      // operation the true arrivals may legitimately exceed the plan).
      DispatchPlan next_plan = policy.plan_slot(topo, input);
      check::maybe_check_plan(topo, input, next_plan, "ClosedLoopSimulator");
      result.fallback_rungs[t] = 1;
      return next_plan;
    }
    // In-loop fallback ladder {1 policy, 3 previous plan, 5 shed-all}:
    // every candidate is projected off cut links and repaired, and the
    // first one that audits clean against the surviving world is used.
    DispatchPlan next = DispatchPlan::zero(world.topology);
    int rung = static_cast<int>(FallbackRung::kShedAll);
    std::size_t repairs = 0;
    const auto accept = [&](DispatchPlan cand, FallbackRung r) {
      if (world.has_blocked_link) {
        for (std::size_t k = 0; k < K; ++k) {
          for (std::size_t s = 0; s < S; ++s) {
            for (std::size_t l = 0; l < L; ++l) {
              if (world.blocked(s, l)) cand.rate[k][s][l] = 0.0;
            }
          }
        }
      }
      PlanRepairReport rep =
          repair_checker.repair(world.topology, input, std::move(cand));
      if (!repair_checker.check(world.topology, input, rep.plan).ok()) {
        return false;
      }
      next = std::move(rep.plan);
      rung = static_cast<int>(r);
      repairs = rep.adjustments();
      return true;
    };
    bool applied = false;
    if (!world.solver_failure) {
      try {
        applied = accept(policy.plan_slot(world.topology, input),
                         FallbackRung::kFullSolve);
      } catch (const std::exception&) {
        // Walk down the ladder.
      }
    }
    if (!applied && t > 0) applied = accept(plan, FallbackRung::kPreviousPlan);
    if (!applied) accept(DispatchPlan::zero(world.topology),
                         FallbackRung::kShedAll);
    result.fallback_rungs[t] = rung;
    result.repair_adjustments[t] = repairs;
    return next;
  };

  world = faults.materialize(scenario, first_slot);
  current_input = scenario.slot_input(first_slot);
  current_input.price = world.input.price;  // price spikes bill for real
  apply_plan(plan_for_slot(0), 0.0, result.slots[0]);

  // Arrival streams: one pending event each, regenerated at every slot
  // boundary (generation counters kill stale chains so rates switch
  // exactly at the boundary).
  std::vector<std::uint64_t> stream_generation(K * S, 0);
  const auto arm_streams = [&](double now) {
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t s = 0; s < S; ++s) {
        const std::size_t id = k * S + s;
        ++stream_generation[id];
        const double rate = current_input.arrival_rate[k][s];
        if (rate > 0.0) {
          events.push(Event{now + rng.exponential(rate),
                            EventType::kArrival, id,
                            stream_generation[id]});
        }
      }
    }
  };
  arm_streams(0.0);
  for (std::size_t t = 1; t < num_slots; ++t) {
    events.push(Event{T * static_cast<double>(t), EventType::kSlotBoundary,
                      t, 0});
  }

  // Idle-power integration bookkeeping.
  double idle_accrued_until = 0.0;
  const auto accrue_idle = [&](double until) {
    if (until <= idle_accrued_until) return;
    const double hours = (until - idle_accrued_until) / 3600.0;
    double dollars = 0.0;
    for (std::size_t l = 0; l < L; ++l) {
      dollars += static_cast<double>(plan.dc[l].servers_on) *
                 topo.datacenters[l].idle_power_kw * hours *
                 current_input.price[l] * topo.datacenters[l].pue;
    }
    result.slots[slot_index].energy_cost += dollars;
    idle_accrued_until = until;
  };

  // ---- main loop --------------------------------------------------------------
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    if (ev.time >= horizon) break;
    ClosedLoopSlotStats& stats = result.slots[slot_index];

    switch (ev.type) {
      case EventType::kSlotBoundary: {
        accrue_idle(ev.time);
        // Close the slot's measurement window.
        previous_measured = measured;
        std::fill(measured.begin(), measured.end(), 0.0);
        slot_index = ev.a;
        // Fresh substream for the new slot (see header contract).
        rng = master.substream(
            static_cast<std::uint64_t>(first_slot + slot_index));
        world = faults.materialize(scenario, first_slot + slot_index);
        current_input = scenario.slot_input(first_slot + slot_index);
        current_input.price = world.input.price;  // spikes bill for real
        apply_plan(plan_for_slot(slot_index), ev.time,
                   result.slots[slot_index]);
        arm_streams(ev.time);
        break;
      }
      case EventType::kArrival: {
        if (ev.generation != stream_generation[ev.a]) break;  // stale
        const std::size_t k = ev.a / S;
        const std::size_t s = ev.a % S;
        ++stats.arrivals;
        measured[ev.a] += 1.0;

        // Route per the live plan's split for this stream.
        const double offered = current_input.arrival_rate[k][s];
        double admit = rng.uniform(0.0, std::max(offered, 1e-12));
        int dest = -1;
        for (std::size_t l = 0; l < L; ++l) {
          admit -= plan.rate[k][s][l];
          if (admit < 0.0) {
            dest = static_cast<int>(l);
            break;
          }
        }
        if (dest < 0 ||
            plan.dc[static_cast<std::size_t>(dest)].servers_on == 0 ||
            world.blocked(s, static_cast<std::size_t>(dest))) {
          // No destination, a dark DC, or a cut front-end<->DC link:
          // the request is lost and penalized.
          ++stats.dropped;
          charge_worthless(k, stats);
        } else {
          const auto l = static_cast<std::size_t>(dest);
          ++stats.dispatched;
          stats.transfer_cost += topo.classes[k].transfer_cost_per_mile *
                                 topo.distance_miles[s][l];
          const int target = static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(plan.dc[l].servers_on)));
          const std::size_t qid = queue_id(l, k, target);
          queues[qid].jobs.push_back(
              Job{ev.time, topo.propagation_delay(s, l), k});
          if (queues[qid].jobs.size() == 1) {
            schedule_departure(qid, ev.time);
          }
          // Energy billed per processed request at admission slot price.
          stats.energy_cost += topo.datacenters[l].energy_per_request_kwh[k] *
                               current_input.price[l] *
                               topo.datacenters[l].pue;
        }
        // Next arrival of this stream at the *current* slot's rate.
        if (offered > 0.0) {
          events.push(Event{ev.time + rng.exponential(offered),
                            EventType::kArrival, ev.a,
                            stream_generation[ev.a]});
        }
        break;
      }
      case EventType::kDeparture: {
        const std::size_t qid = ev.a;
        if (ev.generation != queues[qid].generation ||
            queues[qid].jobs.empty()) {
          break;  // stale event from before a re-plan / migration
        }
        const Job job = queues[qid].jobs.front();
        queues[qid].jobs.pop_front();
        ++stats.completions;
        const double latency =
            (ev.time - job.front_end_arrival) + job.propagation;
        stats.total_latency.add(latency);
        const double utility = topo.classes[job.klass].tuf.utility(latency);
        if (utility > 0.0) {
          stats.revenue += utility;
        } else {
          charge_worthless(job.klass, stats);
        }
        schedule_departure(qid, ev.time);
        break;
      }
    }
  }
  accrue_idle(horizon);

  // Backlog at the horizon is abandoned and penalized.
  for (std::size_t l = 0; l < L; ++l) {
    for (std::size_t k = 0; k < K; ++k) {
      for (int i = 0; i < topo.datacenters[l].num_servers; ++i) {
        const auto& q = queues[queue_id(l, k, i)];
        result.stranded += q.jobs.size();
        for (std::size_t j = 0; j < q.jobs.size(); ++j) {
          charge_worthless(k, result.slots[num_slots - 1]);
        }
      }
    }
  }
  return result;
}

std::vector<ClosedLoopResult> ClosedLoopSimulator::run_replications(
    const Scenario& scenario, Policy& policy, std::size_t num_slots,
    std::size_t replications, std::size_t workers, std::size_t first_slot) {
  PALB_REQUIRE(replications > 0, "need at least one replication");

  // Mix (seed, r) into one independent seed per replication up front —
  // the same seeds whatever the worker count or execution order.
  std::vector<std::uint64_t> seeds(replications);
  SplitMix64 mix(options_.seed);
  for (auto& s : seeds) s = mix.next();

  std::vector<ClosedLoopResult> results(replications);
  const auto run_one = [&](std::size_t r, Policy& p) {
    Options opts = options_;
    opts.seed = seeds[r];
    ClosedLoopSimulator sim(opts);
    results[r] = sim.run(scenario, p, num_slots, first_slot);
  };

  const std::size_t resolved =
      bounded_workers(workers == 0 ? 0 : workers, replications);
  std::vector<std::unique_ptr<Policy>> clones;
  if (resolved > 1) {
    clones.reserve(replications);
    for (std::size_t r = 0; r < replications; ++r) {
      clones.push_back(policy.clone());
      if (!clones.back()) {
        clones.clear();  // cannot clone: fall back to the serial path
        break;
      }
    }
  }

  if (clones.empty()) {
    for (std::size_t r = 0; r < replications; ++r) run_one(r, policy);
  } else {
    ThreadPool pool(resolved);
    parallel_for(pool, replications,
                 [&](std::size_t r) { run_one(r, *clones[r]); });
  }
  return results;
}

}  // namespace palb
