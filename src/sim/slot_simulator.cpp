#include "sim/slot_simulator.hpp"

#include <deque>

#include "check/plan_checker.hpp"
#include "queueing/mm1.hpp"
#include "util/error.hpp"

namespace palb {

namespace {

/// One M/M/1-FCFS queue replayed for `horizon` seconds; every completion
/// is reported through `on_complete(sojourn_seconds)`.
template <typename OnComplete>
std::pair<std::uint64_t, std::uint64_t> replay_queue(
    double arrival_rate, double service_rate, double horizon, Rng& rng,
    OnComplete&& on_complete) {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  if (arrival_rate <= 0.0) return {arrivals, completions};

  double now = 0.0;
  double next_arrival = rng.exponential(arrival_rate);
  double departure = -1.0;
  std::deque<double> queue;  // arrival stamps; head in service

  // Jobs in flight at the horizon are abandoned: the controller re-plans
  // next slot and short queues drain in far less than a slot.
  for (;;) {
    const bool service_next = departure >= 0.0 && departure < next_arrival;
    const double t = service_next ? departure : next_arrival;
    if (t >= horizon) break;
    now = t;
    if (service_next) {
      const double arrived = queue.front();
      queue.pop_front();
      ++completions;
      on_complete(now - arrived);
      departure = queue.empty() ? -1.0 : now + rng.exponential(service_rate);
    } else {
      ++arrivals;
      queue.push_back(now);
      if (queue.size() == 1) departure = now + rng.exponential(service_rate);
      next_arrival = now + rng.exponential(arrival_rate);
    }
  }
  return {arrivals, completions};
}

}  // namespace

SimOutcome SlotSimulator::simulate(const Topology& topology,
                                   const SlotInput& input,
                                   const DispatchPlan& plan,
                                   Rng& rng) const {
  topology.validate();
  input.validate(topology);
  check::maybe_check_plan(topology, input, plan, "SlotSimulator");
  PALB_REQUIRE(options_.replications >= 1, "need >= 1 replication");

  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  const double T = input.slot_seconds;
  const double reps = static_cast<double>(options_.replications);

  SimOutcome out;
  out.sojourn.assign(K, std::vector<RunningStats>(L));
  if (options_.record_samples) {
    out.sojourn_samples.assign(K, std::vector<SampleSet>(L));
  }

  std::uint64_t stream = 1;
  for (std::size_t k = 0; k < K; ++k) {
    const auto& cls = topology.classes[k];
    for (std::size_t l = 0; l < L; ++l) {
      const auto& dc = topology.datacenters[l];
      const double load = plan.class_dc_rate(k, l);
      if (load <= 0.0) continue;
      const int servers = plan.dc[l].servers_on;
      const double share = plan.dc[l].share.empty() ? 0.0 : plan.dc[l].share[k];
      PALB_REQUIRE(servers > 0 && share > 0.0,
                   "plan routes load into an unserviced (class, DC) pair");
      const double per_server = load / static_cast<double>(servers);
      const double service_rate =
          mm1::effective_rate(share, dc.server_capacity, dc.service_rate[k]);

      // Origin mix for network propagation: a completed request came
      // from front-end s with probability flow_s / load; utilities are
      // charged at sojourn + propagation, expectation taken over the mix
      // (deterministic, unbiased for revenue).
      std::vector<std::pair<double, double>> origin_mix;  // (frac, prop)
      for (std::size_t s = 0; s < S; ++s) {
        const double flow = plan.rate[k][s][l];
        if (flow <= 0.0) continue;
        origin_mix.emplace_back(flow / load,
                                topology.propagation_delay(s, l));
      }
      const auto mixed_utility = [&](double sojourn) {
        double u = 0.0;
        for (const auto& [frac, prop] : origin_mix) {
          u += frac * cls.tuf.utility(sojourn + prop);
        }
        return u;
      };

      double per_request_value = 0.0;
      std::uint64_t pair_arrivals = 0;
      std::uint64_t pair_completions = 0;
      RunningStats& stats = out.sojourn[k][l];

      for (int rep = 0; rep < options_.replications; ++rep) {
        for (int server = 0; server < servers; ++server) {
          Rng queue_rng = rng.substream(stream++);
          const auto [arr, comp] = replay_queue(
              per_server, service_rate, T, queue_rng, [&](double sojourn) {
                stats.add(sojourn);
                if (options_.record_samples) {
                  out.sojourn_samples[k][l].add(sojourn);
                }
                per_request_value += mixed_utility(sojourn);
              });
          pair_arrivals += arr;
          pair_completions += comp;
        }
      }

      const double arrivals_avg = static_cast<double>(pair_arrivals) / reps;
      const double completions_avg =
          static_cast<double>(pair_completions) / reps;
      out.arrivals += static_cast<std::uint64_t>(arrivals_avg + 0.5);
      out.completions += static_cast<std::uint64_t>(completions_avg + 0.5);
      out.revenue_per_request += per_request_value / reps;
      if (stats.count() > 0) {
        out.revenue_mean_delay += mixed_utility(stats.mean()) * completions_avg;
      }

      // Dollar ledger mirrors evaluate_plan but on simulated volumes.
      out.energy_cost += dc.energy_per_request_kwh[k] * completions_avg *
                         input.price[l] * dc.pue;
      for (std::size_t s = 0; s < S; ++s) {
        const double fraction = plan.rate[k][s][l] / load;
        out.transfer_cost += cls.transfer_cost_per_mile *
                             topology.distance_miles[s][l] * fraction *
                             arrivals_avg;
      }
    }
  }
  return out;
}

}  // namespace palb
