#include "workload/rate_trace.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace palb {

RateTrace::RateTrace(std::string name, std::vector<double> rates_per_second)
    : name_(std::move(name)), rates_(std::move(rates_per_second)) {
  PALB_REQUIRE(!rates_.empty(), "rate trace must not be empty");
  for (double r : rates_) {
    PALB_REQUIRE(r >= 0.0, "arrival rates must be >= 0");
  }
}

double RateTrace::at(std::size_t t) const {
  PALB_REQUIRE(!rates_.empty(), "rate trace is empty");
  return rates_[t % rates_.size()];
}

double RateTrace::peak() const {
  PALB_REQUIRE(!rates_.empty(), "rate trace is empty");
  return *std::max_element(rates_.begin(), rates_.end());
}

double RateTrace::mean() const {
  PALB_REQUIRE(!rates_.empty(), "rate trace is empty");
  return std::accumulate(rates_.begin(), rates_.end(), 0.0) /
         static_cast<double>(rates_.size());
}

RateTrace RateTrace::shifted(std::size_t slots_forward) const {
  PALB_REQUIRE(!rates_.empty(), "rate trace is empty");
  std::vector<double> out(rates_.size());
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    out[i] = rates_[(i + rates_.size() - slots_forward % rates_.size()) %
                    rates_.size()];
  }
  return RateTrace(name_ + "+shift" + std::to_string(slots_forward),
                   std::move(out));
}

RateTrace RateTrace::scaled(double factor) const {
  PALB_REQUIRE(factor >= 0.0, "scale factor must be >= 0");
  std::vector<double> out = rates_;
  for (double& r : out) r *= factor;
  return RateTrace(name_, std::move(out));
}

RateTrace RateTrace::resampled(std::size_t factor) const {
  PALB_REQUIRE(factor >= 1, "resample factor must be >= 1");
  PALB_REQUIRE(!rates_.empty(), "rate trace is empty");
  if (factor == 1) return *this;
  std::vector<double> out;
  out.reserve(rates_.size() * factor);
  // Treat each stored value as the rate at its slot midpoint and
  // interpolate linearly between midpoints (wrapping).
  const auto n = rates_.size();
  for (std::size_t slot = 0; slot < n; ++slot) {
    for (std::size_t sub = 0; sub < factor; ++sub) {
      const double pos =
          (static_cast<double>(sub) + 0.5) / static_cast<double>(factor) -
          0.5;  // offset from this slot's midpoint, in slots
      const std::size_t left = pos < 0.0 ? (slot + n - 1) % n : slot;
      const std::size_t right = pos < 0.0 ? slot : (slot + 1) % n;
      const double frac = pos < 0.0 ? pos + 1.0 : pos;
      out.push_back(rates_[left] * (1.0 - frac) + rates_[right] * frac);
    }
  }
  return RateTrace(name_ + "@x" + std::to_string(factor), std::move(out));
}

RateTrace RateTrace::window(std::size_t first, std::size_t count) const {
  PALB_REQUIRE(count > 0, "window must contain at least one slot");
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(at(first + i));
  return RateTrace(name_, std::move(out));
}

}  // namespace palb
