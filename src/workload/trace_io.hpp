#pragma once

#include <iosfwd>
#include <vector>

#include "market/price_trace.hpp"
#include "workload/rate_trace.hpp"

namespace palb {

/// CSV import/export of rate and price traces so users can plug their own
/// measured workloads / market data into the benches.
///
/// Format: first column "slot", one column per trace named by the trace.
namespace trace_io {

void write_rates(std::ostream& os, const std::vector<RateTrace>& traces);
std::vector<RateTrace> read_rates(std::istream& is);

void write_prices(std::ostream& os, const std::vector<PriceTrace>& traces);
std::vector<PriceTrace> read_prices(std::istream& is);

}  // namespace trace_io
}  // namespace palb
