#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "market/price_trace.hpp"
#include "workload/rate_trace.hpp"

namespace palb {

/// CSV import/export of rate and price traces so users can plug their own
/// measured workloads / market data into the benches.
///
/// Format: first column "slot", one column per trace named by the trace.
///
/// Readers reject malformed files — a non-numeric field, a wrong column
/// count, an embedded NUL, a NaN/infinite or negative value — with an
/// IoError naming the source and the 1-based line number. `source_name`
/// labels the stream in those messages (pass the file path).
namespace trace_io {

void write_rates(std::ostream& os, const std::vector<RateTrace>& traces);
std::vector<RateTrace> read_rates(std::istream& is,
                                  const std::string& source_name = "<stream>");

void write_prices(std::ostream& os, const std::vector<PriceTrace>& traces);
std::vector<PriceTrace> read_prices(
    std::istream& is, const std::string& source_name = "<stream>");

}  // namespace trace_io
}  // namespace palb
