#include "workload/generators.hpp"

#include <cmath>

#include "util/error.hpp"

namespace palb::workload {

RateTrace constant(const std::string& name, double rate, std::size_t slots) {
  PALB_REQUIRE(rate >= 0.0, "rate must be >= 0");
  PALB_REQUIRE(slots > 0, "need at least one slot");
  return RateTrace(name, std::vector<double>(slots, rate));
}

RateTrace worldcup_like(const std::string& name, const WorldCupParams& p,
                        Rng& rng) {
  PALB_REQUIRE(p.slots > 0, "need at least one slot");
  PALB_REQUIRE(p.base_rate >= 0.0 && p.daily_peak >= p.base_rate,
               "need 0 <= base_rate <= daily_peak");
  PALB_REQUIRE(p.match_boost >= 1.0, "match boost must be >= 1");
  std::vector<double> rates;
  rates.reserve(p.slots);
  for (std::size_t s = 0; s < p.slots; ++s) {
    const std::size_t hour = (s + p.phase_shift) % 24;
    // Diurnal backbone: trough near 04:00, smooth daytime dome.
    const double diurnal =
        0.5 * (1.0 - std::cos(2.0 * M_PI *
                              (static_cast<double>(hour) - 4.0) / 24.0));
    double rate = p.base_rate + (p.daily_peak - p.base_rate) * diurnal;
    // Evening match window.
    const std::size_t match_delta = (hour + 24 - p.match_hour) % 24;
    if (match_delta < 3) rate *= p.match_boost;
    // Multiplicative burst noise, mean-one lognormal.
    if (p.burst_sigma > 0.0) {
      rate *= rng.lognormal(-0.5 * p.burst_sigma * p.burst_sigma,
                            p.burst_sigma);
    }
    rates.push_back(rate);
  }
  return RateTrace(name, std::move(rates));
}

RateTrace google_like(const std::string& name, const GoogleParams& p,
                      Rng& rng) {
  PALB_REQUIRE(p.slots > 0, "need at least one slot");
  PALB_REQUIRE(p.plateau_rate >= 0.0, "plateau rate must be >= 0");
  PALB_REQUIRE(p.lull_probability >= 0.0 && p.lull_probability <= 1.0,
               "lull probability must be in [0,1]");
  std::vector<double> rates;
  rates.reserve(p.slots);
  for (std::size_t s = 0; s < p.slots; ++s) {
    double rate = p.plateau_rate;
    if (p.burst_sigma > 0.0) {
      rate *= rng.lognormal(-0.5 * p.burst_sigma * p.burst_sigma,
                            p.burst_sigma);
    }
    if (rng.bernoulli(p.lull_probability)) rate *= p.lull_factor;
    rates.push_back(rate);
  }
  return RateTrace(name, std::move(rates));
}

std::vector<RateTrace> worldcup_frontends(std::size_t frontends,
                                          const WorldCupParams& base,
                                          Rng& rng) {
  PALB_REQUIRE(frontends > 0, "need at least one front-end");
  std::vector<RateTrace> out;
  out.reserve(frontends);
  for (std::size_t f = 0; f < frontends; ++f) {
    WorldCupParams p = base;
    // Distinct days of the original trace -> distinct phases & magnitudes.
    p.phase_shift = base.phase_shift + f * 2;
    p.daily_peak = base.daily_peak * (1.0 + 0.15 * static_cast<double>(f));
    Rng stream = rng.substream(f);
    out.push_back(
        worldcup_like("frontend" + std::to_string(f + 1), p, stream));
  }
  return out;
}

std::vector<RateTrace> synthesize_types(const RateTrace& base,
                                        std::size_t types,
                                        std::size_t shift) {
  PALB_REQUIRE(types > 0, "need at least one type");
  std::vector<RateTrace> out;
  out.reserve(types);
  for (std::size_t k = 0; k < types; ++k) out.push_back(base.shifted(k * shift));
  return out;
}

}  // namespace palb::workload
