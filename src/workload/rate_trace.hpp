#pragma once

#include <string>
#include <vector>

namespace palb {

/// Per-slot average arrival-rate series (requests/second) for one
/// (front-end, request-type) stream. The controller runs on average
/// rates per slot (paper §III: "job interarrival times are much shorter
/// compared to a slot"), so a trace is simply one rate per slot.
class RateTrace {
 public:
  RateTrace() = default;
  RateTrace(std::string name, std::vector<double> rates_per_second);

  const std::string& name() const { return name_; }
  std::size_t slots() const { return rates_.size(); }
  bool empty() const { return rates_.empty(); }

  /// Rate for slot `t` (wraps modulo length).
  double at(std::size_t t) const;
  const std::vector<double>& values() const { return rates_; }

  double peak() const;
  double mean() const;

  /// The paper synthesizes extra request types by shifting one real trace
  /// in time (§VI: "We simply shifted the request traces ... by some time
  /// units to simulate the requests of three different service types").
  RateTrace shifted(std::size_t slots_forward) const;
  /// Uniform scaling (the paper's §VII-B3 low/high workload study scales
  /// capacity; scaling demand is the dual knob).
  RateTrace scaled(double factor) const;
  /// First `count` slots (wrapping), mirroring PriceTrace::window.
  RateTrace window(std::size_t first, std::size_t count) const;
  /// Re-samples the trace at `factor` sub-slots per slot by linear
  /// interpolation between slot means (wrapping at the end), preserving
  /// the diurnal shape while enabling finer re-planning intervals — the
  /// slot-length ablation's input. factor >= 1.
  RateTrace resampled(std::size_t factor) const;

 private:
  std::string name_;
  std::vector<double> rates_;
};

}  // namespace palb
