#pragma once

#include "util/rng.hpp"
#include "workload/rate_trace.hpp"

namespace palb {

/// Trace generators standing in for the paper's external datasets
/// (DESIGN.md §2 documents the substitution).
namespace workload {

/// Constant-rate trace (the paper's §V synthetic study uses fixed
/// per-front-end arrival rates, Table II).
RateTrace constant(const std::string& name, double rate, std::size_t slots);

/// WorldCup'98-like diurnal web trace: 24 hourly rates with a quiet
/// overnight trough, a daytime ramp, a pronounced evening peak (match
/// time), multiplicative burst noise, and a per-front-end phase shift.
struct WorldCupParams {
  double base_rate = 40.0;    ///< overnight trough, req/s
  double daily_peak = 260.0;  ///< smooth diurnal maximum, req/s
  double match_boost = 1.8;   ///< multiplier on the evening match window
  std::size_t match_hour = 19;  ///< start of the 3-hour match window
  double burst_sigma = 0.15;  ///< lognormal burst noise (0 = deterministic)
  std::size_t phase_shift = 0;  ///< hours to rotate (per front-end offsets)
  std::size_t slots = 24;
};
RateTrace worldcup_like(const std::string& name, const WorldCupParams& params,
                        Rng& rng);

/// Google-2010-like cluster task trace: a 7-hour window of bursty task
/// submissions — a plateau with heavy-tailed (lognormal) bursts and an
/// occasional lull, no diurnal structure (the paper's trace spans only
/// 7 hours).
struct GoogleParams {
  double plateau_rate = 120.0;  ///< baseline submissions, req/s
  double burst_sigma = 0.35;    ///< lognormal burstiness
  double lull_probability = 0.15;  ///< chance a slot is a lull
  double lull_factor = 0.45;    ///< rate multiplier during a lull
  std::size_t slots = 7;
};
RateTrace google_like(const std::string& name, const GoogleParams& params,
                      Rng& rng);

/// The paper's §VI front-end set: one WorldCup-like trace per front-end,
/// each with a distinct phase (the paper used four different *days* of the
/// trace for the four front-ends).
std::vector<RateTrace> worldcup_frontends(std::size_t frontends,
                                          const WorldCupParams& base,
                                          Rng& rng);

/// The paper's type-synthesis trick (§VI, §VII): derive `types` traces
/// from one trace by shifting it `shift` slots per type.
std::vector<RateTrace> synthesize_types(const RateTrace& base,
                                        std::size_t types,
                                        std::size_t shift);

}  // namespace workload
}  // namespace palb
