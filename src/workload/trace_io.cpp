#include "workload/trace_io.hpp"

#include <cmath>
#include <string>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace palb::trace_io {

namespace {

template <typename Trace>
void write_generic(std::ostream& os, const std::vector<Trace>& traces,
                   const std::string& what) {
  PALB_REQUIRE(!traces.empty(), "no " + what + " traces to write");
  const std::size_t slots = traces.front().size_proxy();
  for (const auto& t : traces) {
    PALB_REQUIRE(t.size_proxy() == slots,
                 what + " traces must share a length for CSV export");
  }
  std::vector<std::string> header{"slot"};
  for (const auto& t : traces) header.push_back(t.name_proxy());
  CsvTable table(std::move(header));
  for (std::size_t s = 0; s < slots; ++s) {
    std::vector<std::string> row{std::to_string(s)};
    for (const auto& t : traces) {
      row.push_back(format_double(t.at(s), 9));
    }
    table.add_row(std::move(row));
  }
  table.write(os);
}

// Thin adapters so one writer serves both trace kinds without inheritance.
struct RateView {
  const RateTrace& t;
  std::size_t size_proxy() const { return t.slots(); }
  const std::string& name_proxy() const { return t.name(); }
  double at(std::size_t s) const { return t.at(s); }
};
struct PriceView {
  const PriceTrace& t;
  std::size_t size_proxy() const { return t.size(); }
  const std::string& name_proxy() const { return t.location(); }
  double at(std::size_t s) const { return t.at(s); }
};

/// One numeric cell, additionally required to be a finite non-negative
/// rate/price (a NaN smuggled through a trace file must fail at import,
/// with the file and line, not deep inside a solve).
double read_value(const CsvTable& table, std::size_t row, std::size_t col,
                  const std::string& what) {
  const double v = table.cell_as_double(row, col);
  if (!std::isfinite(v) || v < 0.0) {
    const std::size_t line = table.row_line(row);
    throw IoError(table.source() +
                  (line > 0 ? ":" + std::to_string(line) : "") + ": " +
                  what + " column '" + table.header()[col] +
                  "' is not a finite non-negative value: " +
                  table.cell(row, col));
  }
  return v;
}

}  // namespace

void write_rates(std::ostream& os, const std::vector<RateTrace>& traces) {
  std::vector<RateView> views;
  views.reserve(traces.size());
  for (const auto& t : traces) views.push_back(RateView{t});
  write_generic(os, views, "rate");
}

std::vector<RateTrace> read_rates(std::istream& is,
                                  const std::string& source_name) {
  const CsvTable table = CsvTable::read(is, source_name);
  PALB_REQUIRE(table.cols() >= 2, "rate CSV needs slot + 1 trace column");
  PALB_REQUIRE(table.rows() > 0, "rate CSV has no rows");
  std::vector<RateTrace> out;
  for (std::size_t c = 1; c < table.cols(); ++c) {
    std::vector<double> values;
    values.reserve(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
      const double v = read_value(table, r, c, "rate");
      values.push_back(v);
    }
    out.emplace_back(table.header()[c], std::move(values));
  }
  return out;
}

void write_prices(std::ostream& os, const std::vector<PriceTrace>& traces) {
  std::vector<PriceView> views;
  views.reserve(traces.size());
  for (const auto& t : traces) views.push_back(PriceView{t});
  write_generic(os, views, "price");
}

std::vector<PriceTrace> read_prices(std::istream& is,
                                    const std::string& source_name) {
  const CsvTable table = CsvTable::read(is, source_name);
  PALB_REQUIRE(table.cols() >= 2, "price CSV needs slot + 1 trace column");
  PALB_REQUIRE(table.rows() > 0, "price CSV has no rows");
  std::vector<PriceTrace> out;
  for (std::size_t c = 1; c < table.cols(); ++c) {
    std::vector<double> values;
    values.reserve(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
      const double v = read_value(table, r, c, "price");
      values.push_back(v);
    }
    out.emplace_back(table.header()[c], std::move(values));
  }
  return out;
}

}  // namespace palb::trace_io
