#pragma once

#include <cassert>
#include <type_traits>

/// Compile-time dimensional analysis over the paper's quantities.
///
/// The profit objective (Eqs. 4-5) mixes five incompatible dimensions in
/// one expression: SLA utility ($/request), energy price ($/kWh) times
/// per-request energy (kWh/request), transfer cost ($/request/mile) times
/// distance (miles), arrival and service rates (requests/s), and M/M/1
/// sojourns (s) under CPU-share fractions. Every quantity here carries its
/// dimension vector in the type, so a swapped `mu`/`lambda` argument, a
/// $/kWh-vs-$/req slip, or a forgotten slot-length factor is a *compile
/// error*, not a silently wrong number the runtime PlanChecker may or may
/// not catch.
///
/// Design rules (see docs/UNITS.md for the full table):
///  * `Quantity<Dim>` wraps exactly one double — `sizeof(Quantity) ==
///    sizeof(double)`, trivially copyable, zero overhead.
///  * `+`/`-`/comparisons require identical dimensions; `*`/`/` compose
///    dimension vectors; a product whose dimensions cancel collapses back
///    to a plain `double`.
///  * Construction from `double` and `.value()` back to `double` are both
///    explicit — `.value()` is the ONLY escape hatch, reserved for the
///    audited solver seams.
///  * Same-dimension quantities can additionally carry a role *tag*
///    (`ServiceRate` vs `ArrivalRate`, both req/s): tags must match for
///    `+`/`-`/assignment but compare freely (`lambda < mu_eff` is the
///    stability test) and wash out under `*`/`/` (a rate times a time is
///    just requests, whatever the rate's role was).
namespace palb::units {

/// Dimension vector: exponents over the five base quantities
/// (seconds, requests, dollars, kilowatt-hours, miles).
template <int TimeE, int ReqE, int UsdE, int KwhE, int MileE>
struct Dim {
  static constexpr int time = TimeE;
  static constexpr int req = ReqE;
  static constexpr int usd = UsdE;
  static constexpr int kwh = KwhE;
  static constexpr int mile = MileE;
};

template <class A, class B>
using DimProduct = Dim<A::time + B::time, A::req + B::req, A::usd + B::usd,
                       A::kwh + B::kwh, A::mile + B::mile>;

template <class A, class B>
using DimQuotient = Dim<A::time - B::time, A::req - B::req, A::usd - B::usd,
                        A::kwh - B::kwh, A::mile - B::mile>;

template <class A, class B>
inline constexpr bool kSameDim =
    A::time == B::time && A::req == B::req && A::usd == B::usd &&
    A::kwh == B::kwh && A::mile == B::mile;

template <class D>
inline constexpr bool kDimensionless = kSameDim<D, Dim<0, 0, 0, 0, 0>>;

template <class D, class Rep, class Tag>
class Quantity;

namespace detail {
/// A fully cancelled product/quotient is just a number — collapse it so
/// dimensionless ratios (utilization, fractions of budgets) flow straight
/// back into ordinary arithmetic instead of needing `.value()`.
template <class D, class Rep>
constexpr auto make_result(Rep v) {
  if constexpr (kDimensionless<D>) {
    return v;
  } else {
    return Quantity<D, Rep, void>(v);
  }
}
}  // namespace detail

/// One value of dimension `D`. `Tag` distinguishes same-dimension roles
/// (service vs arrival rate); `void` means untagged.
template <class D, class Rep = double, class Tag = void>
class Quantity {
 public:
  using dimension = D;
  using rep = Rep;
  using tag = Tag;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep value) : value_(value) {}

  /// Re-tagging (e.g. `ReqPerSec` -> `ServiceRate`) is explicit: the
  /// caller asserts the role, the dimensions still must match.
  template <class OtherTag>
  constexpr explicit Quantity(Quantity<D, Rep, OtherTag> other)
      : value_(other.value()) {}

  /// The only way back to a raw `double`. Call it at an audited seam
  /// (solver matrices, JSON, logging), never mid-formula.
  [[nodiscard]] constexpr Rep value() const { return value_; }

  // -- Same-dimension, same-tag linear algebra. -----------------------------
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }

  // -- Dimensionless scaling preserves dimension and tag. -------------------
  friend constexpr Quantity operator*(Quantity a, Rep s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(Rep s, Quantity a) {
    return Quantity(s * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, Rep s) {
    return Quantity(a.value_ / s);
  }
  constexpr Quantity& operator*=(Rep s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(Rep s) {
    value_ /= s;
    return *this;
  }

 private:
  Rep value_{};
};

// -- Dimension-composing algebra. -------------------------------------------
// Tags wash out: the product of a (tagged) service rate and a time is an
// untagged request count.
template <class D1, class D2, class Rep, class T1, class T2>
constexpr auto operator*(Quantity<D1, Rep, T1> a, Quantity<D2, Rep, T2> b) {
  return detail::make_result<DimProduct<D1, D2>, Rep>(a.value() * b.value());
}

template <class D1, class D2, class Rep, class T1, class T2>
constexpr auto operator/(Quantity<D1, Rep, T1> a, Quantity<D2, Rep, T2> b) {
  return detail::make_result<DimQuotient<D1, D2>, Rep>(a.value() / b.value());
}

/// `scalar / quantity` inverts the dimension (e.g. 1.0 / Seconds -> Hz).
template <class D, class Rep, class T>
constexpr auto operator/(Rep s, Quantity<D, Rep, T> q) {
  return detail::make_result<DimQuotient<Dim<0, 0, 0, 0, 0>, D>, Rep>(
      s / q.value());
}

// -- Comparisons: same dimension required, tags compare freely. -------------
template <class D, class Rep, class T1, class T2>
constexpr bool operator==(Quantity<D, Rep, T1> a, Quantity<D, Rep, T2> b) {
  return a.value() == b.value();
}
template <class D, class Rep, class T1, class T2>
constexpr bool operator!=(Quantity<D, Rep, T1> a, Quantity<D, Rep, T2> b) {
  return a.value() != b.value();
}
template <class D, class Rep, class T1, class T2>
constexpr bool operator<(Quantity<D, Rep, T1> a, Quantity<D, Rep, T2> b) {
  return a.value() < b.value();
}
template <class D, class Rep, class T1, class T2>
constexpr bool operator<=(Quantity<D, Rep, T1> a, Quantity<D, Rep, T2> b) {
  return a.value() <= b.value();
}
template <class D, class Rep, class T1, class T2>
constexpr bool operator>(Quantity<D, Rep, T1> a, Quantity<D, Rep, T2> b) {
  return a.value() > b.value();
}
template <class D, class Rep, class T1, class T2>
constexpr bool operator>=(Quantity<D, Rep, T1> a, Quantity<D, Rep, T2> b) {
  return a.value() >= b.value();
}

// -- The paper's dimensions. -------------------------------------------------
using TimeDim = Dim<1, 0, 0, 0, 0>;      ///< R, D_q, T (seconds)
using RequestDim = Dim<0, 1, 0, 0, 0>;   ///< request counts
using RateDim = Dim<-1, 1, 0, 0, 0>;     ///< lambda, mu (req/s)
using UsdDim = Dim<0, 0, 1, 0, 0>;       ///< the objective (dollars)
using EnergyDim = Dim<0, 0, 0, 1, 0>;    ///< kWh
using DistanceDim = Dim<0, 0, 0, 0, 1>;  ///< d_{s,l} (miles)

using Seconds = Quantity<TimeDim>;
using Requests = Quantity<RequestDim>;
using ReqPerSec = Quantity<RateDim>;
using Dollars = Quantity<UsdDim>;
using Kwh = Quantity<EnergyDim>;
using Miles = Quantity<DistanceDim>;

/// p_l(t) of Eq. 2: the spot electricity price.
using DollarsPerKwh = Quantity<Dim<0, 0, 1, -1, 0>>;
/// P_{k,l} of Eq. 2: energy to process one request.
using KwhPerReq = Quantity<Dim<0, -1, 0, 1, 0>>;
/// U_q of Eqs. 9/10: TUF utility earned per completed request; also the
/// drop-penalty extension.
using DollarsPerReq = Quantity<Dim<0, -1, 1, 0, 0>>;
/// TranCost_k of Eq. 3: dollars per request-mile moved.
using DollarsPerReqMile = Quantity<Dim<0, -1, 1, 0, -1>>;
/// Revenue/cost *rates* before integrating over the slot length T.
using DollarsPerSec = Quantity<Dim<-1, 0, 1, 0, 0>>;
/// An LP objective coefficient: dollars earned per unit of routed rate
/// ($ / (req/s) = $.s/req).
using DollarsPerRate = Quantity<Dim<1, -1, 1, 0, 0>>;
/// Electrical power. Canonical representation is kWh *per second*; build
/// values with `kilowatts()` so the hour->second rescaling can never be
/// forgotten or applied twice.
using Kw = Quantity<Dim<-1, 0, 0, 1, 0>>;

/// Roles for the two same-dimension rates of Eq. 1. The M/M/1 helpers
/// take `ServiceRate mu, ArrivalRate lambda`; a swapped call no longer
/// compiles even though both are req/s.
struct ServiceTag {};
struct ArrivalTag {};
using ServiceRate = Quantity<RateDim, double, ServiceTag>;
using ArrivalRate = Quantity<RateDim, double, ArrivalTag>;

/// The implicit "one request" in the M/M/1 algebra, made explicit:
/// R = 1req / (phi*C*mu - lambda) is Requests / (req/s) = Seconds, and
/// the deadline-overhead term 1req/(D*C*mu) of required_share() becomes
/// dimensionless as the paper intends. Without it, `1.0 / rate` would
/// type as seconds-per-request — dimensionally honest but not what
/// Eq. 1 writes.
inline constexpr Requests kOneRequest{1.0};

// -- Scaled-unit factories. --------------------------------------------------
// Brace-construction (`Seconds{3.0}`) always takes the canonical unit of
// the dimension. Anything scaled goes through a named factory.
constexpr Seconds seconds(double s) { return Seconds{s}; }
constexpr Seconds hours(double h) { return Seconds{h * 3600.0}; }
constexpr Kw kilowatts(double kw) { return Kw{kw / 3600.0}; }
/// Reads a power back in kW (display/JSON seams only).
constexpr double as_kilowatts(Kw power) { return power.value() * 3600.0; }

/// A dimensionless fraction, debug-asserted into [0, 1] (with an
/// ulp-scale slack for renormalized CPU shares). `CpuShare` is the
/// phi_{k,l} of Eqs. 1/8.
class Fraction {
 public:
  constexpr Fraction() = default;
  constexpr explicit Fraction(double v) : value_(v) {
    assert(value_ >= -kSlack && value_ <= 1.0 + kSlack &&
           "Fraction outside [0, 1]");
  }
  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr bool operator==(Fraction a, Fraction b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator<(Fraction a, Fraction b) {
    return a.value_ < b.value_;
  }
  /// Taking a fraction *of* a quantity preserves its dimension and tag.
  template <class D, class Rep, class T>
  friend constexpr Quantity<D, Rep, T> operator*(Fraction f,
                                                 Quantity<D, Rep, T> q) {
    return Quantity<D, Rep, T>(f.value_ * q.value());
  }
  template <class D, class Rep, class T>
  friend constexpr Quantity<D, Rep, T> operator*(Quantity<D, Rep, T> q,
                                                 Fraction f) {
    return Quantity<D, Rep, T>(q.value() * f.value_);
  }

 private:
  static constexpr double kSlack = 1e-9;
  double value_ = 0.0;
};

using CpuShare = Fraction;

// -- Zero-overhead guarantees (the fig06 bench gate relies on these). --------
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(ServiceRate) == sizeof(double));
static_assert(sizeof(Fraction) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<Fraction>);

}  // namespace palb::units
