#pragma once

#include <vector>

#include "cloud/model.hpp"
#include "cloud/plan.hpp"

namespace palb {

/// Per-(class, data center) outcome of a slot under a plan.
struct ClassDcOutcome {
  double rate = 0.0;          ///< req/s of this class landing at this DC
  double delay = 0.0;         ///< analytic mean sojourn (s); 0 if no load
  int tuf_level = -1;         ///< 0-based band hit, -1 = none/overdue
  double utility_per_request = 0.0;  ///< $ per request (TUF value)
  bool stable = true;         ///< false = the VM queue diverges
};

/// Dollar ledger for one slot (the terms of Eq. 4/5, integrated over T).
struct SlotMetrics {
  double revenue = 0.0;        ///< sum U_k(R) * lambda * T
  double energy_cost = 0.0;    ///< sum P_{k,l} * lambda * p_l * PUE * T
  double transfer_cost = 0.0;  ///< sum TranCost_k * d_{s,l} * lambda * T
  /// SLA violation fees: drop_penalty_k * (offered_k - valuable_k)
  /// summed over classes (zero under the paper's penalty-free model).
  double penalty_cost = 0.0;
  double offered_requests = 0.0;
  double dispatched_requests = 0.0;
  /// Requests on stable queues (they all finish; possibly past deadline).
  double completed_requests = 0.0;
  /// Requests that earned a non-zero utility (met the final deadline on
  /// average).
  double valuable_requests = 0.0;
  int servers_on = 0;

  /// outcomes[k][l].
  std::vector<std::vector<ClassDcOutcome>> outcomes;

  double net_profit() const {
    return revenue - energy_cost - transfer_cost - penalty_cost;
  }
  double total_cost() const {
    return energy_cost + transfer_cost + penalty_cost;
  }
  double completed_fraction() const {
    return offered_requests <= 0.0 ? 1.0
                                   : completed_requests / offered_requests;
  }
};

/// Evaluates what a plan earns and costs over one slot using the paper's
/// analytic model (Eq. 1 delays, Eq. 2 processing cost, Eq. 3 transfer
/// cost, Eq. 4 objective). An unstable (class, DC) queue earns zero
/// revenue but still pays its energy and wire bills — deliberately so
/// that a broken plan is *penalized*, not masked.
SlotMetrics evaluate_plan(const Topology& topology, const SlotInput& input,
                          const DispatchPlan& plan);

/// Sums a sequence of slot ledgers into one (multi-slot runs).
SlotMetrics accumulate(const std::vector<SlotMetrics>& slots);

}  // namespace palb
