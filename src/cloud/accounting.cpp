#include "cloud/accounting.hpp"

#include <algorithm>

#include "queueing/mm1.hpp"
#include "units/units.hpp"
#include "util/error.hpp"

namespace palb {

using units::ArrivalRate;
using units::CpuShare;
using units::Dollars;
using units::DollarsPerReq;
using units::DollarsPerSec;
using units::Kwh;
using units::ReqPerSec;
using units::Requests;
using units::Seconds;

SlotMetrics evaluate_plan(const Topology& topology, const SlotInput& input,
                          const DispatchPlan& plan) {
  topology.validate();
  input.validate(topology);
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  const Seconds slot = input.slot_duration();

  SlotMetrics m;
  m.outcomes.assign(K, std::vector<ClassDcOutcome>(L));

  for (std::size_t k = 0; k < K; ++k) {
    m.offered_requests +=
        (ReqPerSec{input.total_offered(k)} * slot).value();
  }
  for (std::size_t l = 0; l < L; ++l) {
    m.servers_on += plan.dc[l].servers_on;
    // Idle (static) power of powered-on servers — zero under the paper's
    // pure per-request energy model. The kW x slot-hours product is
    // assembled raw (audited seam) to keep the op order bit-identical to
    // the pre-units ledger; the price multiplication is typed.
    const auto& center = topology.datacenters[l];
    const Kwh idle_energy{static_cast<double>(plan.dc[l].servers_on) *
                          center.idle_power_kw *
                          (slot.value() / 3600.0)};
    m.energy_cost += (idle_energy * input.price_at(l)).value() * center.pue;
  }

  for (std::size_t k = 0; k < K; ++k) {
    const auto& cls = topology.classes[k];
    Requests class_valuable{};  // requests of class k that earned > $0
    for (std::size_t l = 0; l < L; ++l) {
      const auto& center = topology.datacenters[l];
      ClassDcOutcome& out = m.outcomes[k][l];
      out.rate = plan.class_dc_rate(k, l);
      if (out.rate <= 0.0) continue;
      const ReqPerSec rate{out.rate};

      m.dispatched_requests += (rate * slot).value();

      // Energy is paid for every processed request (Eq. 2), whatever its
      // timeliness; PUE covers cooling/peripheral overhead (extension).
      // kWh/req * req/s -> kW, * $/kWh -> $/s, * T -> $.
      m.energy_cost +=
          (center.energy_per_request(k) * rate * input.price_at(l)).value() *
          center.pue * slot.value();

      // Wire cost per Eq. 3, split per originating front-end:
      // $/req-mile * miles * req/s * s -> $.
      for (std::size_t s = 0; s < S; ++s) {
        m.transfer_cost += (cls.transfer_cost() * topology.distance(s, l) *
                            ReqPerSec{plan.rate[k][s][l]} * slot)
                               .value();
      }

      const int servers = plan.dc[l].servers_on;
      const double share =
          plan.dc[l].share.empty() ? 0.0 : plan.dc[l].share[k];
      if (servers <= 0 || share <= 0.0) {
        out.stable = false;
        continue;  // routed into a wall: no service, no revenue
      }
      const ArrivalRate per_server{out.rate / static_cast<double>(servers)};
      // The plan is untrusted input here: validate through the raw core,
      // which throws InvalidArgument on a domain error (a typed CpuShare
      // would debug-assert instead of reporting).
      out.stable = mm1::is_stable(share, center.server_capacity,
                                  center.service_rate[k], per_server.value());
      if (!out.stable) continue;

      m.completed_requests += (rate * slot).value();
      // Share and rates were validated just above; from here the Eq. 1
      // algebra is fully typed.
      const Seconds delay =
          mm1::expected_delay(CpuShare{share}, center.server_capacity,
                              center.service_rate_of(k), per_server);
      out.delay = delay.value();
      // tuf_level reports the *queue* delay band (Eq. 1's quantity);
      // revenue additionally charges each origin's network propagation
      // (zero under the paper's model, where wires cost dollars but not
      // time).
      out.tuf_level = cls.tuf.level_for_delay(delay);
      DollarsPerSec value_rate{};   // $ earned per second
      ReqPerSec valuable_rate{};    // req/s earning > 0
      for (std::size_t s = 0; s < S; ++s) {
        const ReqPerSec flow{plan.rate[k][s][l]};
        if (flow <= ReqPerSec{0.0}) continue;
        const DollarsPerReq u =
            cls.tuf.utility(delay + topology.propagation(s, l));
        if (u > DollarsPerReq{0.0}) {
          value_rate += u * flow;
          valuable_rate += flow;
        }
      }
      out.utility_per_request = (value_rate / rate).value();
      if (value_rate > DollarsPerSec{0.0}) {
        class_valuable += valuable_rate * slot;
        m.valuable_requests += (valuable_rate * slot).value();
        m.revenue += (value_rate * slot).value();
      }
    }
    // SLA violation fees on everything that earned nothing (extension;
    // zero under the paper's model).
    const Requests worthless =
        std::max(Requests{0.0}, ReqPerSec{input.total_offered(k)} * slot -
                                    class_valuable);
    m.penalty_cost += (cls.drop_penalty() * worthless).value();
  }
  return m;
}

SlotMetrics accumulate(const std::vector<SlotMetrics>& slots) {
  SlotMetrics total;
  for (const auto& s : slots) {
    total.revenue += s.revenue;
    total.energy_cost += s.energy_cost;
    total.transfer_cost += s.transfer_cost;
    total.penalty_cost += s.penalty_cost;
    total.offered_requests += s.offered_requests;
    total.dispatched_requests += s.dispatched_requests;
    total.completed_requests += s.completed_requests;
    total.valuable_requests += s.valuable_requests;
    total.servers_on += s.servers_on;
  }
  return total;
}

}  // namespace palb
