#include "cloud/accounting.hpp"

#include <algorithm>

#include "queueing/mm1.hpp"
#include "util/error.hpp"

namespace palb {

SlotMetrics evaluate_plan(const Topology& topology, const SlotInput& input,
                          const DispatchPlan& plan) {
  topology.validate();
  input.validate(topology);
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  const double T = input.slot_seconds;

  SlotMetrics m;
  m.outcomes.assign(K, std::vector<ClassDcOutcome>(L));

  for (std::size_t k = 0; k < K; ++k) {
    m.offered_requests += input.total_offered(k) * T;
  }
  for (std::size_t l = 0; l < L; ++l) {
    m.servers_on += plan.dc[l].servers_on;
    // Idle (static) power of powered-on servers — zero under the paper's
    // pure per-request energy model.
    const auto& center = topology.datacenters[l];
    m.energy_cost += static_cast<double>(plan.dc[l].servers_on) *
                     center.idle_power_kw * (T / 3600.0) * input.price[l] *
                     center.pue;
  }

  for (std::size_t k = 0; k < K; ++k) {
    const auto& cls = topology.classes[k];
    double class_valuable = 0.0;  // requests of class k that earned > $0
    for (std::size_t l = 0; l < L; ++l) {
      const auto& center = topology.datacenters[l];
      ClassDcOutcome& out = m.outcomes[k][l];
      out.rate = plan.class_dc_rate(k, l);
      if (out.rate <= 0.0) continue;

      m.dispatched_requests += out.rate * T;

      // Energy is paid for every processed request (Eq. 2), whatever its
      // timeliness; PUE covers cooling/peripheral overhead (extension).
      m.energy_cost += center.energy_per_request_kwh[k] * out.rate *
                       input.price[l] * center.pue * T;

      // Wire cost per Eq. 3, split per originating front-end.
      for (std::size_t s = 0; s < S; ++s) {
        m.transfer_cost += cls.transfer_cost_per_mile *
                           topology.distance_miles[s][l] *
                           plan.rate[k][s][l] * T;
      }

      const int servers = plan.dc[l].servers_on;
      const double share =
          plan.dc[l].share.empty() ? 0.0 : plan.dc[l].share[k];
      if (servers <= 0 || share <= 0.0) {
        out.stable = false;
        continue;  // routed into a wall: no service, no revenue
      }
      const double per_server = out.rate / static_cast<double>(servers);
      out.stable = mm1::is_stable(share, center.server_capacity,
                                  center.service_rate[k], per_server);
      if (!out.stable) continue;

      m.completed_requests += out.rate * T;
      out.delay = mm1::expected_delay(share, center.server_capacity,
                                      center.service_rate[k], per_server);
      // tuf_level reports the *queue* delay band (Eq. 1's quantity);
      // revenue additionally charges each origin's network propagation
      // (zero under the paper's model, where wires cost dollars but not
      // time).
      out.tuf_level = cls.tuf.level_for_delay(out.delay);
      double value_rate = 0.0;     // $ earned per second
      double valuable_rate = 0.0;  // req/s earning > 0
      for (std::size_t s = 0; s < S; ++s) {
        const double flow = plan.rate[k][s][l];
        if (flow <= 0.0) continue;
        const double u = cls.tuf.utility(
            out.delay + topology.propagation_delay(s, l));
        if (u > 0.0) {
          value_rate += u * flow;
          valuable_rate += flow;
        }
      }
      out.utility_per_request = value_rate / out.rate;
      if (value_rate > 0.0) {
        class_valuable += valuable_rate * T;
        m.valuable_requests += valuable_rate * T;
        m.revenue += value_rate * T;
      }
    }
    // SLA violation fees on everything that earned nothing (extension;
    // zero under the paper's model).
    const double worthless =
        std::max(0.0, input.total_offered(k) * T - class_valuable);
    m.penalty_cost += cls.drop_penalty_per_request * worthless;
  }
  return m;
}

SlotMetrics accumulate(const std::vector<SlotMetrics>& slots) {
  SlotMetrics total;
  for (const auto& s : slots) {
    total.revenue += s.revenue;
    total.energy_cost += s.energy_cost;
    total.transfer_cost += s.transfer_cost;
    total.penalty_cost += s.penalty_cost;
    total.offered_requests += s.offered_requests;
    total.dispatched_requests += s.dispatched_requests;
    total.completed_requests += s.completed_requests;
    total.valuable_requests += s.valuable_requests;
    total.servers_on += s.servers_on;
  }
  return total;
}

}  // namespace palb
