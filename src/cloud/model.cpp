#include "cloud/model.hpp"

#include <cmath>
#include <string>

#include "queueing/mm1.hpp"
#include "util/error.hpp"

namespace palb {

void Topology::validate() const {
  PALB_REQUIRE(!classes.empty(), "topology needs at least one class");
  PALB_REQUIRE(!frontends.empty(), "topology needs at least one front-end");
  PALB_REQUIRE(!datacenters.empty(),
               "topology needs at least one data center");
  for (const auto& c : classes) {
    PALB_REQUIRE(c.transfer_cost_per_mile >= 0.0,
                 "transfer cost must be >= 0 for class " + c.name);
    PALB_REQUIRE(c.drop_penalty_per_request >= 0.0,
                 "drop penalty must be >= 0 for class " + c.name);
  }
  for (const auto& dc : datacenters) {
    PALB_REQUIRE(dc.num_servers >= 0,
                 "server count must be >= 0 in " + dc.name);
    PALB_REQUIRE(dc.server_capacity > 0.0,
                 "server capacity must be > 0 in " + dc.name);
    PALB_REQUIRE(dc.pue >= 1.0, "PUE must be >= 1 in " + dc.name);
    PALB_REQUIRE(dc.idle_power_kw >= 0.0,
                 "idle power must be >= 0 in " + dc.name);
    PALB_REQUIRE(dc.service_rate.size() == classes.size(),
                 "one service rate per class required in " + dc.name);
    PALB_REQUIRE(dc.energy_per_request_kwh.size() == classes.size(),
                 "one energy figure per class required in " + dc.name);
    for (double mu : dc.service_rate) {
      PALB_REQUIRE(mu > 0.0, "service rates must be > 0 in " + dc.name);
    }
    for (double e : dc.energy_per_request_kwh) {
      PALB_REQUIRE(e >= 0.0, "energy per request must be >= 0 in " + dc.name);
    }
  }
  PALB_REQUIRE(network_latency_s_per_mile >= 0.0,
               "network latency must be >= 0");
  PALB_REQUIRE(distance_miles.size() == frontends.size(),
               "one distance row per front-end required");
  for (const auto& row : distance_miles) {
    PALB_REQUIRE(row.size() == datacenters.size(),
                 "one distance per data center required");
    for (double d : row) {
      PALB_REQUIRE(d >= 0.0, "distances must be >= 0");
    }
  }
}

double Topology::propagation_delay(std::size_t s, std::size_t l) const {
  PALB_REQUIRE(s < frontends.size(), "front-end index out of range");
  PALB_REQUIRE(l < datacenters.size(), "data center index out of range");
  return network_latency_s_per_mile * distance_miles[s][l];
}

double Topology::dedicated_capacity(std::size_t k) const {
  PALB_REQUIRE(k < classes.size(), "class index out of range");
  const double deadline = classes[k].tuf.final_deadline();
  double total = 0.0;
  for (const auto& dc : datacenters) {
    const double per_server =
        mm1::max_rate(1.0, dc.server_capacity, dc.service_rate[k], deadline);
    total += per_server * static_cast<double>(dc.num_servers);
  }
  return total;
}

void SlotInput::validate(const Topology& topology) const {
  PALB_REQUIRE(arrival_rate.size() == topology.num_classes(),
               "one arrival row per class required");
  for (std::size_t k = 0; k < arrival_rate.size(); ++k) {
    const auto& row = arrival_rate[k];
    PALB_REQUIRE(row.size() == topology.num_frontends(),
                 "one arrival per front-end required (class " +
                     std::to_string(k) + ")");
    for (std::size_t s = 0; s < row.size(); ++s) {
      PALB_REQUIRE(std::isfinite(row[s]) && row[s] >= 0.0,
                   "arrival rate (class " + std::to_string(k) +
                       ", front-end " + std::to_string(s) +
                       ") is not a finite non-negative rate: " +
                       std::to_string(row[s]));
    }
  }
  PALB_REQUIRE(price.size() == topology.num_datacenters(),
               "one price per data center required");
  for (std::size_t l = 0; l < price.size(); ++l) {
    PALB_REQUIRE(std::isfinite(price[l]) && price[l] >= 0.0,
                 "price (data center " + std::to_string(l) +
                     ") is not a finite non-negative price: " +
                     std::to_string(price[l]));
  }
  PALB_REQUIRE(slot_seconds > 0.0, "slot length must be > 0");
}

double SlotInput::total_offered(std::size_t k) const {
  PALB_REQUIRE(k < arrival_rate.size(), "class index out of range");
  double total = 0.0;
  for (double r : arrival_rate[k]) total += r;
  return total;
}

}  // namespace palb
