#include "cloud/tuf.hpp"

#include "util/error.hpp"

namespace palb {

StepTuf::StepTuf(std::vector<double> utilities,
                 std::vector<double> sub_deadlines)
    : utilities_(std::move(utilities)),
      sub_deadlines_(std::move(sub_deadlines)) {
  PALB_REQUIRE(!utilities_.empty(), "TUF needs at least one level");
  PALB_REQUIRE(utilities_.size() == sub_deadlines_.size(),
               "TUF needs one sub-deadline per level");
  PALB_REQUIRE(sub_deadlines_.front() > 0.0,
               "TUF sub-deadlines must be positive");
  PALB_REQUIRE(utilities_.front() > 0.0,
               "top TUF level must be worth a positive utility");
  for (std::size_t q = 0; q + 1 < utilities_.size(); ++q) {
    PALB_REQUIRE(utilities_[q] > utilities_[q + 1],
                 "TUF utilities must be strictly decreasing");
    PALB_REQUIRE(sub_deadlines_[q] < sub_deadlines_[q + 1],
                 "TUF sub-deadlines must be strictly increasing");
  }
}

StepTuf StepTuf::constant(double utility, double deadline) {
  return StepTuf({utility}, {deadline});
}

StepTuf StepTuf::approximate_decay(double max_utility, double deadline,
                                   std::size_t steps) {
  PALB_REQUIRE(steps >= 1, "decay approximation needs >= 1 step");
  PALB_REQUIRE(max_utility > 0.0 && deadline > 0.0,
               "decay approximation needs positive utility and deadline");
  std::vector<double> utilities;
  std::vector<double> deadlines;
  utilities.reserve(steps);
  deadlines.reserve(steps);
  const double n = static_cast<double>(steps);
  for (std::size_t q = 1; q <= steps; ++q) {
    const double frac = static_cast<double>(q) / n;
    deadlines.push_back(deadline * frac);
    // Midpoint value of the linear decay on this band (unbiased staircase).
    const double mid = deadline * (static_cast<double>(q) - 0.5) / n;
    utilities.push_back(max_utility * (1.0 - mid / deadline));
  }
  return StepTuf(std::move(utilities), std::move(deadlines));
}

double StepTuf::utility_at_level(std::size_t level) const {
  PALB_REQUIRE(level < utilities_.size(), "TUF level out of range");
  return utilities_[level];
}

double StepTuf::sub_deadline(std::size_t level) const {
  PALB_REQUIRE(level < sub_deadlines_.size(), "TUF level out of range");
  return sub_deadlines_[level];
}

double StepTuf::utility(double delay) const {
  const int level = level_for_delay(delay);
  return level < 0 ? 0.0 : utilities_[static_cast<std::size_t>(level)];
}

int StepTuf::level_for_delay(double delay) const {
  PALB_REQUIRE(delay > 0.0, "delay must be positive");
  for (std::size_t q = 0; q < sub_deadlines_.size(); ++q) {
    if (delay <= sub_deadlines_[q]) return static_cast<int>(q);
  }
  return -1;
}

}  // namespace palb
