#include "cloud/plan.hpp"

#include <cmath>

#include "util/error.hpp"

namespace palb {

DispatchPlan DispatchPlan::zero(const Topology& topology) {
  DispatchPlan plan;
  plan.rate.assign(
      topology.num_classes(),
      std::vector<std::vector<double>>(
          topology.num_frontends(),
          std::vector<double>(topology.num_datacenters(), 0.0)));
  plan.dc.assign(topology.num_datacenters(), DcAllocation{});
  for (auto& alloc : plan.dc) {
    alloc.share.assign(topology.num_classes(), 0.0);
  }
  return plan;
}

double DispatchPlan::class_dc_rate(std::size_t k, std::size_t l) const {
  PALB_REQUIRE(k < rate.size(), "class index out of range");
  double total = 0.0;
  for (const auto& per_frontend : rate[k]) {
    PALB_REQUIRE(l < per_frontend.size(), "data center index out of range");
    total += per_frontend[l];
  }
  return total;
}

double DispatchPlan::class_frontend_rate(std::size_t k,
                                         std::size_t s) const {
  PALB_REQUIRE(k < rate.size(), "class index out of range");
  PALB_REQUIRE(s < rate[k].size(), "front-end index out of range");
  double total = 0.0;
  for (double r : rate[k][s]) total += r;
  return total;
}

double DispatchPlan::total_rate() const {
  double total = 0.0;
  for (const auto& per_class : rate) {
    for (const auto& per_frontend : per_class) {
      for (double r : per_frontend) total += r;
    }
  }
  return total;
}

double DispatchPlan::per_server_rate(std::size_t k, std::size_t l) const {
  PALB_REQUIRE(l < dc.size(), "data center index out of range");
  const int m = dc[l].servers_on;
  if (m <= 0) return 0.0;
  return class_dc_rate(k, l) / static_cast<double>(m);
}

std::vector<std::string> DispatchPlan::violations(const Topology& topology,
                                                  const SlotInput& input,
                                                  double tol) const {
  std::vector<std::string> out;
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();

  if (rate.size() != K || dc.size() != L) {
    out.push_back("plan shape does not match topology");
    return out;  // further indexing would be UB-ish; stop here
  }
  for (std::size_t k = 0; k < K; ++k) {
    if (rate[k].size() != S) {
      out.push_back("plan front-end dimension mismatch for class " +
                    topology.classes[k].name);
      return out;
    }
    for (std::size_t s = 0; s < S; ++s) {
      if (rate[k][s].size() != L) {
        out.push_back("plan data-center dimension mismatch");
        return out;
      }
      for (std::size_t l = 0; l < L; ++l) {
        if (rate[k][s][l] < -tol || !std::isfinite(rate[k][s][l])) {
          out.push_back("negative or non-finite rate for class " +
                        topology.classes[k].name + " at " +
                        topology.frontends[s].name + "->" +
                        topology.datacenters[l].name);
        }
      }
      // Flow conservation (Eq. 7): dispatch <= offered.
      const double dispatched = class_frontend_rate(k, s);
      if (dispatched > input.arrival_rate[k][s] + tol) {
        out.push_back("dispatched " + std::to_string(dispatched) +
                      " req/s exceeds offered " +
                      std::to_string(input.arrival_rate[k][s]) + " for " +
                      topology.classes[k].name + " at " +
                      topology.frontends[s].name);
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    const auto& alloc = dc[l];
    const auto& center = topology.datacenters[l];
    if (alloc.share.size() != K) {
      out.push_back("share vector mismatch at " + center.name);
      continue;
    }
    if (alloc.servers_on < 0 || alloc.servers_on > center.num_servers) {
      out.push_back("servers_on out of [0, " +
                    std::to_string(center.num_servers) + "] at " +
                    center.name);
    }
    double share_sum = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      if (alloc.share[k] < -tol || alloc.share[k] > 1.0 + tol) {
        out.push_back("share out of [0,1] at " + center.name);
      }
      share_sum += alloc.share[k];
    }
    // CPU budget (Eq. 8).
    if (share_sum > 1.0 + tol) {
      out.push_back("share sum " + std::to_string(share_sum) +
                    " exceeds 1 at " + center.name);
    }
    for (std::size_t k = 0; k < K; ++k) {
      const double load = class_dc_rate(k, l);
      if (load > tol) {
        if (alloc.servers_on == 0) {
          out.push_back("load routed to powered-off " + center.name);
        } else if (alloc.share[k] <= tol) {
          out.push_back("load routed to zero-share VM for class " +
                        topology.classes[k].name + " at " + center.name);
        }
      }
    }
  }
  return out;
}

bool DispatchPlan::is_valid(const Topology& topology, const SlotInput& input,
                            double tol) const {
  return violations(topology, input, tol).empty();
}

}  // namespace palb
