#pragma once

#include <string>
#include <vector>

#include "cloud/model.hpp"

namespace palb {

/// Resource allocation inside one data center for one slot.
struct DcAllocation {
  /// Servers powered on this slot (the rest are off; paper assumes
  /// negligible switching cost relative to a one-hour slot).
  int servers_on = 0;
  /// share[k]: CPU fraction phi_{k,l} each powered-on server grants the
  /// class-k VM. Active servers are interchangeable (homogeneous) and the
  /// dispatched load spreads evenly across them.
  std::vector<double> share;
};

/// A complete decision for one slot: the routing matrix lambda_{k,s,l}
/// plus per-data-center resource allocations. (The paper's per-server
/// index i collapses because servers within a data center are homogeneous
/// and active servers share the load evenly — §III-A.)
struct DispatchPlan {
  /// rate[k][s][l]: req/s of class k sent from front-end s to DC l.
  std::vector<std::vector<std::vector<double>>> rate;
  /// One allocation per data center.
  std::vector<DcAllocation> dc;

  /// Zero-routing plan shaped for `topology`.
  static DispatchPlan zero(const Topology& topology);

  /// Total class-k rate arriving at data center l (sum over front-ends).
  double class_dc_rate(std::size_t k, std::size_t l) const;
  /// Total class-k rate dispatched from front-end s (sum over DCs).
  double class_frontend_rate(std::size_t k, std::size_t s) const;
  /// Grand total dispatched rate.
  double total_rate() const;
  /// Per-server class-k arrival rate at DC l (0 when no server is on).
  double per_server_rate(std::size_t k, std::size_t l) const;

  /// Structural + physical checks: shapes match the topology, rates are
  /// non-negative, flow conservation (Eq. 7), CPU-share budget (Eq. 8),
  /// server counts within fleet size, and every loaded (class, DC) pair
  /// has an on server with a positive share. Returns human-readable
  /// violations; empty means valid.
  std::vector<std::string> violations(const Topology& topology,
                                      const SlotInput& input,
                                      double tol = 1e-6) const;
  bool is_valid(const Topology& topology, const SlotInput& input,
                double tol = 1e-6) const;
};

}  // namespace palb
