#pragma once

#include <string>
#include <vector>

#include "cloud/tuf.hpp"
#include "units/units.hpp"

namespace palb {

/// One request type (the paper's k index). The model is layer-agnostic:
/// SaaS/PaaS/IaaS requests are all "a stream with a TUF, an energy
/// footprint and a wire cost" (paper §I: "we abstract the service
/// requests of those layers with a uniform task model").
struct RequestClass {
  std::string name;
  StepTuf tuf;
  /// TranCost_k of Eq. 3: dollars per request-mile moved from a front-end
  /// to a data center.
  double transfer_cost_per_mile = 0.0;
  /// EXTENSION (after the penalty TUFs of the authors' predecessor work
  /// [17]): dollars forfeited per request that earns no utility — not
  /// admitted, routed into an unstable queue, or finished past the final
  /// deadline. Zero (default) reproduces the paper, where ignoring
  /// traffic is free; positive values model SLA violation fees.
  double drop_penalty_per_request = 0.0;

  /// Typed views (the raw fields above stay the storage/JSON format).
  units::DollarsPerReqMile transfer_cost() const {
    return units::DollarsPerReqMile{transfer_cost_per_mile};
  }
  units::DollarsPerReq drop_penalty() const {
    return units::DollarsPerReq{drop_penalty_per_request};
  }
};

/// One data center (the paper's l index): M_l homogeneous servers.
/// Heterogeneity across data centers is expected; heterogeneity *within*
/// one is handled by splitting it into several homogeneous pools.
struct DataCenter {
  std::string name;
  int num_servers = 0;
  /// C_l of Eq. 1 (normalized to 1 in the paper).
  double server_capacity = 1.0;
  /// mu_{k,l}: type-k service rate (req/s) of one server at full capacity.
  std::vector<double> service_rate;
  /// P_{k,l} of Eq. 2: kWh consumed processing one type-k request here.
  std::vector<double> energy_per_request_kwh;
  /// Power-usage-effectiveness multiplier on the energy bill (1.0 = ideal;
  /// the paper's suggested cooling-cost extension, §II-A).
  double pue = 1.0;
  /// EXTENSION beyond the paper's per-request energy model: constant
  /// power drawn by each powered-on server (kW), billed for the whole
  /// slot at the local price. Zero (the default) reproduces the paper,
  /// where idle capacity is free; positive values make server
  /// right-sizing a real economic decision.
  double idle_power_kw = 0.0;

  /// Typed views. `service_rate_of` tags mu with its role so it can
  /// never be passed where an arrival rate belongs.
  units::ServiceRate service_rate_of(std::size_t k) const {
    return units::ServiceRate{service_rate[k]};
  }
  units::KwhPerReq energy_per_request(std::size_t k) const {
    return units::KwhPerReq{energy_per_request_kwh[k]};
  }
  units::Kw idle_power() const { return units::kilowatts(idle_power_kw); }
};

/// A front-end collector (the paper's s index). Arrival rates live in
/// SlotInput, not here, because they change every slot.
struct FrontEnd {
  std::string name;
};

/// The full static system: request classes, front-ends, data centers and
/// the front-end-to-data-center distance matrix (miles, Eq. 3).
struct Topology {
  std::vector<RequestClass> classes;
  std::vector<FrontEnd> frontends;
  std::vector<DataCenter> datacenters;
  /// distance_miles[s][l].
  std::vector<std::vector<double>> distance_miles;
  /// EXTENSION: one-way network propagation delay per mile (seconds).
  /// The paper charges distance in *dollars* (Eq. 3) but not in *time*;
  /// at 1000+ miles the wire adds ~10-30 ms each way — comparable to
  /// the sub-deadlines. Zero (default) reproduces the paper. A realistic
  /// figure for routed fiber is ~1.6e-5 s/mile round-trip.
  double network_latency_s_per_mile = 0.0;

  /// Round-trip propagation delay between front-end s and DC l.
  double propagation_delay(std::size_t s, std::size_t l) const;

  /// Typed views of the distance matrix and the wire delay.
  units::Miles distance(std::size_t s, std::size_t l) const {
    return units::Miles{distance_miles[s][l]};
  }
  units::Seconds propagation(std::size_t s, std::size_t l) const {
    return units::Seconds{propagation_delay(s, l)};
  }

  std::size_t num_classes() const { return classes.size(); }
  std::size_t num_frontends() const { return frontends.size(); }
  std::size_t num_datacenters() const { return datacenters.size(); }

  /// Throws InvalidArgument on any inconsistency (dimension mismatches,
  /// non-positive rates, negative distances, ...).
  void validate() const;

  /// Total fleet service capacity for class k under its final deadline
  /// with whole servers dedicated to k — a quick upper bound used by
  /// scenario sanity checks.
  double dedicated_capacity(std::size_t k) const;
};

/// Arrival rates and prices for one control slot.
struct SlotInput {
  /// arrival_rate[k][s]: req/s of class k offered at front-end s.
  std::vector<std::vector<double>> arrival_rate;
  /// price[l]: $/kWh at data center l during this slot.
  std::vector<double> price;
  /// Slot length T in seconds (paper: one hour).
  double slot_seconds = 3600.0;

  void validate(const Topology& topology) const;
  double total_offered(std::size_t k) const;

  /// Typed views: lambda_{k,s} is role-tagged, the price carries its
  /// $/kWh dimension, and T is Seconds.
  units::ArrivalRate offered(std::size_t k, std::size_t s) const {
    return units::ArrivalRate{arrival_rate[k][s]};
  }
  units::DollarsPerKwh price_at(std::size_t l) const {
    return units::DollarsPerKwh{price[l]};
  }
  units::Seconds slot_duration() const {
    return units::Seconds{slot_seconds};
  }
};

}  // namespace palb
