#pragma once

#include <string>
#include <vector>

#include "units/units.hpp"

namespace palb {

/// Multi-level step-downward time-utility function (paper §III-B1,
/// Eqs. 9/10/16): the dollar value earned per completed request as a
/// non-increasing step function of the achieved mean delay.
///
///   U(R) = U_q   for D_{q-1} < R <= D_q   (D_0 = 0)
///   U(R) = 0     for R > D_n              (final deadline missed)
///
/// A one-level instance is the paper's constant-before-deadline TUF
/// (Fig. 3a / Eq. 9); the paper argues any monotone non-increasing TUF
/// (Fig. 3b) is the infinite-level limit — `approximate_decay` builds
/// that finite approximation.
class StepTuf {
 public:
  /// `utilities` strictly decreasing positive values {U_1..U_n};
  /// `sub_deadlines` strictly increasing positive times {D_1..D_n}
  /// (seconds). D_n is the final deadline.
  StepTuf(std::vector<double> utilities, std::vector<double> sub_deadlines);

  /// Convenience: one-level TUF worth `utility` before `deadline`.
  static StepTuf constant(double utility, double deadline);

  /// n-step staircase approximation of a linearly decaying TUF that is
  /// worth `max_utility` at delay 0 and 0 at `deadline`.
  static StepTuf approximate_decay(double max_utility, double deadline,
                                   std::size_t steps);

  std::size_t levels() const { return utilities_.size(); }
  const std::vector<double>& utilities() const { return utilities_; }
  const std::vector<double>& sub_deadlines() const { return sub_deadlines_; }
  double utility_at_level(std::size_t level) const;
  double sub_deadline(std::size_t level) const;
  double final_deadline() const { return sub_deadlines_.back(); }
  double max_utility() const { return utilities_.front(); }

  /// Utility for an achieved mean delay (0 past the final deadline).
  /// Delay must be > 0 (an M/M/1 sojourn is never 0).
  double utility(double delay) const;

  /// Level index (0-based) whose band contains `delay`, or -1 past the
  /// final deadline.
  int level_for_delay(double delay) const;

  // ---- Typed views: delays in, dollars-per-request out. -------------------
  units::DollarsPerReq utility(units::Seconds delay) const {
    return units::DollarsPerReq{utility(delay.value())};
  }
  int level_for_delay(units::Seconds delay) const {
    return level_for_delay(delay.value());
  }
  units::DollarsPerReq utility_at(std::size_t level) const {
    return units::DollarsPerReq{utility_at_level(level)};
  }
  units::Seconds deadline_at(std::size_t level) const {
    return units::Seconds{sub_deadline(level)};
  }
  units::Seconds deadline() const {
    return units::Seconds{final_deadline()};
  }

 private:
  std::vector<double> utilities_;
  std::vector<double> sub_deadlines_;
};

}  // namespace palb
