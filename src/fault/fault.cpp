#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace palb {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDcOutage:
      return "dc-outage";
    case FaultKind::kPriceSpike:
      return "price-spike";
    case FaultKind::kTraceGap:
      return "trace-gap";
    case FaultKind::kLinkCut:
      return "link-cut";
    case FaultKind::kSolverFailure:
      return "solver-failure";
    case FaultKind::kPlannerStall:
      return "planner-stall";
    case FaultKind::kPublishDelay:
      return "publish-delay";
    case FaultKind::kDemandSurge:
      return "demand-surge";
  }
  return "unknown";
}

bool FaultSchedule::faulted(std::size_t t) const {
  for (const auto& e : events_) {
    if (e.active(t)) return true;
  }
  return false;
}

std::size_t FaultSchedule::count_faulted(std::size_t num_slots,
                                         std::size_t first_slot) const {
  std::size_t n = 0;
  for (std::size_t t = 0; t < num_slots; ++t) {
    if (faulted(first_slot + t)) ++n;
  }
  return n;
}

void FaultSchedule::validate(const Topology& topology) const {
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  const auto index_ok = [](std::size_t index, std::size_t bound) {
    return index == FaultEvent::kNoIndex || index < bound;
  };
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const std::string where = "fault event " + std::to_string(i) + " (" +
                              std::string(to_string(e.kind)) + ")";
    PALB_REQUIRE(e.first_slot <= e.last_slot,
                 where + ": slot window is inverted");
    PALB_REQUIRE(index_ok(e.dc, L), where + ": data-center index " +
                                        std::to_string(e.dc) +
                                        " outside the topology");
    PALB_REQUIRE(index_ok(e.frontend, S), where + ": front-end index " +
                                              std::to_string(e.frontend) +
                                              " outside the topology");
    PALB_REQUIRE(index_ok(e.klass, K), where + ": class index " +
                                           std::to_string(e.klass) +
                                           " outside the topology");
    switch (e.kind) {
      case FaultKind::kDcOutage:
        PALB_REQUIRE(e.dc != FaultEvent::kNoIndex,
                     where + ": an outage must name its data center");
        PALB_REQUIRE(
            std::isfinite(e.magnitude) && e.magnitude >= 0.0 &&
                e.magnitude <= 1.0,
            where + ": outage magnitude must be the lost fleet fraction "
                    "in [0, 1]");
        break;
      case FaultKind::kPriceSpike:
        PALB_REQUIRE(std::isfinite(e.magnitude) && e.magnitude > 0.0,
                     where + ": spike multiplier must be finite and > 0");
        break;
      case FaultKind::kDemandSurge:
        PALB_REQUIRE(std::isfinite(e.magnitude) && e.magnitude > 0.0,
                     where + ": surge multiplier must be finite and > 0");
        break;
      case FaultKind::kTraceGap:
      case FaultKind::kLinkCut:
      case FaultKind::kSolverFailure:
      case FaultKind::kPlannerStall:
      case FaultKind::kPublishDelay:
        break;
    }
  }
}

namespace {

/// Is the (k, s) rate reading gapped at slot t under this schedule?
bool stream_gapped(const std::vector<FaultEvent>& events, std::size_t t,
                   std::size_t k, std::size_t s) {
  for (const auto& e : events) {
    if (e.kind != FaultKind::kTraceGap || !e.active(t)) continue;
    const bool class_hit = e.klass == FaultEvent::kNoIndex || e.klass == k;
    const bool frontend_hit =
        e.frontend == FaultEvent::kNoIndex || e.frontend == s;
    if (class_hit && frontend_hit) return true;
  }
  return false;
}

}  // namespace

FaultedSlot FaultSchedule::materialize(const Scenario& scenario,
                                       std::size_t t) const {
  const Topology& topo = scenario.topology;
  const std::size_t K = topo.num_classes();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.num_datacenters();

  FaultedSlot out;
  out.topology = topo;
  out.input = scenario.slot_input(t);
  out.faulted = faulted(t);

  for (const auto& e : events_) {
    if (!e.active(t)) continue;
    switch (e.kind) {
      case FaultKind::kDcOutage: {
        // Each event removes floor(M_l * magnitude) of the *original*
        // fleet, so overlapping partial outages stack additively.
        auto& dc = out.topology.datacenters[e.dc];
        const int lost = static_cast<int>(std::floor(
            static_cast<double>(topo.datacenters[e.dc].num_servers) *
            e.magnitude));
        dc.num_servers = std::max(0, dc.num_servers - lost);
        break;
      }
      case FaultKind::kPriceSpike: {
        if (e.dc == FaultEvent::kNoIndex) {
          for (std::size_t l = 0; l < L; ++l) {
            out.input.price[l] *= e.magnitude;
          }
        } else {
          out.input.price[e.dc] *= e.magnitude;
        }
        break;
      }
      case FaultKind::kLinkCut: {
        if (out.link_blocked.empty()) out.link_blocked.assign(S * L, 0);
        for (std::size_t s = 0; s < S; ++s) {
          if (e.frontend != FaultEvent::kNoIndex && e.frontend != s) {
            continue;
          }
          for (std::size_t l = 0; l < L; ++l) {
            if (e.dc != FaultEvent::kNoIndex && e.dc != l) continue;
            out.link_blocked[s * L + l] = 1;
            out.has_blocked_link = true;
          }
        }
        break;
      }
      case FaultKind::kSolverFailure:
        out.solver_failure = true;
        break;
      case FaultKind::kPlannerStall:
        out.planner_stall = true;
        break;
      case FaultKind::kPublishDelay:
        out.publish_delayed = true;
        break;
      case FaultKind::kDemandSurge: {
        // Real demand, not a telemetry artifact: the surge lands before
        // the raw_input copy below, so both the planner's sanitized view
        // and the observed telemetry carry it. Overlapping surges stack
        // multiplicatively. Imputation of a gapped surged stream still
        // reads the (unsurged) scenario history — a gap hides the surge,
        // which is exactly the double-fault the ladder must absorb.
        for (std::size_t k = 0; k < K; ++k) {
          if (e.klass != FaultEvent::kNoIndex && e.klass != k) continue;
          for (std::size_t s = 0; s < S; ++s) {
            if (e.frontend != FaultEvent::kNoIndex && e.frontend != s) {
              continue;
            }
            out.input.arrival_rate[k][s] *= e.magnitude;
          }
        }
        break;
      }
      case FaultKind::kTraceGap:
        break;  // handled below, after prices
    }
  }

  // Trace gaps: the raw reading is NaN; the sanitized input imputes the
  // most recent earlier slot whose reading for the same stream is clean
  // (0 when the horizon starts gapped). Walking the scenario — not any
  // run state — keeps this a pure function of (scenario, schedule, t).
  out.raw_input = out.input;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      if (!stream_gapped(events_, t, k, s)) continue;
      out.raw_input.arrival_rate[k][s] =
          std::numeric_limits<double>::quiet_NaN();
      double imputed = 0.0;
      for (std::size_t back = t; back-- > 0;) {
        if (stream_gapped(events_, back, k, s)) continue;
        imputed = scenario.arrivals[k][s].at(back);
        break;
      }
      out.input.arrival_rate[k][s] = imputed;
    }
  }
  return out;
}

namespace fault_gen {

FaultSchedule generate(const Topology& topology, std::uint64_t seed,
                       const Options& options) {
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  PALB_REQUIRE(options.fault_rate >= 0.0 && options.fault_rate <= 1.0,
               "fault_rate must be in [0, 1]");
  PALB_REQUIRE(options.min_duration >= 1 &&
                   options.min_duration <= options.max_duration,
               "fault duration bounds are inverted");

  std::vector<FaultKind> kinds;
  if (options.dc_outages) kinds.push_back(FaultKind::kDcOutage);
  if (options.price_spikes) kinds.push_back(FaultKind::kPriceSpike);
  if (options.trace_gaps) kinds.push_back(FaultKind::kTraceGap);
  if (options.link_cuts) kinds.push_back(FaultKind::kLinkCut);
  if (options.solver_failures) kinds.push_back(FaultKind::kSolverFailure);
  // The chaos kinds append after the legacy five, so enabling them
  // never re-maps the kind draws of a schedule generated without them.
  if (options.planner_stalls) kinds.push_back(FaultKind::kPlannerStall);
  if (options.publish_delays) kinds.push_back(FaultKind::kPublishDelay);
  if (options.demand_surges) kinds.push_back(FaultKind::kDemandSurge);

  std::vector<FaultEvent> events;
  Rng rng(seed);
  for (std::size_t t = 0; t < options.slots; ++t) {
    if (kinds.empty() || rng.uniform(0.0, 1.0) >= options.fault_rate) {
      continue;
    }
    FaultEvent e;
    e.kind = kinds[rng.uniform_index(kinds.size())];
    e.first_slot = t;
    e.last_slot =
        t + options.min_duration - 1 +
        rng.uniform_index(options.max_duration - options.min_duration + 1);
    e.last_slot = std::min(e.last_slot, options.slots - 1);
    switch (e.kind) {
      case FaultKind::kDcOutage:
        e.dc = rng.uniform_index(L);
        e.magnitude = rng.uniform(options.min_outage, options.max_outage);
        break;
      case FaultKind::kPriceSpike:
        e.dc = rng.uniform_index(L);
        e.magnitude = rng.uniform(options.min_spike, options.max_spike);
        break;
      case FaultKind::kTraceGap:
        e.frontend = rng.uniform_index(S);
        // Half the gaps blind one class, half the whole front-end.
        e.klass = rng.uniform(0.0, 1.0) < 0.5 ? rng.uniform_index(K)
                                              : FaultEvent::kNoIndex;
        break;
      case FaultKind::kLinkCut:
        e.frontend = rng.uniform_index(S);
        e.dc = rng.uniform_index(L);
        break;
      case FaultKind::kSolverFailure:
        e.last_slot = e.first_slot;  // a crash is a one-slot affair
        break;
      case FaultKind::kPlannerStall:
      case FaultKind::kPublishDelay:
        break;  // windowed, no indices
      case FaultKind::kDemandSurge:
        // Half the surges hit one front-end, half are global.
        e.frontend = rng.uniform(0.0, 1.0) < 0.5 ? rng.uniform_index(S)
                                                 : FaultEvent::kNoIndex;
        e.magnitude = rng.uniform(options.min_surge, options.max_surge);
        break;
    }
    events.push_back(e);
  }
  FaultSchedule schedule(std::move(events));
  schedule.validate(topology);
  return schedule;
}

FaultSchedule generate(const Topology& topology, std::uint64_t seed) {
  return generate(topology, seed, Options{});
}

FaultSchedule canned_acceptance() {
  std::vector<FaultEvent> events;
  FaultEvent outage;
  outage.kind = FaultKind::kDcOutage;
  outage.first_slot = 8;
  outage.last_slot = 11;
  outage.dc = 0;
  outage.magnitude = 1.0;
  events.push_back(outage);
  for (const std::size_t t : {std::size_t{3}, std::size_t{15}}) {
    FaultEvent gap;
    gap.kind = FaultKind::kTraceGap;
    gap.first_slot = t;
    gap.last_slot = t;
    gap.frontend = 0;
    events.push_back(gap);
  }
  FaultEvent crash;
  crash.kind = FaultKind::kSolverFailure;
  crash.first_slot = 19;
  crash.last_slot = 19;
  events.push_back(crash);
  return FaultSchedule(std::move(events));
}

FaultSchedule canned_chaos() {
  std::vector<FaultEvent> events;
  FaultEvent surge;
  surge.kind = FaultKind::kDemandSurge;
  surge.first_slot = 4;
  surge.last_slot = 9;
  surge.magnitude = 3.0;
  events.push_back(surge);
  FaultEvent stall;
  stall.kind = FaultKind::kPlannerStall;
  stall.first_slot = 6;
  stall.last_slot = 8;
  events.push_back(stall);
  // Overlaps the surge's onset: while publishes are suppressed the live
  // plan is still slot 3's unsurged one, so admission faces 3x the
  // provisioned demand and must shed — until the stale-plan TTL forces
  // a fresh (surge-sized) plan through. The later window tests delay
  // under calm demand (no shedding expected).
  FaultEvent delay;
  delay.kind = FaultKind::kPublishDelay;
  delay.first_slot = 4;
  delay.last_slot = 6;
  events.push_back(delay);
  FaultEvent calm_delay;
  calm_delay.kind = FaultKind::kPublishDelay;
  calm_delay.first_slot = 12;
  calm_delay.last_slot = 15;
  events.push_back(calm_delay);
  FaultEvent spike;
  spike.kind = FaultKind::kPriceSpike;
  spike.first_slot = 18;
  spike.last_slot = 18;
  spike.magnitude = 5.0;
  events.push_back(spike);
  return FaultSchedule(std::move(events));
}

}  // namespace fault_gen
}  // namespace palb
