#pragma once

#include <string>

#include "fault/fault.hpp"
#include "util/json.hpp"

namespace palb {

/// FaultSchedule <-> JSON, so canned disturbance runs (CI's
/// resilience-smoke, the acceptance schedule) live in one reviewable
/// file that `palb inject` can replay.
///
/// Schema:
///
/// {
///   "schema": "palb-fault-v1",
///   "events": [
///     { "kind": "dc-outage", "first_slot": 8, "last_slot": 11,
///       "dc": 0, "magnitude": 1.0 },
///     { "kind": "trace-gap", "first_slot": 3, "last_slot": 3,
///       "frontend": 0 },
///     { "kind": "solver-failure", "first_slot": 19, "last_slot": 19 } ]
/// }
///
/// `kind` uses the stable to_string(FaultKind) names. Index axes the
/// event does not pin (FaultEvent::kNoIndex = "all") are omitted on
/// write and default to kNoIndex on read. `magnitude` defaults to 1.
namespace fault_json {

inline constexpr const char* kSchema = "palb-fault-v1";

Json to_json(const FaultSchedule& schedule);
FaultSchedule from_json(const Json& doc);

/// File helpers (pretty-printed on write).
void save(const FaultSchedule& schedule, const std::string& path);
FaultSchedule load(const std::string& path);

}  // namespace fault_json
}  // namespace palb
