#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "check/plan_checker.hpp"
#include "core/controller.hpp"
#include "core/plan_handle.hpp"
#include "fault/fault.hpp"

namespace palb {

/// Which rung of the ResilientController's fallback ladder produced a
/// slot's applied plan (docs/RESILIENCE.md "ladder semantics"). Lower is
/// better; the ladder never runs past kShedAll because the zero plan is
/// feasible by construction.
enum class FallbackRung : int {
  kFullSolve = 1,       ///< the wrapped policy, at full effort
  kReducedResolve = 2,  ///< Policy::degraded() re-solve, bounded pivots
  kPreviousPlan = 3,    ///< previous slot's applied plan, projected
  kHeuristic = 4,       ///< BalancedPolicy (or Options::heuristic)
  kShedAll = 5,         ///< zero plan: drop everything, power down
};

/// Stable kebab-case name ("full-solve", ...) for the CLI table and the
/// bench JSON; never reworded once released.
const char* to_string(FallbackRung rung);

/// SlotController's fault-tolerant sibling: drives a policy across a
/// scenario perturbed by a FaultSchedule, and guarantees every slot an
/// applied plan that passes PlanChecker::check() against the slot's
/// *surviving* world — even when inputs are corrupted, data centers go
/// dark, or the solver itself fails. Each slot walks the fallback
/// ladder (FallbackRung); every rung's candidate is projected off cut
/// links and pushed through PlanChecker::repair() before the first one
/// that audits clean is applied. RunResult::fallback_rungs /
/// repair_adjustments / faulted_slots record what happened.
///
/// Determinism: candidate solves fan across workers in the exact
/// SlotController block layout (one Policy::clone() per worker,
/// contiguous slot blocks), rung-2 re-solves use a fresh
/// Policy::degraded() instance per failed slot, and the ladder itself
/// runs serially in slot order — so fault-injected runs stay
/// byte-identical across worker counts (the PR 2 guarantee;
/// tests/test_parallel_determinism.cpp holds it under faults too).
class ResilientController {
 public:
  struct Options {
    /// Worker fan-out for the candidate-solve phase; same semantics as
    /// SlotController::RunOptions::workers.
    std::size_t workers = 1;
    /// Constraint tolerances for both repair() and the acceptance
    /// check() — the two must share Options or repair's fixed point
    /// could still fail the audit.
    PlanChecker::Options checker;
    /// Rung-4 heuristic override (not owned; must outlive the
    /// controller). nullptr = an internal BalancedPolicy.
    Policy* heuristic = nullptr;
    /// Optional live-plan cell (not owned): every plan the ladder
    /// applies is publish()ed here the moment it is accepted, in slot
    /// order (version v = slot v-1), so concurrent readers — the
    /// serve::Dispatcher's routing tables, wired up by
    /// serve::AsyncPlanner — always acquire() a checked, coherent
    /// plan while the run is still in flight (docs/SERVING.md).
    PlanHandle* live = nullptr;
    /// Cooperative cancellation token (not owned; may be nullptr),
    /// installed on `policy` via Policy::set_cancel() before the
    /// candidate phase so clones inherit it. Once it reads true,
    /// in-flight full solves abort (SolveCancelled) and the ladder
    /// serves those slots from its cheaper rungs — the AsyncPlanner
    /// watchdog's deadline lever (docs/OVERLOAD.md).
    const std::atomic<bool>* cancel = nullptr;
    /// Highest-effort rung the candidate phase may attempt: kFullSolve
    /// (the default) tries everything; kReducedResolve skips rung 1
    /// outright; kPreviousPlan (or lower) skips rungs 1 and 2 — the
    /// descending-effort retry ladder the watchdog walks after repeated
    /// deadline expirations.
    FallbackRung max_effort = FallbackRung::kFullSolve;
    /// Stale-plan TTL in slots, active only with `live` attached and a
    /// publish-delay fault suppressing publishes: when the live plan's
    /// age (current slot minus last published slot) would exceed this
    /// bound, the publish is forced through anyway and counted in
    /// RunResult::ttl_escalations. 0 disables escalation (delays win).
    std::size_t stale_plan_ttl_slots = 0;
  };

  ResilientController(Scenario scenario, FaultSchedule schedule);

  const Scenario& scenario() const { return scenario_; }
  const FaultSchedule& schedule() const { return schedule_; }

  /// Never throws on faults: every slot gets an applied, audited plan.
  /// (Configuration errors — an invalid scenario or num_slots == 0 —
  /// still throw InvalidArgument up front.)
  RunResult run(Policy& policy, std::size_t num_slots,
                std::size_t first_slot = 0) const;
  RunResult run(Policy& policy, std::size_t num_slots,
                std::size_t first_slot, const Options& options) const;

 private:
  Scenario scenario_;
  FaultSchedule schedule_;
};

}  // namespace palb
