#include "fault/resilient_controller.hpp"

#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace palb {

const char* to_string(FallbackRung rung) {
  switch (rung) {
    case FallbackRung::kFullSolve:
      return "full-solve";
    case FallbackRung::kReducedResolve:
      return "reduced-resolve";
    case FallbackRung::kPreviousPlan:
      return "previous-plan";
    case FallbackRung::kHeuristic:
      return "heuristic";
    case FallbackRung::kShedAll:
      return "shed-all";
  }
  return "unknown";
}

namespace {

/// Per-slot output of the parallel candidate phase. Everything the
/// serial ladder needs, computed from (scenario, schedule, slot) and the
/// worker clone alone.
struct SlotCandidates {
  FaultedSlot world;
  std::optional<DispatchPlan> full;      ///< rung 1, absent if it failed
  std::optional<DispatchPlan> degraded;  ///< rung 2, only tried after 1
  PolicyStats degraded_stats;
};

/// Zeroes every flow routed over a cut front-end<->DC link. The only
/// fault repair() cannot see on its own: a blocked link is feasible by
/// the plan constraints, just unusable this slot.
void project_off_cut_links(const FaultedSlot& world, DispatchPlan& plan) {
  if (!world.has_blocked_link) return;
  const std::size_t K = world.topology.num_classes();
  const std::size_t S = world.topology.num_frontends();
  const std::size_t L = world.topology.num_datacenters();
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t l = 0; l < L; ++l) {
        if (world.blocked(s, l)) plan.rate[k][s][l] = 0.0;
      }
    }
  }
}

SlotCandidates solve_candidates(const Scenario& scenario,
                                const FaultSchedule& schedule,
                                std::size_t slot, Policy& policy) {
  SlotCandidates out;
  out.world = schedule.materialize(scenario, slot);
  // Rung 1: the wrapped policy at full effort, fed the *sanitized*
  // input. A forced solver failure skips it outright.
  if (!out.world.solver_failure) {
    try {
      out.full = policy.plan_slot(out.world.topology, out.world.input);
    } catch (const std::exception&) {
      // Fall through to the ladder.
    }
  }
  if (!out.full) {
    // Rung 2: bounded re-solve on a *fresh* degraded instance, so the
    // candidate depends only on (topology, input) — never on which
    // other slots in this worker's block failed.
    if (std::unique_ptr<Policy> cheap = policy.degraded()) {
      try {
        out.degraded = cheap->plan_slot(out.world.topology, out.world.input);
      } catch (const std::exception&) {
        // Fall through to the serial rungs.
      }
      out.degraded_stats = cheap->stats();
    }
  }
  return out;
}

}  // namespace

ResilientController::ResilientController(Scenario scenario,
                                         FaultSchedule schedule)
    : scenario_(std::move(scenario)), schedule_(std::move(schedule)) {
  scenario_.validate();
  schedule_.validate(scenario_.topology);
}

RunResult ResilientController::run(Policy& policy, std::size_t num_slots,
                                   std::size_t first_slot) const {
  return run(policy, num_slots, first_slot, Options{});
}

RunResult ResilientController::run(Policy& policy, std::size_t num_slots,
                                   std::size_t first_slot,
                                   const Options& options) const {
  PALB_REQUIRE(num_slots > 0, "need at least one slot");
  std::size_t workers = bounded_workers(
      options.workers == 0 ? 0 : options.workers, num_slots);

  // ---- Phase A: candidate solves, SlotController's exact block layout
  // (contiguous slot blocks, one clone per worker, serial inside a block
  // so warm-start chains stay intact).
  std::vector<SlotCandidates> slots(num_slots);
  std::vector<std::unique_ptr<Policy>> clones;
  if (workers > 1) {
    clones.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      clones.push_back(policy.clone());
      if (!clones.back()) {
        clones.clear();
        workers = 1;
        break;
      }
    }
  }

  RunResult result;
  if (workers <= 1) {
    const PolicyStats before = policy.stats();
    for (std::size_t t = 0; t < num_slots; ++t) {
      slots[t] = solve_candidates(scenario_, schedule_, first_slot + t,
                                  policy);
    }
    result.stats = policy.stats() - before;
  } else {
    const std::size_t base = num_slots / workers;
    const std::size_t extra = num_slots % workers;
    std::vector<std::pair<std::size_t, std::size_t>> blocks;  // offset,count
    std::size_t offset = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t count = base + (w < extra ? 1 : 0);
      blocks.emplace_back(offset, count);
      offset += count;
    }
    ThreadPool pool(workers);
    parallel_for(pool, workers, [&](std::size_t w) {
      const auto [block_offset, count] = blocks[w];
      for (std::size_t t = 0; t < count; ++t) {
        const std::size_t index = block_offset + t;
        slots[index] = solve_candidates(scenario_, schedule_,
                                        first_slot + index, *clones[w]);
      }
    });
    for (const auto& clone : clones) result.stats += clone->stats();
  }
  for (const auto& slot : slots) result.stats += slot.degraded_stats;

  // ---- Phase B: the ladder, serial in slot order (rung 3 consumes the
  // previous slot's *applied* plan, so order is semantic here).
  const PlanChecker checker(options.checker);
  BalancedPolicy balanced;
  Policy& heuristic =
      options.heuristic != nullptr ? *options.heuristic : balanced;

  result.slots.resize(num_slots);
  result.plans.resize(num_slots);
  result.fallback_rungs.assign(num_slots, 0);
  result.repair_adjustments.assign(num_slots, 0);
  result.faulted_slots = schedule_.count_faulted(num_slots, first_slot);

  const DispatchPlan* previous = nullptr;
  for (std::size_t t = 0; t < num_slots; ++t) {
    SlotCandidates& slot = slots[t];
    const FaultedSlot& world = slot.world;

    // Accepts `candidate` if its projected + repaired form audits clean;
    // fills the slot's record and returns true.
    const auto try_rung = [&](FallbackRung rung, DispatchPlan candidate) {
      project_off_cut_links(world, candidate);
      PlanRepairReport repaired =
          checker.repair(world.topology, world.input, std::move(candidate));
      if (!checker.check(world.topology, world.input, repaired.plan).ok()) {
        return false;
      }
      result.fallback_rungs[t] = static_cast<int>(rung);
      result.repair_adjustments[t] = repaired.adjustments();
      result.slots[t] =
          evaluate_plan(world.topology, world.input, repaired.plan);
      result.plans[t] = std::move(repaired.plan);
      return true;
    };

    bool applied = false;
    if (slot.full) {
      applied = try_rung(FallbackRung::kFullSolve, std::move(*slot.full));
    }
    if (!applied && slot.degraded) {
      applied =
          try_rung(FallbackRung::kReducedResolve, std::move(*slot.degraded));
    }
    if (!applied && previous != nullptr) {
      applied = try_rung(FallbackRung::kPreviousPlan, *previous);
    }
    if (!applied) {
      try {
        applied = try_rung(FallbackRung::kHeuristic,
                           heuristic.plan_slot(world.topology, world.input));
      } catch (const std::exception&) {
        // The safe plan below cannot fail.
      }
    }
    if (!applied) {
      try_rung(FallbackRung::kShedAll, DispatchPlan::zero(world.topology));
    }
    previous = &result.plans[t];
    // Hot-swap the applied plan for concurrent readers. Publishing
    // *after* the ladder accepts means a reader can never acquire() a
    // plan that failed its audit.
    if (options.live != nullptr) options.live->publish(result.plans[t]);
  }

  result.total = accumulate(result.slots);
  return result;
}

}  // namespace palb
