#include "fault/resilient_controller.hpp"

#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace palb {

const char* to_string(FallbackRung rung) {
  switch (rung) {
    case FallbackRung::kFullSolve:
      return "full-solve";
    case FallbackRung::kReducedResolve:
      return "reduced-resolve";
    case FallbackRung::kPreviousPlan:
      return "previous-plan";
    case FallbackRung::kHeuristic:
      return "heuristic";
    case FallbackRung::kShedAll:
      return "shed-all";
  }
  return "unknown";
}

namespace {

/// Per-slot output of the parallel candidate phase. Everything the
/// serial ladder needs, computed from (scenario, schedule, slot) and the
/// worker clone alone.
struct SlotCandidates {
  FaultedSlot world;
  std::optional<DispatchPlan> full;      ///< rung 1, absent if it failed
  std::optional<DispatchPlan> degraded;  ///< rung 2, only tried after 1
  PolicyStats degraded_stats;
};

/// Zeroes every flow routed over a cut front-end<->DC link. The only
/// fault repair() cannot see on its own: a blocked link is feasible by
/// the plan constraints, just unusable this slot.
void project_off_cut_links(const FaultedSlot& world, DispatchPlan& plan) {
  if (!world.has_blocked_link) return;
  const std::size_t K = world.topology.num_classes();
  const std::size_t S = world.topology.num_frontends();
  const std::size_t L = world.topology.num_datacenters();
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t l = 0; l < L; ++l) {
        if (world.blocked(s, l)) plan.rate[k][s][l] = 0.0;
      }
    }
  }
}

SlotCandidates solve_candidates(const Scenario& scenario,
                                const FaultSchedule& schedule,
                                std::size_t slot, Policy& policy,
                                FallbackRung max_effort) {
  SlotCandidates out;
  out.world = schedule.materialize(scenario, slot);
  // Rung 1: the wrapped policy at full effort, fed the *sanitized*
  // input. A forced solver failure or planner stall skips it outright,
  // as does a caller capping effort below kFullSolve (the watchdog's
  // descending retry ladder).
  if (!out.world.solver_failure && !out.world.planner_stall &&
      max_effort == FallbackRung::kFullSolve) {
    try {
      out.full = policy.plan_slot(out.world.topology, out.world.input);
    } catch (const std::exception&) {
      // Fall through to the ladder (SolveCancelled lands here too: a
      // cancelled full solve degrades instead of propagating).
    }
  }
  if (!out.full &&
      static_cast<int>(max_effort) <=
          static_cast<int>(FallbackRung::kReducedResolve)) {
    // Rung 2: bounded re-solve on a *fresh* degraded instance, so the
    // candidate depends only on (topology, input) — never on which
    // other slots in this worker's block failed.
    if (std::unique_ptr<Policy> cheap = policy.degraded()) {
      try {
        out.degraded = cheap->plan_slot(out.world.topology, out.world.input);
      } catch (const std::exception&) {
        // Fall through to the serial rungs.
      }
      out.degraded_stats = cheap->stats();
    }
  }
  return out;
}

}  // namespace

ResilientController::ResilientController(Scenario scenario,
                                         FaultSchedule schedule)
    : scenario_(std::move(scenario)), schedule_(std::move(schedule)) {
  scenario_.validate();
  schedule_.validate(scenario_.topology);
}

RunResult ResilientController::run(Policy& policy, std::size_t num_slots,
                                   std::size_t first_slot) const {
  return run(policy, num_slots, first_slot, Options{});
}

RunResult ResilientController::run(Policy& policy, std::size_t num_slots,
                                   std::size_t first_slot,
                                   const Options& options) const {
  PALB_REQUIRE(num_slots > 0, "need at least one slot");
  std::size_t workers = bounded_workers(
      options.workers == 0 ? 0 : options.workers, num_slots);

  // Install the watchdog's cancellation token before any clone is made
  // so the whole candidate phase shares it (clone() copies it; a no-op
  // for policies that ignore set_cancel).
  policy.set_cancel(options.cancel);

  // ---- Phase A: candidate solves, SlotController's exact block layout
  // (contiguous slot blocks, one clone per worker, serial inside a block
  // so warm-start chains stay intact).
  std::vector<SlotCandidates> slots(num_slots);
  std::vector<std::unique_ptr<Policy>> clones;
  if (workers > 1) {
    clones.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      clones.push_back(policy.clone());
      if (!clones.back()) {
        clones.clear();
        workers = 1;
        break;
      }
    }
  }

  RunResult result;
  if (workers <= 1) {
    const PolicyStats before = policy.stats();
    for (std::size_t t = 0; t < num_slots; ++t) {
      slots[t] = solve_candidates(scenario_, schedule_, first_slot + t,
                                  policy, options.max_effort);
    }
    result.stats = policy.stats() - before;
  } else {
    const std::size_t base = num_slots / workers;
    const std::size_t extra = num_slots % workers;
    std::vector<std::pair<std::size_t, std::size_t>> blocks;  // offset,count
    std::size_t offset = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t count = base + (w < extra ? 1 : 0);
      blocks.emplace_back(offset, count);
      offset += count;
    }
    ThreadPool pool(workers);
    parallel_for(pool, workers, [&](std::size_t w) {
      const auto [block_offset, count] = blocks[w];
      for (std::size_t t = 0; t < count; ++t) {
        const std::size_t index = block_offset + t;
        slots[index] = solve_candidates(scenario_, schedule_,
                                        first_slot + index, *clones[w],
                                        options.max_effort);
      }
    });
    for (const auto& clone : clones) result.stats += clone->stats();
  }
  for (const auto& slot : slots) result.stats += slot.degraded_stats;

  // ---- Phase B: the ladder, serial in slot order (rung 3 consumes the
  // previous slot's *applied* plan, so order is semantic here).
  const PlanChecker checker(options.checker);
  BalancedPolicy balanced;
  Policy& heuristic =
      options.heuristic != nullptr ? *options.heuristic : balanced;

  result.slots.resize(num_slots);
  result.plans.resize(num_slots);
  result.fallback_rungs.assign(num_slots, 0);
  result.repair_adjustments.assign(num_slots, 0);
  result.faulted_slots = schedule_.count_faulted(num_slots, first_slot);
  if (options.live != nullptr) result.live_slots.assign(num_slots, -1);

  const DispatchPlan* previous = nullptr;
  // Index of the last slot whose plan reached the live handle; -1 until
  // the first publish. Stale-plan age of slot t = t - last_published.
  std::int64_t last_published = -1;
  for (std::size_t t = 0; t < num_slots; ++t) {
    SlotCandidates& slot = slots[t];
    const FaultedSlot& world = slot.world;

    // Accepts `candidate` if its projected + repaired form audits clean;
    // fills the slot's record and returns true.
    const auto try_rung = [&](FallbackRung rung, DispatchPlan candidate) {
      project_off_cut_links(world, candidate);
      PlanRepairReport repaired =
          checker.repair(world.topology, world.input, std::move(candidate));
      if (!checker.check(world.topology, world.input, repaired.plan).ok()) {
        return false;
      }
      result.fallback_rungs[t] = static_cast<int>(rung);
      result.repair_adjustments[t] = repaired.adjustments();
      result.slots[t] =
          evaluate_plan(world.topology, world.input, repaired.plan);
      result.plans[t] = std::move(repaired.plan);
      return true;
    };

    bool applied = false;
    if (slot.full) {
      applied = try_rung(FallbackRung::kFullSolve, std::move(*slot.full));
    }
    if (!applied && slot.degraded) {
      applied =
          try_rung(FallbackRung::kReducedResolve, std::move(*slot.degraded));
    }
    if (!applied && previous != nullptr) {
      applied = try_rung(FallbackRung::kPreviousPlan, *previous);
    }
    if (!applied) {
      try {
        applied = try_rung(FallbackRung::kHeuristic,
                           heuristic.plan_slot(world.topology, world.input));
      } catch (const std::exception&) {
        // The safe plan below cannot fail.
      }
    }
    if (!applied) {
      try_rung(FallbackRung::kShedAll, DispatchPlan::zero(world.topology));
    }
    previous = &result.plans[t];
    if (world.planner_stall) ++result.stalled_solves;
    // Hot-swap the applied plan for concurrent readers. Publishing
    // *after* the ladder accepts means a reader can never acquire() a
    // plan that failed its audit. A publish-delay fault suppresses the
    // swap — readers keep the previous live plan — unless the live
    // plan's age would blow the stale-plan TTL, in which case the
    // publish is forced through (escalation).
    if (options.live != nullptr) {
      bool delayed = world.publish_delayed;
      if (delayed && options.stale_plan_ttl_slots > 0 &&
          static_cast<std::int64_t>(t) - last_published >
              static_cast<std::int64_t>(options.stale_plan_ttl_slots)) {
        delayed = false;
        ++result.ttl_escalations;
      }
      if (delayed) {
        ++result.delayed_publishes;
      } else {
        options.live->publish(result.plans[t]);
        last_published = static_cast<std::int64_t>(t);
      }
      result.live_slots[t] = last_published;
    }
  }

  result.total = accumulate(result.slots);
  return result;
}

}  // namespace palb
