#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hpp"

namespace palb {

/// What a FaultEvent disturbs (docs/RESILIENCE.md "fault taxonomy").
/// Every kind maps onto a disturbance the paper's multi-electricity-
/// market setting actually exhibits but its hourly loop (§III) assumes
/// away: clean inputs, live data centers, a solver that always returns.
enum class FaultKind {
  /// Data center `dc` loses floor(M_l * magnitude) servers for the
  /// window (magnitude 1.0 = full outage: the DC goes dark).
  kDcOutage,
  /// Electricity price at `dc` multiplies by `magnitude` (spike).
  kPriceSpike,
  /// Telemetry gap: the rate reading for (klass, frontend) — kNoIndex =
  /// all classes / all front-ends — is NaN for the window. The resilient
  /// path imputes it from the most recent clean slot.
  kTraceGap,
  /// The frontend<->dc link is unusable: plans must not route over it
  /// and in-flight dispatch over it is dropped. kNoIndex on either side
  /// cuts the whole row/column.
  kLinkCut,
  /// The primary policy is forced to fail this slot (models a solver
  /// crash or a per-slot pivot budget acting as a deadline), pushing the
  /// resilient controller onto its fallback ladder.
  kSolverFailure,
  /// The planner's full solve blows its deadline budget this slot (the
  /// watchdog cancelled it mid-pivot): rung 1 is deterministically
  /// skipped and the slot is counted in RunResult::stalled_solves. Same
  /// plan effect as kSolverFailure, distinct telemetry — a stall is a
  /// deadline event, not a crash.
  kPlannerStall,
  /// The publish of this slot's applied plan is suppressed: readers keep
  /// serving the previous live plan (measurable stale-plan exposure)
  /// until the window ends or the stale-plan TTL escalation forces the
  /// publish through (ResilientController::Options::stale_plan_ttl_slots).
  kPublishDelay,
  /// Real demand surge: every targeted arrival rate (klass / frontend
  /// pins honored, kNoIndex = all) multiplies by `magnitude` in both the
  /// sanitized and the raw telemetry — the planner sees it, and so does
  /// the offered mix admission control sizes against.
  kDemandSurge,
};

/// Stable kebab-case name ("dc-outage", ...) used by the JSON schema and
/// the CLI table; never reworded once released.
const char* to_string(FaultKind kind);

/// One disturbance over an inclusive slot window [first_slot, last_slot].
struct FaultEvent {
  /// Sentinel for an index axis the event does not pin (= "all").
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  FaultKind kind = FaultKind::kDcOutage;
  std::size_t first_slot = 0;
  std::size_t last_slot = 0;  ///< inclusive
  std::size_t dc = kNoIndex;        ///< kDcOutage, kPriceSpike, kLinkCut
  std::size_t frontend = kNoIndex;  ///< kTraceGap, kLinkCut, kDemandSurge
  std::size_t klass = kNoIndex;     ///< kTraceGap, kDemandSurge (= all)
  /// kDcOutage: fraction of servers lost; kPriceSpike: price multiplier;
  /// kDemandSurge: arrival-rate multiplier.
  double magnitude = 1.0;

  bool active(std::size_t t) const {
    return t >= first_slot && t <= last_slot;
  }
};

/// The effective world of one slot after the schedule is applied — what
/// the resilient control path plans against and settles on.
struct FaultedSlot {
  /// Surviving topology: outage-reduced server counts, otherwise the
  /// scenario's topology verbatim.
  Topology topology;
  /// Sanitized planning input: spiked prices applied, trace gaps imputed
  /// from the most recent clean slot (finite and non-negative, so any
  /// Policy can plan from it).
  SlotInput input;
  /// The input as telemetry observed it: gapped rates are NaN. An
  /// unwrapped policy fed this throws; the resilient path never uses it
  /// for planning.
  SlotInput raw_input;
  /// blocked[s * num_datacenters + l] != 0 when the s->l link is cut.
  std::vector<std::uint8_t> link_blocked;
  bool solver_failure = false;  ///< rung 1 is forced to fail this slot
  bool planner_stall = false;   ///< rung 1 cancelled by its deadline
  bool publish_delayed = false; ///< this slot's publish is suppressed
  bool faulted = false;         ///< any event active this slot
  bool has_blocked_link = false;

  bool blocked(std::size_t s, std::size_t l) const {
    return !link_blocked.empty() &&
           link_blocked[s * topology.num_datacenters() + l] != 0;
  }
};

/// A deterministic list of fault events. materialize() is a pure
/// function of (scenario, schedule, slot) — never of plans, policy state
/// or worker partition — which is what keeps fault-injected runs
/// byte-identical across worker counts (the PR 2 guarantee).
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Any event active at slot t?
  bool faulted(std::size_t t) const;
  /// Faulted slots within [first_slot, first_slot + num_slots).
  std::size_t count_faulted(std::size_t num_slots,
                            std::size_t first_slot = 0) const;

  /// Throws InvalidArgument when an event's indices fall outside the
  /// topology, a window is inverted, or a magnitude is out of domain.
  void validate(const Topology& topology) const;

  /// Applies every event active at slot t to the scenario's slot-t
  /// world. Trace-gap imputation walks back to the most recent earlier
  /// slot whose reading for that stream is clean (0 if none exists), so
  /// the sanitized input depends only on (scenario, schedule, t).
  FaultedSlot materialize(const Scenario& scenario, std::size_t t) const;

 private:
  std::vector<FaultEvent> events_;
};

/// Seeded random fault-schedule generator, scenario_gen's sibling: the
/// fuzz suites and the fig_resilience bench dial `fault_rate` instead of
/// hand-writing event lists. Deterministic in (scenario shape, seed,
/// options).
namespace fault_gen {

struct Options {
  std::size_t slots = 24;
  /// Per-slot probability that a new fault window starts. Each started
  /// window draws its kind uniformly from the enabled kinds below.
  double fault_rate = 0.15;
  std::size_t min_duration = 1, max_duration = 4;
  bool dc_outages = true;
  bool price_spikes = true;
  bool trace_gaps = true;
  bool link_cuts = true;
  bool solver_failures = true;
  /// The serving-path chaos kinds (PR 10) default OFF so schedules
  /// generated from pre-existing seeds stay byte-identical.
  bool planner_stalls = false;
  bool publish_delays = false;
  bool demand_surges = false;
  /// Outage severity range (fraction of the fleet lost).
  double min_outage = 0.5, max_outage = 1.0;
  /// Price-spike multiplier range.
  double min_spike = 2.0, max_spike = 10.0;
  /// Demand-surge multiplier range.
  double min_surge = 1.5, max_surge = 4.0;
};

FaultSchedule generate(const Topology& topology, std::uint64_t seed,
                       const Options& options);
FaultSchedule generate(const Topology& topology, std::uint64_t seed);

/// The canned 24-slot acceptance schedule (docs/RESILIENCE.md): data
/// center 0 dark for slots 8-11, rate telemetry of front-end 0 gapped at
/// slots 3 and 15, and one forced solver failure at slot 19. The CLI
/// spells it "canned"; CI's resilience-smoke job replays it.
FaultSchedule canned_acceptance();

/// The canned 24-slot overload schedule (docs/OVERLOAD.md): a 3x demand
/// surge over slots 4-9, publishes suppressed for slots 4-6 (so the
/// stale pre-surge plan faces the surge and admission must shed until
/// the TTL forces a publish through) and again for the calm slots
/// 12-15, the planner stalled for slots 6-8 inside the surge, and a
/// price spike at slot 18 for flavor. The CLI spells it "canned-chaos";
/// CI's chaos-smoke job replays it.
FaultSchedule canned_chaos();

}  // namespace fault_gen
}  // namespace palb
