#include "fault/fault_json.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace palb::fault_json {

namespace {

FaultKind kind_from_string(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kDcOutage, FaultKind::kPriceSpike, FaultKind::kTraceGap,
        FaultKind::kLinkCut, FaultKind::kSolverFailure,
        FaultKind::kPlannerStall, FaultKind::kPublishDelay,
        FaultKind::kDemandSurge}) {
    if (name == to_string(kind)) return kind;
  }
  throw IoError("unknown fault kind: '" + name + "'");
}

}  // namespace

Json to_json(const FaultSchedule& schedule) {
  Json doc = Json::object();
  doc.set("schema", Json(kSchema));
  Json events = Json::array();
  for (const FaultEvent& e : schedule.events()) {
    Json ev = Json::object();
    ev.set("kind", Json(to_string(e.kind)));
    ev.set("first_slot", Json(e.first_slot));
    ev.set("last_slot", Json(e.last_slot));
    if (e.dc != FaultEvent::kNoIndex) ev.set("dc", Json(e.dc));
    if (e.frontend != FaultEvent::kNoIndex) {
      ev.set("frontend", Json(e.frontend));
    }
    if (e.klass != FaultEvent::kNoIndex) ev.set("class", Json(e.klass));
    if (e.magnitude != 1.0) ev.set("magnitude", Json(e.magnitude));
    events.push_back(std::move(ev));
  }
  doc.set("events", std::move(events));
  return doc;
}

FaultSchedule from_json(const Json& doc) {
  const std::string schema = doc.get("schema", std::string(kSchema));
  if (schema != kSchema) {
    throw IoError("unsupported fault schedule schema: '" + schema +
                  "' (expected '" + kSchema + "')");
  }
  std::vector<FaultEvent> events;
  for (const Json& ev : doc.at("events").as_array()) {
    FaultEvent e;
    e.kind = kind_from_string(ev.at("kind").as_string());
    e.first_slot = ev.at("first_slot").as_index();
    e.last_slot = ev.at("last_slot").as_index();
    if (ev.contains("dc")) e.dc = ev.at("dc").as_index();
    if (ev.contains("frontend")) e.frontend = ev.at("frontend").as_index();
    if (ev.contains("class")) e.klass = ev.at("class").as_index();
    e.magnitude = ev.get("magnitude", 1.0);
    events.push_back(e);
  }
  return FaultSchedule(std::move(events));
}

void save(const FaultSchedule& schedule, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for write: " + path);
  os << to_json(schedule).dump(2) << "\n";
}

FaultSchedule load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return from_json(Json::parse(buffer.str()));
}

}  // namespace palb::fault_json
