#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace palb {

// ---- accessors --------------------------------------------------------------

namespace {
[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw IoError(std::string("JSON type mismatch: wanted ") + wanted +
                ", got " + names[static_cast<int>(got)]);
}
}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::size_t Json::as_index() const {
  const double n = as_number();
  if (n < 0.0 || n != std::floor(n)) {
    throw IoError("JSON number is not a non-negative integer");
  }
  return static_cast<std::size_t>(n);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw IoError("JSON object missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

double Json::get(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Json::get(const std::string& key,
                      const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

const Json& Json::operator[](std::size_t i) const {
  const auto& arr = as_array();
  if (i >= arr.size()) throw IoError("JSON array index out of range");
  return arr[i];
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

void Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  object_[key] = std::move(value);
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

// ---- serialization -----------------------------------------------------------

namespace {
void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double n) {
  if (!std::isfinite(n)) throw IoError("JSON cannot encode NaN/Inf");
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", n);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  out += buf;
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      number_into(out, number_);
      break;
    case Type::kString:
      escape_into(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        out += pad;
        escape_into(out, key);
        out += colon;
        value.dump_to(out, indent, depth + 1);
        if (++i < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- parsing -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw IoError("JSON parse error at line " + std::to_string(line) +
                  ", column " + std::to_string(col) + ": " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("invalid literal (expected ") + lit + ")");
      }
      ++pos_;
    }
  }

  Json parse_bool() {
    if (peek() == 't') {
      parse_literal("true");
      return Json(true);
    }
    parse_literal("false");
    return Json(false);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are
          // passed through as two 3-byte sequences; scenario files stay
          // in the BMP in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("leading zeros are not allowed");
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    return Json(value);
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      out.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return out;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      out.set(key, parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return out;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace palb
