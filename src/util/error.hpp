#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

namespace palb {

/// Root of the library's exception hierarchy. All throwing paths in palb
/// raise a subclass of Error so callers can catch the library errors
/// without swallowing unrelated std exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an argument outside the documented domain
/// (negative rate, empty trace, mismatched dimensions, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or detected an inconsistent
/// model (infeasible LP asked for a solution, singular basis, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// I/O failure (trace file missing, malformed CSV, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A solve was cooperatively cancelled before it finished — the
/// watchdog's deadline budget expired, or a stale-plan TTL escalation
/// pulled the plug (docs/OVERLOAD.md). Not an input or numerics problem:
/// the ResilientController catches it like any solve failure and walks
/// its fallback ladder, so a cancelled full solve degrades instead of
/// propagating.
class SolveCancelled : public Error {
 public:
  explicit SolveCancelled(const std::string& what) : Error(what) {}
};

/// A plan failed the paper-constraint audit: one of Eqs. 6-8, queue
/// stability or rate sanity does not hold (thrown by PlanChecker's
/// enforcing entry points). Derives from InvalidArgument because a
/// constraint-violating plan *is* a bad argument — callers that already
/// catch InvalidArgument keep working.
class ConstraintViolation : public InvalidArgument {
 public:
  explicit ConstraintViolation(const std::string& what)
      : InvalidArgument(what) {}
};

namespace detail {

/// Shared thrower behind the PALB_CHECK family: prefixes the failure
/// with file:line so a tripped invariant deep inside a solver names the
/// exact check instead of an anonymous message.
[[noreturn]] inline void throw_check_failure(const char* file, int line,
                                             const char* cond,
                                             const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": check `" + cond + "` failed: " + msg);
}

}  // namespace detail

/// Lightweight invariant check used across the library. Unlike assert()
/// it is active in release builds: the library is the backing of a
/// simulation harness, and silent UB on bad scenario files is worse than
/// the branch cost. The thrown message carries file:line of the check
/// site so violations are locatable from a test log alone.
#define PALB_CHECK(cond, msg)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::palb::detail::throw_check_failure(__FILE__, __LINE__, #cond,  \
                                          (msg));                     \
    }                                                                 \
  } while (0)

/// Checks that a floating-point expression is finite (rejects NaN and
/// +-inf). `what` names the quantity in the thrown message.
#define PALB_CHECK_FINITE(value, what)                                  \
  do {                                                                  \
    const double palb_check_finite_v_ = static_cast<double>(value);     \
    if (!std::isfinite(palb_check_finite_v_)) {                         \
      ::palb::detail::throw_check_failure(                              \
          __FILE__, __LINE__, #value,                                   \
          std::string(what) + " must be finite, got " +                 \
              std::to_string(palb_check_finite_v_));                    \
    }                                                                   \
  } while (0)

/// Debug-only check: compiled out (condition not evaluated) in NDEBUG
/// builds. For invariants on hot paths whose failure is impossible
/// unless the surrounding function itself is broken.
#ifdef NDEBUG
#define PALB_DCHECK(cond, msg) \
  do {                         \
  } while (0)
#else
#define PALB_DCHECK(cond, msg) PALB_CHECK(cond, msg)
#endif

/// Historical name of PALB_CHECK, kept as a thin alias so the seed's
/// call sites (and downstream users) keep compiling unchanged.
#define PALB_REQUIRE(cond, msg) PALB_CHECK(cond, msg)

}  // namespace palb
