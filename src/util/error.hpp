#pragma once

// The exception hierarchy and the PALB_REQUIRE/PALB_CHECK macro family
// moved to check/check.hpp when the invariant subsystem grew into its
// own module. This forwarder keeps the seed's 70+ include sites (and any
// downstream code) compiling unchanged.
#include "check/check.hpp"  // IWYU pragma: export
