#pragma once

#include <stdexcept>
#include <string>

namespace palb {

/// Root of the library's exception hierarchy. All throwing paths in palb
/// raise a subclass of Error so callers can catch the library errors
/// without swallowing unrelated std exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an argument outside the documented domain
/// (negative rate, empty trace, mismatched dimensions, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or detected an inconsistent
/// model (infeasible LP asked for a solution, singular basis, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// I/O failure (trace file missing, malformed CSV, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

/// Lightweight precondition check used across the library. Unlike assert()
/// it is active in release builds: the library is the backing of a
/// simulation harness, and silent UB on bad scenario files is worse than
/// the branch cost.
#define PALB_REQUIRE(cond, msg)                                    \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::palb::detail::throw_invalid(std::string("precondition `" #cond \
                                                "` failed: ") +    \
                                    (msg));                        \
    }                                                              \
  } while (0)

}  // namespace palb
