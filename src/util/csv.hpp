#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace palb {

/// Minimal CSV table: a header row plus string cells. Understands quoted
/// fields with embedded commas/quotes; enough for trace import/export.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

  /// Appends a row; must match header width.
  void add_row(std::vector<std::string> row);
  const std::vector<std::string>& row(std::size_t i) const;
  const std::string& cell(std::size_t row, std::size_t col) const;
  /// Column index by header name; throws InvalidArgument if absent.
  std::size_t column(const std::string& name) const;

  /// Numeric accessors (throw IoError on non-numeric cells).
  double cell_as_double(std::size_t row, std::size_t col) const;

  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;
  static CsvTable read(std::istream& is);
  static CsvTable read_file(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field (quotes when needed).
std::string csv_escape(const std::string& field);

/// Splits one CSV line into fields (handles quotes).
std::vector<std::string> csv_split(const std::string& line);

}  // namespace palb
