#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace palb {

/// Minimal CSV table: a header row plus string cells. Understands quoted
/// fields with embedded commas/quotes; enough for trace import/export.
///
/// Malformed input (wrong column count, embedded NUL byte, later a
/// non-numeric cell) raises IoError naming the source and the 1-based
/// line number — read() records where every row came from precisely so
/// a corrupted trace points at the offending line, not just "a row".
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

  /// Where this table was read from ("<memory>" for built tables).
  const std::string& source() const { return source_; }
  /// 1-based source line of row i; 0 for rows added programmatically.
  std::size_t row_line(std::size_t i) const;

  /// Appends a row; must match header width.
  void add_row(std::vector<std::string> row);
  const std::vector<std::string>& row(std::size_t i) const;
  const std::string& cell(std::size_t row, std::size_t col) const;
  /// Column index by header name; throws InvalidArgument if absent.
  std::size_t column(const std::string& name) const;

  /// Numeric accessors; a non-numeric cell throws IoError naming the
  /// source, line and column.
  double cell_as_double(std::size_t row, std::size_t col) const;

  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;
  /// `source_name` labels the stream in error messages.
  static CsvTable read(std::istream& is,
                       const std::string& source_name = "<stream>");
  static CsvTable read_file(const std::string& path);

 private:
  /// "source:line" (or just "source" when the row has no line).
  std::string location(std::size_t row) const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> row_lines_;
  std::string source_ = "<memory>";
};

/// Escapes a single CSV field (quotes when needed).
std::string csv_escape(const std::string& field);

/// Splits one CSV line into fields (handles quotes).
std::vector<std::string> csv_split(const std::string& line);

}  // namespace palb
