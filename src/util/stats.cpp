#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace palb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  PALB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  PALB_REQUIRE(!samples_.empty(), "quantile of empty SampleSet");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::min() const {
  PALB_REQUIRE(!samples_.empty(), "min of empty SampleSet");
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  PALB_REQUIRE(!samples_.empty(), "max of empty SampleSet");
  ensure_sorted();
  return samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PALB_REQUIRE(bins > 0, "histogram needs at least one bin");
  PALB_REQUIRE(hi > lo, "histogram needs hi > lo");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  PALB_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double relative_difference(double a, double b, double floor) {
  const double denom = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) / denom;
}

}  // namespace palb
