#include "util/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/error.hpp"

namespace palb {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PALB_REQUIRE(!header_.empty(), "CSV header must not be empty");
}

void CsvTable::add_row(std::vector<std::string> row) {
  PALB_REQUIRE(row.size() == header_.size(),
               "CSV row width must match header");
  rows_.push_back(std::move(row));
  row_lines_.push_back(0);
}

std::size_t CsvTable::row_line(std::size_t i) const {
  PALB_REQUIRE(i < rows_.size(), "CSV row index out of range");
  return row_lines_[i];
}

std::string CsvTable::location(std::size_t row) const {
  const std::size_t line = row < row_lines_.size() ? row_lines_[row] : 0;
  if (line == 0) return source_;
  return source_ + ":" + std::to_string(line);
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  PALB_REQUIRE(i < rows_.size(), "CSV row index out of range");
  return rows_[i];
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  PALB_REQUIRE(row < rows_.size() && col < header_.size(),
               "CSV cell out of range");
  return rows_[row][col];
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw InvalidArgument("CSV column not found: " + name);
}

double CsvTable::cell_as_double(std::size_t row, std::size_t col) const {
  const std::string& s = cell(row, col);
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw IoError(location(row) + ": CSV cell '" + header_[col] +
                  "' is not numeric: '" + s + "'");
  }
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  }
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for write: " + path);
  write(os);
}

CsvTable CsvTable::read(std::istream& is, const std::string& source_name) {
  std::string line;
  std::size_t line_number = 1;
  if (!std::getline(is, line)) {
    throw IoError(source_name + ": CSV stream has no header");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  // An embedded NUL is never valid text CSV; it means a binary file (or
  // a truncated/overwritten trace) is being fed in by mistake.
  if (line.find('\0') != std::string::npos) {
    throw IoError(source_name + ":1: CSV header contains a NUL byte");
  }
  CsvTable table(csv_split(line));
  table.source_ = source_name;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string where =
        source_name + ":" + std::to_string(line_number);
    if (line.find('\0') != std::string::npos) {
      throw IoError(where + ": CSV row contains a NUL byte");
    }
    auto fields = csv_split(line);
    if (fields.size() != table.header_.size()) {
      throw IoError(where + ": CSV row width mismatch: got " +
                    std::to_string(fields.size()) + " fields, expected " +
                    std::to_string(table.header_.size()));
    }
    table.rows_.push_back(std::move(fields));
    table.row_lines_.push_back(line_number);
  }
  return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for read: " + path);
  return read(is, path);
}

}  // namespace palb
