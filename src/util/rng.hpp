#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace palb {

/// SplitMix64: tiny, fast generator used to seed Xoshiro and for cheap
/// hashing of (seed, stream) pairs into independent substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic, fast, and of far
/// higher quality than std::minstd; every stochastic component in palb
/// takes an explicit Rng so that scenarios are replayable bit-for-bit.
///
/// Satisfies UniformRandomBitGenerator, so it can also drive <random>
/// distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derives an independent substream: same seed + different stream ids
  /// give statistically independent generators (used to give each
  /// front-end / data-center / worker thread its own stream).
  Rng substream(std::uint64_t stream_id) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();
  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate). rate must be > 0.
  double exponential(double rate);
  /// Poisson draw with the given mean (Knuth for small, normal approx for
  /// large means). mean must be >= 0.
  std::uint64_t poisson(double mean);
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace palb
