#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace palb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard lock(g_io_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace palb
