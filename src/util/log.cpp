#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <string>
#include <utility>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace palb {

namespace {

/// The level gate stays a lone atomic: it is a monotonic filter read on
/// every emission, and a stale read only mis-drops one borderline line.
/// Everything stateful about *where* lines go lives under one annotated
/// mutex. The previous design kept an unsynchronized registration flag
/// next to the I/O mutex — a check-then-act race where an emitter could
/// observe "sink registered", lose the CPU, and then invoke a sink that
/// a concurrent set_log_sink() had already torn down. Now the sink is
/// read, and invoked, under the same mutex that set_log_sink() swaps it
/// under; GUARDED_BY makes the discipline machine-checked.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

Mutex g_sink_mutex;
LogSink g_sink PALB_GUARDED_BY(g_sink_mutex);

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogSink set_log_sink(LogSink sink) {
  MutexLock lock(g_sink_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  MutexLock lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace palb
