#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace palb {

/// Minimal JSON document model + strict parser + serializer.
///
/// Exists so scenarios (topologies, traces, prices) can live in plain
/// files users edit and the CLI loads — with no external dependency.
/// Strictness: the parser accepts exactly RFC 8259 JSON (no comments,
/// no trailing commas, no NaN/Inf literals) and reports line/column on
/// error. Numbers are held as double (adequate for scenario data).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// std::map keeps key order deterministic for stable serialization.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(std::size_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw IoError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// as_number narrowed to a checked non-negative integer.
  std::size_t as_index() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field access; `at` throws IoError if missing, `get` returns
  /// the fallback.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  double get(const std::string& key, double fallback) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Array element access with bounds check.
  const Json& operator[](std::size_t i) const;
  std::size_t size() const;

  /// Mutation for builders.
  void set(const std::string& key, Json value);
  void push_back(Json value);

  /// Serialization. `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Strict parse; throws IoError with line/column context.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace palb
