#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace palb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PALB_REQUIRE(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  PALB_REQUIRE(row.size() == header_.size(),
               "table row width must match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string render_series(const std::string& title,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys,
                          const std::string& x_label,
                          const std::string& y_label, int bar_width) {
  PALB_REQUIRE(xs.size() == ys.size(), "series xs/ys size mismatch");
  std::ostringstream os;
  os << "== " << title << " ==\n";
  if (ys.empty()) return os.str();
  double lo = *std::min_element(ys.begin(), ys.end());
  double hi = *std::max_element(ys.begin(), ys.end());
  lo = std::min(lo, 0.0);
  hi = std::max(hi, lo + 1e-12);
  os << x_label << "\t" << y_label << "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double frac = (ys[i] - lo) / (hi - lo);
    const int bars =
        static_cast<int>(std::lround(frac * static_cast<double>(bar_width)));
    os << format_double(xs[i], 2) << "\t" << format_double(ys[i], 3) << "\t|"
       << std::string(static_cast<std::size_t>(std::max(bars, 0)), '#')
       << "\n";
  }
  return os.str();
}

std::string render_multi_series(const std::string& title,
                                const std::vector<double>& xs,
                                const std::vector<std::string>& names,
                                const std::vector<std::vector<double>>& ys,
                                const std::string& x_label) {
  PALB_REQUIRE(names.size() == ys.size(), "one name per series required");
  for (const auto& s : ys) {
    PALB_REQUIRE(s.size() == xs.size(), "series length mismatch");
  }
  std::vector<std::string> header{x_label};
  header.insert(header.end(), names.begin(), names.end());
  TextTable table(std::move(header));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{format_double(xs[i], 2)};
    for (const auto& s : ys) row.push_back(format_double(s[i], 3));
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << "== " << title << " ==\n" << table.render();
  return os.str();
}

}  // namespace palb
