#pragma once

// Clang Thread Safety Analysis attribute macros (tier 5 of
// docs/STATIC_ANALYSIS.md). Under clang with -Wthread-safety the
// annotations make lock-discipline errors — reading a PALB_GUARDED_BY
// member without its mutex, calling a PALB_REQUIRES function unlocked,
// double-acquiring a capability — *compile errors* (the thread-safety
// preset promotes the warnings with -Werror=thread-safety). Off clang
// every macro expands to nothing, so gcc builds are unaffected and the
// annotations cost zero at runtime everywhere.
//
// The macro set mirrors the canonical clang/abseil vocabulary with a
// PALB_ prefix; src/util/mutex.hpp provides the annotated Mutex /
// MutexLock / CondVar wrappers every palb component synchronizes with.
// tests/compile_fail/thread_safety_cases/ holds the negative-compilation
// suite proving misuse is rejected.

#if defined(__clang__) && !defined(SWIG)
#define PALB_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define PALB_TSA_ATTRIBUTE(x)  // no-op off clang
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define PALB_CAPABILITY(x) PALB_TSA_ATTRIBUTE(capability(x))

/// Marks an RAII type that acquires on construction, releases on
/// destruction (MutexLock).
#define PALB_SCOPED_CAPABILITY PALB_TSA_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define PALB_GUARDED_BY(x) PALB_TSA_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define PALB_PT_GUARDED_BY(x) PALB_TSA_ATTRIBUTE(pt_guarded_by(x))

/// Function that may only be called while holding the listed
/// capabilities (and does not release them).
#define PALB_REQUIRES(...) \
  PALB_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquiring the listed capabilities (caller must not hold).
#define PALB_ACQUIRE(...) \
  PALB_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releasing the listed capabilities (caller must hold).
#define PALB_RELEASE(...) \
  PALB_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that acquires only when it returns `ret` (try_lock).
#define PALB_TRY_ACQUIRE(ret, ...) \
  PALB_TSA_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// Function the caller must NOT hold the listed capabilities around —
/// the machine-checked "this locks internally" contract.
#define PALB_EXCLUDES(...) PALB_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares lock-ordering edges (deadlock-freedom documentation the
/// analysis checks where it can).
#define PALB_ACQUIRED_BEFORE(...) \
  PALB_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define PALB_ACQUIRED_AFTER(...) \
  PALB_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function returning a reference to the named capability (lets callers
/// write MutexLock lock(h.publish_mutex()) and have the analysis track
/// it as `h`'s mutex).
#define PALB_RETURN_CAPABILITY(x) PALB_TSA_ATTRIBUTE(lock_returned(x))

/// Asserts (not acquires) that the capability is held — for fan-in
/// callbacks that inherit a lock the analysis cannot see.
#define PALB_ASSERT_CAPABILITY(x) \
  PALB_TSA_ATTRIBUTE(assert_capability(x))

/// Escape hatch: body not analyzed. Every use must say why — the
/// wrappers use it only where std primitives (condition_variable
/// re-lock protocols) are invisible to the analysis.
#define PALB_NO_THREAD_SAFETY_ANALYSIS \
  PALB_TSA_ATTRIBUTE(no_thread_safety_analysis)
