#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace palb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-global log threshold; messages below it are dropped. The
/// library defaults to kWarn so benches/tests stay quiet unless asked.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted (level-passing) line. Called with the logger's
/// sink mutex held, so invocations are serialized; keep sinks fast and
/// never log from inside one (self-deadlock).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the destination of all subsequent messages; an empty
/// function restores the default stderr sink. Thread-safe against
/// concurrent emission: the swap and every use of the sink happen under
/// one mutex — there is deliberately no "is a sink registered?" fast
/// path, because checking a flag and then locking to fetch the sink is
/// exactly the check-then-act race that lets an emitter use a sink
/// being deregistered. Returns the previous sink (empty if stderr).
LogSink set_log_sink(LogSink sink);

/// Emits one line — "[level] message" to stderr, or the registered
/// sink. Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define PALB_LOG(level) ::palb::detail::LogLine(level)
#define PALB_DEBUG PALB_LOG(::palb::LogLevel::kDebug)
#define PALB_INFO PALB_LOG(::palb::LogLevel::kInfo)
#define PALB_WARN PALB_LOG(::palb::LogLevel::kWarn)

}  // namespace palb
