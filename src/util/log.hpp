#pragma once

#include <sstream>
#include <string>

namespace palb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-global log threshold; messages below it are dropped. The
/// library defaults to kWarn so benches/tests stay quiet unless asked.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[level] message". Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define PALB_LOG(level) ::palb::detail::LogLine(level)
#define PALB_DEBUG PALB_LOG(::palb::LogLevel::kDebug)
#define PALB_INFO PALB_LOG(::palb::LogLevel::kInfo)
#define PALB_WARN PALB_LOG(::palb::LogLevel::kWarn)

}  // namespace palb
