#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"

namespace palb {

/// Fixed-size worker pool. The profit-aware optimizer fans hundreds of
/// independent LP solves (one per TUF-level profile) across cores; the
/// benches fan Monte-Carlo replications; serve::AsyncPlanner runs
/// whole controller solves on it so the online dispatcher's route path
/// never waits on a solver. A dedicated pool (instead of std::async)
/// keeps thread counts bounded and deterministic.
///
/// Shutdown contract (exercised under TSan by the test suite): once
/// shutdown() starts, in-flight and already-queued jobs all run to
/// completion, and any submit() racing or following it either enqueues
/// the job (it will run) or throws InvalidArgument — a task can never be
/// accepted and then silently dropped with a forever-pending future.
class ThreadPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  /// Throws InvalidArgument if the pool has begun shutting down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>>
      PALB_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      PALB_CHECK(!stopping_,
                 "submit() on a ThreadPool that is shutting down");
      jobs_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Drains the queue and joins the workers. Every job accepted before
  /// (or while) this call runs to completion. Idempotent and safe to
  /// call from several threads concurrently; the destructor calls it.
  void shutdown() PALB_EXCLUDES(mutex_, join_mutex_);

 private:
  void worker_loop() PALB_EXCLUDES(mutex_);

  /// Written only by the constructor (single-threaded) and joined under
  /// join_mutex_; size() reads the by-then-immutable length unlocked,
  /// which is why the vector itself carries no GUARDED_BY.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  /// Serializes concurrent shutdown() callers around the joins. Never
  /// nested with mutex_ (shutdown releases mutex_ before taking it).
  Mutex join_mutex_;
  std::queue<std::function<void()>> jobs_ PALB_GUARDED_BY(mutex_);
  bool stopping_ PALB_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [0, n) across the pool, blocking until all finish.
/// Fault contract (exercised under TSan by the test suite): a throwing
/// iteration aborts nothing — every worker still drains its share of
/// [0, n), all futures are collected, and only then is the exception of
/// the lowest-index failing iteration rethrown on the caller. No
/// std::terminate, no deadlock, and the same exception no matter how
/// the race to fail went.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload creating a transient pool sized to
/// bounded_workers(0, n) — never more threads than iterations.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Worker count actually worth spawning for `jobs` independent jobs:
/// min(requested, jobs), floored at 1. `requested == 0` resolves to
/// std::thread::hardware_concurrency() first. Every bulk fan-out
/// (SlotController, the benches, the replication APIs) sizes its pool
/// through this so a 1-slot run never pays for idle workers.
std::size_t bounded_workers(std::size_t requested, std::size_t jobs);

/// Deterministic-ordering bulk collector: runs fn(i) for i in [0, n)
/// across the pool and returns {fn(0), fn(1), ..., fn(n-1)} in *index*
/// order regardless of completion order — the parallel result is
/// byte-identical to the serial loop's. Exceptions follow parallel_for's
/// fault contract (all workers drain, then the lowest-index failure
/// rethrows). R must be default-constructible.
template <typename R>
std::vector<R> parallel_collect(ThreadPool& pool, std::size_t n,
                                const std::function<R(std::size_t)>& fn) {
  std::vector<R> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Transient-pool overload; `workers` is clamped via bounded_workers.
/// With a resolved worker count of 1 the loop runs inline on the calling
/// thread (no pool is constructed at all).
template <typename R>
std::vector<R> parallel_collect(std::size_t workers, std::size_t n,
                                const std::function<R(std::size_t)>& fn) {
  const std::size_t resolved = bounded_workers(workers, n);
  if (resolved <= 1) {
    std::vector<R> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  ThreadPool pool(resolved);
  return parallel_collect<R>(pool, n, fn);
}

}  // namespace palb
