#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace palb {

/// Fixed-size worker pool. The profit-aware optimizer fans hundreds of
/// independent LP solves (one per TUF-level profile) across cores; the
/// benches fan Monte-Carlo replications. A dedicated pool (instead of
/// std::async) keeps thread counts bounded and deterministic.
class ThreadPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      jobs_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool, blocking until all finish.
/// Exceptions from any iteration are rethrown (first one wins).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload creating a transient pool sized to the hardware.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace palb
