#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace palb {

/// Fixed-size worker pool. The profit-aware optimizer fans hundreds of
/// independent LP solves (one per TUF-level profile) across cores; the
/// benches fan Monte-Carlo replications. A dedicated pool (instead of
/// std::async) keeps thread counts bounded and deterministic.
///
/// Shutdown contract (exercised under TSan by the test suite): once
/// shutdown() starts, in-flight and already-queued jobs all run to
/// completion, and any submit() racing or following it either enqueues
/// the job (it will run) or throws InvalidArgument — a task can never be
/// accepted and then silently dropped with a forever-pending future.
class ThreadPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  /// Throws InvalidArgument if the pool has begun shutting down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      PALB_CHECK(!stopping_,
                 "submit() on a ThreadPool that is shutting down");
      jobs_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Drains the queue and joins the workers. Every job accepted before
  /// (or while) this call runs to completion. Idempotent and safe to
  /// call from several threads concurrently; the destructor calls it.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  /// Serializes concurrent shutdown() callers around the joins.
  std::mutex join_mutex_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool, blocking until all finish.
/// Exceptions from any iteration are rethrown (first one wins).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload creating a transient pool sized to the hardware.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace palb
