#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace palb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // joinable() flips to false under join_mutex_, so concurrent callers
  // split the joins between them instead of double-joining.
  std::lock_guard join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ with a drained queue
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk so tiny iterations don't drown in queue overhead.
  const std::size_t chunks = std::min(n, pool.size() * 4);
  std::atomic<std::size_t> next{0};
  // A throwing iteration never aborts the others: every worker drains
  // its share of [0, n) regardless, and the caller sees the exception of
  // the *lowest-index* failing iteration — deterministic no matter which
  // worker hit its failure first.
  std::exception_ptr first_error = nullptr;
  std::size_t first_error_index = 0;
  std::mutex error_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error || i < first_error_index) {
            first_error = std::current_exception();
            first_error_index = i;
          }
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Never spawn more workers than iterations (a 1-slot fan-out used to
  // build a hardware-sized pool that sat idle).
  const std::size_t workers = bounded_workers(0, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  parallel_for(pool, n, fn);
}

std::size_t bounded_workers(std::size_t requested, std::size_t jobs) {
  if (requested == 0) {
    requested =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(1, std::min(requested, jobs));
}

}  // namespace palb
