#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace palb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // joinable() flips to false under join_mutex_, so concurrent callers
  // split the joins between them instead of double-joining.
  MutexLock join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      // Manual wait loop instead of a predicate lambda: the predicate
      // reads guarded state, and here the analysis can see mutex_ held
      // around both the reads and the wait.
      while (!stopping_ && jobs_.empty()) cv_.wait(mutex_);
      if (jobs_.empty()) return;  // stopping_ with a drained queue
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

namespace {

/// The parallel_for fault slot: the exception of the lowest-index
/// failing iteration, whatever the race to fail looked like. A named
/// struct (instead of captured locals) so the lock discipline is
/// machine-checked: both members are GUARDED_BY the slot's mutex.
struct FirstErrorSlot {
  Mutex mutex;
  std::exception_ptr error PALB_GUARDED_BY(mutex);
  std::size_t index PALB_GUARDED_BY(mutex) = 0;

  void record(std::size_t i) PALB_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (!error || i < index) {
      error = std::current_exception();
      index = i;
    }
  }

  /// Single-threaded by the time it runs (all futures collected), but
  /// locking is cheap and keeps the annotation story uniform.
  void rethrow_if_set() PALB_EXCLUDES(mutex) {
    std::exception_ptr to_throw;
    {
      MutexLock lock(mutex);
      to_throw = error;
    }
    if (to_throw) std::rethrow_exception(to_throw);
  }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk so tiny iterations don't drown in queue overhead.
  const std::size_t chunks = std::min(n, pool.size() * 4);
  std::atomic<std::size_t> next{0};
  // A throwing iteration never aborts the others: every worker drains
  // its share of [0, n) regardless, and the caller sees the exception of
  // the *lowest-index* failing iteration — deterministic no matter which
  // worker hit its failure first.
  FirstErrorSlot first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          first_error.record(i);
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  first_error.rethrow_if_set();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Never spawn more workers than iterations (a 1-slot fan-out used to
  // build a hardware-sized pool that sat idle).
  const std::size_t workers = bounded_workers(0, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  parallel_for(pool, n, fn);
}

std::size_t bounded_workers(std::size_t requested, std::size_t jobs) {
  if (requested == 0) {
    requested =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(1, std::min(requested, jobs));
}

}  // namespace palb
