#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Exported deliberately: declaring a PALB_GUARDED_BY member is part of
// using Mutex, so this header is the one-stop include for annotated
// synchronization.
#include "util/annotations.hpp"  // IWYU pragma: export

namespace palb {

/// std::mutex with Thread Safety Analysis capability annotations: the
/// compiler (clang, -Wthread-safety) proves that every PALB_GUARDED_BY
/// member is only touched while this mutex is held, and that
/// PALB_REQUIRES / PALB_EXCLUDES contracts hold at every call site.
/// Same size and cost as std::mutex; the annotations vanish off clang.
///
/// Prefer MutexLock for scoped holds; raw lock()/unlock() exist for the
/// compile-fail suite and for adapters, and the analysis checks their
/// balance (a function that locks and forgets to unlock fails to
/// compile under the thread-safety preset).
class PALB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PALB_ACQUIRE() { mu_.lock(); }
  void unlock() PALB_RELEASE() { mu_.unlock(); }
  bool try_lock() PALB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (not the runtime) that this mutex is held —
  /// for callbacks invoked under a lock the analysis cannot follow.
  void assert_held() const PALB_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped hold of a Mutex; the analysis knows the capability is
/// held exactly for this object's lifetime (clang's SCOPED_CAPABILITY).
class PALB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PALB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PALB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() REQUIRES the mutex —
/// calling it unlocked is a compile error under the thread-safety
/// preset — and returns with it held again, so the canonical loop
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);   // ready_ GUARDED_BY(mutex_)
///
/// is fully analyzed: the predicate read happens in the caller, where
/// the analysis can see the lock (a predicate-lambda overload would be
/// analyzed as an unannotated function and defeat the check).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires before
  /// returning. Spurious wakeups possible — always wait in a loop.
  void wait(Mutex& mu) PALB_REQUIRES(mu) { wait_impl(mu); }

  /// wait() with a relative timeout. Returns false when the timeout
  /// elapsed without a notification, true otherwise; either way the
  /// mutex is held again on return. Spurious wakeups possible — re-check
  /// the predicate *and* the clock in a loop (the AsyncPlanner watchdog
  /// is the canonical caller).
  bool wait_for(Mutex& mu, double seconds) PALB_REQUIRES(mu) {
    return wait_for_impl(mu, seconds);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  /// The unlock/relock protocol lives inside std::condition_variable,
  /// which the analysis cannot see; the adopt/release dance keeps the
  /// caller's ownership intact, and the REQUIRES contract on wait()
  /// still machine-checks every call site.
  void wait_impl(Mutex& mu) PALB_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  bool wait_for_impl(Mutex& mu,
                     double seconds) PALB_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(relock, std::chrono::duration<double>(seconds));
    relock.release();
    return status == std::cv_status::no_timeout;
  }

  std::condition_variable cv_;
};

}  // namespace palb
