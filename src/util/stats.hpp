#pragma once

#include <cstddef>
#include <vector>

namespace palb {

/// Streaming mean/variance/min/max accumulator (Welford). O(1) memory,
/// numerically stable; used everywhere a simulator needs summary stats
/// without retaining samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains samples; offers exact quantiles. For latency distributions in
/// the discrete-event simulator where percentile SLAs matter.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Exact quantile with linear interpolation, q in [0,1].
  double quantile(double q) const;
  double min() const;
  double max() const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Relative difference |a-b| / max(|a|,|b|,floor); symmetric, safe at 0.
double relative_difference(double a, double b, double floor = 1e-12);

}  // namespace palb
