#pragma once

#include <string>
#include <vector>

namespace palb {

/// Plain-text table renderer used by the figure/table reproduction benches
/// to print paper-style rows with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing-locale surprises).
std::string format_double(double v, int precision = 3);

/// Renders an ASCII sparkline-style series block: one "t value" row per
/// point, plus a proportional bar. Used to print a figure's series in a
/// shape a reader can eyeball against the paper.
std::string render_series(const std::string& title,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys,
                          const std::string& x_label = "t",
                          const std::string& y_label = "value",
                          int bar_width = 40);

/// Renders several aligned series (same xs) side by side with bars for the
/// first one; used for Optimized-vs-Balanced overlays.
std::string render_multi_series(const std::string& title,
                                const std::vector<double>& xs,
                                const std::vector<std::string>& names,
                                const std::vector<std::vector<double>>& ys,
                                const std::string& x_label = "t");

}  // namespace palb
