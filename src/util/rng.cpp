#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace palb {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is the one invalid state of xoshiro; seed==chosen-magic
  // collisions cannot produce it through SplitMix64, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng Rng::substream(std::uint64_t stream_id) const {
  SplitMix64 sm(s_[0] ^ (0xA0761D6478BD642Full * (stream_id + 1)));
  Rng out(sm.next());
  return out;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PALB_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PALB_REQUIRE(n > 0, "uniform_index(n) needs n > 0");
  // Lemire's multiply-shift with rejection for unbiased bounded draws.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  // Box-Muller; reject u1 == 0 to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  PALB_REQUIRE(stddev >= 0.0, "normal stddev must be >= 0");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  PALB_REQUIRE(rate > 0.0, "exponential rate must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  PALB_REQUIRE(mean >= 0.0, "poisson mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction: fine for the arrival
  // volumes (hundreds+/slot) this library draws at large means.
  const double draw = normal(mean, std::sqrt(mean)) + 0.5;
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  PALB_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  return uniform() < p;
}

}  // namespace palb
