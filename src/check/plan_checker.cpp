#include "check/plan_checker.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "queueing/mm1.hpp"

namespace palb {

const char* to_string(PlanViolationCode code) {
  switch (code) {
    case PlanViolationCode::kShapeMismatch:
      return "shape-mismatch";
    case PlanViolationCode::kNonFiniteRate:
      return "non-finite-rate";
    case PlanViolationCode::kNegativeRate:
      return "negative-rate";
    case PlanViolationCode::kFlowConservation:
      return "flow-conservation";
    case PlanViolationCode::kShareRange:
      return "share-range";
    case PlanViolationCode::kShareBudget:
      return "share-budget";
    case PlanViolationCode::kServerBudget:
      return "server-budget";
    case PlanViolationCode::kOrphanLoad:
      return "orphan-load";
    case PlanViolationCode::kUnstableQueue:
      return "unstable-queue";
    case PlanViolationCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

bool PlanCheckReport::has(PlanViolationCode code) const {
  return count(code) > 0;
}

std::size_t PlanCheckReport::count(PlanViolationCode code) const {
  std::size_t n = 0;
  for (const auto& v : violations) {
    if (v.code == code) ++n;
  }
  return n;
}

std::string PlanCheckReport::summary(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& v : violations) {
    if (shown == max_lines) break;
    if (shown > 0) os << "\n";
    os << "[" << to_string(v.code) << "] " << v.message;
    ++shown;
  }
  if (violations.size() > shown) {
    os << "\n... and " << (violations.size() - shown) << " more";
    if (truncated) os << " (and the checker stopped collecting)";
  } else if (truncated) {
    os << "\n... and more (violation cap reached)";
  }
  return os.str();
}

namespace {

/// Collects violations up to the configured cap.
class Collector {
 public:
  Collector(PlanCheckReport& report, std::size_t cap)
      : report_(report), cap_(cap) {}

  bool full() const { return report_.violations.size() >= cap_; }

  void add(PlanViolation v) {
    if (full()) {
      report_.truncated = true;
      return;
    }
    report_.violations.push_back(std::move(v));
  }

 private:
  PlanCheckReport& report_;
  std::size_t cap_;
};

std::string fmt(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

PlanCheckReport PlanChecker::check(const Topology& topology,
                                   const SlotInput& input,
                                   const DispatchPlan& plan) const {
  PlanCheckReport report;
  Collector out(report, options_.max_violations);
  const double tol = options_.tol;
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();

  // --- Structural shape: everything else indexes through these. -------------
  bool shape_ok = plan.rate.size() == K && plan.dc.size() == L;
  for (std::size_t k = 0; shape_ok && k < K; ++k) {
    shape_ok = plan.rate[k].size() == S;
    for (std::size_t s = 0; shape_ok && s < S; ++s) {
      shape_ok = plan.rate[k][s].size() == L;
    }
  }
  for (std::size_t l = 0; shape_ok && l < L; ++l) {
    shape_ok = plan.dc[l].share.size() == K;
  }
  if (!shape_ok) {
    out.add({PlanViolationCode::kShapeMismatch, PlanViolation::kNoIndex,
             PlanViolation::kNoIndex, PlanViolation::kNoIndex, 0.0, 0.0,
             "plan dimensions do not match the topology (" +
                 std::to_string(K) + " classes x " + std::to_string(S) +
                 " front-ends x " + std::to_string(L) + " data centers)"});
    return report;  // indexing further would be out of bounds
  }

  // --- Rate sanity + Eq. 7 flow conservation per (k, s). --------------------
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      double dispatched = 0.0;
      bool row_finite = true;
      for (std::size_t l = 0; l < L; ++l) {
        const double r = plan.rate[k][s][l];
        if (!std::isfinite(r)) {
          row_finite = false;
          out.add({PlanViolationCode::kNonFiniteRate, k, s, l, r, 0.0,
                   "non-finite rate for class " + topology.classes[k].name +
                       " at " + topology.frontends[s].name + "->" +
                       topology.datacenters[l].name});
          continue;
        }
        if (r < -tol) {
          out.add({PlanViolationCode::kNegativeRate, k, s, l, r, 0.0,
                   "negative rate " + fmt(r) + " req/s for class " +
                       topology.classes[k].name + " at " +
                       topology.frontends[s].name + "->" +
                       topology.datacenters[l].name});
        }
        dispatched += r;
      }
      const double offered = input.arrival_rate[k][s];
      if (row_finite && dispatched > offered + tol) {
        out.add({PlanViolationCode::kFlowConservation, k, s,
                 PlanViolation::kNoIndex, dispatched, offered,
                 "Eq. 7: dispatched " + fmt(dispatched) +
                     " req/s exceeds offered " + fmt(offered) +
                     " req/s for class " + topology.classes[k].name +
                     " at " + topology.frontends[s].name});
      }
    }
  }

  // --- Per-data-center allocation: Eq. 8 budget, server bounds. -------------
  for (std::size_t l = 0; l < L; ++l) {
    const auto& alloc = plan.dc[l];
    const auto& center = topology.datacenters[l];
    if (alloc.servers_on < 0 || alloc.servers_on > center.num_servers) {
      out.add({PlanViolationCode::kServerBudget, PlanViolation::kNoIndex,
               PlanViolation::kNoIndex, l,
               static_cast<double>(alloc.servers_on),
               static_cast<double>(center.num_servers),
               "servers_on " + std::to_string(alloc.servers_on) +
                   " outside [0, " + std::to_string(center.num_servers) +
                   "] at " + center.name});
    }
    double share_sum = 0.0;
    bool shares_finite = true;
    for (std::size_t k = 0; k < K; ++k) {
      const double phi = alloc.share[k];
      if (!std::isfinite(phi)) {
        shares_finite = false;
        out.add({PlanViolationCode::kNonFiniteRate, k,
                 PlanViolation::kNoIndex, l, phi, 0.0,
                 "non-finite CPU share for class " +
                     topology.classes[k].name + " at " + center.name});
        continue;
      }
      if (phi < -tol || phi > 1.0 + tol) {
        out.add({PlanViolationCode::kShareRange, k, PlanViolation::kNoIndex,
                 l, phi, 1.0,
                 "share " + fmt(phi) + " outside [0, 1] for class " +
                     topology.classes[k].name + " at " + center.name});
      }
      share_sum += phi;
    }
    if (shares_finite && share_sum > 1.0 + tol) {
      out.add({PlanViolationCode::kShareBudget, PlanViolation::kNoIndex,
               PlanViolation::kNoIndex, l, share_sum, 1.0,
               "Eq. 8: share sum " + fmt(share_sum) + " exceeds 1 at " +
                   center.name});
    }
  }

  // --- Loaded streams: routing sanity, rho < 1, Eq. 6 delay bound. ----------
  // From here the Eq. 1 algebra runs on typed quantities: mu and lambda
  // are role-tagged req/s, delays and deadlines are Seconds.
  for (std::size_t k = 0; k < K; ++k) {
    const auto& cls = topology.classes[k];
    for (std::size_t l = 0; l < L; ++l) {
      double load = 0.0;
      for (std::size_t s = 0; s < S; ++s) {
        const double r = plan.rate[k][s][l];
        if (std::isfinite(r)) load += r;
      }
      if (load <= tol) continue;
      const auto& alloc = plan.dc[l];
      const auto& center = topology.datacenters[l];
      const double phi = alloc.share[k];
      if (alloc.servers_on <= 0 || !std::isfinite(phi) || phi <= tol) {
        out.add({PlanViolationCode::kOrphanLoad, k, PlanViolation::kNoIndex,
                 l, load, 0.0,
                 "load " + fmt(load) + " req/s of class " + cls.name +
                     " routed to " + center.name +
                     (alloc.servers_on <= 0 ? " with no server on"
                                            : " with zero CPU share")});
        continue;
      }
      const units::ServiceRate mu = center.service_rate_of(k);
      if (!std::isfinite(mu.value()) || mu.value() <= 0.0 ||
          center.server_capacity <= 0.0) {
        // A degenerate topology (mu == 0, zero capacity) makes any load
        // unstable by definition; report it instead of tripping the
        // queueing layer's domain checks.
        out.add({PlanViolationCode::kUnstableQueue, k,
                 PlanViolation::kNoIndex, l,
                 load / static_cast<double>(alloc.servers_on), 0.0,
                 "unstable queue for class " + cls.name + " at " +
                     center.name + ": service rate " + fmt(mu.value()) +
                     " req/s x capacity " + fmt(center.server_capacity) +
                     " cannot serve any load"});
        continue;
      }
      const units::ArrivalRate lambda{
          load / static_cast<double>(alloc.servers_on)};
      // mm1 asserts share in [0, 1]; an out-of-range phi was already
      // reported as kShareRange, so evaluate the queue at the clamped
      // (most lenient) share instead of tripping that assertion.
      const units::CpuShare phi_eff{std::min(phi, 1.0)};
      if (!mm1::is_stable(phi_eff, center.server_capacity, mu, lambda)) {
        const units::ServiceRate mu_eff =
            mm1::effective_rate(phi_eff, center.server_capacity, mu);
        out.add({PlanViolationCode::kUnstableQueue, k,
                 PlanViolation::kNoIndex, l, lambda.value(), mu_eff.value(),
                 "unstable queue (rho >= 1) for class " + cls.name + " at " +
                     center.name + ": per-server arrival " +
                     fmt(lambda.value()) + " req/s vs effective service " +
                     fmt(mu_eff.value()) + " req/s"});
        continue;
      }
      if (options_.check_deadline) {
        const units::Seconds delay = mm1::expected_delay(
            phi_eff, center.server_capacity, mu, lambda);
        const units::Seconds deadline = cls.tuf.deadline();
        if (delay > deadline * (1.0 + options_.deadline_slack)) {
          out.add({PlanViolationCode::kDeadlineExceeded, k,
                   PlanViolation::kNoIndex, l, delay.value(),
                   deadline.value(),
                   "Eq. 6: mean delay " + fmt(delay.value()) +
                       " s past the final deadline " + fmt(deadline.value()) +
                       " s for class " + cls.name + " at " + center.name});
        }
      }
    }
  }
  return report;
}

PlanRepairReport PlanChecker::repair(const Topology& topology,
                                     const SlotInput& input,
                                     DispatchPlan plan) const {
  PlanRepairReport report;
  const double tol = options_.tol;
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();

  // 1. Shape: without matching dimensions nothing below can index the
  // plan, so the only safe projection is the zero plan.
  bool shape_ok = plan.rate.size() == K && plan.dc.size() == L;
  for (std::size_t k = 0; shape_ok && k < K; ++k) {
    shape_ok = plan.rate[k].size() == S;
    for (std::size_t s = 0; shape_ok && s < S; ++s) {
      shape_ok = plan.rate[k][s].size() == L;
    }
  }
  for (std::size_t l = 0; shape_ok && l < L; ++l) {
    shape_ok = plan.dc[l].share.size() == K;
  }
  if (!shape_ok) {
    report.plan = DispatchPlan::zero(topology);
    report.reshaped = 1;
    return report;
  }

  // 2. Element sanity. Thresholds mirror check() exactly (strictly
  // outside the tolerance band), so an already-clean plan is untouched.
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t l = 0; l < L; ++l) {
        double& r = plan.rate[k][s][l];
        if (!std::isfinite(r) || r < -tol) {
          r = 0.0;
          ++report.rates_zeroed;
        }
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    auto& alloc = plan.dc[l];
    const auto& center = topology.datacenters[l];
    if (alloc.servers_on < 0 || alloc.servers_on > center.num_servers) {
      alloc.servers_on =
          std::min(std::max(alloc.servers_on, 0), center.num_servers);
      ++report.servers_clamped;
    }
    for (std::size_t k = 0; k < K; ++k) {
      double& phi = alloc.share[k];
      if (!std::isfinite(phi)) {
        phi = 0.0;
        ++report.shares_clamped;
      } else if (phi < -tol || phi > 1.0 + tol) {
        phi = std::min(std::max(phi, 0.0), 1.0);
        ++report.shares_clamped;
      }
    }
  }

  // 3. Eq. 7 flow conservation: scale over-dispatching rows down to the
  // offered rate. A non-finite offered rate imposes no constraint in
  // check() (the comparison is vacuous), so it is left alone here too.
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      const double offered = input.arrival_rate[k][s];
      if (!std::isfinite(offered)) continue;
      double dispatched = 0.0;
      for (std::size_t l = 0; l < L; ++l) dispatched += plan.rate[k][s][l];
      if (dispatched > offered + tol && dispatched > 0.0) {
        const double scale = std::max(offered, 0.0) / dispatched;
        for (std::size_t l = 0; l < L; ++l) plan.rate[k][s][l] *= scale;
        ++report.rows_scaled;
      }
    }
  }

  // 4. Eq. 8 share budget: renormalize so the sum lands exactly on 1.
  for (std::size_t l = 0; l < L; ++l) {
    auto& alloc = plan.dc[l];
    double share_sum = 0.0;
    for (std::size_t k = 0; k < K; ++k) share_sum += alloc.share[k];
    if (share_sum > 1.0 + tol) {
      for (std::size_t k = 0; k < K; ++k) alloc.share[k] /= share_sum;
      ++report.budgets_renormalized;
    }
  }

  // 5. Loaded (k, l) streams: shed orphan load; scale unstable or
  // past-deadline streams down to the largest Eq. 6-feasible load,
  // servers_on * max_rate(phi, C, mu, D) = servers_on * (phi*C*mu - 1/D).
  // Shedding only lowers per-row dispatch and leaves shares untouched,
  // so steps 3 and 4 stay satisfied.
  for (std::size_t k = 0; k < K; ++k) {
    const auto& cls = topology.classes[k];
    for (std::size_t l = 0; l < L; ++l) {
      double load = 0.0;
      for (std::size_t s = 0; s < S; ++s) load += plan.rate[k][s][l];
      if (load <= tol) continue;
      const auto& alloc = plan.dc[l];
      const auto& center = topology.datacenters[l];
      const double phi = alloc.share[k];
      const auto cut = [&] {
        for (std::size_t s = 0; s < S; ++s) plan.rate[k][s][l] = 0.0;
        ++report.flows_shed;
      };
      if (alloc.servers_on <= 0 || phi <= tol) {
        cut();  // orphan: no server on / no CPU share
        continue;
      }
      const double mu = center.service_rate[k];
      const double capacity = center.server_capacity;
      if (!std::isfinite(mu) || mu <= 0.0 || capacity <= 0.0) {
        cut();  // degenerate topology: any load is unstable
        continue;
      }
      const double phi_eff = std::min(phi, 1.0);
      const double servers = static_cast<double>(alloc.servers_on);
      const double lambda = load / servers;
      bool violated = !mm1::is_stable(phi_eff, capacity, mu, lambda);
      double allowed_per_server;
      if (options_.check_deadline) {
        const double deadline = cls.tuf.deadline().value();
        if (!violated) {
          violated = mm1::expected_delay(phi_eff, capacity, mu, lambda) >
                     deadline * (1.0 + options_.deadline_slack);
        }
        // Delay at max_rate is exactly the deadline, strictly inside the
        // deadline_slack band check() allows.
        allowed_per_server = mm1::max_rate(phi_eff, capacity, mu, deadline);
      } else {
        // Stability alone: stay a hair below the effective service rate.
        allowed_per_server =
            mm1::effective_rate(phi_eff, capacity, mu) * (1.0 - 1e-9);
      }
      if (!violated) continue;
      const double allowed = allowed_per_server * servers;
      if (allowed <= tol) {
        cut();
        continue;
      }
      const double scale = allowed / load;
      for (std::size_t s = 0; s < S; ++s) plan.rate[k][s][l] *= scale;
      ++report.flows_shed;
    }
  }

  report.plan = std::move(plan);
  return report;
}

void PlanChecker::enforce(const Topology& topology, const SlotInput& input,
                          const DispatchPlan& plan,
                          const std::string& context) const {
  const PlanCheckReport report = check(topology, input, plan);
  if (!report.ok()) {
    throw ConstraintViolation(context + ": plan violates " +
                              std::to_string(report.violations.size()) +
                              " constraint(s):\n" + report.summary());
  }
}

namespace check {
namespace {

/// -1 = not yet resolved; 0 = off; 1 = on.
std::atomic<int> g_plan_checks{-1};

int default_plan_checks() {
  if (const char* env = std::getenv("PALB_CHECK_PLANS")) {
    return (env[0] != '\0' && env[0] != '0') ? 1 : 0;
  }
#ifdef NDEBUG
  return 0;
#else
  return 1;
#endif
}

}  // namespace

bool plan_checks_enabled() {
  int mode = g_plan_checks.load(std::memory_order_relaxed);
  if (mode < 0) {
    // Lazy env resolution via CAS: the unconditional store this
    // replaces was a check-then-act — a thread parked between "observe
    // -1" and "store default" could clobber a concurrent
    // set_plan_checks_enabled() override. The CAS only ever fills the
    // unresolved slot; if someone else resolved (or overrode) first,
    // their value wins and we re-read it.
    int expected = -1;
    g_plan_checks.compare_exchange_strong(expected, default_plan_checks(),
                                          std::memory_order_relaxed);
    mode = g_plan_checks.load(std::memory_order_relaxed);
  }
  return mode != 0;
}

void set_plan_checks_enabled(bool enabled) {
  g_plan_checks.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void maybe_check_plan(const Topology& topology, const SlotInput& input,
                      const DispatchPlan& plan, const char* context) {
  if (!plan_checks_enabled()) return;
  PlanChecker().enforce(topology, input, plan, context);
}

}  // namespace check
}  // namespace palb
