#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "cloud/model.hpp"
#include "cloud/plan.hpp"

namespace palb {

/// What a plan violated. Each code maps to one constraint of the paper's
/// slot optimization (FORMULATION.md / docs/STATIC_ANALYSIS.md):
///
///   kFlowConservation   Eq. 7  — dispatched <= arriving per (k, s)
///   kShareBudget        Eq. 8  — sum_k phi_{k,l} <= 1 per data center
///   kDeadlineExceeded   Eq. 6  — mean sojourn within the final deadline
///                                for every loaded (k, l) stream
///   kUnstableQueue      Eq. 1 domain — rho < 1 for every loaded stream
///
/// plus the structural sanity the equations assume implicitly.
enum class PlanViolationCode {
  kShapeMismatch,    ///< plan dimensions disagree with the topology
  kNonFiniteRate,    ///< NaN or +-inf routing rate or share
  kNegativeRate,     ///< routing rate below zero
  kFlowConservation, ///< Eq. 7: dispatched exceeds offered at a front-end
  kShareRange,       ///< phi outside [0, 1]
  kShareBudget,      ///< Eq. 8: sum of shares exceeds the server's CPU
  kServerBudget,     ///< servers_on outside [0, M_l]
  kOrphanLoad,       ///< load routed to a dark DC or a zero-share VM
  kUnstableQueue,    ///< rho >= 1: the M/M/1 queue diverges
  kDeadlineExceeded, ///< Eq. 6: mean delay past the class final deadline
};

/// Stable kebab-case name ("flow-conservation", ...) used by the CLI and
/// CI greps; never reworded once released.
const char* to_string(PlanViolationCode code);

/// One violated constraint, with enough structure that callers can react
/// programmatically (the message is for humans).
struct PlanViolation {
  /// Sentinel for an index axis a violation does not involve.
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  PlanViolationCode code;
  std::size_t class_index = kNoIndex;     ///< k, when applicable
  std::size_t frontend_index = kNoIndex;  ///< s, when applicable
  std::size_t dc_index = kNoIndex;        ///< l, when applicable
  double observed = 0.0;  ///< the offending value (rate, share sum, delay)
  double bound = 0.0;     ///< the limit it had to respect
  std::string message;    ///< one human-readable sentence
};

/// Outcome of one PlanChecker pass.
struct PlanCheckReport {
  std::vector<PlanViolation> violations;
  /// True when the checker hit Options::max_violations and stopped
  /// collecting; the plan has more problems than `violations` lists.
  bool truncated = false;

  bool ok() const { return violations.empty(); }
  bool has(PlanViolationCode code) const;
  std::size_t count(PlanViolationCode code) const;
  /// Up to `max_lines` one-per-line "[code] message" entries (the rest
  /// summarized as a count); empty string when ok().
  std::string summary(std::size_t max_lines = 10) const;
};

/// Outcome of one PlanChecker::repair() pass: the repaired plan plus a
/// count of every adjustment category. repair() is deterministic and
/// idempotent, and — provided the SlotInput itself is valid (finite,
/// non-negative) — its output always passes check() under the same
/// Options (tests/test_fuzz.cpp holds both properties on randomized
/// corrupted plans).
struct PlanRepairReport {
  DispatchPlan plan;
  /// Plan dimensions disagreed with the topology; rebuilt as the zero
  /// plan (nothing salvageable without a shape to index through).
  std::size_t reshaped = 0;
  std::size_t rates_zeroed = 0;      ///< NaN/inf/negative routing rates
  std::size_t shares_clamped = 0;    ///< non-finite or out-of-[0,1] shares
  std::size_t servers_clamped = 0;   ///< servers_on outside [0, M_l]
  std::size_t rows_scaled = 0;       ///< Eq. 7 over-dispatch scaled down
  std::size_t budgets_renormalized = 0;  ///< Eq. 8 share sums renormalized
  std::size_t flows_shed = 0;  ///< orphan/unstable/past-deadline streams cut

  /// Total adjustments across all categories; 0 means the plan came back
  /// byte-identical (it already passed check()).
  std::size_t adjustments() const {
    return reshaped + rates_zeroed + shares_clamped + servers_clamped +
           rows_scaled + budgets_renormalized + flows_shed;
  }
  bool touched() const { return adjustments() > 0; }
};

/// Audits a DispatchPlan against the paper's constraint system for one
/// slot: Eq. 6 (delay bound), Eq. 7 (flow conservation), Eq. 8 (CPU-share
/// budget), M/M/1 stability, and rate/share sanity. Policies are required
/// to emit plans this checker passes; the controller, the simulators and
/// the `palb check-plan` CLI all run it behind the plan-check flag (on by
/// default in debug builds, opt-in via PALB_CHECK_PLANS=1 in release).
class PlanChecker {
 public:
  struct Options {
    /// Absolute slack on rate/share comparisons, matching the solvers'
    /// feasibility tolerance.
    double tol = 1e-6;
    /// Relative slack on the Eq. 6 deadline comparison (solver plans sit
    /// exactly on band edges; FP round-trips must not flag them).
    double deadline_slack = 1e-6;
    /// Disable to audit baselines that are allowed to plan past-deadline
    /// (zero-revenue) streams; all hard constraints still apply.
    bool check_deadline = true;
    /// Stop collecting after this many violations (a corrupted plan can
    /// otherwise produce K*S*L lines).
    std::size_t max_violations = 64;
  };

  PlanChecker() = default;
  explicit PlanChecker(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Full audit; never throws on a bad plan (the report carries it).
  PlanCheckReport check(const Topology& topology, const SlotInput& input,
                        const DispatchPlan& plan) const;

  /// check() + throw ConstraintViolation naming `context` (a policy or
  /// call-site label) when the report is not ok().
  void enforce(const Topology& topology, const SlotInput& input,
               const DispatchPlan& plan, const std::string& context) const;

  /// Minimal deterministic projection of `plan` back into the feasible
  /// region (docs/RESILIENCE.md "repair math"):
  ///
  ///   1. wrong shape         -> zero plan (reshaped);
  ///   2. NaN/inf/negative rates zeroed; shares clamped into [0, 1];
  ///      servers_on clamped into [0, M_l];
  ///   3. Eq. 7 over-dispatch  -> the (k, s) row scaled by offered/sum;
  ///   4. Eq. 8 over-budget    -> the DC's shares scaled by 1/sum;
  ///   5. loaded streams that are orphaned, unstable or past-deadline
  ///      -> scaled down to servers_on * (phi*C*mu - 1/D) (the largest
  ///      Eq. 6-feasible load, mm1::max_rate), or cut entirely.
  ///
  /// Every trigger mirrors a check() violation under the same Options,
  /// so a plan that already passes check() comes back byte-identical,
  /// and repair(repair(p)) == repair(p). Never throws.
  PlanRepairReport repair(const Topology& topology, const SlotInput& input,
                          DispatchPlan plan) const;

 private:
  Options options_;
};

namespace check {

/// Whether the guarded call sites (controller, policies, simulators) run
/// the PlanChecker. Defaults to on in debug (!NDEBUG) builds and off in
/// release; the PALB_CHECK_PLANS environment variable ("1"/"0") overrides
/// the default at first query.
bool plan_checks_enabled();

/// Programmatic override (tests; release callers opting in).
void set_plan_checks_enabled(bool enabled);

/// Guarded audit used at every plan hand-off point: no-op when checks
/// are disabled, otherwise enforces with a default-options PlanChecker.
void maybe_check_plan(const Topology& topology, const SlotInput& input,
                      const DispatchPlan& plan, const char* context);

}  // namespace check
}  // namespace palb
