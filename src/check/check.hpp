#pragma once

// The exception hierarchy and the PALB_REQUIRE/PALB_CHECK macro family
// live in util/error.hpp: every module throws these, so they belong to
// the lowest layer of the module DAG (tools/palb_analyze/layers.txt),
// not to the plan-audit layer that happens to use them most visibly.
// This forwarder keeps the check/-spelled include sites compiling
// unchanged.
#include "util/error.hpp"  // IWYU pragma: export
