#include "solver/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace palb {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

namespace {

/// How an original model variable maps onto the >=0 internal variables.
struct VarMap {
  enum class Kind { kShifted, kReflected, kFree } kind = Kind::kShifted;
  int primary = -1;    // internal column
  int secondary = -1;  // second column for free variables (x = y+ - y-)
  double shift = 0.0;  // lb for kShifted, ub for kReflected
};

struct Tableau {
  int rows = 0;  // constraint rows (cost row stored separately)
  int cols = 0;  // columns excluding rhs
  /// Columns at or beyond this index may never *enter* the basis
  /// (phase 2 sets it to exclude the artificials — a one-time
  /// reduced-cost overwrite is not enough, since later pivots can drive
  /// an artificial's reduced cost negative again).
  int enter_limit = 0;
  std::vector<std::vector<double>> a;  // rows x cols
  std::vector<double> b;               // rhs, kept >= 0
  std::vector<double> cost;            // reduced-cost row
  double cost_rhs = 0.0;               // negative of current objective
  std::vector<int> basis;              // basic column per row

  void pivot(int row, int col) {
    const double p = a[row][col];
    const double inv = 1.0 / p;
    for (double& v : a[row]) v *= inv;
    b[row] *= inv;
    a[row][col] = 1.0;  // kill rounding residue on the pivot itself
    for (int r = 0; r < rows; ++r) {
      if (r == row) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (int c = 0; c < cols; ++c) a[r][c] -= f * a[row][c];
      a[r][col] = 0.0;
      b[r] -= f * b[row];
    }
    const double f = cost[col];
    if (f != 0.0) {
      for (int c = 0; c < cols; ++c) cost[c] -= f * a[row][c];
      cost[col] = 0.0;
      cost_rhs -= f * b[row];
    }
    basis[row] = col;
  }
};

/// Solves the dense square system M y = rhs by Gaussian elimination with
/// partial pivoting. Returns false when M is (numerically) singular —
/// degenerate optima can have non-unique duals; callers then skip them.
bool solve_linear_system(std::vector<std::vector<double>> m,
                         std::vector<double> rhs, std::vector<double>& y) {
  const std::size_t n = m.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    }
    if (std::abs(m[pivot][col]) < 1e-11) return false;
    std::swap(m[col], m[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    const double inv = 1.0 / m[col][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m[r][col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m[r][c] -= f * m[col][c];
      rhs[r] -= f * rhs[col];
    }
  }
  y.assign(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = rhs[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= m[r][c] * y[c];
    y[r] = acc / m[r][r];
  }
  return true;
}

/// One simplex phase: iterate until no negative reduced cost. Returns
/// kOptimal, kUnbounded or kIterationLimit; iteration counter accumulates.
LpStatus run_phase(Tableau& t, const SimplexSolver::Options& opt,
                   int& iterations) {
  int stalled = 0;
  double last_obj = t.cost_rhs;
  while (iterations < opt.max_iterations) {
    // Entering column: Dantzig rule normally, Bland once stalled.
    int enter = -1;
    if (stalled < opt.stall_threshold) {
      double best = -opt.tolerance;
      for (int c = 0; c < t.enter_limit; ++c) {
        if (t.cost[c] < best) {
          best = t.cost[c];
          enter = c;
        }
      }
    } else {
      for (int c = 0; c < t.enter_limit; ++c) {
        if (t.cost[c] < -opt.tolerance) {
          enter = c;
          break;
        }
      }
    }
    if (enter < 0) return LpStatus::kOptimal;

    // Ratio test; ties broken by smallest basis index (anti-cycling aid).
    int leave = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < t.rows; ++r) {
      const double col_val = t.a[r][enter];
      if (col_val <= opt.tolerance) continue;
      const double ratio = t.b[r] / col_val;
      if (leave < 0 || ratio < best_ratio - opt.tolerance ||
          (ratio < best_ratio + opt.tolerance &&
           t.basis[r] < t.basis[leave])) {
        leave = r;
        best_ratio = ratio;
      }
    }
    if (leave < 0) return LpStatus::kUnbounded;

    t.pivot(leave, enter);
    ++iterations;
    if (t.cost_rhs < last_obj - opt.tolerance) {
      stalled = 0;
      last_obj = t.cost_rhs;
    } else {
      ++stalled;
    }
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

LpSolution SimplexSolver::solve(const LinearProgram& lp) const {
  const double tol = options_.tolerance;
  const int n_orig = lp.num_variables();

  // --- 1. Map original variables onto internal >= 0 columns. -------------
  std::vector<VarMap> vmap(static_cast<std::size_t>(n_orig));
  int n_internal = 0;
  // Upper-bound rows for internal columns: (column, bound).
  std::vector<std::pair<int, double>> ub_rows;
  for (int j = 0; j < n_orig; ++j) {
    const double lb = lp.lower_bound(j);
    const double ub = lp.upper_bound(j);
    VarMap& m = vmap[static_cast<std::size_t>(j)];
    if (std::isfinite(lb)) {
      m.kind = VarMap::Kind::kShifted;  // x = lb + y
      m.shift = lb;
      m.primary = n_internal++;
      if (std::isfinite(ub)) ub_rows.emplace_back(m.primary, ub - lb);
    } else if (std::isfinite(ub)) {
      m.kind = VarMap::Kind::kReflected;  // x = ub - y
      m.shift = ub;
      m.primary = n_internal++;
    } else {
      m.kind = VarMap::Kind::kFree;  // x = y+ - y-
      m.primary = n_internal++;
      m.secondary = n_internal++;
    }
  }

  // Internal objective: minimize. Flip sign for maximization.
  const double sense_mul =
      lp.objective_sense() == Sense::kMaximize ? -1.0 : 1.0;
  std::vector<double> int_cost(static_cast<std::size_t>(n_internal), 0.0);
  double obj_const = 0.0;  // objective contribution of the shifts
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& m = vmap[static_cast<std::size_t>(j)];
    const double c = sense_mul * lp.cost(j);
    switch (m.kind) {
      case VarMap::Kind::kShifted:
        int_cost[m.primary] += c;
        obj_const += c * m.shift;
        break;
      case VarMap::Kind::kReflected:
        int_cost[m.primary] -= c;
        obj_const += c * m.shift;
        break;
      case VarMap::Kind::kFree:
        int_cost[m.primary] += c;
        int_cost[m.secondary] -= c;
        break;
    }
  }

  // --- 2. Build dense rows (model rows + upper-bound rows). --------------
  const int m_model = lp.num_constraints();
  const int m_total = m_model + static_cast<int>(ub_rows.size());
  std::vector<std::vector<double>> dense(
      static_cast<std::size_t>(m_total),
      std::vector<double>(static_cast<std::size_t>(n_internal), 0.0));
  std::vector<double> rhs(static_cast<std::size_t>(m_total), 0.0);
  std::vector<Relation> rel(static_cast<std::size_t>(m_total));

  for (int r = 0; r < m_model; ++r) {
    rel[r] = lp.relation(r);
    double b = lp.rhs(r);
    for (const auto& [var, coef] : lp.row_terms(r)) {
      const VarMap& m = vmap[static_cast<std::size_t>(var)];
      switch (m.kind) {
        case VarMap::Kind::kShifted:
          dense[r][m.primary] += coef;
          b -= coef * m.shift;
          break;
        case VarMap::Kind::kReflected:
          dense[r][m.primary] -= coef;
          b -= coef * m.shift;
          break;
        case VarMap::Kind::kFree:
          dense[r][m.primary] += coef;
          dense[r][m.secondary] -= coef;
          break;
      }
    }
    rhs[r] = b;
  }
  for (std::size_t u = 0; u < ub_rows.size(); ++u) {
    const int r = m_model + static_cast<int>(u);
    dense[r][ub_rows[u].first] = 1.0;
    rhs[r] = ub_rows[u].second;
    rel[r] = Relation::kLe;
  }

  // Normalize to b >= 0, remembering flips and row provenance so duals
  // can be mapped back to the user's rows at the end.
  std::vector<double> row_sign(static_cast<std::size_t>(m_total), 1.0);
  std::vector<int> row_source(static_cast<std::size_t>(m_total), -1);
  for (int r = 0; r < m_model; ++r) row_source[r] = r;
  for (int r = 0; r < m_total; ++r) {
    if (rhs[r] < 0.0) {
      for (double& v : dense[r]) v = -v;
      rhs[r] = -rhs[r];
      row_sign[r] = -1.0;
      if (rel[r] == Relation::kLe) {
        rel[r] = Relation::kGe;
      } else if (rel[r] == Relation::kGe) {
        rel[r] = Relation::kLe;
      }
    }
  }

  // --- 3. Assemble the tableau with slack / surplus / artificials. -------
  int n_slack = 0, n_art = 0;
  for (int r = 0; r < m_total; ++r) {
    if (rel[r] != Relation::kEq) ++n_slack;
    if (rel[r] != Relation::kLe) ++n_art;
  }
  Tableau t;
  t.rows = m_total;
  t.cols = n_internal + n_slack + n_art;
  t.enter_limit = t.cols;  // phase 1: everything may move
  t.a.assign(static_cast<std::size_t>(t.rows),
             std::vector<double>(static_cast<std::size_t>(t.cols), 0.0));
  t.b = rhs;
  t.basis.assign(static_cast<std::size_t>(t.rows), -1);
  int next_slack = n_internal;
  const int art_base = n_internal + n_slack;
  int next_art = art_base;
  for (int r = 0; r < m_total; ++r) {
    for (int c = 0; c < n_internal; ++c) t.a[r][c] = dense[r][c];
    switch (rel[r]) {
      case Relation::kLe:
        t.a[r][next_slack] = 1.0;
        t.basis[r] = next_slack++;
        break;
      case Relation::kGe:
        t.a[r][next_slack++] = -1.0;
        t.a[r][next_art] = 1.0;
        t.basis[r] = next_art++;
        break;
      case Relation::kEq:
        t.a[r][next_art] = 1.0;
        t.basis[r] = next_art++;
        break;
    }
  }

  LpSolution out;
  out.x.assign(static_cast<std::size_t>(n_orig), 0.0);

  // Pristine copy of the constraint matrix: pivoting rewrites t.a in
  // place, but the dual system B^T y = c_B needs the *original* basic
  // columns at the end. Rows erased as redundant are erased here too so
  // indices stay aligned.
  std::vector<std::vector<double>> original_a = t.a;

  // --- 4. Phase 1: drive artificials to zero. -----------------------------
  if (n_art > 0) {
    t.cost.assign(static_cast<std::size_t>(t.cols), 0.0);
    for (int c = art_base; c < t.cols; ++c) t.cost[c] = 1.0;
    t.cost_rhs = 0.0;
    // Price out the basic artificials.
    for (int r = 0; r < t.rows; ++r) {
      if (t.basis[r] >= art_base) {
        for (int c = 0; c < t.cols; ++c) t.cost[c] -= t.a[r][c];
        t.cost_rhs -= t.b[r];
      }
    }
    const LpStatus st = run_phase(t, options_, out.iterations);
    if (st == LpStatus::kIterationLimit) {
      out.status = st;
      return out;
    }
    // Residual infeasibility: -cost_rhs is the phase-1 objective value.
    if (-t.cost_rhs > 1e-7) {
      out.status = LpStatus::kInfeasible;
      return out;
    }
    // Pivot remaining (degenerate) artificials out of the basis; rows with
    // no real nonzero left are redundant (0 = 0) and are dropped so a
    // basic artificial can never drift away from zero later.
    for (int r = 0; r < t.rows;) {
      if (t.basis[r] < art_base) {
        ++r;
        continue;
      }
      int col = -1;
      for (int c = 0; c < art_base; ++c) {
        if (std::abs(t.a[r][c]) > 1e-7) {
          col = c;
          break;
        }
      }
      if (col >= 0) {
        t.pivot(r, col);
        ++r;
      } else {
        t.a.erase(t.a.begin() + r);
        t.b.erase(t.b.begin() + r);
        t.basis.erase(t.basis.begin() + r);
        row_sign.erase(row_sign.begin() + r);
        row_source.erase(row_source.begin() + r);
        original_a.erase(original_a.begin() + r);
        --t.rows;
      }
    }
  }

  // --- 5. Phase 2 with the real objective. --------------------------------
  t.cost.assign(static_cast<std::size_t>(t.cols), 0.0);
  for (int c = 0; c < n_internal; ++c) t.cost[c] = int_cost[c];
  t.cost_rhs = 0.0;
  for (int r = 0; r < t.rows; ++r) {
    const int bc = t.basis[r];
    const double cb = t.cost[bc];
    if (cb != 0.0) {
      for (int c = 0; c < t.cols; ++c) t.cost[c] -= cb * t.a[r][c];
      t.cost[bc] = 0.0;
      t.cost_rhs -= cb * t.b[r];
    }
  }
  // Structurally forbid the (now nonbasic) artificial columns from ever
  // re-entering — their reduced costs keep evolving under pivots, so a
  // cost overwrite alone would not be safe.
  t.enter_limit = art_base;
  const LpStatus st = run_phase(t, options_, out.iterations);
  if (st != LpStatus::kOptimal) {
    out.status = st;
    return out;
  }

  // --- 6. Extract the solution back into the original space. --------------
  std::vector<double> y(static_cast<std::size_t>(n_internal), 0.0);
  for (int r = 0; r < t.rows; ++r) {
    if (t.basis[r] < n_internal) y[t.basis[r]] = t.b[r];
  }
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& m = vmap[static_cast<std::size_t>(j)];
    switch (m.kind) {
      case VarMap::Kind::kShifted:
        out.x[j] = m.shift + y[m.primary];
        break;
      case VarMap::Kind::kReflected:
        out.x[j] = m.shift - y[m.primary];
        break;
      case VarMap::Kind::kFree:
        out.x[j] = y[m.primary] - y[m.secondary];
        break;
    }
    // Snap tiny numerical residue onto the bounds.
    out.x[j] = std::clamp(out.x[j], lp.lower_bound(j), lp.upper_bound(j));
    if (std::abs(out.x[j]) < tol) out.x[j] = 0.0;
  }
  out.status = LpStatus::kOptimal;
  // Internal objective is minimize(sense_mul * c'x) with shift constant.
  const double internal_obj = -t.cost_rhs + obj_const;
  out.objective = sense_mul * internal_obj + lp.objective_offset();

  // --- 7. Duals: solve B^T y = c_B from the original basic columns. -----
  out.duals.assign(static_cast<std::size_t>(m_model), 0.0);
  {
    const auto m = static_cast<std::size_t>(t.rows);
    std::vector<std::vector<double>> bt(m, std::vector<double>(m, 0.0));
    std::vector<double> cb(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const int col = t.basis[static_cast<int>(i)];
      for (std::size_t r = 0; r < m; ++r) bt[i][r] = original_a[r][col];
      cb[i] = col < n_internal ? int_cost[col] : 0.0;
    }
    std::vector<double> y;
    if (solve_linear_system(std::move(bt), std::move(cb), y)) {
      for (std::size_t r = 0; r < m; ++r) {
        const int source = row_source[r];
        if (source < 0) continue;  // internal bound row
        // Undo the b >= 0 flip and the minimize/maximize flip: the user
        // wants d(user objective)/d(user rhs).
        out.duals[static_cast<std::size_t>(source)] =
            sense_mul * row_sign[r] * y[r];
      }
    }
    // Singular basis (heavily degenerate optimum): duals stay zero —
    // they are not unique there anyway.
  }
  return out;
}

}  // namespace palb
