#include "solver/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace palb {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
    case LpStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

/// Feasibility tolerance for basic values against their bounds; matches
/// LinearProgram::is_feasible so an accepted start is a feasible point.
constexpr double kFeasTol = 1e-7;

/// How an original model variable maps onto the internal columns. Every
/// internal column has lower bound 0 after the transform; a kShifted
/// variable with finite ub keeps it as an *implicit* column bound
/// ub - lb — upper bounds never materialize as rows.
struct VarMap {
  enum class Kind { kShifted, kReflected, kFree } kind = Kind::kShifted;
  int primary = -1;    // internal column
  int secondary = -1;  // second column for free variables (x = y+ - y-)
  double shift = 0.0;  // lb for kShifted, ub for kReflected
};

enum class ColStatus : std::uint8_t { kAtLower, kAtUpper, kBasic };

/// Bounded-variable tableau. The matrix lives in one contiguous
/// row-major arena (`stride` doubles as the physical row width, sized
/// up-front to fit the phase-1 artificials); `cols` is the *active*
/// column count — phase 2 retires the artificial block by shrinking it.
/// Basic values are tracked per row in `xb` (updated incrementally on
/// each step) rather than as a transformed rhs column; every nonbasic
/// column sits at the finite bound named by its status.
struct Tableau {
  int rows = 0;
  int cols = 0;
  int stride = 0;
  std::vector<double> arena;      // rows x stride
  std::vector<double> xb;         // value of each row's basic variable
  std::vector<int> basis;         // basic column per row
  std::vector<double> lo, up;     // per-column bounds (internal space)
  std::vector<ColStatus> status;  // per-column status
  std::vector<int> row_id;        // surviving row -> original model row
  bool sparse = false;            // support-walking pivot kernel enabled
  std::uint64_t skips = 0;        // see LpSolution::sparse_price_skips
  std::vector<int> support;       // pivot-row support scratch (sparse)

  double* row(int r) {
    return arena.data() +
           static_cast<std::size_t>(r) * static_cast<std::size_t>(stride);
  }
  const double* row(int r) const {
    return arena.data() +
           static_cast<std::size_t>(r) * static_cast<std::size_t>(stride);
  }

  double nonbasic_value(int c) const {
    return status[c] == ColStatus::kAtUpper ? up[c] : lo[c];
  }

  /// Removes a (redundant) row, compacting the arena in place.
  void drop_row(int r) {
    const auto w = static_cast<std::size_t>(stride);
    if (r + 1 < rows) {
      std::memmove(arena.data() + static_cast<std::size_t>(r) * w,
                   arena.data() + static_cast<std::size_t>(r + 1) * w,
                   static_cast<std::size_t>(rows - 1 - r) * w *
                       sizeof(double));
    }
    xb.erase(xb.begin() + r);
    basis.erase(basis.begin() + r);
    row_id.erase(row_id.begin() + r);
    --rows;
  }
};

/// Gauss-Jordan pivot on (prow, pcol): normalizes the pivot row and
/// eliminates the column elsewhere. `d` (reduced costs) and `rhs` are
/// transformed alongside when supplied; basis/status/xb bookkeeping is
/// the caller's job.
///
/// With `t.sparse` set, the kernel gathers the pivot row's nonzero
/// support once and normalizes / eliminates / reprices over just those
/// columns. Skipping an exact zero is arithmetically a no-op
/// (x - f*0 == x for every finite x), so the two kernels agree
/// bit-for-bit on every value a pivot decision ever reads — only the
/// sign of stored zeros can differ, and no comparison in this solver
/// distinguishes +0.0 from -0.0. Because the kernels are equivalent,
/// the sparse path hands rows whose support has filled in (more than
/// half the columns) back to the dense loops — indexed access costs
/// more than it saves there — without affecting any result.
void pivot_on(Tableau& t, int prow, int pcol, std::vector<double>* d,
              std::vector<double>* rhs) {
  double* pr = t.row(prow);
  const double inv = 1.0 / pr[pcol];
  bool walk_support = false;
  if (t.sparse) {
    auto& sup = t.support;
    sup.clear();
    for (int c = 0; c < t.cols; ++c) {
      if (pr[c] != 0.0) sup.push_back(c);
    }
    walk_support = 2 * sup.size() < static_cast<std::size_t>(t.cols);
    if (walk_support) {
      t.skips += static_cast<std::uint64_t>(t.cols) -
                 static_cast<std::uint64_t>(sup.size());
    }
  }
  if (!walk_support) {
    for (int c = 0; c < t.cols; ++c) pr[c] *= inv;
    pr[pcol] = 1.0;  // kill rounding residue on the pivot itself
    if (rhs) (*rhs)[prow] *= inv;
    for (int r = 0; r < t.rows; ++r) {
      if (r == prow) continue;
      double* rr = t.row(r);
      const double f = rr[pcol];
      if (f == 0.0) continue;
      for (int c = 0; c < t.cols; ++c) rr[c] -= f * pr[c];
      rr[pcol] = 0.0;
      if (rhs) (*rhs)[r] -= f * (*rhs)[prow];
    }
    if (d) {
      const double f = (*d)[pcol];
      if (f != 0.0) {
        for (int c = 0; c < t.cols; ++c) (*d)[c] -= f * pr[c];
        (*d)[pcol] = 0.0;
      }
    }
    return;
  }
  const auto& sup = t.support;
  for (const int c : sup) pr[c] *= inv;
  pr[pcol] = 1.0;  // pcol is in the support: |pivot| > tolerance
  if (rhs) (*rhs)[prow] *= inv;
  for (int r = 0; r < t.rows; ++r) {
    if (r == prow) continue;
    double* rr = t.row(r);
    const double f = rr[pcol];
    if (f == 0.0) continue;
    for (const int c : sup) rr[c] -= f * pr[c];
    rr[pcol] = 0.0;
    if (rhs) (*rhs)[r] -= f * (*rhs)[prow];
  }
  if (d) {
    const double f = (*d)[pcol];
    if (f != 0.0) {
      for (const int c : sup) (*d)[c] -= f * pr[c];
      (*d)[pcol] = 0.0;
    }
  }
}

/// One simplex phase over the bounded tableau: iterate until no nonbasic
/// column prices attractively. Entering columns come from a candidate
/// list refreshed by full Dantzig scans (score ties and refill order are
/// index-ascending, so the pivot sequence is deterministic); after
/// `stall_threshold` non-improving steps the phase falls back to Bland's
/// rule (lowest eligible index) which cannot cycle. A step is either a
/// basis change or a bound flip — the entering column runs to its
/// opposite bound before any basic variable hits one of its own.
LpStatus run_bounded(Tableau& t, std::vector<double>& d,
                     const SimplexSolver::Options& opt, int& iterations,
                     std::vector<std::pair<int, int>>* log) {
  const double tol = opt.tolerance;
  // Attractiveness of a nonbasic column: positive magnitude of its
  // reduced cost when moving off its bound improves the objective.
  auto price = [&](int c) -> double {
    if (t.status[c] == ColStatus::kBasic) return 0.0;
    if (t.lo[c] == t.up[c]) return 0.0;  // fixed (incl. retired slacks)
    const double dc = d[c];
    if (t.status[c] == ColStatus::kAtLower) return dc < -tol ? -dc : 0.0;
    return dc > tol ? dc : 0.0;
  };

  std::vector<int> cands;
  std::vector<std::pair<double, int>> scored;  // refill scratch
  std::vector<std::pair<double, int>> pack;    // ratio-test candidates
  cands.reserve(static_cast<std::size_t>(opt.candidate_list_size));
  pack.reserve(static_cast<std::size_t>(t.rows));

  int stalled = 0;
  double obj = 0.0;       // objective delta accumulated this phase
  double last_obj = 0.0;  // (absolute value is irrelevant for stalling)
  const int check_every = std::max(1, opt.cancel_check_every);
  int until_cancel_check = check_every;
  while (iterations < opt.max_iterations) {
    // Cooperative cancellation at pivot-batch granularity: one relaxed
    // load per `cancel_check_every` pivots, no effect on the arithmetic
    // path when the token never fires.
    if (opt.cancel != nullptr && --until_cancel_check <= 0) {
      if (opt.cancel->load(std::memory_order_relaxed)) {
        return LpStatus::kCancelled;
      }
      until_cancel_check = check_every;
    }
    // --- Entering column. ------------------------------------------------
    int enter = -1;
    if (stalled >= opt.stall_threshold) {
      // Bland: lowest eligible index, immune to cycling.
      for (int c = 0; c < t.cols; ++c) {
        if (price(c) > 0.0) {
          enter = c;
          break;
        }
      }
    } else {
      double best = 0.0;
      // `cands` is kept index-ascending, so strict > breaks score ties
      // toward the lowest column index.
      for (const int c : cands) {
        const double s = price(c);
        if (s > best) {
          best = s;
          enter = c;
        }
      }
      if (enter < 0) {
        // Refill: one full Dantzig scan, keep the top-K columns by
        // (score desc, index asc).
        scored.clear();
        for (int c = 0; c < t.cols; ++c) {
          const double s = price(c);
          if (s > 0.0) scored.emplace_back(-s, c);
        }
        const auto k = std::min(
            scored.size(),
            static_cast<std::size_t>(std::max(1, opt.candidate_list_size)));
        std::partial_sort(scored.begin(),
                          scored.begin() + static_cast<std::ptrdiff_t>(k),
                          scored.end());
        cands.clear();
        for (std::size_t i = 0; i < k; ++i) cands.push_back(scored[i].second);
        std::sort(cands.begin(), cands.end());
        best = 0.0;
        for (const int c : cands) {
          const double s = price(c);
          if (s > best) {
            best = s;
            enter = c;
          }
        }
      }
    }
    if (enter < 0) return LpStatus::kOptimal;

    // --- Ratio test. -----------------------------------------------------
    // The entering column moves off its bound by `step` in direction
    // `dir`; each basic value changes by -T[r][enter] * dir * step. The
    // binding limit is the first basic variable to hit a bound, unless
    // the entering column reaches its own opposite bound first (a bound
    // flip — no basis change at all). Near-ties go to the smallest basic
    // column index, an anti-cycling aid carried over from the dense
    // solver.
    const double dir = t.status[enter] == ColStatus::kAtLower ? 1.0 : -1.0;
    // Pass 1 packs the rows whose entering-column entry is significant —
    // one strided load and a magnitude compare per row, no bound logic —
    // then pass 2 runs the bound/tie logic over just the packed
    // candidates. Candidates keep ascending row order, so the
    // lowest-basic-index near-tie rule picks the same leaving row as the
    // classic fused loop.
    pack.clear();
    for (int r = 0; r < t.rows; ++r) {
      const double e = dir * t.row(r)[enter];
      if (e > tol || e < -tol) pack.emplace_back(e, r);
    }
    int leave = -1;
    bool leave_at_upper = false;
    double limit = kInfinity;
    for (const auto& [e, r] : pack) {
      double ratio;
      bool to_upper;
      if (e > tol) {  // basic value decreases toward its lower bound
        const double blo = t.lo[t.basis[r]];
        if (!std::isfinite(blo)) continue;
        ratio = (t.xb[r] - blo) / e;
        to_upper = false;
      } else {  // e < -tol: basic value increases toward its upper
        const double bup = t.up[t.basis[r]];
        if (!std::isfinite(bup)) continue;
        ratio = (bup - t.xb[r]) / (-e);
        to_upper = true;
      }
      if (ratio < 0.0) ratio = 0.0;  // degeneracy drift guard
      if (leave < 0 || ratio < limit - tol ||
          (ratio < limit + tol && t.basis[r] < t.basis[leave])) {
        leave = r;
        limit = ratio;
        leave_at_upper = to_upper;
      }
    }

    const double span = t.up[enter] - t.lo[enter];  // inf unless boxed
    if (std::isfinite(span) && span <= limit) {
      // Bound flip: the entering column swaps bounds; basis unchanged.
      const double delta = dir * span;
      for (int r = 0; r < t.rows; ++r) t.xb[r] -= t.row(r)[enter] * delta;
      t.status[enter] = dir > 0.0 ? ColStatus::kAtUpper : ColStatus::kAtLower;
      obj += d[enter] * delta;
      ++iterations;
      if (log) log->emplace_back(enter, -1);
    } else if (leave < 0) {
      return LpStatus::kUnbounded;
    } else {
      const double delta = dir * limit;
      const double d_enter = d[enter];
      const double enter_val = t.nonbasic_value(enter) + delta;
      for (int r = 0; r < t.rows; ++r) t.xb[r] -= t.row(r)[enter] * delta;
      const int lcol = t.basis[leave];
      t.status[lcol] =
          leave_at_upper ? ColStatus::kAtUpper : ColStatus::kAtLower;
      pivot_on(t, leave, enter, &d, nullptr);
      t.basis[leave] = enter;
      t.status[enter] = ColStatus::kBasic;
      t.xb[leave] = enter_val;
      obj += d_enter * delta;
      ++iterations;
      if (log) log->emplace_back(enter, lcol);
    }
    if (obj < last_obj - tol) {
      stalled = 0;
      last_obj = obj;
    } else {
      ++stalled;
    }
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

LpSolution SimplexSolver::solve(const LinearProgram& lp,
                                const SimplexBasis* warm) const {
  const double tol = options_.tolerance;
  const int n_orig = lp.num_variables();
  const int m = lp.num_constraints();

  // --- 1. Map original variables onto internal columns. -------------------
  std::vector<VarMap> vmap(static_cast<std::size_t>(n_orig));
  int n_internal = 0;
  for (int j = 0; j < n_orig; ++j) {
    const double lb = lp.lower_bound(j);
    const double ub = lp.upper_bound(j);
    VarMap& vm = vmap[static_cast<std::size_t>(j)];
    if (std::isfinite(lb)) {
      vm.kind = VarMap::Kind::kShifted;  // x = lb + y,  y in [0, ub - lb]
      vm.shift = lb;
      vm.primary = n_internal++;
    } else if (std::isfinite(ub)) {
      vm.kind = VarMap::Kind::kReflected;  // x = ub - y,  y in [0, inf)
      vm.shift = ub;
      vm.primary = n_internal++;
    } else {
      vm.kind = VarMap::Kind::kFree;  // x = y+ - y-
      vm.primary = n_internal++;
      vm.secondary = n_internal++;
    }
  }

  // Column layout: [0, n_internal) structural, then one slack per model
  // row (slack of row r lives at n_internal + r — this fixed address is
  // what makes both the dual readout and the basis export trivial), then
  // one artificial per row for the cold start.
  const int art_base = n_internal + m;
  const int full_cols = art_base + m;

  // Internal objective: minimize. Flip sign for maximization.
  const double sense_mul =
      lp.objective_sense() == Sense::kMaximize ? -1.0 : 1.0;
  std::vector<double> int_cost(static_cast<std::size_t>(n_internal), 0.0);
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& vm = vmap[static_cast<std::size_t>(j)];
    const double c = sense_mul * lp.cost(j);
    switch (vm.kind) {
      case VarMap::Kind::kShifted:
        int_cost[vm.primary] += c;
        break;
      case VarMap::Kind::kReflected:
        int_cost[vm.primary] -= c;
        break;
      case VarMap::Kind::kFree:
        int_cost[vm.primary] += c;
        int_cost[vm.secondary] -= c;
        break;
    }
  }

  // --- 2. Dense rows + shifted rhs, built once off the CSC view. ----------
  // Walking columns instead of rows lets this share the cached
  // ColumnView with the decomposed driver's master build. The rhs shift
  // accumulates per row in ascending-variable order either way (the
  // outer loop here is ascending j), so rhs0 is bit-identical to the
  // old row-walking construction.
  const ColumnView& csc = lp.column_view();
  std::vector<double> dense(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(n_internal),
      0.0);
  std::vector<double> rhs0(static_cast<std::size_t>(m), 0.0);
  for (int r = 0; r < m; ++r) rhs0[static_cast<std::size_t>(r)] = lp.rhs(r);
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& vm = vmap[static_cast<std::size_t>(j)];
    const int lo_at = csc.col_start[static_cast<std::size_t>(j)];
    const int hi_at = csc.col_start[static_cast<std::size_t>(j) + 1];
    for (int at = lo_at; at < hi_at; ++at) {
      const auto r = static_cast<std::size_t>(
          csc.row_index[static_cast<std::size_t>(at)]);
      const double coef = csc.value[static_cast<std::size_t>(at)];
      double* dr = dense.data() + r * static_cast<std::size_t>(n_internal);
      switch (vm.kind) {
        case VarMap::Kind::kShifted:
          dr[vm.primary] += coef;
          rhs0[r] -= coef * vm.shift;
          break;
        case VarMap::Kind::kReflected:
          dr[vm.primary] -= coef;
          rhs0[r] -= coef * vm.shift;
          break;
        case VarMap::Kind::kFree:
          dr[vm.primary] += coef;
          dr[vm.secondary] -= coef;
          break;
      }
    }
  }

  // --- 3. Column bounds. --------------------------------------------------
  Tableau t;
  t.sparse = options_.sparse_pivoting;
  t.stride = full_cols;
  t.lo.assign(static_cast<std::size_t>(full_cols), 0.0);
  t.up.assign(static_cast<std::size_t>(full_cols), kInfinity);
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& vm = vmap[static_cast<std::size_t>(j)];
    if (vm.kind == VarMap::Kind::kShifted) {
      t.up[vm.primary] = lp.upper_bound(j) - vm.shift;  // may be inf
    }
  }
  for (int r = 0; r < m; ++r) {
    const int sc = n_internal + r;
    switch (lp.relation(r)) {
      case Relation::kLe:  // a'y + s = b, s >= 0
        break;
      case Relation::kGe:  // s <= 0
        t.lo[sc] = -kInfinity;
        t.up[sc] = 0.0;
        break;
      case Relation::kEq:  // s == 0
        t.up[sc] = 0.0;
        break;
    }
  }
  // Artificials: [0, inf), only ever basic on a cold start.

  // Fills the arena with the raw (un-pivoted) matrix: structural
  // coefficients, slack identity, artificial block zeroed.
  auto build_raw = [&](int active_cols) {
    t.rows = m;
    t.cols = active_cols;
    t.arena.assign(
        static_cast<std::size_t>(m) * static_cast<std::size_t>(t.stride),
        0.0);
    for (int r = 0; r < m; ++r) {
      double* tr = t.row(r);
      std::memcpy(tr,
                  dense.data() + static_cast<std::size_t>(r) *
                                     static_cast<std::size_t>(n_internal),
                  static_cast<std::size_t>(n_internal) * sizeof(double));
      tr[n_internal + r] = 1.0;
    }
    t.basis.assign(static_cast<std::size_t>(m), -1);
    t.xb.assign(static_cast<std::size_t>(m), 0.0);
    t.row_id.resize(static_cast<std::size_t>(m));
    for (int r = 0; r < m; ++r) t.row_id[static_cast<std::size_t>(r)] = r;
  };

  // Default statuses: every structural column at its lower bound, slacks
  // at the bound that makes a'y + s = b hold with y = 0 when feasible.
  auto default_status = [&] {
    t.status.assign(static_cast<std::size_t>(full_cols),
                    ColStatus::kAtLower);
    for (int r = 0; r < m; ++r) {
      if (lp.relation(r) == Relation::kGe) {
        t.status[n_internal + r] = ColStatus::kAtUpper;  // at 0
      }
    }
  };

  LpSolution out;
  out.x.assign(static_cast<std::size_t>(n_orig), 0.0);
  std::vector<std::pair<int, int>>* log = nullptr;
  if (options_.record_pivots) log = &out.pivot_log;

  // --- 4. Warm start: install the caller's basis if it lands feasible. ----
  bool warm_ok = false;
  if (warm && !warm->empty()) {
    build_raw(art_base);
    default_status();
    // Nonbasic-at-upper statuses, translated through the variable map
    // (a reflected variable at its model upper bound is the internal
    // column at its *lower* bound, which is already the default).
    for (const int v : warm->at_upper) {
      if (v < 0 || v >= n_orig) continue;
      const VarMap& vm = vmap[static_cast<std::size_t>(v)];
      if (vm.kind == VarMap::Kind::kShifted && std::isfinite(t.up[vm.primary])) {
        t.status[vm.primary] = ColStatus::kAtUpper;
      }
    }
    std::vector<double> rhs = rhs0;
    std::vector<char> claimed(static_cast<std::size_t>(m), 0);
    // Pass 1: slack entries sit in their own row — the column is still
    // the identity there, so installation is bookkeeping only.
    for (const auto& e : warm->basic) {
      if (e.kind != SimplexBasis::Kind::kSlack) continue;
      if (e.index < 0 || e.index >= m) continue;
      if (claimed[static_cast<std::size_t>(e.index)]) continue;
      const int sc = n_internal + e.index;
      claimed[static_cast<std::size_t>(e.index)] = 1;
      t.basis[e.index] = sc;
      t.status[sc] = ColStatus::kBasic;
    }
    // Pass 2: variable entries — pivot each into the unclaimed row where
    // its column is largest (ties to the lowest row index).
    for (const auto& e : warm->basic) {
      if (e.kind != SimplexBasis::Kind::kVariable) continue;
      if (e.index < 0 || e.index >= n_orig) continue;
      const int col = vmap[static_cast<std::size_t>(e.index)].primary;
      if (t.status[col] == ColStatus::kBasic) continue;  // duplicate
      int prow = -1;
      double best = kFeasTol;  // refuse numerically dependent columns
      for (int r = 0; r < m; ++r) {
        if (claimed[static_cast<std::size_t>(r)]) continue;
        const double a = std::abs(t.row(r)[col]);
        if (a > best) {
          best = a;
          prow = r;
        }
      }
      if (prow < 0) continue;
      pivot_on(t, prow, col, nullptr, &rhs);
      claimed[static_cast<std::size_t>(prow)] = 1;
      t.basis[prow] = col;
      t.status[col] = ColStatus::kBasic;
    }
    // Pass 3: rows the basis left unclaimed fall back to their own
    // slack, whose column an unclaimed row still holds untouched.
    for (int r = 0; r < m; ++r) {
      if (claimed[static_cast<std::size_t>(r)]) continue;
      const int sc = n_internal + r;
      t.basis[r] = sc;
      t.status[sc] = ColStatus::kBasic;
    }
    // Basic values: rhs is B^-1 b; subtract the nonbasic columns that
    // sit at a nonzero bound.
    for (int r = 0; r < m; ++r) t.xb[r] = rhs[r];
    for (int c = 0; c < art_base; ++c) {
      if (t.status[c] == ColStatus::kBasic) continue;
      const double v = t.nonbasic_value(c);
      if (v == 0.0) continue;
      for (int r = 0; r < m; ++r) t.xb[r] -= t.row(r)[c] * v;
    }
    warm_ok = true;
    for (int r = 0; r < m; ++r) {
      const int bc = t.basis[r];
      if (t.xb[r] < t.lo[bc] - kFeasTol || t.xb[r] > t.up[bc] + kFeasTol ||
          !std::isfinite(t.xb[r])) {
        warm_ok = false;  // out of bounds: discard, cold-start below
        break;
      }
    }
  }
  out.warm_start_used = warm_ok;

  // --- 5. Cold start + phase 1 when the warm basis was absent/rejected. ---
  int n_art = 0;
  if (!warm_ok) {
    build_raw(art_base);
    default_status();
    for (int r = 0; r < m; ++r) {
      const int sc = n_internal + r;
      const double b = rhs0[r];
      if (b >= t.lo[sc] - tol && b <= t.up[sc] + tol) {
        // The row's own slack can carry the residual: basic at b.
        t.basis[r] = sc;
        t.status[sc] = ColStatus::kBasic;
        t.xb[r] = b;
      } else {
        // Artificial basic at the residual. The coefficient stays +1 so
        // the starting basis is an exact identity; instead the
        // artificial's *domain* takes the residual's sign — [0, inf)
        // for b > 0, (-inf, 0] for b < 0 — and phase 1 minimizes
        // sign(b) * art = |art|.
        const int ac = art_base + r;
        t.row(r)[ac] = 1.0;
        if (b < 0.0) {
          t.lo[ac] = -kInfinity;
          t.up[ac] = 0.0;
        }
        t.basis[r] = ac;
        t.status[ac] = ColStatus::kBasic;
        t.xb[r] = b;
        ++n_art;
      }
    }
    if (n_art > 0) {
      t.cols = full_cols;
      // Phase-1 objective: minimize the total artificial magnitude
      // (cost +1 on nonnegative artificials, -1 on nonpositive ones).
      std::vector<double> d(static_cast<std::size_t>(full_cols), 0.0);
      for (int c = art_base; c < full_cols; ++c) {
        d[c] = t.up[c] == 0.0 ? -1.0 : 1.0;
      }
      for (int r = 0; r < m; ++r) {
        if (t.basis[r] < art_base) continue;
        const double cb = t.up[t.basis[r]] == 0.0 ? -1.0 : 1.0;
        const double* tr = t.row(r);
        for (int c = 0; c < full_cols; ++c) d[c] -= cb * tr[c];
      }
      for (int r = 0; r < m; ++r) d[t.basis[r]] = 0.0;
      const LpStatus st =
          run_bounded(t, d, options_, out.iterations, log);
      if (st == LpStatus::kCancelled) {
        out.status = LpStatus::kCancelled;
        out.sparse_price_skips = t.skips;
        return out;
      }
      if (st == LpStatus::kIterationLimit || st == LpStatus::kUnbounded) {
        // A bounded-below phase 1 cannot be unbounded; if numerics say
        // otherwise, refuse to certify anything.
        out.status = LpStatus::kIterationLimit;
        out.sparse_price_skips = t.skips;
        return out;
      }
      double infeas = 0.0;
      for (int r = 0; r < t.rows; ++r) {
        if (t.basis[r] >= art_base) infeas += std::abs(t.xb[r]);
      }
      if (infeas > kFeasTol) {
        out.status = LpStatus::kInfeasible;
        out.sparse_price_skips = t.skips;
        return out;
      }
      // Pivot remaining (degenerate) artificials out of the basis; rows
      // with no real nonzero left are redundant (0 = 0) and are dropped
      // so a basic artificial can never drift away from zero later.
      for (int r = 0; r < t.rows;) {
        if (t.basis[r] < art_base) {
          ++r;
          continue;
        }
        int col = -1;
        const double* tr = t.row(r);
        for (int c = 0; c < art_base; ++c) {
          if (t.status[c] != ColStatus::kBasic && std::abs(tr[c]) > kFeasTol) {
            col = c;
            break;
          }
        }
        // A retiring artificial parks at its zero bound (lower for the
        // nonnegative domain, upper for the nonpositive one).
        if (col >= 0) {
          const int acol = t.basis[r];
          pivot_on(t, r, col, nullptr, nullptr);
          t.basis[r] = col;
          t.status[acol] = t.up[acol] == 0.0 ? ColStatus::kAtUpper
                                             : ColStatus::kAtLower;
          t.status[col] = ColStatus::kBasic;
          t.xb[r] = t.nonbasic_value(col);  // zero-length step
          ++r;
        } else {
          const int acol = t.basis[r];
          t.status[acol] = t.up[acol] == 0.0 ? ColStatus::kAtUpper
                                             : ColStatus::kAtLower;
          t.drop_row(r);
        }
      }
    }
    // Retire the artificial block: phase 2 never scans past art_base, so
    // the (now nonbasic, worthless) artificials can never re-enter.
    t.cols = art_base;
  }
  out.phase1_skipped = warm_ok || n_art == 0;

  // --- 6. Phase 2 with the real objective. --------------------------------
  std::vector<double> d(static_cast<std::size_t>(full_cols), 0.0);
  for (int c = 0; c < n_internal; ++c) d[c] = int_cost[c];
  for (int r = 0; r < t.rows; ++r) {
    const int bc = t.basis[r];
    const double cb = bc < n_internal ? int_cost[bc] : 0.0;
    if (cb == 0.0) continue;
    const double* tr = t.row(r);
    for (int c = 0; c < t.cols; ++c) d[c] -= cb * tr[c];
  }
  for (int r = 0; r < t.rows; ++r) d[t.basis[r]] = 0.0;
  const LpStatus st = run_bounded(t, d, options_, out.iterations, log);
  out.sparse_price_skips = t.skips;
  if (st != LpStatus::kOptimal) {
    out.status = st;
    return out;
  }

  // --- 6.5 Deterministic refactorization of the basic values. -------------
  // The incremental xb carries the roundoff of the whole pivot path, so
  // two paths ending in the same basis (monolithic vs the decomposed
  // driver's crossover, warm vs cold) could disagree in the last ulp —
  // enough to flip downstream profit near-ties and break the
  // byte-identical-plans contract. Recomputing B xb = rhs0 - N x_N from
  // the *original* data makes the returned point a pure function of
  // (model, final basis set, nonbasic statuses), independent of how the
  // solver got there. Falls back to the incremental values if the basis
  // matrix looks singular (it never is for a basis this solver
  // produced).
  if (options_.refactor_solution && t.rows > 0) {
    const int mb = t.rows;
    const auto mbz = static_cast<std::size_t>(mb);
    // Right-hand side over the surviving rows, nonbasic bound
    // contributions removed. Only shifted structural columns can sit at
    // a nonzero bound — every nonbasic-reachable slack/artificial bound
    // is zero.
    std::vector<double> fb(mbz);
    for (int i = 0; i < mb; ++i) {
      fb[static_cast<std::size_t>(i)] =
          rhs0[static_cast<std::size_t>(t.row_id[i])];
    }
    for (int c = 0; c < n_internal; ++c) {
      if (t.status[c] == ColStatus::kBasic) continue;
      const double v = t.nonbasic_value(c);
      if (v == 0.0) continue;
      for (int i = 0; i < mb; ++i) {
        fb[static_cast<std::size_t>(i)] -=
            dense[static_cast<std::size_t>(t.row_id[i]) *
                      static_cast<std::size_t>(n_internal) +
                  static_cast<std::size_t>(c)] *
            v;
      }
    }
    // Basis matrix with columns in ascending column-index order, so the
    // factorization depends only on the basis *set* — different pivot
    // paths assign the same columns to different rows.
    std::vector<int> order(t.basis.begin(), t.basis.end());
    std::sort(order.begin(), order.end());
    bool ok = true;
    std::vector<double> B(mbz * mbz, 0.0);
    for (int j = 0; j < mb && ok; ++j) {
      const int col = order[static_cast<std::size_t>(j)];
      if (col >= art_base) {
        ok = false;  // basic artificial should be impossible at optimal
      } else if (col < n_internal) {
        for (int i = 0; i < mb; ++i) {
          B[static_cast<std::size_t>(i) * mbz + static_cast<std::size_t>(j)] =
              dense[static_cast<std::size_t>(t.row_id[i]) *
                        static_cast<std::size_t>(n_internal) +
                    static_cast<std::size_t>(col)];
        }
      } else {
        const int s = col - n_internal;
        for (int i = 0; i < mb; ++i) {
          if (t.row_id[i] == s) {
            B[static_cast<std::size_t>(i) * mbz +
              static_cast<std::size_t>(j)] = 1.0;
            break;
          }
        }
      }
    }
    // In-place LU with partial pivoting (largest magnitude, first index
    // on ties) applied to the augmented system [B | fb].
    for (int k = 0; k < mb && ok; ++k) {
      int piv = k;
      double best = std::abs(B[static_cast<std::size_t>(k) * mbz +
                               static_cast<std::size_t>(k)]);
      for (int i = k + 1; i < mb; ++i) {
        const double a = std::abs(B[static_cast<std::size_t>(i) * mbz +
                                    static_cast<std::size_t>(k)]);
        if (a > best) {
          best = a;
          piv = i;
        }
      }
      if (!(best > 1e-11)) {
        ok = false;
        break;
      }
      if (piv != k) {
        for (int c2 = k; c2 < mb; ++c2) {
          std::swap(B[static_cast<std::size_t>(k) * mbz +
                      static_cast<std::size_t>(c2)],
                    B[static_cast<std::size_t>(piv) * mbz +
                      static_cast<std::size_t>(c2)]);
        }
        std::swap(fb[static_cast<std::size_t>(k)],
                  fb[static_cast<std::size_t>(piv)]);
      }
      const double inv = 1.0 / B[static_cast<std::size_t>(k) * mbz +
                                 static_cast<std::size_t>(k)];
      for (int i = k + 1; i < mb; ++i) {
        const double f = B[static_cast<std::size_t>(i) * mbz +
                           static_cast<std::size_t>(k)] *
                         inv;
        if (f == 0.0) continue;
        for (int c2 = k + 1; c2 < mb; ++c2) {
          B[static_cast<std::size_t>(i) * mbz +
            static_cast<std::size_t>(c2)] -=
              f * B[static_cast<std::size_t>(k) * mbz +
                    static_cast<std::size_t>(c2)];
        }
        fb[static_cast<std::size_t>(i)] -= f * fb[static_cast<std::size_t>(k)];
      }
    }
    if (ok) {
      std::vector<double> yb(mbz);
      for (int k = mb - 1; k >= 0; --k) {
        double acc = fb[static_cast<std::size_t>(k)];
        for (int c2 = k + 1; c2 < mb; ++c2) {
          acc -= B[static_cast<std::size_t>(k) * mbz +
                   static_cast<std::size_t>(c2)] *
                 yb[static_cast<std::size_t>(c2)];
        }
        yb[static_cast<std::size_t>(k)] =
            acc / B[static_cast<std::size_t>(k) * mbz +
                    static_cast<std::size_t>(k)];
        if (!std::isfinite(yb[static_cast<std::size_t>(k)])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        // yb[j] is the value of basis column order[j]; hand each
        // tableau row its own column's value.
        for (int i = 0; i < mb; ++i) {
          const auto at = std::lower_bound(order.begin(), order.end(),
                                           t.basis[i]) -
                          order.begin();
          t.xb[i] = yb[static_cast<std::size_t>(at)];
        }
      }
    }
  }

  // --- 7. Extract the solution back into the original space. --------------
  std::vector<double> y(static_cast<std::size_t>(n_internal), 0.0);
  for (int c = 0; c < n_internal; ++c) {
    if (t.status[c] != ColStatus::kBasic) y[c] = t.nonbasic_value(c);
  }
  for (int r = 0; r < t.rows; ++r) {
    if (t.basis[r] < n_internal) y[t.basis[r]] = t.xb[r];
  }
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& vm = vmap[static_cast<std::size_t>(j)];
    switch (vm.kind) {
      case VarMap::Kind::kShifted:
        out.x[j] = vm.shift + y[vm.primary];
        break;
      case VarMap::Kind::kReflected:
        out.x[j] = vm.shift - y[vm.primary];
        break;
      case VarMap::Kind::kFree:
        out.x[j] = y[vm.primary] - y[vm.secondary];
        break;
    }
    // Snap tiny numerical residue onto the bounds.
    out.x[j] = std::clamp(out.x[j], lp.lower_bound(j), lp.upper_bound(j));
    if (std::abs(out.x[j]) < tol) out.x[j] = 0.0;
  }
  out.status = LpStatus::kOptimal;
  out.objective = lp.objective_value(out.x);

  // --- 8. Duals, read off the slack reduced costs. ------------------------
  // Row r's slack has internal cost 0 and original column e_r, so its
  // phase-2 reduced cost is -y_r of the internal (minimize) problem; the
  // user wants d(user objective)/d(user rhs), which undoes the
  // minimize/maximize flip. A dropped (redundant) row's slack column
  // never picks up a reduced cost — its dual stays the conventional 0.
  out.duals.assign(static_cast<std::size_t>(m), 0.0);
  for (int r = 0; r < m; ++r) {
    out.duals[static_cast<std::size_t>(r)] = -sense_mul * d[n_internal + r];
  }

  // --- 9. Export the final basis in model space. --------------------------
  std::vector<int> col_owner(static_cast<std::size_t>(n_internal), -1);
  for (int j = 0; j < n_orig; ++j) {
    col_owner[vmap[static_cast<std::size_t>(j)].primary] = j;
    if (vmap[static_cast<std::size_t>(j)].secondary >= 0) {
      col_owner[vmap[static_cast<std::size_t>(j)].secondary] = j;
    }
  }
  out.basis.basic.reserve(static_cast<std::size_t>(t.rows));
  for (int r = 0; r < t.rows; ++r) {
    const int bc = t.basis[r];
    if (bc < n_internal) {
      out.basis.basic.push_back(
          {SimplexBasis::Kind::kVariable, col_owner[bc]});
    } else {
      out.basis.basic.push_back(
          {SimplexBasis::Kind::kSlack, bc - n_internal});
    }
  }
  for (int j = 0; j < n_orig; ++j) {
    const VarMap& vm = vmap[static_cast<std::size_t>(j)];
    if (t.status[vm.primary] == ColStatus::kBasic) continue;
    const bool x_at_upper =
        (vm.kind == VarMap::Kind::kShifted &&
         t.status[vm.primary] == ColStatus::kAtUpper) ||
        (vm.kind == VarMap::Kind::kReflected &&
         t.status[vm.primary] == ColStatus::kAtLower);
    if (x_at_upper) out.basis.at_upper.push_back(j);
  }
  return out;
}

}  // namespace palb
