#include "solver/milp.hpp"

#include <algorithm>
#include <cmath>
#include <stack>

#include "util/error.hpp"

namespace palb {

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal:
      return "optimal";
    case MilpStatus::kInfeasible:
      return "infeasible";
    case MilpStatus::kNodeLimit:
      return "node-limit";
    case MilpStatus::kUnbounded:
      return "unbounded";
  }
  return "?";
}

namespace {
struct Node {
  // Tightened bounds for the integer variables along this branch.
  std::vector<std::pair<int, std::pair<double, double>>> bounds;
  // Optimal basis of the parent relaxation. Children differ from the
  // parent only in one variable's bounds, so the parent basis is usually
  // one dual step from their optimum; the simplex falls back to a cold
  // start whenever the tightened bound makes it infeasible.
  SimplexBasis warm;
};
}  // namespace

MilpSolution MilpSolver::solve(const LinearProgram& model,
                               const std::vector<int>& integer_vars) const {
  for (int v : integer_vars) {
    PALB_REQUIRE(v >= 0 && v < model.num_variables(),
                 "integer variable index out of range");
  }
  SimplexSolver lp_solver(options_.lp);
  const bool maximizing = model.objective_sense() == Sense::kMaximize;
  const double tol = options_.integrality_tolerance;

  MilpSolution best;
  best.status = MilpStatus::kInfeasible;
  bool have_incumbent = false;

  std::stack<Node> open;
  open.push(Node{});
  int nodes = 0;
  bool hit_limit = false;
  bool root_unbounded = false;

  while (!open.empty()) {
    if (nodes >= options_.max_nodes) {
      hit_limit = true;
      break;
    }
    Node node = std::move(open.top());
    open.pop();
    ++nodes;

    // Apply the branch bounds on a copy of the model.
    LinearProgram relaxed = model;
    bool bounds_consistent = true;
    for (const auto& [var, lb_ub] : node.bounds) {
      const double lb = std::max(lb_ub.first, model.lower_bound(var));
      const double ub = std::min(lb_ub.second, model.upper_bound(var));
      if (lb > ub) {
        bounds_consistent = false;
        break;
      }
      relaxed.set_bounds(var, lb, ub);
    }
    if (!bounds_consistent) continue;

    const LpSolution rel = lp_solver.solve(
        relaxed, node.warm.empty() ? nullptr : &node.warm);
    best.lp_iterations += rel.iterations;
    if (rel.warm_start_used) ++best.lp_basis_warm_hits;
    if (rel.status == LpStatus::kInfeasible) continue;
    if (rel.status == LpStatus::kUnbounded) {
      // Unbounded relaxation at the root means the MILP itself is
      // unbounded or pathological; report rather than loop.
      root_unbounded = true;
      break;
    }
    if (rel.status == LpStatus::kIterationLimit) continue;

    // Bound-based pruning.
    if (have_incumbent) {
      const bool dominated =
          maximizing
              ? rel.objective <= best.objective + options_.absolute_gap
              : rel.objective >= best.objective - options_.absolute_gap;
      if (dominated) continue;
    }

    // Most-fractional branching variable.
    int branch_var = -1;
    double worst_frac = tol;
    for (int v : integer_vars) {
      const double x = rel.x[static_cast<std::size_t>(v)];
      const double frac = std::abs(x - std::round(x));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch_var = v;
      }
    }

    if (branch_var < 0) {
      // Integral: candidate incumbent.
      const bool better = !have_incumbent ||
                          (maximizing ? rel.objective > best.objective
                                      : rel.objective < best.objective);
      if (better) {
        best.objective = rel.objective;
        best.x = rel.x;
        for (int v : integer_vars) {
          best.x[static_cast<std::size_t>(v)] =
              std::round(best.x[static_cast<std::size_t>(v)]);
        }
        have_incumbent = true;
      }
      continue;
    }

    const double x = rel.x[static_cast<std::size_t>(branch_var)];
    const double floor_x = std::floor(x);
    Node down = node;
    down.bounds.push_back({branch_var, {-kInfinity, floor_x}});
    down.warm = rel.basis;
    Node up = node;
    up.bounds.push_back({branch_var, {floor_x + 1.0, kInfinity}});
    up.warm = rel.basis;
    // Explore the side nearest the fractional value first.
    if (x - floor_x > 0.5) {
      open.push(std::move(down));
      open.push(std::move(up));
    } else {
      open.push(std::move(up));
      open.push(std::move(down));
    }
  }

  best.nodes_explored = nodes;
  if (root_unbounded) {
    best.status = MilpStatus::kUnbounded;
  } else if (have_incumbent) {
    // A node-limit abort with an incumbent still reports the incumbent,
    // flagged as kNodeLimit so callers know optimality is unproven.
    best.status = hit_limit ? MilpStatus::kNodeLimit : MilpStatus::kOptimal;
  } else {
    best.status = hit_limit ? MilpStatus::kNodeLimit : MilpStatus::kInfeasible;
  }
  return best;
}

}  // namespace palb
