#include "solver/nlp.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace palb {

void NlpProblem::validate() const {
  PALB_REQUIRE(dimension > 0, "NLP dimension must be positive");
  PALB_REQUIRE(lower.size() == dimension && upper.size() == dimension,
               "NLP bounds must match dimension");
  PALB_REQUIRE(static_cast<bool>(objective), "NLP objective is required");
  for (std::size_t i = 0; i < dimension; ++i) {
    PALB_REQUIRE(lower[i] <= upper[i], "NLP bounds must satisfy lb <= ub");
  }
}

namespace {

void project(const NlpProblem& p, std::vector<double>& x) {
  for (std::size_t i = 0; i < p.dimension; ++i) {
    x[i] = std::clamp(x[i], p.lower[i], p.upper[i]);
  }
}

double max_violation(const NlpProblem& p, const std::vector<double>& x) {
  double v = 0.0;
  for (const auto& g : p.inequalities) v = std::max(v, g(x));
  for (const auto& h : p.equalities) v = std::max(v, std::abs(h(x)));
  return v;
}

/// Augmented Lagrangian value (Rockafellar form for inequalities).
class AugLag {
 public:
  AugLag(const NlpProblem& p, const std::vector<double>& lam_ineq,
         const std::vector<double>& lam_eq, double rho)
      : p_(p), lam_ineq_(lam_ineq), lam_eq_(lam_eq), rho_(rho) {}

  double operator()(const std::vector<double>& x) const {
    double val = p_.objective(x);
    for (std::size_t i = 0; i < p_.inequalities.size(); ++i) {
      const double g = p_.inequalities[i](x);
      const double t = std::max(0.0, lam_ineq_[i] + rho_ * g);
      val += (t * t - lam_ineq_[i] * lam_ineq_[i]) / (2.0 * rho_);
    }
    for (std::size_t j = 0; j < p_.equalities.size(); ++j) {
      const double h = p_.equalities[j](x);
      val += lam_eq_[j] * h + 0.5 * rho_ * h * h;
    }
    return val;
  }

 private:
  const NlpProblem& p_;
  const std::vector<double>& lam_ineq_;
  const std::vector<double>& lam_eq_;
  double rho_;
};

std::vector<double> finite_diff_gradient(
    const std::function<double(const std::vector<double>&)>& f,
    const NlpProblem& p, const std::vector<double>& x, double step) {
  std::vector<double> g(p.dimension, 0.0);
  std::vector<double> probe = x;
  for (std::size_t i = 0; i < p.dimension; ++i) {
    const double h =
        step * std::max(1.0, std::abs(x[i]));
    // Stay inside the box so models with asymptotes at the boundary
    // (the M/M/1 delay blows up at the stability edge) are never probed
    // outside their domain.
    const double up = std::min(x[i] + h, p.upper[i]);
    const double dn = std::max(x[i] - h, p.lower[i]);
    if (up <= dn) {
      g[i] = 0.0;
      continue;
    }
    probe[i] = up;
    const double f_up = f(probe);
    probe[i] = dn;
    const double f_dn = f(probe);
    probe[i] = x[i];
    g[i] = (f_up - f_dn) / (up - dn);
  }
  return g;
}

}  // namespace

NlpResult AugLagSolver::solve(const NlpProblem& problem,
                              const std::vector<double>& x0) const {
  problem.validate();
  PALB_REQUIRE(x0.size() == problem.dimension, "x0 dimension mismatch");

  std::vector<double> x = x0;
  project(problem, x);

  std::vector<double> lam_ineq(problem.inequalities.size(), 0.0);
  std::vector<double> lam_eq(problem.equalities.size(), 0.0);
  double rho = options_.initial_penalty;

  NlpResult result;
  result.x = x;

  for (int outer = 0; outer < options_.max_outer; ++outer) {
    ++result.outer_iterations;
    AugLag merit(problem, lam_ineq, lam_eq, rho);

    // --- inner minimization of the augmented Lagrangian -----------------
    if (options_.inner_method == InnerMethod::kProjectedGradient) {
      // Plain projected gradient with Armijo backtracking (monotone).
      double fx = merit(x);
      for (int inner = 0; inner < options_.max_inner; ++inner) {
        ++result.inner_iterations;
        const std::vector<double> grad =
            finite_diff_gradient(merit, problem, x, options_.fd_step);

        double stat = 0.0;
        for (std::size_t i = 0; i < problem.dimension; ++i) {
          const double trial = std::clamp(x[i] - grad[i], problem.lower[i],
                                          problem.upper[i]);
          stat = std::max(stat, std::abs(trial - x[i]));
        }
        if (stat < options_.gradient_tolerance) break;

        double step = 1.0;
        bool moved = false;
        for (int bt = 0; bt < 40; ++bt) {
          std::vector<double> cand(problem.dimension);
          double decrease_model = 0.0;
          for (std::size_t i = 0; i < problem.dimension; ++i) {
            cand[i] = std::clamp(x[i] - step * grad[i], problem.lower[i],
                                 problem.upper[i]);
            decrease_model += grad[i] * (x[i] - cand[i]);
          }
          const double f_cand = merit(cand);
          if (f_cand <= fx - 1e-4 * decrease_model &&
              std::isfinite(f_cand)) {
            x = std::move(cand);
            fx = f_cand;
            moved = true;
            break;
          }
          step *= 0.5;
        }
        if (!moved) break;
      }
    } else {
      // FISTA: persistent backtracked step on the quadratic upper model,
      // Nesterov extrapolation, O'Donoghue-Candes function restart.
      double fx = merit(x);
      std::vector<double> x_prev = x;
      double theta = 1.0;
      double step = 1.0;  // shrinks monotonically (estimates 1/L)
      for (int inner = 0; inner < options_.max_inner; ++inner) {
        ++result.inner_iterations;

        std::vector<double> y(problem.dimension);
        const double theta_next =
            0.5 * (1.0 + std::sqrt(1.0 + 4.0 * theta * theta));
        const double beta = (theta - 1.0) / theta_next;
        for (std::size_t i = 0; i < problem.dimension; ++i) {
          y[i] = std::clamp(x[i] + beta * (x[i] - x_prev[i]),
                            problem.lower[i], problem.upper[i]);
        }
        const std::vector<double> grad =
            finite_diff_gradient(merit, problem, y, options_.fd_step);

        double stat = 0.0;
        for (std::size_t i = 0; i < problem.dimension; ++i) {
          const double trial = std::clamp(y[i] - grad[i], problem.lower[i],
                                          problem.upper[i]);
          stat = std::max(stat, std::abs(trial - y[i]));
        }
        if (stat < options_.gradient_tolerance) break;

        const double fy = merit(y);
        bool moved = false;
        std::vector<double> cand(problem.dimension);
        for (int bt = 0; bt < 60; ++bt) {
          double model = fy;
          for (std::size_t i = 0; i < problem.dimension; ++i) {
            cand[i] = std::clamp(y[i] - step * grad[i], problem.lower[i],
                                 problem.upper[i]);
            const double diff = cand[i] - y[i];
            model += grad[i] * diff + diff * diff / (2.0 * step);
          }
          const double f_cand = merit(cand);
          if (std::isfinite(f_cand) && f_cand <= model + 1e-12) {
            x_prev = x;
            x = cand;
            // Function restart: momentum that raises the merit is wiped.
            if (f_cand > fx) {
              theta = 1.0;
            } else {
              theta = theta_next;
            }
            fx = f_cand;
            moved = true;
            break;
          }
          step *= 0.5;
          if (step < 1e-16) break;
        }
        if (!moved) break;
      }
    }

    // --- outer: multiplier & penalty updates -----------------------------
    double viol = 0.0;
    for (std::size_t i = 0; i < problem.inequalities.size(); ++i) {
      const double g = problem.inequalities[i](x);
      lam_ineq[i] = std::max(0.0, lam_ineq[i] + rho * g);
      viol = std::max(viol, g);
    }
    for (std::size_t j = 0; j < problem.equalities.size(); ++j) {
      const double h = problem.equalities[j](x);
      lam_eq[j] += rho * h;
      viol = std::max(viol, std::abs(h));
    }

    if (viol <= options_.feasibility_tolerance) {
      result.converged = true;
      break;
    }
    rho = std::min(rho * options_.penalty_growth, options_.max_penalty);
  }

  result.x = x;
  result.objective = problem.objective(x);
  result.infeasibility = max_violation(problem, x);
  result.converged =
      result.infeasibility <= options_.feasibility_tolerance;
  return result;
}

NlpResult AugLagSolver::solve_multistart(
    const NlpProblem& problem, const std::vector<double>& x0, int starts,
    Rng rng, const std::vector<double>* warm_start) const {
  problem.validate();
  PALB_REQUIRE(starts >= 1, "multistart needs at least one start");

  // Build the start points up front so the parallel section is pure.
  std::vector<std::vector<double>> points;
  points.push_back(x0);
  if (warm_start != nullptr && warm_start->size() == problem.dimension) {
    points.push_back(*warm_start);
  }
  for (int s = 1; s < starts; ++s) {
    std::vector<double> p(problem.dimension);
    Rng stream = rng.substream(static_cast<std::uint64_t>(s));
    for (std::size_t i = 0; i < problem.dimension; ++i) {
      const double lo = std::isfinite(problem.lower[i]) ? problem.lower[i]
                                                        : -1e3;
      const double hi =
          std::isfinite(problem.upper[i]) ? problem.upper[i] : 1e3;
      p[i] = stream.uniform(lo, hi);
    }
    points.push_back(std::move(p));
  }

  std::vector<NlpResult> results(points.size());
  parallel_for(points.size(), [&](std::size_t i) {
    results[i] = solve(problem, points[i]);
  });

  // Best feasible wins; otherwise least infeasible.
  const NlpResult* best = &results[0];
  for (const auto& r : results) {
    if (r.converged && !best->converged) {
      best = &r;
    } else if (r.converged == best->converged) {
      if (r.converged ? r.objective < best->objective
                      : r.infeasibility < best->infeasibility) {
        best = &r;
      }
    }
  }
  return *best;
}

}  // namespace palb
