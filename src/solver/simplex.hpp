#pragma once

#include <string>
#include <vector>

#include "solver/linear_program.hpp"

namespace palb {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(LpStatus status);

/// Result of an LP solve. `x` is in the original variable space of the
/// LinearProgram (bounds un-shifted), `objective` includes the model's
/// constant offset and respects the model's optimization sense.
struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  /// Dual value (shadow price) per model constraint: the sensitivity
  /// d(objective)/d(rhs) at the optimum, in the model's own sense (for a
  /// maximization, a binding <= capacity row has a non-negative dual —
  /// "one more unit of rhs is worth this much"). Zero for non-binding
  /// and redundant rows. Populated only at kOptimal.
  std::vector<double> duals;
  int iterations = 0;
};

/// Dense two-phase primal simplex.
///
/// Scope: the dispatcher's per-profile LPs are small (tens of variables,
/// tens of rows) but solved by the hundreds per control slot, so the
/// implementation favours robustness (explicit phase 1, Bland fallback
/// against cycling, artificial-variable cleanup of redundant rows) over
/// asymptotic sophistication. General bounds are handled by shifting
/// finite lower bounds, reflecting (-inf, u] variables and splitting free
/// variables; finite upper bounds become explicit rows.
class SimplexSolver {
 public:
  struct Options {
    /// Hard cap on pivots across both phases.
    int max_iterations = 20000;
    /// Feasibility / pricing tolerance.
    double tolerance = 1e-9;
    /// After this many non-improving pivots switch to Bland's rule.
    int stall_threshold = 200;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  LpSolution solve(const LinearProgram& lp) const;

 private:
  Options options_;
};

}  // namespace palb
