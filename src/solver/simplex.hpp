#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "solver/linear_program.hpp"

namespace palb {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// The solve observed its Options::cancel token set and stopped at a
  /// pivot-batch boundary; the partial state certifies nothing.
  kCancelled,
};

const char* to_string(LpStatus status);

/// A simplex basis expressed in *model* space, so it can be carried from
/// one LinearProgram to another that shares variable/row identity (MILP
/// nodes differing only in bounds) or translated by the caller (profile
/// enumeration, where neighboring profiles share most columns).
///
/// `basic` lists the basic columns — either a model variable or the slack
/// of a model row; order carries no meaning. `at_upper` lists the model
/// variables that sit nonbasic at their *upper* bound; every other
/// nonbasic variable sits at its lower bound. Entries that do not exist
/// in the target LP are silently dropped on import, and rows left without
/// a basic column fall back to their own slack, so a partial basis is a
/// legal (if weaker) warm start. If the resulting point violates a bound
/// the solver discards the basis and cold-starts — a warm start can never
/// change the optimum, only the path to it.
struct SimplexBasis {
  enum class Kind : std::uint8_t { kVariable, kSlack };
  struct Entry {
    Kind kind = Kind::kSlack;
    int index = 0;  ///< variable id (kVariable) or row id (kSlack)
  };
  std::vector<Entry> basic;
  std::vector<int> at_upper;

  bool empty() const { return basic.empty() && at_upper.empty(); }
};

/// Result of an LP solve. `x` is in the original variable space of the
/// LinearProgram (bounds un-shifted), `objective` includes the model's
/// constant offset and respects the model's optimization sense.
struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  /// Dual value (shadow price) per model constraint: the sensitivity
  /// d(objective)/d(rhs) at the optimum, in the model's own sense (for a
  /// maximization, a binding <= capacity row has a non-negative dual —
  /// "one more unit of rhs is worth this much"). Zero for non-binding
  /// and redundant rows. Read off the phase-2 reduced costs of the slack
  /// columns. Populated only at kOptimal.
  std::vector<double> duals;
  /// Pivot steps taken (basis changes plus bound flips) across both
  /// phases.
  int iterations = 0;
  /// Dense column updates the support-walking pivot kernel skipped: for
  /// each pivot that took the sparse path, the number of tableau columns
  /// outside the pivot row's nonzero support (each would have been a
  /// multiply-subtract per row in the dense kernel). Pivots whose row
  /// had filled in past half density run the dense loops and count
  /// nothing. Zero when Options::sparse_pivoting is off.
  std::uint64_t sparse_price_skips = 0;
  /// True when no phase-1 work was needed: either the model cold-started
  /// feasible (no artificial columns) or a warm basis landed in-bounds.
  bool phase1_skipped = false;
  /// True when a caller-supplied basis was installed and kept (i.e. it
  /// produced an in-bounds starting point); false on cold start or when
  /// the supplied basis was rejected.
  bool warm_start_used = false;
  /// Final basis at kOptimal, in model space; reusable via
  /// SimplexSolver::solve(lp, &basis).
  SimplexBasis basis;
  /// When Options::record_pivots is set: one entry per step, as
  /// (entering column, leaving column) in internal column indices;
  /// leaving == -1 marks a bound flip. Meant for determinism regression
  /// tests, not public consumption.
  std::vector<std::pair<int, int>> pivot_log;
};

/// Dense two-phase primal simplex for box-constrained ("bounded
/// variable") linear programs.
///
/// Scope: the dispatcher's per-profile LPs are small (tens of variables,
/// tens of rows) but solved by the hundreds per control slot, so the
/// implementation favours robustness (explicit phase 1, Bland fallback
/// against cycling, artificial-variable cleanup of redundant rows) and
/// constant-factor speed over asymptotic sophistication. Finite bounds
/// are handled implicitly by nonbasic-at-lower/upper status flags —
/// upper bounds never materialize as rows — the tableau lives in one
/// contiguous row-major arena, and pricing uses a candidate list
/// refreshed by full Dantzig scans (deterministic lowest-index
/// tie-breaks throughout, so pivot sequences — and therefore plans —
/// are reproducible across platforms and worker counts).
class SimplexSolver {
 public:
  struct Options {
    /// Hard cap on pivots across both phases.
    int max_iterations = 20000;
    /// Feasibility / pricing tolerance.
    double tolerance = 1e-9;
    /// After this many non-improving pivots switch to Bland's rule.
    int stall_threshold = 200;
    /// Size of the pricing candidate list; each refill keeps the
    /// this-many most attractive columns from one full Dantzig scan.
    int candidate_list_size = 8;
    /// Record the (entering, leaving) pivot sequence in
    /// LpSolution::pivot_log.
    bool record_pivots = false;
    /// Use the support-walking pivot kernel: per pivot, gather the
    /// pivot row's nonzero columns once and update only those. Pivot
    /// sequences, statuses, and every returned value are identical to
    /// the dense kernel (skipping an exact zero is an arithmetic
    /// no-op); LpSolution::sparse_price_skips counts the work avoided.
    bool sparse_pivoting = true;
    /// At optimality, recompute the basic values from the original
    /// data given the final basis (dense LU, deterministic partial
    /// pivoting) instead of trusting the incrementally updated tableau.
    /// This makes the returned point a pure function of (model, basis
    /// set, nonbasic statuses): any two solve paths that end in the
    /// same basis — warm or cold, monolithic or decomposed-then-
    /// crossover — return bitwise-identical x, which is what the
    /// byte-identical-plans contract rests on. Falls back to the
    /// incremental values if the basis matrix is numerically singular.
    bool refactor_solution = true;
    /// Cooperative cancellation token (not owned; may be nullptr). The
    /// pivot loop polls it every `cancel_check_every` pivots and returns
    /// LpStatus::kCancelled when it reads true — so a watchdog can stop
    /// a runaway solve at pivot-batch granularity without signals or
    /// thread kills. A solve that never observes the token set is
    /// bit-identical to one run without it (polling has no arithmetic
    /// effect). DecomposedSolver shares these Options across master,
    /// subproblem, and crossover solves, so one token covers the whole
    /// decomposed pipeline.
    const std::atomic<bool>* cancel = nullptr;
    /// Pivots between cancellation polls (bounds the cancel latency to
    /// this many pivots per in-flight solve).
    int cancel_check_every = 256;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Solves `lp`, optionally warm-starting from `warm` (see
  /// SimplexBasis for the contract; pass nullptr to cold-start).
  LpSolution solve(const LinearProgram& lp,
                   const SimplexBasis* warm = nullptr) const;

 private:
  Options options_;
};

}  // namespace palb
