#pragma once

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace palb {

/// Row sense of a linear constraint.
enum class Relation { kLe, kEq, kGe };

/// Optimization direction.
enum class Sense { kMinimize, kMaximize };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Compressed-sparse-column view of a LinearProgram's constraint matrix:
/// column j's entries live at [col_start[j], col_start[j+1]) in
/// `row_index` / `value`, sorted by row index. Built once per model (see
/// LinearProgram::column_view) so column-walking consumers — the
/// simplex's sparse pricer, the Dantzig-Wolfe master's per-column
/// coupling coefficients — share one pass over the rows instead of each
/// re-scanning them.
struct ColumnView {
  std::vector<int> col_start;  ///< size num_variables() + 1
  std::vector<int> row_index;  ///< size nnz, ascending within a column
  std::vector<double> value;   ///< size nnz, parallel to row_index

  int nnz() const { return static_cast<int>(row_index.size()); }
};

/// Sparse linear-program model:
///
///   opt  c'x      s.t.  for each row r:  a_r' x  (<=|=|>=)  b_r,
///   lb <= x <= ub  (any bound may be infinite)
///
/// This is the interface the profit-aware dispatcher compiles its
/// conditioned (level-profile) problems into; it is also what the MILP
/// branch-and-bound relaxes. Variables and rows are referenced by the
/// dense indices returned at creation.
class LinearProgram {
 public:
  /// Adds a variable; returns its index.
  int add_variable(double lb = 0.0, double ub = kInfinity, double cost = 0.0,
                   std::string name = {});

  /// Adds an empty constraint row; returns its index. Coefficients are
  /// attached afterwards via set_coefficient / add_term.
  int add_constraint(Relation rel, double rhs, std::string name = {});

  /// Adds a fully-formed constraint from (variable, coefficient) terms.
  /// Duplicate variables are merged (coefficients sum in encounter
  /// order). This is the preferred way to build dense rows: one sort
  /// instead of a per-term row scan.
  int add_constraint(const std::vector<std::pair<int, double>>& terms,
                     Relation rel, double rhs, std::string name = {});

  /// Sets (overwrites) one coefficient in a row.
  void set_coefficient(int row, int var, double value);
  /// Adds to an existing coefficient (creates it at `value` if absent).
  /// Rows are kept sorted by variable index, so the lookup is a binary
  /// search; inserting out-of-order still shifts the row's tail, so
  /// builders producing many terms should prefer the bulk
  /// add_constraint overload.
  void add_term(int row, int var, double value);

  void set_cost(int var, double cost);
  void set_bounds(int var, double lb, double ub);
  void set_objective_sense(Sense sense) { sense_ = sense; }
  /// Constant added to the objective (profit terms independent of x).
  void set_objective_offset(double offset) { offset_ = offset; }

  int num_variables() const { return static_cast<int>(costs_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  Sense objective_sense() const { return sense_; }
  double objective_offset() const { return offset_; }
  double cost(int var) const;
  double lower_bound(int var) const;
  double upper_bound(int var) const;
  Relation relation(int row) const;
  double rhs(int row) const;
  /// Terms of a row, sorted by variable index.
  const std::vector<std::pair<int, double>>& row_terms(int row) const;
  /// Column-major (CSC) view of the constraint matrix, built lazily on
  /// first call and cached until the next matrix mutation (add_variable,
  /// add_constraint, set_coefficient, add_term); cost/bound/sense edits
  /// keep it valid. Copies share the cache. The lazy build is not
  /// synchronized — materialize it before handing one model to several
  /// threads (every solver-internal consumer runs single-threaded per
  /// LP, so this only matters for exotic callers).
  const ColumnView& column_view() const;
  const std::string& variable_name(int var) const;
  const std::string& constraint_name(int row) const;

  /// Evaluates a_r' x for a candidate point.
  double row_activity(int row, const std::vector<double>& x) const;
  /// Evaluates c'x + offset.
  double objective_value(const std::vector<double>& x) const;
  /// True iff x satisfies every bound and row within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-7) const;

 private:
  void check_var(int var) const;
  void check_row(int row) const;
  std::vector<std::pair<int, double>>::iterator find_term(int row, int var);

  /// Drops the cached CSC view; every matrix mutator calls this.
  void invalidate_columns() { columns_.reset(); }

  Sense sense_ = Sense::kMinimize;
  double offset_ = 0.0;
  std::vector<double> costs_;
  std::vector<double> lbs_;
  std::vector<double> ubs_;
  std::vector<std::string> var_names_;
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<Relation> relations_;
  std::vector<double> rhss_;
  std::vector<std::string> row_names_;
  /// Lazily built CSC cache (shared_ptr so copies stay copyable and
  /// share the already-built view; the pointee is immutable).
  mutable std::shared_ptr<const ColumnView> columns_;
};

}  // namespace palb
