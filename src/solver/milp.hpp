#pragma once

#include <vector>

#include "solver/linear_program.hpp"
#include "solver/simplex.hpp"

namespace palb {

enum class MilpStatus { kOptimal, kInfeasible, kNodeLimit, kUnbounded };

const char* to_string(MilpStatus status);

struct MilpSolution {
  MilpStatus status = MilpStatus::kNodeLimit;
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  /// Simplex pivots summed over every node relaxation.
  int lp_iterations = 0;
  /// Node relaxations that accepted the parent's basis as a warm start.
  int lp_basis_warm_hits = 0;
};

/// Branch-and-bound mixed-integer solver over the dense simplex.
///
/// Used for the exact (small-instance) variant of the dispatcher where
/// the TUF-level choice per (type, data center) is encoded with binary
/// selector variables — the formulation the paper sketches with Eq. 14/25 —
/// and in tests as an oracle for knapsack-style instances. Depth-first
/// with best-bound tie-breaking, most-fractional branching.
class MilpSolver {
 public:
  struct Options {
    int max_nodes = 100000;
    double integrality_tolerance = 1e-6;
    /// Prune nodes whose bound is within this absolute gap of the
    /// incumbent.
    double absolute_gap = 1e-9;
    SimplexSolver::Options lp;
  };

  MilpSolver() = default;
  explicit MilpSolver(Options options) : options_(options) {}

  /// `integer_vars` lists the variable indices required to be integral.
  MilpSolution solve(const LinearProgram& lp,
                     const std::vector<int>& integer_vars) const;

 private:
  Options options_;
};

}  // namespace palb
