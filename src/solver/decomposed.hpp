#pragma once

#include <cstddef>
#include <cstdint>

#include "solver/simplex.hpp"

namespace palb {

/// Block-decomposed LP driver (Dantzig-Wolfe column generation) for the
/// dispatcher's block-angular profile LPs: per-(class, front-end) flow
/// blocks coupled only by the per-DC capacity rows (Eq. 7/8). The
/// structure is *detected*, not assumed — rows are peeled in descending
/// support order until the remainder splits into >= 2 independent
/// blocks; when no such split exists (or any variable is unbounded) the
/// driver falls back to the monolithic SimplexSolver, so it is always
/// safe to route a solve through here.
///
/// Correctness never rests on the decomposition converging: the column-
/// generation phase only *discovers* a near-optimal basis, and a final
/// monolithic "crossover" solve — warm-started from that basis — owns
/// the returned solution. Combined with the simplex's deterministic
/// final refactorization (SimplexSolver::Options::refactor_solution),
/// the returned point is a pure function of the final basis; on
/// instances with a unique optimal basis the crossover lands on the
/// same basis as a cold monolithic solve and x is bitwise identical.
/// Degenerate instances can stop at a *different* optimal basis whose
/// refactorized point differs at ulp level (<= 1e-9); those
/// perturbations are far below the dispatcher's rounding, so
/// decomposed and monolithic modes still produce byte-identical
/// DispatchPlans — the contract the policy layer relies on.
///
/// Determinism: blocks are ordered by smallest member row, columns enter
/// the master pool in (iteration, block) order, subproblem results are
/// collected index-ordered regardless of worker count, and every inner
/// solve is the deterministic SimplexSolver — so the whole driver is a
/// pure function of the model, independent of `subproblem_workers`.
class DecomposedSolver {
 public:
  struct Options {
    /// Inner solver configuration, shared by the master, the
    /// subproblems, and the final crossover (so pivot budgets like
    /// OptimizedPolicy's lp_max_iterations bound every piece).
    SimplexSolver::Options lp;
    /// Column-generation rounds before handing the incumbent basis to
    /// the crossover regardless of convergence.
    int max_master_iterations = 60;
    /// A block's proposed column must beat its convexity dual by this
    /// much to enter the master.
    double pricing_tolerance = 1e-7;
    /// Worker budget for the per-round subproblem fan-out: 1 solves
    /// inline (the right choice when the caller is itself a pool
    /// worker), 0 resolves to hardware concurrency, anything else is
    /// clamped to the block count. Results are collected in block order
    /// either way.
    std::size_t subproblem_workers = 1;
  };

  /// Telemetry of the most recent solve().
  struct Stats {
    /// False when the structure check (or any mid-flight anomaly) sent
    /// the solve down the monolithic path instead.
    bool decomposed = false;
    int blocks = 0;
    int coupling_rows = 0;
    /// Master re-solves performed (column-generation rounds).
    int master_iterations = 0;
    /// Block subproblem solves across all rounds (pricing + the initial
    /// per-block vertex solves).
    int subproblem_solves = 0;
  };

  DecomposedSolver() = default;
  explicit DecomposedSolver(Options options) : options_(options) {}

  /// Solves `lp`; `warm` is forwarded to the monolithic path (the
  /// decomposed path derives a better basis of its own). The returned
  /// LpSolution aggregates iterations and sparse_price_skips across the
  /// master, subproblem, and crossover solves.
  LpSolution solve(const LinearProgram& lp,
                   const SimplexBasis* warm = nullptr) const;

  /// Telemetry of the most recent solve() on this instance.
  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  mutable Stats stats_;
};

}  // namespace palb
