#include "solver/lagrange_selector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace palb {

namespace {
double factorial(int n) {
  double f = 1.0;
  for (int i = 2; i <= n; ++i) f *= static_cast<double>(i);
  return f;
}
}  // namespace

double lagrange_level_polynomial(const std::vector<double>& levels,
                                 double x) {
  PALB_REQUIRE(!levels.empty(), "selector needs at least one level");
  const int n = static_cast<int>(levels.size());
  // The paper's closed form assumes integer x for the (-1)^x / (x!(n-x)!)
  // normalization; for the continuous extension we use the equivalent
  // standard Lagrange basis through the same nodes {1..n} (identical at
  // every integer point, see tests).
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    double basis = 1.0;
    for (int j = 1; j <= n; ++j) {
      if (j == i) continue;
      basis *= (x - static_cast<double>(j)) /
               static_cast<double>(i - j);
    }
    acc += basis * levels[static_cast<std::size_t>(i - 1)];
  }
  return acc;
}

double lagrange_level_select(const std::vector<double>& levels, int x) {
  PALB_REQUIRE(!levels.empty(), "selector needs at least one level");
  const int n = static_cast<int>(levels.size());
  PALB_REQUIRE(x >= 1 && x <= n, "selector index x must be in [1, n]");
  // Verbatim Eq. 25/26: the product runs over j in [0, n] \ {i}.
  const double sign = (x % 2 == 0) ? 1.0 : -1.0;
  const double denom = factorial(x) * factorial(n - x);
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    double prod = 1.0;
    for (int j = 0; j <= n; ++j) {
      if (j == i) continue;
      prod *= static_cast<double>(j - x);
    }
    acc += prod * levels[static_cast<std::size_t>(i - 1)];
  }
  return acc * sign / denom;
}

}  // namespace palb
