#include "solver/decomposed.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace palb {

namespace {

/// Result of the block-angular structure check: `coupling` rows tie
/// otherwise-independent blocks of (rows, vars) together. Block order is
/// deterministic (first block row ascending; the trailing vars-only
/// "orphan" block — variables touched by coupling rows alone — last).
struct Structure {
  bool valid = false;
  std::vector<int> coupling;                 ///< ascending model row ids
  std::vector<std::vector<int>> block_rows;  ///< per block, ascending
  std::vector<std::vector<int>> block_vars;  ///< per block, ascending
};

int uf_find(std::vector<int>& parent, int x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

void uf_unite(std::vector<int>& parent, int a, int b) {
  a = uf_find(parent, a);
  b = uf_find(parent, b);
  if (a == b) return;
  // Smaller root wins: keeps find() results independent of visit order.
  if (b < a) std::swap(a, b);
  parent[static_cast<std::size_t>(b)] = a;
}

/// Peels rows in descending support order (ties to the lower index)
/// until the remaining rows split into >= 2 connected components over
/// shared variables. For the dispatcher's profile LP this peels the
/// per-DC capacity rows (support K*S) and leaves one block per
/// (class, front-end) flow row. Returns invalid when no peel count
/// yields a split, when any variable bound is infinite (DW needs
/// bounded subproblem vertices), or when the model is trivially small.
Structure detect_structure(const LinearProgram& lp) {
  Structure st;
  const int n = lp.num_variables();
  const int m = lp.num_constraints();
  if (n < 2 || m < 3) return st;
  for (int j = 0; j < n; ++j) {
    if (!std::isfinite(lp.lower_bound(j)) ||
        !std::isfinite(lp.upper_bound(j))) {
      return st;
    }
  }
  for (int r = 0; r < m; ++r) {
    if (lp.row_terms(r).empty()) return st;
  }

  std::vector<int> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto sa = lp.row_terms(a).size();
    const auto sb = lp.row_terms(b).size();
    return sa != sb ? sa > sb : a < b;
  });

  std::vector<char> is_coupling(static_cast<std::size_t>(m), 0);
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::vector<int> block_of_root(static_cast<std::size_t>(n));
  std::vector<int> row_block(static_cast<std::size_t>(m));
  for (int t = 1; t < m; ++t) {
    std::fill(is_coupling.begin(), is_coupling.end(), static_cast<char>(0));
    for (int i = 0; i < t; ++i) {
      is_coupling[static_cast<std::size_t>(order[static_cast<std::size_t>(
          i)])] = 1;
    }
    std::iota(parent.begin(), parent.end(), 0);
    for (int r = 0; r < m; ++r) {
      if (is_coupling[static_cast<std::size_t>(r)]) continue;
      const auto& terms = lp.row_terms(r);
      const int anchor = terms.front().first;
      for (const auto& [var, coef] : terms) {
        (void)coef;
        uf_unite(parent, anchor, var);
      }
    }
    std::fill(block_of_root.begin(), block_of_root.end(), -1);
    std::fill(row_block.begin(), row_block.end(), -1);
    int nblocks = 0;
    for (int r = 0; r < m; ++r) {
      if (is_coupling[static_cast<std::size_t>(r)]) continue;
      const int root = uf_find(parent, lp.row_terms(r).front().first);
      if (block_of_root[static_cast<std::size_t>(root)] < 0) {
        block_of_root[static_cast<std::size_t>(root)] = nblocks++;
      }
      row_block[static_cast<std::size_t>(r)] =
          block_of_root[static_cast<std::size_t>(root)];
    }
    if (nblocks < 2) continue;

    st.coupling.clear();
    for (int r = 0; r < m; ++r) {
      if (is_coupling[static_cast<std::size_t>(r)]) st.coupling.push_back(r);
    }
    st.block_rows.assign(static_cast<std::size_t>(nblocks), {});
    st.block_vars.assign(static_cast<std::size_t>(nblocks), {});
    for (int r = 0; r < m; ++r) {
      const int b = row_block[static_cast<std::size_t>(r)];
      if (b >= 0) st.block_rows[static_cast<std::size_t>(b)].push_back(r);
    }
    std::vector<int> orphans;
    for (int j = 0; j < n; ++j) {
      const int b = block_of_root[static_cast<std::size_t>(uf_find(parent, j))];
      if (b >= 0) {
        st.block_vars[static_cast<std::size_t>(b)].push_back(j);
      } else {
        orphans.push_back(j);  // appears only in coupling rows (or nowhere)
      }
    }
    if (!orphans.empty()) {
      st.block_rows.emplace_back();
      st.block_vars.push_back(std::move(orphans));
    }
    st.valid = true;
    return st;
  }
  return st;
}

/// One block's standalone subproblem: its rows and variables lifted into
/// a private LP (built once; only the costs change between pricing
/// rounds), plus the basis chained across rounds.
struct Block {
  LinearProgram sub;
  std::vector<int> vars;  ///< model var per local var (ascending)
  SimplexBasis basis;
  bool has_basis = false;
};

/// One generated column of the master: a vertex of its block, with the
/// master objective cost (c . v) and per-coupling-row activity (A_r . v)
/// precomputed in deterministic (ascending local var) order.
struct PoolColumn {
  int block = 0;
  double cost = 0.0;
  std::vector<double> act;  ///< per coupling slot
  std::vector<double> v;    ///< block-local vertex
};

}  // namespace

LpSolution DecomposedSolver::solve(const LinearProgram& lp,
                                   const SimplexBasis* warm) const {
  stats_ = {};
  const SimplexSolver mono(options_.lp);
  const Structure st = detect_structure(lp);
  if (!st.valid) return mono.solve(lp, warm);

  const int n = lp.num_variables();
  const int m = lp.num_constraints();
  const int nblocks = static_cast<int>(st.block_rows.size());
  const int ncoupling = static_cast<int>(st.coupling.size());
  const Sense sense = lp.objective_sense();
  stats_.decomposed = true;
  stats_.blocks = nblocks;
  stats_.coupling_rows = ncoupling;

  // Everything the pricing loop spends before the crossover, so the
  // returned solution can account for the full cost of the solve.
  int inner_iterations = 0;
  std::uint64_t inner_skips = 0;
  auto fall_back_monolithic = [&]() {
    stats_.decomposed = false;
    LpSolution sol = mono.solve(lp, warm);
    sol.iterations += inner_iterations;
    sol.sparse_price_skips += inner_skips;
    return sol;
  };

  // Per-variable coupling-row entries (slot, coef), flattened CSC-style
  // off the model's cached column view.
  std::vector<int> coupling_slot(static_cast<std::size_t>(m), -1);
  for (int s = 0; s < ncoupling; ++s) {
    coupling_slot[static_cast<std::size_t>(
        st.coupling[static_cast<std::size_t>(s)])] = s;
  }
  const ColumnView& csc = lp.column_view();
  std::vector<int> vc_start(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> vc_slot;
  std::vector<double> vc_coef;
  for (int j = 0; j < n; ++j) {
    for (int at = csc.col_start[static_cast<std::size_t>(j)];
         at < csc.col_start[static_cast<std::size_t>(j) + 1]; ++at) {
      const int slot =
          coupling_slot[static_cast<std::size_t>(csc.row_index[at])];
      if (slot >= 0) {
        vc_slot.push_back(slot);
        vc_coef.push_back(csc.value[at]);
      }
    }
    vc_start[static_cast<std::size_t>(j) + 1] =
        static_cast<int>(vc_slot.size());
  }

  // Build each block's subproblem LP once.
  std::vector<Block> blocks(static_cast<std::size_t>(nblocks));
  std::vector<int> local_of(static_cast<std::size_t>(n), -1);
  for (int b = 0; b < nblocks; ++b) {
    Block& blk = blocks[static_cast<std::size_t>(b)];
    blk.vars = st.block_vars[static_cast<std::size_t>(b)];
    for (std::size_t i = 0; i < blk.vars.size(); ++i) {
      const int j = blk.vars[i];
      local_of[static_cast<std::size_t>(j)] = static_cast<int>(i);
      blk.sub.add_variable(lp.lower_bound(j), lp.upper_bound(j), lp.cost(j));
    }
    for (const int r : st.block_rows[static_cast<std::size_t>(b)]) {
      std::vector<std::pair<int, double>> terms;
      for (const auto& [var, coef] : lp.row_terms(r)) {
        terms.emplace_back(local_of[static_cast<std::size_t>(var)], coef);
      }
      blk.sub.add_constraint(terms, lp.relation(r), lp.rhs(r));
    }
    blk.sub.set_objective_sense(sense);
    for (const int j : blk.vars) local_of[static_cast<std::size_t>(j)] = -1;
  }

  std::vector<PoolColumn> pool;
  // Column ids per block, for the convexity rows and duplicate checks.
  std::vector<std::vector<int>> block_cols(static_cast<std::size_t>(nblocks));
  auto make_column = [&](int b, const std::vector<double>& x) {
    PoolColumn col;
    col.block = b;
    col.v = x;
    col.act.assign(static_cast<std::size_t>(ncoupling), 0.0);
    const Block& blk = blocks[static_cast<std::size_t>(b)];
    for (std::size_t i = 0; i < blk.vars.size(); ++i) {
      const int j = blk.vars[i];
      col.cost += lp.cost(j) * x[i];
      for (int at = vc_start[static_cast<std::size_t>(j)];
           at < vc_start[static_cast<std::size_t>(j) + 1]; ++at) {
        col.act[static_cast<std::size_t>(vc_slot[static_cast<std::size_t>(
            at)])] += vc_coef[static_cast<std::size_t>(at)] * x[i];
      }
    }
    return col;
  };
  auto add_column = [&](int b, const std::vector<double>& x) {
    for (const int i : block_cols[static_cast<std::size_t>(b)]) {
      if (pool[static_cast<std::size_t>(i)].v == x) return false;  // bitwise
    }
    block_cols[static_cast<std::size_t>(b)].push_back(
        static_cast<int>(pool.size()));
    pool.push_back(make_column(b, x));
    return true;
  };

  // Initial columns: each block's own-objective optimal vertex, plus its
  // all-lower-bounds vertex when block-feasible (for the dispatch LPs
  // the zero vertex is feasible everywhere, so the master always has the
  // "route nothing" combination to start from).
  for (int b = 0; b < nblocks; ++b) {
    Block& blk = blocks[static_cast<std::size_t>(b)];
    const LpSolution sol = mono.solve(blk.sub);
    ++stats_.subproblem_solves;
    inner_iterations += sol.iterations;
    inner_skips += sol.sparse_price_skips;
    if (sol.status != LpStatus::kOptimal) {
      return fall_back_monolithic();  // block infeasible => model decides
    }
    blk.basis = sol.basis;
    blk.has_basis = true;
    add_column(b, sol.x);
    std::vector<double> at_lower(blk.vars.size());
    for (std::size_t i = 0; i < blk.vars.size(); ++i) {
      at_lower[i] = lp.lower_bound(blk.vars[i]);
    }
    if (blk.sub.is_feasible(at_lower)) add_column(b, at_lower);
  }

  // Shared pool for the per-round subproblem fan-out (created once, not
  // per round). subproblem_workers == 1 keeps everything inline.
  const std::size_t resolved = bounded_workers(
      options_.subproblem_workers, static_cast<std::size_t>(nblocks));
  std::unique_ptr<ThreadPool> fanout;
  if (resolved > 1) fanout = std::make_unique<ThreadPool>(resolved);

  // --- Column generation. -------------------------------------------------
  LpSolution master_sol;
  SimplexBasis master_basis;
  bool have_master = false;
  for (int round = 0; round < options_.max_master_iterations; ++round) {
    // Master over the current pool: coupling rows in model order, then
    // one convexity row per block. Columns only ever append, so the
    // previous round's basis (master-variable indexed) stays valid.
    LinearProgram master;
    master.set_objective_sense(sense);
    for (const PoolColumn& col : pool) {
      master.add_variable(0.0, 1.0, col.cost);
    }
    for (int s = 0; s < ncoupling; ++s) {
      const int r = st.coupling[static_cast<std::size_t>(s)];
      std::vector<std::pair<int, double>> terms;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const double a = pool[i].act[static_cast<std::size_t>(s)];
        if (a != 0.0) terms.emplace_back(static_cast<int>(i), a);
      }
      master.add_constraint(terms, lp.relation(r), lp.rhs(r));
    }
    for (int b = 0; b < nblocks; ++b) {
      std::vector<std::pair<int, double>> terms;
      for (const int i : block_cols[static_cast<std::size_t>(b)]) {
        terms.emplace_back(i, 1.0);
      }
      master.add_constraint(terms, Relation::kEq, 1.0);
    }
    master_sol =
        mono.solve(master, have_master ? &master_basis : nullptr);
    inner_iterations += master_sol.iterations;
    inner_skips += master_sol.sparse_price_skips;
    ++stats_.master_iterations;
    if (master_sol.status != LpStatus::kOptimal) {
      // Usually "the initial columns cannot cover the coupling rows yet"
      // — rather than running a phase-1 master, hand the whole model to
      // the monolithic path.
      return fall_back_monolithic();
    }
    master_basis = master_sol.basis;
    have_master = true;

    // Price every block against the master duals: subproblem objective
    // (c - pi A)x in the model's own sense; a block's best vertex enters
    // the pool when it beats the block's convexity dual mu_b.
    const std::function<LpSolution(std::size_t)> price =
        [&](std::size_t bz) -> LpSolution {
      Block& blk = blocks[bz];
      for (std::size_t i = 0; i < blk.vars.size(); ++i) {
        const int j = blk.vars[i];
        double red = lp.cost(j);
        for (int at = vc_start[static_cast<std::size_t>(j)];
             at < vc_start[static_cast<std::size_t>(j) + 1]; ++at) {
          red -= master_sol.duals[static_cast<std::size_t>(
                     vc_slot[static_cast<std::size_t>(at)])] *
                 vc_coef[static_cast<std::size_t>(at)];
        }
        blk.sub.set_cost(static_cast<int>(i), red);
      }
      const SimplexSolver sub_solver(options_.lp);
      return sub_solver.solve(blk.sub, blk.has_basis ? &blk.basis : nullptr);
    };
    std::vector<LpSolution> priced;
    if (fanout) {
      priced = parallel_collect<LpSolution>(
          *fanout, static_cast<std::size_t>(nblocks), price);
    } else {
      priced.reserve(static_cast<std::size_t>(nblocks));
      for (int b = 0; b < nblocks; ++b) {
        priced.push_back(price(static_cast<std::size_t>(b)));
      }
    }
    stats_.subproblem_solves += nblocks;

    bool added = false;
    for (int b = 0; b < nblocks; ++b) {
      LpSolution& sol = priced[static_cast<std::size_t>(b)];
      inner_iterations += sol.iterations;
      inner_skips += sol.sparse_price_skips;
      if (sol.status != LpStatus::kOptimal) return fall_back_monolithic();
      Block& blk = blocks[static_cast<std::size_t>(b)];
      blk.basis = std::move(sol.basis);
      blk.has_basis = true;
      const double reduced =
          sol.objective -
          master_sol.duals[static_cast<std::size_t>(ncoupling + b)];
      const bool attractive = sense == Sense::kMaximize
                                  ? reduced > options_.pricing_tolerance
                                  : reduced < -options_.pricing_tolerance;
      if (attractive && add_column(b, sol.x)) added = true;
    }
    if (!added) break;  // no block improves the master: DW has converged
  }

  if (!have_master) return fall_back_monolithic();

  // --- Crossover. ---------------------------------------------------------
  // Map the DW point x = sum_i lambda_i v_i back to model space and turn
  // it into a simplex basis guess: strictly interior variables basic,
  // non-binding rows keep their slack basic (the warm-start installer
  // fills any rows left over and discards the guess entirely if it lands
  // out of bounds). The monolithic warm solve from here owns the final
  // answer — DW convergence only affects how many pivots it still needs.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const double lambda = master_sol.x[i];
    if (lambda == 0.0) continue;
    const PoolColumn& col = pool[i];
    const Block& blk = blocks[static_cast<std::size_t>(col.block)];
    for (std::size_t v = 0; v < blk.vars.size(); ++v) {
      x[static_cast<std::size_t>(blk.vars[v])] += lambda * col.v[v];
    }
  }
  constexpr double kGuessTol = 1e-7;
  SimplexBasis guess;
  for (int j = 0; j < n; ++j) {
    const double lb = lp.lower_bound(j);
    const double ub = lp.upper_bound(j);
    const double xj = x[static_cast<std::size_t>(j)];
    if (xj > lb + kGuessTol && xj < ub - kGuessTol) {
      guess.basic.push_back({SimplexBasis::Kind::kVariable, j});
    } else if (ub > lb && xj >= ub - kGuessTol) {
      guess.at_upper.push_back(j);
    }
  }
  for (int r = 0; r < m; ++r) {
    const double activity = lp.row_activity(r, x);
    const double slack_tol = kGuessTol * (1.0 + std::abs(lp.rhs(r)));
    const bool loose =
        (lp.relation(r) == Relation::kLe &&
         activity < lp.rhs(r) - slack_tol) ||
        (lp.relation(r) == Relation::kGe &&
         activity > lp.rhs(r) + slack_tol);
    if (loose) guess.basic.push_back({SimplexBasis::Kind::kSlack, r});
  }

  LpSolution final_sol = mono.solve(lp, &guess);
  final_sol.iterations += inner_iterations;
  final_sol.sparse_price_skips += inner_skips;
  return final_sol;
}

}  // namespace palb
