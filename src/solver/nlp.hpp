#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace palb {

/// Box-constrained nonlinear program with inequality/equality constraints:
///
///   min f(x)   s.t.  g_i(x) <= 0,  h_j(x) == 0,  lb <= x <= ub.
///
/// Callbacks take the full point; gradients are estimated by central
/// finite differences unless an analytic gradient is supplied. This is the
/// in-tree stand-in for the commercial NLP/CLP solvers (CPLEX, AIMMS) the
/// paper used for its big-M multi-level-TUF formulation.
struct NlpProblem {
  using Fn = std::function<double(const std::vector<double>&)>;
  using Grad = std::function<std::vector<double>(const std::vector<double>&)>;

  std::size_t dimension = 0;
  std::vector<double> lower;  ///< size `dimension`
  std::vector<double> upper;  ///< size `dimension`
  Fn objective;
  Grad objective_gradient;             ///< optional
  std::vector<Fn> inequalities;        ///< g(x) <= 0
  std::vector<Fn> equalities;          ///< h(x) == 0

  void validate() const;
};

struct NlpResult {
  bool converged = false;
  /// Max constraint violation at the returned point.
  double infeasibility = 0.0;
  double objective = 0.0;
  std::vector<double> x;
  int outer_iterations = 0;
  int inner_iterations = 0;
};

/// Augmented-Lagrangian solver: the outer loop updates multipliers and the
/// penalty; the inner loop minimizes the augmented Lagrangian over the box
/// with projected gradient descent + Armijo backtracking.
class AugLagSolver {
 public:
  /// Inner minimizer of the augmented Lagrangian over the box.
  enum class InnerMethod {
    kProjectedGradient,  ///< Armijo backtracking (robust default)
    kAccelerated,        ///< FISTA-style momentum with function-value
                         ///< restart — far fewer iterations on
                         ///< ill-conditioned smooth problems
  };

  struct Options {
    int max_outer = 40;
    int max_inner = 400;
    InnerMethod inner_method = InnerMethod::kProjectedGradient;
    double initial_penalty = 10.0;
    double penalty_growth = 4.0;
    double max_penalty = 1e8;
    double feasibility_tolerance = 1e-6;
    double gradient_tolerance = 1e-7;
    double fd_step = 1e-6;
  };

  AugLagSolver() = default;
  explicit AugLagSolver(Options options) : options_(options) {}

  NlpResult solve(const NlpProblem& problem,
                  const std::vector<double>& x0) const;

  /// Runs `starts` solves from random points in the box (plus the supplied
  /// x0) and returns the best feasible result, or the least-infeasible one
  /// if none converged. The multi-start loop is embarrassingly parallel and
  /// fans across a thread pool.
  ///
  /// `warm_start`, when non-null and of matching dimension, adds one more
  /// start point (typically the previous slot's solution) competing on
  /// equal footing with the random starts; exact ties keep the earlier
  /// point, so passing a warm point never degrades the result.
  NlpResult solve_multistart(const NlpProblem& problem,
                             const std::vector<double>& x0, int starts,
                             Rng rng,
                             const std::vector<double>* warm_start =
                                 nullptr) const;

 private:
  Options options_;
};

}  // namespace palb
