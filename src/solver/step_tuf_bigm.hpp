#pragma once

#include <functional>
#include <string>
#include <vector>

namespace palb {

/// The paper's big-M transformation of a multi-level step-downward TUF
/// (Eqs. 11-13 for two levels, Eqs. 17-22 generalized to n levels).
///
/// A step TUF has levels U_1 > U_2 > ... > U_n with sub-deadlines
/// D_1 < D_2 < ... < D_n; U(R) = U_q on the band D_{q-1} < R <= D_q
/// (D_0 = 0). Because an if/else cannot be written inside a mathematical
/// program, the paper replaces "U = TUF(R)" with the constraint system
///
///   (R - D_1)        + M (U - U_1)                 <= 0
///   (D_q + d - R)    + M (U_{q+1} - U)(U - U_{q+2}) <= 0   q = 1..n-2
///   (R - D_q)        + M (U_q - U)(U - U_{q-1})     <= 0   q = 2..n-1
///   (D_{n-1} + d - R) + M (U_n - U)                 <= 0
///
/// over U restricted to {U_1..U_n}, which admits exactly U = U(R) for any
/// R in (0, D_n]. This class materializes those constraints as callable
/// g(R, U) <= 0 functors — the exact objects fed to the NLP solver by the
/// paper-faithful BigMNlpPolicy — plus helpers used to *prove* the
/// equivalence in the test suite.
class StepTufBigM {
 public:
  /// `utilities` = {U_1..U_n} strictly decreasing, all > 0;
  /// `deadlines` = {D_1..D_n} strictly increasing, all > 0.
  /// `big_m` is the paper's "large constant", `delta` its "small enough"
  /// time increment.
  StepTufBigM(std::vector<double> utilities, std::vector<double> deadlines,
              double big_m = 1e6, double delta = 1e-6);

  std::size_t num_levels() const { return utilities_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }
  const std::vector<double>& utilities() const { return utilities_; }
  const std::vector<double>& deadlines() const { return deadlines_; }
  double big_m() const { return big_m_; }
  double delta() const { return delta_; }

  /// Value of constraint `i` at the point (R, U); feasible iff <= 0.
  double constraint_value(std::size_t i, double delay, double utility) const;
  /// Human-readable form of constraint `i` (for diagnostics / docs).
  const std::string& constraint_label(std::size_t i) const;

  /// True iff every constraint holds within `tol` at (R, U).
  bool admits(double delay, double utility, double tol = 1e-9) const;

  /// The unique level the system admits at this delay, or -1 if the
  /// system admits none / more than one level (both would falsify the
  /// paper's equivalence claim; exercised by the property tests).
  int admitted_level(double delay, double tol = 1e-9) const;

  /// Direct evaluation of the step TUF (ground truth): U(R), 0 past D_n.
  double direct_utility(double delay) const;

 private:
  std::vector<double> utilities_;
  std::vector<double> deadlines_;
  double big_m_;
  double delta_;
  std::vector<std::function<double(double, double)>> constraints_;
  std::vector<std::string> labels_;
};

}  // namespace palb
