#include "solver/step_tuf_bigm.hpp"

#include <cmath>

#include "util/error.hpp"

namespace palb {

StepTufBigM::StepTufBigM(std::vector<double> utilities,
                         std::vector<double> deadlines, double big_m,
                         double delta)
    : utilities_(std::move(utilities)),
      deadlines_(std::move(deadlines)),
      big_m_(big_m),
      delta_(delta) {
  PALB_REQUIRE(!utilities_.empty(), "TUF needs at least one level");
  PALB_REQUIRE(utilities_.size() == deadlines_.size(),
               "one sub-deadline per utility level");
  PALB_REQUIRE(big_m_ > 0.0 && delta_ > 0.0, "big_m and delta must be > 0");
  for (std::size_t q = 0; q + 1 < utilities_.size(); ++q) {
    PALB_REQUIRE(utilities_[q] > utilities_[q + 1],
                 "utility levels must be strictly decreasing");
    PALB_REQUIRE(deadlines_[q] < deadlines_[q + 1],
                 "sub-deadlines must be strictly increasing");
  }
  PALB_REQUIRE(deadlines_.front() > 0.0, "deadlines must be positive");

  const std::size_t n = utilities_.size();
  const auto& u = utilities_;
  const auto& d = deadlines_;
  const double m = big_m_;
  const double dl = delta_;

  if (n == 1) {
    // One-level TUF (Eq. 9): the TUF is a constant before the deadline;
    // no band-selection constraints are needed (U == U_1 identically and
    // the QoS deadline R <= D_1 lives in the dispatch model, Eq. 6).
    constraints_.emplace_back(
        [u0 = u[0]](double /*delay*/, double utility) {
          return std::abs(utility - u0);
        });
    labels_.push_back("|U - U_1| <= 0");
    return;
  }

  // Upper guard for level 1 (Eq. 12 / 19): R > D_1 forbids U_1.
  constraints_.emplace_back([d1 = d[0], m, u1 = u[0]](double delay,
                                                      double utility) {
    return (delay - d1) + m * (utility - u1);
  });
  labels_.push_back("(R - D_1) + M (U - U_1) <= 0");

  // Interior guards (Eqs. 20/21 pattern), q is 1-based level index.
  for (std::size_t q = 1; q + 1 < n; ++q) {
    // Lower guard at D_q: R <= D_q forbids U_{q+1} (and U_{q+2}). The
    // loop range (q <= n-2) guarantees u[q+1] exists; the q = n-1 guard
    // is the linear one emitted after the loop.
    constraints_.emplace_back(
        [dq = d[q - 1] /*D_q, 0-based*/, m, dl, uq1 = u[q],
         uq2 = u[q + 1]](double delay, double utility) {
          return (dq + dl - delay) + m * (uq1 - utility) * (utility - uq2);
        });
    labels_.push_back("(D_" + std::to_string(q) + " + d - R) + M (U_" +
                      std::to_string(q + 1) + " - U)(U - U_" +
                      std::to_string(q + 2) + ") <= 0");
    // Upper guard at D_{q+1}: R > D_{q+1} forbids U_{q+1} and U_q.
    constraints_.emplace_back(
        [dq1 = d[q], m, uq1 = u[q], uq = u[q - 1]](double delay,
                                                   double utility) {
          return (delay - dq1) + m * (uq1 - utility) * (utility - uq);
        });
    labels_.push_back("(R - D_" + std::to_string(q + 1) + ") + M (U_" +
                      std::to_string(q + 1) + " - U)(U - U_" +
                      std::to_string(q) + ") <= 0");
  }

  // Final lower guard (Eq. 13 / 22): R <= D_{n-1} forbids U_n.
  constraints_.emplace_back([dn1 = d[n - 2], m, dl,
                             un = u[n - 1]](double delay, double utility) {
    return (dn1 + dl - delay) + m * (un - utility);
  });
  labels_.push_back("(D_" + std::to_string(n - 1) + " + d - R) + M (U_" +
                    std::to_string(n) + " - U) <= 0");
}

double StepTufBigM::constraint_value(std::size_t i, double delay,
                                     double utility) const {
  PALB_REQUIRE(i < constraints_.size(), "constraint index out of range");
  return constraints_[i](delay, utility);
}

const std::string& StepTufBigM::constraint_label(std::size_t i) const {
  PALB_REQUIRE(i < labels_.size(), "constraint index out of range");
  return labels_[i];
}

bool StepTufBigM::admits(double delay, double utility, double tol) const {
  for (const auto& g : constraints_) {
    if (g(delay, utility) > tol) return false;
  }
  return true;
}

int StepTufBigM::admitted_level(double delay, double tol) const {
  int found = -1;
  for (std::size_t q = 0; q < utilities_.size(); ++q) {
    if (admits(delay, utilities_[q], tol)) {
      if (found >= 0) return -1;  // ambiguous: equivalence would be broken
      found = static_cast<int>(q);
    }
  }
  return found;
}

double StepTufBigM::direct_utility(double delay) const {
  PALB_REQUIRE(delay > 0.0, "delay must be positive");
  for (std::size_t q = 0; q < deadlines_.size(); ++q) {
    if (delay <= deadlines_[q]) return utilities_[q];
  }
  return 0.0;  // past the final deadline the request is worthless
}

}  // namespace palb
