#include "solver/linear_program.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace palb {

int LinearProgram::add_variable(double lb, double ub, double cost,
                                std::string name) {
  PALB_REQUIRE(lb <= ub, "variable bounds must satisfy lb <= ub");
  invalidate_columns();
  costs_.push_back(cost);
  lbs_.push_back(lb);
  ubs_.push_back(ub);
  if (name.empty()) name = "x" + std::to_string(costs_.size() - 1);
  var_names_.push_back(std::move(name));
  return static_cast<int>(costs_.size()) - 1;
}

int LinearProgram::add_constraint(Relation rel, double rhs,
                                  std::string name) {
  invalidate_columns();
  rows_.emplace_back();
  relations_.push_back(rel);
  rhss_.push_back(rhs);
  if (name.empty()) name = "r" + std::to_string(rows_.size() - 1);
  row_names_.push_back(std::move(name));
  return static_cast<int>(rows_.size()) - 1;
}

int LinearProgram::add_constraint(
    const std::vector<std::pair<int, double>>& terms, Relation rel,
    double rhs, std::string name) {
  const int row = add_constraint(rel, rhs, std::move(name));
  // Bulk path: sort once and merge duplicates in one sweep instead of
  // scanning the growing row per term (which made dense-row construction
  // quadratic). stable_sort keeps equal variables in encounter order, so
  // duplicate coefficients still sum in the order the caller wrote them.
  auto& dst = rows_[row];
  dst = terms;
  for (const auto& [var, coef] : dst) {
    (void)coef;
    check_var(var);
  }
  std::stable_sort(dst.begin(), dst.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::size_t w = 0;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (w > 0 && dst[w - 1].first == dst[i].first) {
      dst[w - 1].second += dst[i].second;
    } else {
      dst[w++] = dst[i];
    }
  }
  dst.resize(w);
  return row;
}

std::vector<std::pair<int, double>>::iterator LinearProgram::find_term(
    int row, int var) {
  // Rows are kept sorted by variable index (the class invariant), so a
  // single coefficient is a binary search away.
  auto& terms = rows_[row];
  return std::lower_bound(terms.begin(), terms.end(), var,
                          [](const std::pair<int, double>& t, int v) {
                            return t.first < v;
                          });
}

void LinearProgram::set_coefficient(int row, int var, double value) {
  check_row(row);
  check_var(var);
  invalidate_columns();
  auto it = find_term(row, var);
  if (it != rows_[row].end() && it->first == var) {
    it->second = value;
    return;
  }
  rows_[row].insert(it, {var, value});
}

void LinearProgram::add_term(int row, int var, double value) {
  check_row(row);
  check_var(var);
  invalidate_columns();
  auto it = find_term(row, var);
  if (it != rows_[row].end() && it->first == var) {
    it->second += value;
    return;
  }
  rows_[row].insert(it, {var, value});
}

void LinearProgram::set_cost(int var, double cost) {
  check_var(var);
  costs_[var] = cost;
}

void LinearProgram::set_bounds(int var, double lb, double ub) {
  check_var(var);
  PALB_REQUIRE(lb <= ub, "variable bounds must satisfy lb <= ub");
  lbs_[var] = lb;
  ubs_[var] = ub;
}

double LinearProgram::cost(int var) const {
  check_var(var);
  return costs_[var];
}

double LinearProgram::lower_bound(int var) const {
  check_var(var);
  return lbs_[var];
}

double LinearProgram::upper_bound(int var) const {
  check_var(var);
  return ubs_[var];
}

Relation LinearProgram::relation(int row) const {
  check_row(row);
  return relations_[row];
}

double LinearProgram::rhs(int row) const {
  check_row(row);
  return rhss_[row];
}

const std::vector<std::pair<int, double>>& LinearProgram::row_terms(
    int row) const {
  check_row(row);
  return rows_[row];
}

const ColumnView& LinearProgram::column_view() const {
  if (!columns_) {
    // One counting pass sizes the columns, one scatter pass fills them.
    // Rows are visited in index order, so each column's entries come out
    // row-ascending with no per-column sort.
    auto view = std::make_shared<ColumnView>();
    const auto n = static_cast<std::size_t>(num_variables());
    view->col_start.assign(n + 1, 0);
    for (const auto& row : rows_) {
      for (const auto& [var, coef] : row) {
        (void)coef;
        ++view->col_start[static_cast<std::size_t>(var) + 1];
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      view->col_start[j + 1] += view->col_start[j];
    }
    view->row_index.resize(static_cast<std::size_t>(view->col_start[n]));
    view->value.resize(view->row_index.size());
    std::vector<int> fill(view->col_start.begin(),
                          view->col_start.end() - 1);
    for (int r = 0; r < num_constraints(); ++r) {
      for (const auto& [var, coef] : rows_[static_cast<std::size_t>(r)]) {
        const auto at =
            static_cast<std::size_t>(fill[static_cast<std::size_t>(var)]++);
        view->row_index[at] = r;
        view->value[at] = coef;
      }
    }
    columns_ = std::move(view);
  }
  return *columns_;
}

const std::string& LinearProgram::variable_name(int var) const {
  check_var(var);
  return var_names_[var];
}

const std::string& LinearProgram::constraint_name(int row) const {
  check_row(row);
  return row_names_[row];
}

double LinearProgram::row_activity(int row,
                                   const std::vector<double>& x) const {
  check_row(row);
  PALB_REQUIRE(static_cast<int>(x.size()) == num_variables(),
               "point dimension mismatch");
  double acc = 0.0;
  for (const auto& [var, coef] : rows_[row]) acc += coef * x[var];
  return acc;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  PALB_REQUIRE(static_cast<int>(x.size()) == num_variables(),
               "point dimension mismatch");
  double acc = offset_;
  for (int j = 0; j < num_variables(); ++j) acc += costs_[j] * x[j];
  return acc;
}

bool LinearProgram::is_feasible(const std::vector<double>& x,
                                double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) return false;
  for (int j = 0; j < num_variables(); ++j) {
    if (x[j] < lbs_[j] - tol || x[j] > ubs_[j] + tol) return false;
    if (!std::isfinite(x[j])) return false;
  }
  for (int r = 0; r < num_constraints(); ++r) {
    const double a = row_activity(r, x);
    switch (relations_[r]) {
      case Relation::kLe:
        if (a > rhss_[r] + tol) return false;
        break;
      case Relation::kGe:
        if (a < rhss_[r] - tol) return false;
        break;
      case Relation::kEq:
        if (std::abs(a - rhss_[r]) > tol) return false;
        break;
    }
  }
  return true;
}

void LinearProgram::check_var(int var) const {
  PALB_REQUIRE(var >= 0 && var < num_variables(), "variable index range");
}

void LinearProgram::check_row(int row) const {
  PALB_REQUIRE(row >= 0 && row < num_constraints(), "row index range");
}

}  // namespace palb
