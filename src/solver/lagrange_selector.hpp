#pragma once

#include <vector>

namespace palb {

/// Implements the paper's Eq. 25/26 level selector:
///
///   U(x) = sum_{i=1..n} [ prod_{j=0..n, j!=i} (j - x) ] * U_i
///          * (-1)^x / ( x! (n-x)! ),      1 <= x <= n  (Eq. 25)
///
/// which is a Lagrange interpolation through the points (i, U_i): at every
/// integer x in [1, n] it returns exactly U_x, letting an integer variable
/// x pick one utility level of a multi-level step-downward TUF inside a
/// mathematical program with no if/else.
///
/// `levels` is {U_1, ..., U_n}; `x` must be an integer in [1, n] (checked).
double lagrange_level_select(const std::vector<double>& levels, int x);

/// Continuous extension of the same polynomial (used by relaxations and by
/// tests probing behaviour between the integer points).
double lagrange_level_polynomial(const std::vector<double>& levels, double x);

}  // namespace palb
