#pragma once

#include <string>
#include <vector>

#include "units/units.hpp"

namespace palb {

/// Hourly electricity price series for one location, in $/kWh. The
/// controller reads one value per time slot (the paper holds the price
/// constant within a slot, §III). Indexing wraps modulo the trace length
/// so a 24-hour curve can drive arbitrarily long runs.
class PriceTrace {
 public:
  PriceTrace() = default;
  PriceTrace(std::string location, std::vector<double> dollars_per_kwh);

  const std::string& location() const { return location_; }
  std::size_t size() const { return prices_.size(); }
  bool empty() const { return prices_.empty(); }

  /// Price for slot `t` (wraps).
  double at(std::size_t t) const;
  /// Typed price for slot `t` — what the controller feeds SlotInput.
  units::DollarsPerKwh price(std::size_t t) const {
    return units::DollarsPerKwh{at(t)};
  }
  const std::vector<double>& values() const { return prices_; }

  double min_price() const;
  double max_price() const;
  double mean_price() const;

  /// Returns a trace scaled by `factor` (sensitivity sweeps).
  PriceTrace scaled(double factor) const;
  /// Returns the sub-trace for slots [first, first+count) (wrapping),
  /// e.g. the paper's 14:00-19:00 window in the Google study.
  PriceTrace window(std::size_t first, std::size_t count) const;

 private:
  std::string location_;
  std::vector<double> prices_;
};

}  // namespace palb
