#include "market/price_library.hpp"

namespace palb::prices {

// 24 hourly values, $/kWh, midnight-to-midnight local time.
// Magnitudes follow typical 2012-era wholesale levels (a few cents/kWh)
// so the energy bill of a request at Google's ~0.0003 kWh/search lands in
// the same relative range as the paper's profit values.

PriceTrace houston_tx() {
  // Volatile: cheap overnight, sharp spike around 14:00-17:00.
  return PriceTrace(
      "Houston, TX",
      {0.031, 0.029, 0.027, 0.026, 0.026, 0.028, 0.033, 0.039,
       0.044, 0.048, 0.053, 0.059, 0.066, 0.078, 0.096, 0.104,
       0.098, 0.082, 0.064, 0.052, 0.045, 0.040, 0.036, 0.033});
}

PriceTrace mountain_view_ca() {
  // Highest on average, broad afternoon/evening plateau.
  return PriceTrace(
      "Mountain View, CA",
      {0.052, 0.049, 0.047, 0.046, 0.047, 0.050, 0.057, 0.066,
       0.074, 0.081, 0.088, 0.094, 0.099, 0.103, 0.106, 0.108,
       0.107, 0.104, 0.098, 0.090, 0.079, 0.069, 0.061, 0.055});
}

PriceTrace atlanta_ga() {
  // Flat and cheap; mild midday bump.
  return PriceTrace(
      "Atlanta, GA",
      {0.034, 0.033, 0.032, 0.032, 0.032, 0.033, 0.035, 0.038,
       0.041, 0.043, 0.046, 0.048, 0.050, 0.051, 0.052, 0.052,
       0.051, 0.049, 0.046, 0.043, 0.040, 0.038, 0.036, 0.035});
}

std::vector<PriceTrace> figure1_set() {
  return {houston_tx(), mountain_view_ca(), atlanta_ga()};
}

PriceTrace flat(const std::string& location, double price,
                std::size_t hours) {
  return PriceTrace(location, std::vector<double>(hours, price));
}

}  // namespace palb::prices
