#include "market/price_generator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace palb {

OuPriceGenerator::OuPriceGenerator(Params params) : params_(params) {
  PALB_REQUIRE(params_.mean > 0.0, "mean price must be > 0");
  PALB_REQUIRE(params_.reversion >= 0.0, "reversion must be >= 0");
  PALB_REQUIRE(params_.volatility >= 0.0, "volatility must be >= 0");
  PALB_REQUIRE(params_.floor >= 0.0, "price floor must be >= 0");
}

PriceTrace OuPriceGenerator::generate(const std::string& location,
                                      std::size_t hours, Rng& rng) const {
  PALB_REQUIRE(hours > 0, "need at least one hour");
  std::vector<double> out;
  out.reserve(hours);
  double noise = 0.0;  // OU deviation around the diurnal base
  for (std::size_t h = 0; h < hours; ++h) {
    const double hour_of_day = static_cast<double>(h % 24);
    const double base =
        params_.mean +
        0.5 * params_.diurnal_amplitude *
            std::cos(2.0 * M_PI * (hour_of_day - params_.peak_hour) / 24.0);
    // Exact OU transition over one hour.
    const double decay = std::exp(-params_.reversion);
    const double stddev =
        params_.reversion > 0.0
            ? params_.volatility *
                  std::sqrt((1.0 - decay * decay) / (2.0 * params_.reversion))
            : params_.volatility;
    noise = noise * decay + rng.normal(0.0, stddev);
    out.push_back(std::max(params_.floor, base + noise));
  }
  return PriceTrace(location, std::move(out));
}

}  // namespace palb
