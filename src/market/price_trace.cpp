#include "market/price_trace.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace palb {

PriceTrace::PriceTrace(std::string location,
                       std::vector<double> dollars_per_kwh)
    : location_(std::move(location)), prices_(std::move(dollars_per_kwh)) {
  PALB_REQUIRE(!prices_.empty(), "price trace must not be empty");
  for (double p : prices_) {
    // Negative prices do occur in deregulated markets; reject only NaN-ish
    // nonsense by requiring finite values via comparison with itself.
    PALB_REQUIRE(p == p, "price trace contains NaN");
  }
}

double PriceTrace::at(std::size_t t) const {
  PALB_REQUIRE(!prices_.empty(), "price trace is empty");
  return prices_[t % prices_.size()];
}

double PriceTrace::min_price() const {
  PALB_REQUIRE(!prices_.empty(), "price trace is empty");
  return *std::min_element(prices_.begin(), prices_.end());
}

double PriceTrace::max_price() const {
  PALB_REQUIRE(!prices_.empty(), "price trace is empty");
  return *std::max_element(prices_.begin(), prices_.end());
}

double PriceTrace::mean_price() const {
  PALB_REQUIRE(!prices_.empty(), "price trace is empty");
  return std::accumulate(prices_.begin(), prices_.end(), 0.0) /
         static_cast<double>(prices_.size());
}

PriceTrace PriceTrace::scaled(double factor) const {
  std::vector<double> out = prices_;
  for (double& p : out) p *= factor;
  return PriceTrace(location_, std::move(out));
}

PriceTrace PriceTrace::window(std::size_t first, std::size_t count) const {
  PALB_REQUIRE(count > 0, "window must contain at least one slot");
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(at(first + i));
  return PriceTrace(location_, std::move(out));
}

}  // namespace palb
