#pragma once

#include "market/price_trace.hpp"

namespace palb {

/// Embedded 24-hour price curves standing in for the paper's Fig. 1
/// (real-time prices at Houston TX, Mountain View CA and Atlanta GA).
///
/// SUBSTITUTION NOTE (see DESIGN.md §2): the paper plots unlabeled
/// historical curves; only their qualitative features matter to the
/// algorithm — California is the most expensive with a strong afternoon
/// peak, Texas is volatile with a midday spike, Georgia is flat and
/// cheap, and the curves *cross* during the day so the cheapest location
/// changes hour to hour. These curves encode exactly those features,
/// in $/kWh.
namespace prices {

PriceTrace houston_tx();
PriceTrace mountain_view_ca();
PriceTrace atlanta_ga();

/// The three Fig. 1 curves in the paper's order (Houston, Mountain View,
/// Atlanta).
std::vector<PriceTrace> figure1_set();

/// Flat price, for controlled experiments where geography should not
/// matter.
PriceTrace flat(const std::string& location, double price,
                std::size_t hours = 24);

}  // namespace prices
}  // namespace palb
