#pragma once

#include "market/price_trace.hpp"
#include "util/rng.hpp"

namespace palb {

/// Stochastic electricity-price generator: mean-reverting
/// Ornstein-Uhlenbeck noise superimposed on a diurnal base curve — the
/// standard reduced-form model for deregulated spot markets (the paper
/// cites price deregulation as the source of hour-to-hour variation).
/// Used by the sensitivity/ablation sweeps that go beyond the three
/// embedded Fig. 1 curves.
class OuPriceGenerator {
 public:
  struct Params {
    double mean = 0.05;          ///< long-run level, $/kWh
    double diurnal_amplitude = 0.02;  ///< peak-vs-trough swing of the base
    double peak_hour = 15.0;     ///< hour of the diurnal maximum
    double reversion = 0.5;      ///< OU mean-reversion per hour
    double volatility = 0.008;   ///< OU diffusion per sqrt(hour)
    double floor = 0.005;        ///< prices clamp here (no free energy)
  };

  explicit OuPriceGenerator(Params params);

  /// Generates `hours` hourly prices for `location`.
  PriceTrace generate(const std::string& location, std::size_t hours,
                      Rng& rng) const;

 private:
  Params params_;
};

}  // namespace palb
