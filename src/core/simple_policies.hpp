#pragma once

#include "core/policy.hpp"

namespace palb {

/// Latency-greedy baseline: every front-end sends each class to its
/// *nearest* data center until that center's (even-share, final-deadline)
/// capacity fills, then spills to the next nearest — the classic
/// "route to the closest replica" CDN heuristic. Price-, energy- and
/// TUF-oblivious; the natural foil for wire-cost-dominated scenarios.
class NearestPolicy : public Policy {
 public:
  const std::string& name() const override { return name_; }
  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override;
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<NearestPolicy>();
  }

 private:
  std::string name_ = "Nearest";
};

/// Electricity-cost minimizer in the spirit of the single-service-type
/// geo-balancing literature the paper builds on (Rao et al. [2][12]):
/// serve as much traffic as possible within the *final* deadlines, and
/// among volume-maximal dispatches pick the cheapest (energy + wire).
/// It is profit-aware about costs but blind to the TUF's upper bands —
/// the gap to OptimizedPolicy isolates the value of multi-level SLAs.
///
/// Implemented as one LP: the objective pays every served request a
/// constant bonus far above any real per-request cost (lexicographic
/// volume-then-cost) and charges true energy + wire rates.
class CostMinPolicy : public Policy {
 public:
  const std::string& name() const override { return name_; }
  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override;
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<CostMinPolicy>();
  }

 private:
  std::string name_ = "CostMin";
};

}  // namespace palb
