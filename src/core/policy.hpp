#pragma once

#include <string>

#include "cloud/model.hpp"
#include "cloud/plan.hpp"

namespace palb {

/// A request-dispatching and resource-allocation strategy: given the
/// static topology and one slot's arrivals + prices, produce the slot's
/// DispatchPlan. Implementations must return plans that pass
/// DispatchPlan::violations (the test suite enforces it for every policy
/// on every scenario).
class Policy {
 public:
  virtual ~Policy() = default;
  virtual const std::string& name() const = 0;
  virtual DispatchPlan plan_slot(const Topology& topology,
                                 const SlotInput& input) = 0;
};

}  // namespace palb
