#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

// Exported deliberately: the Policy interface trades in Topology /
// SlotInput / DispatchPlan, so including a policy header means using
// the cloud vocabulary — every policy implementation and caller relies
// on this seam.
#include "cloud/model.hpp"  // IWYU pragma: export
#include "cloud/plan.hpp"   // IWYU pragma: export

namespace palb {

/// Cumulative solver-effort counters a policy has spent since it was
/// constructed (or cloned). The SlotController reads the delta across a
/// run and surfaces it in RunResult, so week-scale benches can report
/// LP pivots, profile sweeps and warm-start cache behaviour without
/// knowing the concrete policy type. Fields a policy does not track
/// simply stay zero.
struct PolicyStats {
  /// Slots whose solve was seeded from the previous slot's solution
  /// (inputs drifted less than the warm-start tolerance).
  std::uint64_t warm_start_hits = 0;
  /// Slots solved cold (no cache, or the inputs moved too much).
  std::uint64_t warm_start_misses = 0;
  /// TUF band profiles visited by enumeration / local search.
  std::uint64_t profiles_examined = 0;
  /// Profiles discarded by the warm-start incumbent bound without an LP
  /// solve (a subset of profiles_examined).
  std::uint64_t profiles_pruned = 0;
  /// LP simplex pivots across all profile solves.
  std::uint64_t lp_iterations = 0;
  /// NLP inner-minimizer iterations (BigM path).
  std::uint64_t nlp_iterations = 0;
  /// LP solves that needed no phase-1 work (structurally feasible cold
  /// start, or a warm basis that landed in-bounds).
  std::uint64_t phase1_skips = 0;
  /// LP solves that accepted a caller-supplied starting basis (the
  /// basis-level warm start, distinct from the profile-level cache
  /// behind warm_start_hits).
  std::uint64_t basis_warm_hits = 0;
  /// Dense column updates the simplex's support-walking pivot kernel
  /// skipped (work avoided relative to the dense kernel).
  std::uint64_t sparse_price_skips = 0;
  /// Dantzig-Wolfe master re-solves across decomposed LP solves.
  std::uint64_t master_iterations = 0;
  /// Dantzig-Wolfe block subproblem solves across decomposed LP solves.
  std::uint64_t subproblem_solves = 0;

  PolicyStats& operator+=(const PolicyStats& other) {
    warm_start_hits += other.warm_start_hits;
    warm_start_misses += other.warm_start_misses;
    profiles_examined += other.profiles_examined;
    profiles_pruned += other.profiles_pruned;
    lp_iterations += other.lp_iterations;
    nlp_iterations += other.nlp_iterations;
    phase1_skips += other.phase1_skips;
    basis_warm_hits += other.basis_warm_hits;
    sparse_price_skips += other.sparse_price_skips;
    master_iterations += other.master_iterations;
    subproblem_solves += other.subproblem_solves;
    return *this;
  }
  PolicyStats operator-(const PolicyStats& other) const {
    PolicyStats d;
    d.warm_start_hits = warm_start_hits - other.warm_start_hits;
    d.warm_start_misses = warm_start_misses - other.warm_start_misses;
    d.profiles_examined = profiles_examined - other.profiles_examined;
    d.profiles_pruned = profiles_pruned - other.profiles_pruned;
    d.lp_iterations = lp_iterations - other.lp_iterations;
    d.nlp_iterations = nlp_iterations - other.nlp_iterations;
    d.phase1_skips = phase1_skips - other.phase1_skips;
    d.basis_warm_hits = basis_warm_hits - other.basis_warm_hits;
    d.sparse_price_skips = sparse_price_skips - other.sparse_price_skips;
    d.master_iterations = master_iterations - other.master_iterations;
    d.subproblem_solves = subproblem_solves - other.subproblem_solves;
    return d;
  }
  /// Fraction of slots served from the warm-start cache (0 when the
  /// policy never attempted one).
  double cache_hit_rate() const {
    const std::uint64_t attempts = warm_start_hits + warm_start_misses;
    return attempts == 0
               ? 0.0
               : static_cast<double>(warm_start_hits) /
                     static_cast<double>(attempts);
  }
};

/// A request-dispatching and resource-allocation strategy: given the
/// static topology and one slot's arrivals + prices, produce the slot's
/// DispatchPlan. Implementations must return plans that pass
/// DispatchPlan::violations (the test suite enforces it for every policy
/// on every scenario).
class Policy {
 public:
  virtual ~Policy() = default;
  virtual const std::string& name() const = 0;
  virtual DispatchPlan plan_slot(const Topology& topology,
                                 const SlotInput& input) = 0;

  /// Independent copy carrying the same configuration (warm-start caches
  /// and other per-run state start fresh on the copy's own chain). The
  /// parallel SlotController gives each worker its own clone; a policy
  /// returning nullptr (the default) opts out of parallel evaluation and
  /// the controller falls back to the serial path.
  virtual std::unique_ptr<Policy> clone() const { return nullptr; }

  /// Reduced-effort variant for the ResilientController's rung-2
  /// re-solve after the full solve fails: same objective, but bounded
  /// work per slot (e.g. a small pivot budget, no warm-start state) so
  /// it terminates quickly and deterministically. nullptr (the default)
  /// means the policy has no cheaper mode and the ladder skips straight
  /// to rung 3.
  virtual std::unique_ptr<Policy> degraded() const { return nullptr; }

  /// Installs a cooperative cancellation token (not owned; nullptr
  /// clears it; must outlive every subsequent plan_slot). A policy that
  /// honors it aborts an in-flight plan_slot with SolveCancelled soon
  /// after the token reads true — the AsyncPlanner watchdog's deadline
  /// lever (docs/OVERLOAD.md). Clones made *after* the call inherit the
  /// token so a whole parallel candidate phase can be cancelled at once;
  /// degraded() instances deliberately do not (their bounded pivot
  /// budget already guarantees quick termination, and the fallback rung
  /// must be allowed to finish). The default is a no-op: a policy that
  /// ignores the token just runs to completion.
  virtual void set_cancel(const std::atomic<bool>* cancel) { (void)cancel; }

  /// Cumulative effort counters since construction (see PolicyStats).
  virtual PolicyStats stats() const { return {}; }
};

}  // namespace palb
