#include "core/scenario_json.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace palb::scenario_json {

namespace {

Json numbers(const std::vector<double>& values) {
  Json arr = Json::array();
  for (double v : values) arr.push_back(Json(v));
  return arr;
}

std::vector<double> doubles(const Json& arr) {
  std::vector<double> out;
  out.reserve(arr.size());
  for (const auto& v : arr.as_array()) out.push_back(v.as_number());
  return out;
}

}  // namespace

Json to_json(const Scenario& scenario) {
  scenario.validate();
  const Topology& topo = scenario.topology;
  Json doc = Json::object();
  doc.set("slot_seconds", Json(scenario.slot_seconds));

  Json classes = Json::array();
  for (const auto& cls : topo.classes) {
    Json tuf = Json::object();
    tuf.set("utilities", numbers(cls.tuf.utilities()));
    tuf.set("deadlines", numbers(cls.tuf.sub_deadlines()));
    Json c = Json::object();
    c.set("name", Json(cls.name));
    c.set("tuf", std::move(tuf));
    c.set("transfer_cost_per_mile", Json(cls.transfer_cost_per_mile));
    c.set("drop_penalty_per_request", Json(cls.drop_penalty_per_request));
    classes.push_back(std::move(c));
  }
  doc.set("classes", std::move(classes));

  Json frontends = Json::array();
  for (const auto& fe : topo.frontends) {
    Json f = Json::object();
    f.set("name", Json(fe.name));
    frontends.push_back(std::move(f));
  }
  doc.set("frontends", std::move(frontends));

  Json datacenters = Json::array();
  for (const auto& dc : topo.datacenters) {
    Json d = Json::object();
    d.set("name", Json(dc.name));
    d.set("servers", Json(dc.num_servers));
    d.set("capacity", Json(dc.server_capacity));
    d.set("service_rate", numbers(dc.service_rate));
    d.set("energy_per_request_kwh", numbers(dc.energy_per_request_kwh));
    d.set("pue", Json(dc.pue));
    d.set("idle_power_kw", Json(dc.idle_power_kw));
    datacenters.push_back(std::move(d));
  }
  doc.set("datacenters", std::move(datacenters));

  doc.set("network_latency_s_per_mile",
          Json(topo.network_latency_s_per_mile));
  Json distances = Json::array();
  for (const auto& row : topo.distance_miles) distances.push_back(numbers(row));
  doc.set("distance_miles", std::move(distances));

  Json arrivals = Json::array();
  for (const auto& per_class : scenario.arrivals) {
    Json row = Json::array();
    for (const auto& trace : per_class) row.push_back(numbers(trace.values()));
    arrivals.push_back(std::move(row));
  }
  doc.set("arrivals", std::move(arrivals));

  Json prices = Json::array();
  for (const auto& trace : scenario.prices) {
    Json p = Json::object();
    p.set("location", Json(trace.location()));
    p.set("values", numbers(trace.values()));
    prices.push_back(std::move(p));
  }
  doc.set("prices", std::move(prices));
  return doc;
}

Scenario from_json(const Json& doc) {
  Scenario sc;
  sc.slot_seconds = doc.get("slot_seconds", 3600.0);

  for (const auto& c : doc.at("classes").as_array()) {
    const Json& tuf = c.at("tuf");
    sc.topology.classes.push_back(RequestClass{
        c.get("name", std::string("class") +
                          std::to_string(sc.topology.classes.size())),
        StepTuf(doubles(tuf.at("utilities")), doubles(tuf.at("deadlines"))),
        c.get("transfer_cost_per_mile", 0.0),
        c.get("drop_penalty_per_request", 0.0)});
  }
  for (const auto& f : doc.at("frontends").as_array()) {
    sc.topology.frontends.push_back(FrontEnd{f.get(
        "name",
        std::string("fe") + std::to_string(sc.topology.frontends.size()))});
  }
  for (const auto& d : doc.at("datacenters").as_array()) {
    DataCenter dc;
    dc.name = d.get("name", std::string("dc") + std::to_string(
                                                    sc.topology.datacenters
                                                        .size()));
    dc.num_servers = static_cast<int>(d.at("servers").as_index());
    dc.server_capacity = d.get("capacity", 1.0);
    dc.service_rate = doubles(d.at("service_rate"));
    dc.energy_per_request_kwh = doubles(d.at("energy_per_request_kwh"));
    dc.pue = d.get("pue", 1.0);
    dc.idle_power_kw = d.get("idle_power_kw", 0.0);
    sc.topology.datacenters.push_back(std::move(dc));
  }
  for (const auto& row : doc.at("distance_miles").as_array()) {
    sc.topology.distance_miles.push_back(doubles(row));
  }
  sc.topology.network_latency_s_per_mile =
      doc.get("network_latency_s_per_mile", 0.0);

  for (const auto& per_class : doc.at("arrivals").as_array()) {
    std::vector<RateTrace> row;
    std::size_t s = 0;
    for (const auto& values : per_class.as_array()) {
      row.emplace_back("k" + std::to_string(sc.arrivals.size()) + "s" +
                           std::to_string(s++),
                       doubles(values));
    }
    sc.arrivals.push_back(std::move(row));
  }
  for (const auto& p : doc.at("prices").as_array()) {
    sc.prices.emplace_back(
        p.get("location",
              std::string("loc") + std::to_string(sc.prices.size())),
        doubles(p.at("values")));
  }

  sc.validate();
  return sc;
}

void save(const Scenario& scenario, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for write: " + path);
  os << to_json(scenario).dump(2) << "\n";
}

Scenario load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return from_json(Json::parse(buffer.str()));
}

}  // namespace palb::scenario_json
