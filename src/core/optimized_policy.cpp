#include "core/optimized_policy.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "check/plan_checker.hpp"
#include "queueing/mm1.hpp"
#include "solver/decomposed.hpp"
#include "solver/simplex.hpp"
#include "units/units.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace palb {

namespace {

/// profile[l * K + k] = -1 (class k not served at DC l) or the 0-based
/// TUF level the mean delay must land in.
using Profile = std::vector<int>;

/// A simplex basis lifted out of one profile's LP into profile-
/// independent (K, S, L) coordinates, so it can seed the LP of a
/// *different* profile. Neighboring profiles share most of their
/// columns; entries whose variable/row does not exist in the target LP
/// are dropped on import (the solver tolerates partial bases), and the
/// solver discards any import that lands out of bounds — so carrying a
/// basis across profiles can change pivot counts but never solutions.
struct GlobalBasis {
  /// (is_variable, token). Variable token: routing var (k*S + s)*L + l.
  /// Row token: flow row k*S + s, capacity row K*S + l.
  std::vector<std::pair<bool, std::size_t>> basic;
  std::vector<std::size_t> at_upper;  ///< routing-variable tokens
  bool empty() const { return basic.empty() && at_upper.empty(); }
};

struct ProfileOutcome {
  bool feasible = false;
  double objective = 0.0;  // net profit over the slot per the LP model
  /// Mixed-radix encoding of the profile (see decode_profile); breaks
  /// exact-objective ties deterministically.
  std::uint64_t index = 0;
  DispatchPlan plan;
  /// Marginal $ value of one extra server per DC (capacity-row dual x a
  /// server's net capacity under the profile).
  std::vector<double> server_shadow_prices;
  int lp_iterations = 0;
  std::uint64_t sparse_price_skips = 0;
  int master_iterations = 0;
  int subproblem_solves = 0;
  bool phase1_skipped = false;
  bool basis_warm_used = false;
  /// Final LP basis in global coordinates (filled only on request).
  GlobalBasis basis;
};

/// Effective (margin-tightened) *queue* sub-deadline for class k at
/// level q, after spending `prop_offset` of the budget on network
/// propagation (0 under the paper's instant-wire model). Under the tail
/// metric the remaining budget additionally shrinks by ln(1/(1-p)): an
/// exponential sojourn tail P(T > t) = e^{-t/R} meets P(T <= D) >= p
/// exactly when the mean R <= D / ln(1/(1-p)). Returns <= 0 when the
/// propagation alone exhausts the band's budget (band unreachable).
units::Seconds effective_deadline(const Topology& topo, std::size_t k,
                                  int level, units::Seconds prop_offset,
                                  const OptimizedPolicy::Options& opt) {
  units::Seconds deadline =
      topo.classes[k].tuf.deadline_at(static_cast<std::size_t>(level)) -
      prop_offset;
  if (deadline <= units::Seconds{0.0}) return units::Seconds{0.0};
  deadline *= (1.0 - opt.deadline_margin);
  if (opt.delay_metric == OptimizedPolicy::DelayMetric::kTailPercentile) {
    PALB_REQUIRE(opt.tail_percentile > 0.0 && opt.tail_percentile < 1.0,
                 "tail percentile must be in (0,1)");
    deadline /= std::log(1.0 / (1.0 - opt.tail_percentile));
  }
  return deadline;
}

/// Worst network propagation the class-k stream into DC l may carry:
/// the max over front-ends that actually offer class-k traffic. Routing
/// is the LP's decision, so this is conservative — a far trickle
/// tightens the whole (k, l) budget; splitting the DC per origin group
/// (hetero::split_datacenter-style) recovers the finer optimum.
units::Seconds worst_propagation(const Topology& topo, const SlotInput& input,
                                 std::size_t k, std::size_t l) {
  units::Seconds worst{0.0};
  for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
    if (input.arrival_rate[k][s] > 0.0) {
      worst = std::max(worst, topo.propagation(s, l));
    }
  }
  return worst;
}

/// Incumbent tracker shared by the parallel enumeration sweep.
/// Lexicographic (objective, lowest index): exact-objective ties would
/// otherwise resolve by thread schedule. A named struct instead of a
/// captured local + std::mutex so the lock discipline is
/// capability-checked: the incumbent is unreachable without its mutex.
class BestTracker {
 public:
  explicit BestTracker(ProfileOutcome initial) : best_(std::move(initial)) {}

  void offer(ProfileOutcome&& outcome) PALB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (outcome.objective > best_.objective ||
        (outcome.objective == best_.objective &&
         outcome.index < best_.index)) {
      best_ = std::move(outcome);
    }
  }

  /// Moves the winner out; call once, after every worker has drained.
  ProfileOutcome take() PALB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return std::move(best_);
  }

 private:
  Mutex mutex_;
  ProfileOutcome best_ PALB_GUARDED_BY(mutex_);
};

/// The band-deduced quantities an LP solve and the value bound share.
struct ProfilePrep {
  bool feasible = false;
  /// Per-DC per-server share overhead of the profile's active bands:
  /// sum_k 1 / (D_eff * C * mu). A DC whose overhead reaches 1 cannot
  /// run the profile on any server.
  std::vector<double> overhead;  // [L]
  /// Worst propagation per (k,l), [K*L].
  std::vector<units::Seconds> prop;
};

ProfilePrep prepare_profile(const Topology& topo, const SlotInput& input,
                            const Profile& profile,
                            const OptimizedPolicy::Options& opt) {
  const std::size_t K = topo.num_classes();
  const std::size_t L = topo.num_datacenters();
  ProfilePrep prep;
  prep.overhead.assign(L, 0.0);
  prep.prop.assign(K * L, units::Seconds{0.0});
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topo.datacenters[l];
    for (std::size_t k = 0; k < K; ++k) {
      const int level = profile[l * K + k];
      if (level < 0) continue;
      prep.prop[l * K + k] = worst_propagation(topo, input, k, l);
      const units::Seconds deadline =
          effective_deadline(topo, k, level, prep.prop[l * K + k], opt);
      if (deadline <= units::Seconds{0.0}) {
        return prep;  // band unreachable over the wire
      }
      // 1req / (D * C * mu) is the per-server share the band costs —
      // dimensionless, so the typed quotient collapses to a double.
      prep.overhead[l] += units::kOneRequest /
                          (deadline * dc.server_capacity *
                           dc.service_rate_of(k));
    }
    if (prep.overhead[l] >= 1.0) return prep;  // physically impossible
  }
  prep.feasible = true;
  return prep;
}

/// Net dollars one unit of class-k rate from front-end s earns over the
/// slot when served by DC l in the profile's band `level`. This is the
/// LP objective coefficient; profile_value_bound must use the exact same
/// formula for the incumbent prune to be lossless.
double value_coefficient(const Topology& topo, const SlotInput& input,
                         std::size_t k, std::size_t s, std::size_t l,
                         int level, double overhead_l) {
  const auto& cls = topo.classes[k];
  const auto& dc = topo.datacenters[l];
  const units::Seconds T = input.slot_duration();
  const units::DollarsPerReq utility =
      cls.tuf.utility_at(static_cast<std::size_t>(level));
  // kWh/req * $/kWh -> $/req; PUE is a dimensionless multiplier.
  const units::DollarsPerReq energy =
      dc.energy_per_request(k) * input.price_at(l) * dc.pue;
  // Static-power extension: under the continuous server relaxation,
  // powered-on servers scale as sum_k X_k/(C mu_k) / (1 - overhead),
  // so the idle bill is linear in the routed rates and folds exactly
  // into the objective coefficients. Zero idle power (the paper's
  // model) leaves the coefficients untouched. Assembled raw (audited
  // seam): the kW x hours rescaling must stay `kW * (T/3600)` for the
  // coefficients to be bit-identical to the pre-units ledger.
  const units::DollarsPerRate idle_per_unit_rate{
      dc.idle_power_kw * input.price[l] * dc.pue * (T.value() / 3600.0) /
      ((1.0 - overhead_l) * dc.server_capacity * dc.service_rate[k])};
  // $/req-mile * miles -> $/req.
  const units::DollarsPerReq wire =
      cls.transfer_cost() * topo.distance(s, l);
  // Serving a request both earns its band utility (the queue deadline
  // was already tightened by the worst routed propagation, so every
  // origin's total stays in-band) and avoids its drop penalty; the
  // constant -penalty*offered*T is common to every profile (objectives
  // are "relative to dropping everything"). $/req * s -> $.s/req, the
  // LP's dollars-per-unit-rate coefficient; .value() is the solver seam.
  const units::DollarsPerRate coeff =
      (utility + cls.drop_penalty() - energy - wire) * T -
      idle_per_unit_rate;
  return coeff.value();
}

/// Cheap upper bound on a profile's LP objective: flow conservation caps
/// each (k, s) stream at its arrival rate, so routing everything to the
/// most valuable active destination — or dropping it when every
/// coefficient is negative — bounds the objective from above. Any
/// profile whose bound is strictly below a known-achievable objective
/// can neither win nor tie and is safe to skip un-solved.
double profile_value_bound(const Topology& topo, const SlotInput& input,
                           const Profile& profile, const ProfilePrep& prep) {
  const std::size_t K = topo.num_classes();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.num_datacenters();
  double bound = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      const double arrival = input.arrival_rate[k][s];
      if (arrival <= 0.0) continue;
      double best_coeff = 0.0;  // routing nothing is always allowed
      for (std::size_t l = 0; l < L; ++l) {
        const int level = profile[l * K + k];
        if (level < 0) continue;
        best_coeff = std::max(
            best_coeff, value_coefficient(topo, input, k, s, l, level,
                                          prep.overhead[l]));
      }
      bound += arrival * best_coeff;
    }
  }
  return bound;
}

/// Solves the LP conditioned on a band profile and realizes the plan
/// (integer server counts, minimal shares, optional spare distribution).
/// `warm` (optional) seeds the simplex from another profile's basis;
/// `want_basis` asks for the final basis back in global coordinates.
ProfileOutcome solve_profile(const Topology& topo, const SlotInput& input,
                             const Profile& profile, const ProfilePrep& prep,
                             const OptimizedPolicy::Options& opt,
                             const GlobalBasis* warm = nullptr,
                             bool want_basis = false) {
  const std::size_t K = topo.num_classes();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.num_datacenters();

  ProfileOutcome out;
  if (!prep.feasible) return out;
  const std::vector<double>& overhead = prep.overhead;
  const std::vector<units::Seconds>& prop = prep.prop;

  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);

  // Routing variables for every active (k, s, l). var[] maps global
  // tokens to LP indices; var_token is the inverse (for basis export).
  std::vector<int> var(K * S * L, -1);
  std::vector<std::size_t> var_token;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t l = 0; l < L; ++l) {
      const int level = profile[l * K + k];
      if (level < 0) continue;
      for (std::size_t s = 0; s < S; ++s) {
        const double value =
            value_coefficient(topo, input, k, s, l, level, overhead[l]);
        var[(k * S + s) * L + l] = lp.add_variable(
            0.0, input.arrival_rate[k][s], value,
            "x_k" + std::to_string(k) + "_s" + std::to_string(s) + "_l" +
                std::to_string(l));
        var_token.push_back((k * S + s) * L + l);
      }
    }
  }
  if (lp.num_variables() == 0) {
    // All-off profile: the zero plan, worth exactly zero.
    out.feasible = true;
    out.objective = 0.0;
    out.plan = DispatchPlan::zero(topo);
    return out;
  }

  // Flow conservation (Eq. 7): per (class, front-end). flow_row maps the
  // (k, s) token to the LP row (or -1), row_token is the inverse.
  std::vector<int> flow_row(K * S, -1);
  std::vector<std::size_t> row_token;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t l = 0; l < L; ++l) {
        const int v = var[(k * S + s) * L + l];
        if (v >= 0) terms.emplace_back(v, 1.0);
      }
      if (terms.size() > 1) {
        flow_row[k * S + s] = lp.add_constraint(
            terms, Relation::kLe, input.arrival_rate[k][s]);
        row_token.push_back(k * S + s);
      }
      // With a single destination the variable's upper bound suffices.
    }
  }

  // Per-DC linearized share budget (Eq. 8 after the band reduction):
  // sum_k X_{k,l} / (C mu_k)  <=  M_l (1 - overhead_l).
  std::vector<int> capacity_row(L, -1);
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topo.datacenters[l];
    std::vector<std::pair<int, double>> terms;
    for (std::size_t k = 0; k < K; ++k) {
      if (profile[l * K + k] < 0) continue;
      const double inv_rate =
          1.0 / (dc.server_capacity * dc.service_rate[k]);
      for (std::size_t s = 0; s < S; ++s) {
        const int v = var[(k * S + s) * L + l];
        if (v >= 0) terms.emplace_back(v, inv_rate);
      }
    }
    if (!terms.empty()) {
      capacity_row[l] = lp.add_constraint(
          terms, Relation::kLe,
          static_cast<double>(dc.num_servers) * (1.0 - overhead[l]));
      row_token.push_back(K * S + l);
    }
  }

  // Translate the caller's global basis into this LP's indices; entries
  // for columns/rows this profile does not have are simply dropped.
  SimplexBasis warm_basis;
  const SimplexBasis* warm_ptr = nullptr;
  if (warm && !warm->empty()) {
    for (const auto& [is_var, token] : warm->basic) {
      if (is_var) {
        const int v = var[token];
        if (v >= 0) {
          warm_basis.basic.push_back({SimplexBasis::Kind::kVariable, v});
        }
      } else {
        const int row = token < K * S
                            ? flow_row[token]
                            : capacity_row[token - K * S];
        if (row >= 0) {
          warm_basis.basic.push_back({SimplexBasis::Kind::kSlack, row});
        }
      }
    }
    for (const std::size_t token : warm->at_upper) {
      if (var[token] >= 0) warm_basis.at_upper.push_back(var[token]);
    }
    if (!warm_basis.empty()) warm_ptr = &warm_basis;
  }

  SimplexSolver::Options solver_opt;
  if (opt.lp_max_iterations > 0) {
    solver_opt.max_iterations = static_cast<int>(opt.lp_max_iterations);
  }
  solver_opt.cancel = opt.cancel;
  const bool decompose =
      opt.decomposed_solve == OptimizedPolicy::DecomposedSolve::kOn ||
      (opt.decomposed_solve == OptimizedPolicy::DecomposedSolve::kAuto &&
       lp.num_variables() >= opt.decomposed_min_variables);
  LpSolution sol;
  if (decompose) {
    DecomposedSolver::Options dec_opt;
    dec_opt.lp = solver_opt;
    dec_opt.subproblem_workers = opt.decomposed_workers;
    const DecomposedSolver dec(dec_opt);
    sol = dec.solve(lp, warm_ptr);
    out.master_iterations = dec.stats().master_iterations;
    out.subproblem_solves = dec.stats().subproblem_solves;
  } else {
    const SimplexSolver solver(solver_opt);
    sol = solver.solve(lp, warm_ptr);
  }
  out.lp_iterations = sol.iterations;
  out.sparse_price_skips = sol.sparse_price_skips;
  out.phase1_skipped = sol.phase1_skipped;
  out.basis_warm_used = sol.warm_start_used;
  if (sol.status != LpStatus::kOptimal) return out;
  if (want_basis) {
    out.basis.basic.reserve(sol.basis.basic.size());
    for (const auto& e : sol.basis.basic) {
      if (e.kind == SimplexBasis::Kind::kVariable) {
        out.basis.basic.emplace_back(
            true, var_token[static_cast<std::size_t>(e.index)]);
      } else {
        out.basis.basic.emplace_back(
            false, row_token[static_cast<std::size_t>(e.index)]);
      }
    }
    for (const int v : sol.basis.at_upper) {
      out.basis.at_upper.push_back(var_token[static_cast<std::size_t>(v)]);
    }
  }

  // A server added to DC l raises the capacity rhs by (1 - overhead_l);
  // the row dual prices that change in dollars per slot.
  out.server_shadow_prices.assign(L, 0.0);
  for (std::size_t l = 0; l < L; ++l) {
    if (capacity_row[l] >= 0) {
      out.server_shadow_prices[l] =
          sol.duals[static_cast<std::size_t>(capacity_row[l])] *
          (1.0 - overhead[l]);
    }
  }

  // ---- Realize the plan. -------------------------------------------------
  DispatchPlan plan = DispatchPlan::zero(topo);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t l = 0; l < L; ++l) {
        const int v = var[(k * S + s) * L + l];
        if (v >= 0) plan.rate[k][s][l] = sol.x[static_cast<std::size_t>(v)];
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topo.datacenters[l];
    // Only classes that actually received load pay a share overhead in
    // the realized allocation.
    double active_overhead = 0.0;
    double load_sum = 0.0;  // sum X_k / (C mu_k)
    for (std::size_t k = 0; k < K; ++k) {
      const double x = plan.class_dc_rate(k, l);
      if (x <= 1e-12) continue;
      const int level = profile[l * K + k];
      const units::Seconds deadline =
          effective_deadline(topo, k, level, prop[l * K + k], opt);
      active_overhead += units::kOneRequest /
                         (deadline * dc.server_capacity *
                          dc.service_rate_of(k));
      load_sum += x / (dc.server_capacity * dc.service_rate[k]);
    }
    if (load_sum <= 0.0) {
      plan.dc[l].servers_on = 0;
      continue;
    }
    int servers = static_cast<int>(
        std::ceil(load_sum / (1.0 - active_overhead) - 1e-12));
    servers = std::max(servers, 1);
    servers = std::min(servers, dc.num_servers);
    plan.dc[l].servers_on = servers;

    double share_sum = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const double x = plan.class_dc_rate(k, l);
      if (x <= 1e-12) continue;
      const int level = profile[l * K + k];
      const units::Seconds deadline =
          effective_deadline(topo, k, level, prop[l * K + k], opt);
      const double per_server = x / static_cast<double>(servers);
      // Raw-core seam: required_share may legitimately exceed 1 by an
      // ulp at a binding capacity row (renormalized just below), which
      // a typed CpuShare would refuse to hold.
      plan.dc[l].share[k] =
          mm1::required_share(per_server, dc.server_capacity,
                              dc.service_rate[k], deadline.value());
      share_sum += plan.dc[l].share[k];
    }
    if (share_sum > 1.0) {
      // Floating-point slack at a binding capacity row can leave the sum
      // an ulp above 1; renormalize (the deadline loss is O(1e-16)).
      for (std::size_t k = 0; k < K; ++k) plan.dc[l].share[k] /= share_sum;
    } else if (opt.distribute_spare_share && share_sum > 0.0) {
      const double scale = 1.0 / share_sum;
      for (std::size_t k = 0; k < K; ++k) {
        plan.dc[l].share[k] =
            std::min(1.0, plan.dc[l].share[k] * scale);
      }
    }
  }

  out.feasible = true;
  out.objective = sol.objective;
  out.plan = std::move(plan);
  return out;
}

/// Mixed-radix decoding of profile index -> profile. Option count per
/// (k,l) cell is levels(k) + 1; option 0 encodes "off".
Profile decode_profile(std::uint64_t index, const Topology& topo) {
  const std::size_t K = topo.num_classes();
  const std::size_t L = topo.num_datacenters();
  Profile profile(K * L, -1);
  for (std::size_t cell = 0; cell < K * L; ++cell) {
    const std::size_t k = cell % K;
    const auto radix =
        static_cast<std::uint64_t>(topo.classes[k].tuf.levels()) + 1;
    profile[cell] = static_cast<int>(index % radix) - 1;
    index /= radix;
  }
  return profile;
}

/// Inverse of decode_profile (cell 0 is the least-significant digit).
/// In the local-search regime the true index can exceed 64 bits; the
/// wrapped value is still a deterministic tie-break key, which is all
/// that path needs.
std::uint64_t encode_profile(const Profile& profile, const Topology& topo) {
  const std::size_t K = topo.num_classes();
  std::uint64_t index = 0;
  for (std::size_t cell = profile.size(); cell-- > 0;) {
    const std::size_t k = cell % K;
    const auto radix =
        static_cast<std::uint64_t>(topo.classes[k].tuf.levels()) + 1;
    index = index * radix + static_cast<std::uint64_t>(profile[cell] + 1);
  }
  return index;
}

/// Per-cell option counts — the shape of profile space. Two topologies
/// with equal radices have interchangeable profile indices, which is the
/// invariant the warm cache's signature check needs.
std::vector<std::uint64_t> profile_radices(const Topology& topo) {
  const std::size_t K = topo.num_classes();
  const std::size_t L = topo.num_datacenters();
  std::vector<std::uint64_t> radices(K * L);
  for (std::size_t cell = 0; cell < K * L; ++cell) {
    const std::size_t k = cell % K;
    radices[cell] =
        static_cast<std::uint64_t>(topo.classes[k].tuf.levels()) + 1;
  }
  return radices;
}

std::uint64_t profile_space_size(const Topology& topo,
                                 std::uint64_t clamp_at) {
  std::uint64_t total = 1;
  for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
    for (std::size_t k = 0; k < topo.num_classes(); ++k) {
      const auto radix =
          static_cast<std::uint64_t>(topo.classes[k].tuf.levels()) + 1;
      if (total > clamp_at / radix) return clamp_at + 1;  // overflow guard
      total *= radix;
    }
  }
  return total;
}

/// Symmetric relative closeness: |a-b| within tol of the larger
/// magnitude. Exact zeros only match (near-)zeros.
bool close_relative(double a, double b, double tol) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= tol * std::max(scale, 1e-12);
}

}  // namespace

bool OptimizedPolicy::warm_applicable(const Topology& topo,
                                      const SlotInput& input) const {
  if (!cache_.valid) return false;
  if (cache_.radices != profile_radices(topo)) return false;
  if (cache_.price.size() != input.price.size()) return false;
  if (cache_.arrival_rate.size() != input.arrival_rate.size()) return false;
  const double tol = options_.warm_start_tolerance;
  for (std::size_t l = 0; l < input.price.size(); ++l) {
    if (!close_relative(cache_.price[l], input.price[l], tol)) return false;
  }
  for (std::size_t k = 0; k < input.arrival_rate.size(); ++k) {
    if (cache_.arrival_rate[k].size() != input.arrival_rate[k].size()) {
      return false;
    }
    for (std::size_t s = 0; s < input.arrival_rate[k].size(); ++s) {
      if (!close_relative(cache_.arrival_rate[k][s],
                          input.arrival_rate[k][s], tol)) {
        return false;
      }
    }
  }
  return true;
}

DispatchPlan OptimizedPolicy::plan_slot(const Topology& topo,
                                        const SlotInput& input) {
  topo.validate();
  input.validate(topo);
  profiles_examined_ = 0;
  profiles_pruned_ = 0;
  lp_iterations_ = 0;
  phase1_skips_ = 0;
  basis_warm_hits_ = 0;
  sparse_price_skips_ = 0;
  master_iterations_ = 0;
  subproblem_solves_ = 0;

  ProfileOutcome initial;
  initial.feasible = true;
  initial.objective = 0.0;  // the all-off plan is always available
  initial.index = 0;        // ... and is profile 0 by construction
  initial.plan = DispatchPlan::zero(topo);
  BestTracker tracker(std::move(initial));

  std::atomic<std::uint64_t> examined{0};
  std::atomic<std::uint64_t> pruned{0};
  std::atomic<std::uint64_t> pivots{0};
  std::atomic<std::uint64_t> p1_skips{0};
  std::atomic<std::uint64_t> basis_hits{0};
  std::atomic<std::uint64_t> price_skips{0};
  std::atomic<std::uint64_t> master_iters{0};
  std::atomic<std::uint64_t> sub_solves{0};

  auto evaluate = [&](const Profile& profile, std::uint64_t index,
                      const ProfilePrep& prep, const GlobalBasis* warm_basis,
                      GlobalBasis* capture) {
    // Cancellation drains the sweep instead of throwing out of a pool
    // worker: remaining profiles fall through without an LP solve and
    // plan_slot raises SolveCancelled once every worker has joined. A
    // solve already in flight stops at its next pivot batch
    // (SimplexSolver::Options::cancel) and reports kCancelled, which
    // lands here as an infeasible outcome.
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      return -kInfinity;
    }
    examined.fetch_add(1, std::memory_order_relaxed);
    if (!prep.feasible) return -kInfinity;
    ProfileOutcome outcome =
        solve_profile(topo, input, profile, prep, options_, warm_basis,
                      capture != nullptr);
    outcome.index = index;
    pivots.fetch_add(static_cast<std::uint64_t>(outcome.lp_iterations),
                     std::memory_order_relaxed);
    price_skips.fetch_add(outcome.sparse_price_skips,
                          std::memory_order_relaxed);
    master_iters.fetch_add(
        static_cast<std::uint64_t>(outcome.master_iterations),
        std::memory_order_relaxed);
    sub_solves.fetch_add(
        static_cast<std::uint64_t>(outcome.subproblem_solves),
        std::memory_order_relaxed);
    if (outcome.phase1_skipped) {
      p1_skips.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome.basis_warm_used) {
      basis_hits.fetch_add(1, std::memory_order_relaxed);
    }
    if (!outcome.feasible) return -kInfinity;
    if (capture) *capture = std::move(outcome.basis);
    const double objective = outcome.objective;
    tracker.offer(std::move(outcome));
    return objective;
  };
  auto consider = [&](const Profile& profile, std::uint64_t index,
                      const GlobalBasis* warm_basis, GlobalBasis* capture) {
    return evaluate(profile, index,
                    prepare_profile(topo, input, profile, options_),
                    warm_basis, capture);
  };

  const std::uint64_t space =
      profile_space_size(topo, options_.max_enumerated_profiles);
  const bool enumerated = space <= options_.max_enumerated_profiles;
  double prune_threshold = 0.0;

  // Basis anchor (enumerated path): solve the all-last-band profile cold
  // and warm-start every other profile from its basis. The anchor is a
  // function of (topology, input) alone — never of cache state or worker
  // partition — so each profile's pivot path, and therefore the plan,
  // stays byte-identical across worker counts and cache histories. Its
  // objective also seeds the incumbent prune bound (plan-preserving: a
  // pruned profile can neither win nor tie).
  GlobalBasis anchor_basis;
  std::uint64_t anchor_index = space;  // sentinel: no anchor evaluated
  if (enumerated && options_.warm_start_bases) {
    const std::size_t K = topo.num_classes();
    const std::size_t L = topo.num_datacenters();
    Profile anchor(K * L);
    for (std::size_t cell = 0; cell < K * L; ++cell) {
      anchor[cell] =
          static_cast<int>(topo.classes[cell % K].tuf.levels()) - 1;
    }
    anchor_index = encode_profile(anchor, topo);
    prune_threshold = std::max(
        prune_threshold, consider(anchor, anchor_index, nullptr,
                                  &anchor_basis));
  }
  const GlobalBasis* sweep_warm =
      anchor_basis.empty() ? nullptr : &anchor_basis;

  // Warm start (enumerated path only): re-solve the previous slot's
  // winning profile under *this* slot's inputs, making its objective an
  // incumbent bound. The sweep then skips profiles whose optimistic
  // value bound is strictly below it — they can neither win nor tie, so
  // the chosen plan is bit-identical to a cold solve; only the work
  // (and the pruned/examined split) shrinks.
  std::uint64_t warm_index = space;  // sentinel: nothing pre-evaluated
  bool warm_hit = false;
  if (enumerated && options_.warm_start) {
    if (warm_applicable(topo, input)) {
      warm_hit = true;
      warm_index = cache_.winning_index;
      if (warm_index != anchor_index) {  // anchor is already evaluated
        prune_threshold = std::max(
            prune_threshold,
            consider(decode_profile(warm_index, topo), warm_index,
                     sweep_warm, nullptr));
      }
    }
    totals_.warm_start_hits += warm_hit ? 1 : 0;
    totals_.warm_start_misses += warm_hit ? 0 : 1;
  }

  if (enumerated) {
    // Exhaustive sweep; embarrassingly parallel across profile indices.
    auto body = [&](std::size_t i) {
      const auto index = static_cast<std::uint64_t>(i);
      if (index == warm_index || index == anchor_index) {
        return;  // already evaluated up front
      }
      const Profile profile = decode_profile(index, topo);
      const ProfilePrep prep =
          prepare_profile(topo, input, profile, options_);
      if (prune_threshold > 0.0 && prep.feasible &&
          profile_value_bound(topo, input, profile, prep) <
              prune_threshold) {
        pruned.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      evaluate(profile, index, prep, sweep_warm, nullptr);
    };
    if (options_.parallel) {
      parallel_for(static_cast<std::size_t>(space), body);
    } else {
      for (std::uint64_t i = 0; i < space; ++i) {
        body(static_cast<std::size_t>(i));
      }
    }
  } else {
    // First-improvement local search over profile cells from several
    // deterministic/random starting profiles.
    const std::size_t K = topo.num_classes();
    const std::size_t L = topo.num_datacenters();
    const std::size_t cells = K * L;

    std::vector<Profile> starts;
    Profile all_top(cells), all_last(cells);
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const std::size_t k = cell % K;
      all_top[cell] = 0;
      all_last[cell] =
          static_cast<int>(topo.classes[k].tuf.levels()) - 1;
    }
    starts.push_back(all_top);
    starts.push_back(all_last);
    Rng rng(0xC0FFEEull);
    for (int r = 0; r < options_.local_search_restarts; ++r) {
      Profile p(cells);
      for (std::size_t cell = 0; cell < cells; ++cell) {
        const std::size_t k = cell % K;
        const auto options =
            static_cast<std::uint64_t>(topo.classes[k].tuf.levels()) + 1;
        p[cell] = static_cast<int>(rng.uniform_index(options)) - 1;
      }
      starts.push_back(std::move(p));
    }

    for (Profile current : starts) {
      // Chain bases down the search path: the accepted profile's basis
      // warm-starts each neighbor (they differ in one (k, l) band). The
      // walk is serial and first-improvement, so the chain — like the
      // search itself — is fully deterministic.
      GlobalBasis chain;
      double current_value = consider(current, encode_profile(current, topo),
                                      nullptr, &chain);
      bool improved = true;
      while (improved) {
        improved = false;
        for (std::size_t cell = 0; cell < cells && !improved; ++cell) {
          const std::size_t k = cell % K;
          const int levels =
              static_cast<int>(topo.classes[k].tuf.levels());
          for (int option = -1; option < levels; ++option) {
            if (option == current[cell]) continue;
            Profile neighbor = current;
            neighbor[cell] = option;
            GlobalBasis neighbor_basis;
            const double value = consider(
                neighbor, encode_profile(neighbor, topo),
                options_.warm_start_bases && !chain.empty() ? &chain
                                                            : nullptr,
                &neighbor_basis);
            if (value > current_value + 1e-9) {
              current = std::move(neighbor);
              current_value = value;
              chain = std::move(neighbor_basis);
              improved = true;
              break;
            }
          }
        }
      }
    }
  }

  // Every worker has drained (parallel_for joins before returning), so
  // the incumbent is final; the cache write happens here — after the
  // sweep — because it records the *winning* index.
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    // Thrown only after the drain: no worker is left touching tracker
    // state, and the warm-start cache is not polluted with a partial
    // sweep's winner.
    throw SolveCancelled("OptimizedPolicy::plan_slot cancelled by its "
                         "deadline watchdog");
  }
  const ProfileOutcome best = tracker.take();
  if (enumerated) {
    cache_.valid = true;
    cache_.winning_index = best.index;
    cache_.radices = profile_radices(topo);
    cache_.arrival_rate = input.arrival_rate;
    cache_.price = input.price;
  }

  profiles_examined_ = examined.load();
  profiles_pruned_ = pruned.load();
  lp_iterations_ = pivots.load();
  phase1_skips_ = p1_skips.load();
  basis_warm_hits_ = basis_hits.load();
  sparse_price_skips_ = price_skips.load();
  master_iterations_ = master_iters.load();
  subproblem_solves_ = sub_solves.load();
  totals_.profiles_examined += profiles_examined_;
  totals_.profiles_pruned += profiles_pruned_;
  totals_.lp_iterations += lp_iterations_;
  totals_.phase1_skips += phase1_skips_;
  totals_.basis_warm_hits += basis_warm_hits_;
  totals_.sparse_price_skips += sparse_price_skips_;
  totals_.master_iterations += master_iterations_;
  totals_.subproblem_solves += subproblem_solves_;
  server_shadow_prices_ = best.server_shadow_prices;
  if (server_shadow_prices_.empty()) {
    server_shadow_prices_.assign(topo.num_datacenters(), 0.0);
  }
  check::maybe_check_plan(topo, input, best.plan, "OptimizedPolicy");
  return best.plan;
}

std::unique_ptr<Policy> OptimizedPolicy::degraded() const {
  Options opt = options_;
  opt.parallel = false;
  opt.warm_start = false;
  opt.warm_start_bases = false;
  // A small enumeration budget keeps the local-search path (restart
  // count 1) in play for large profile spaces, and the pivot budget
  // bounds every individual LP; budget-exhausted profiles fall back to
  // the always-feasible all-off plan instead of throwing.
  opt.max_enumerated_profiles = 1u << 10;
  opt.local_search_restarts = 1;
  opt.lp_max_iterations = 2000;
  // Column generation spends pivots across many inner solves before the
  // crossover; under a tight per-LP budget that overhead is pure risk.
  opt.decomposed_solve = DecomposedSolve::kOff;
  // The fallback rung must be allowed to finish even while the watchdog
  // is cancelling the full solve: the pivot budget above already bounds
  // its runtime, so the token is dropped rather than inherited.
  opt.cancel = nullptr;
  return std::make_unique<OptimizedPolicy>(opt);
}

}  // namespace palb
