#pragma once

#include "core/policy.hpp"

namespace palb {

/// The paper's baseline (§V-A "Balanced"): a static, profit-oblivious
/// strategy.
///
/// * Resource allocation is even: every class gets a fixed 1/K CPU share
///   on every powered-on server.
/// * Dispatching is price-greedy: front-ends fill the data center with
///   the lowest current electricity price up to full (deadline-bounded)
///   utilization, then spill to the next cheapest, and so on.
/// * Transfer costs, TUF shapes and per-location energy footprints are
///   ignored when deciding (they are of course still *charged* by the
///   accounting).
class BalancedPolicy : public Policy {
 public:
  BalancedPolicy() = default;

  const std::string& name() const override { return name_; }
  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override;
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<BalancedPolicy>();
  }

 private:
  std::string name_ = "Balanced";
};

}  // namespace palb
