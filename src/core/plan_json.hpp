#pragma once

#include "cloud/accounting.hpp"
#include "cloud/plan.hpp"
#include "core/controller.hpp"
#include "util/json.hpp"

namespace palb {

/// DispatchPlan / ledger serialization, so the CLI (and any ops tooling)
/// can hand the hour's routing matrix and VM shares to the systems that
/// actually enact them.
///
/// Plan schema:
/// {
///   "rate": [ [ [r_l0, r_l1, ...], ...per frontend ], ...per class ],
///   "datacenters": [ { "servers_on": 3, "share": [0.4, 0.6] }, ... ]
/// }
namespace plan_json {

Json to_json(const DispatchPlan& plan);
/// Shape-checks against `topology`; throws IoError/InvalidArgument on
/// mismatch.
DispatchPlan from_json(const Json& doc, const Topology& topology);

/// One slot's ledger as JSON (read-only export; not round-tripped).
Json metrics_to_json(const SlotMetrics& metrics);

/// A whole run: slots -> { plan, ledger } entries plus the total.
Json run_to_json(const RunResult& run);

}  // namespace plan_json
}  // namespace palb
