#include "core/paper_scenarios.hpp"

#include "market/price_library.hpp"
#include "util/error.hpp"
#include "workload/generators.hpp"

namespace palb::paper {

namespace {

/// Builds the heterogeneous 3-data-center fleet shared by the §V and §VI
/// studies (Table III / Table IV ratios).
std::vector<DataCenter> three_datacenters() {
  DataCenter dc1{"datacenter1",
                 6,
                 1.0,
                 {150.0, 130.0, 140.0},
                 {0.0020, 0.0040, 0.0060},
                 1.0};
  DataCenter dc2{"datacenter2",
                 6,
                 1.0,
                 {140.0, 120.0, 130.0},
                 {0.0010, 0.0030, 0.0050},
                 1.0};
  // dc3's energy footprint makes it the cheapest *dollar* location for
  // request1/request3 despite dc2's lower price — the per-(type, DC)
  // structure a price-only greedy cannot see (Table III's cost rows).
  DataCenter dc3{"datacenter3",
                 6,
                 1.0,
                 {140.0, 130.0, 160.0},
                 {0.0005, 0.0030, 0.0035},
                 1.0};
  return {dc1, dc2, dc3};
}

}  // namespace

Scenario basic_synthetic(ArrivalSet set) {
  Scenario sc;
  sc.slot_seconds = 3600.0;

  // Three request types with constant (one-level) TUFs. Utility ratios
  // follow the paper's 1:2:3 pattern (Table VII uses 10/20/30).
  sc.topology.classes = {
      {"request1", StepTuf::constant(0.004, 0.10), 0.0},
      {"request2", StepTuf::constant(0.008, 0.08), 0.0},
      {"request3", StepTuf::constant(0.012, 0.06), 0.0},
  };
  sc.topology.frontends = {{"frontend1"}, {"frontend2"}, {"frontend3"},
                           {"frontend4"}};
  sc.topology.datacenters = three_datacenters();
  // Transfer cost is excluded from the basic study (§V-A), so distances
  // are irrelevant; keep them zero for clarity.
  sc.topology.distance_miles.assign(4, std::vector<double>(3, 0.0));

  // Table II arrival sets (req/s per front-end per type).
  const std::vector<std::vector<double>> low = {
      // [k][s]
      {35.0, 30.0, 25.0, 20.0},
      {25.0, 20.0, 30.0, 25.0},
      {20.0, 25.0, 15.0, 30.0},
  };
  const std::vector<std::vector<double>> high = {
      {260.0, 240.0, 220.0, 200.0},
      {200.0, 210.0, 230.0, 220.0},
      {180.0, 190.0, 170.0, 210.0},
  };
  const auto& rates = (set == ArrivalSet::kLow) ? low : high;

  sc.arrivals.resize(3);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t s = 0; s < 4; ++s) {
      sc.arrivals[k].push_back(workload::constant(
          "k" + std::to_string(k) + "s" + std::to_string(s), rates[k][s],
          24));
    }
  }

  // Fixed per-location electricity prices (Table III's p row).
  sc.prices = {prices::flat("datacenter1", 0.065),
               prices::flat("datacenter2", 0.040),
               prices::flat("datacenter3", 0.052)};
  sc.validate();
  return sc;
}

Scenario worldcup_study(std::uint64_t seed) {
  Scenario sc;
  sc.slot_seconds = 3600.0;

  // Table VII: per-type TUFs, value ratio 10:20:30, one level each.
  // Transfer costs keep the paper's 3:5:7 ratio (§VI-A).
  sc.topology.classes = {
      {"request1", StepTuf::constant(0.005, 0.15), 0.9e-6},
      {"request2", StepTuf::constant(0.010, 0.12), 1.5e-6},
      {"request3", StepTuf::constant(0.015, 0.10), 2.1e-6},
  };
  sc.topology.frontends = {{"frontend1"}, {"frontend2"}, {"frontend3"},
                           {"frontend4"}};

  // Table IV: request1 capacity equal at DC1/DC2, highest at DC3.
  sc.topology.datacenters = {
      {"datacenter1", 6, 1.0, {150.0, 130.0, 140.0},
       {0.0012, 0.0018, 0.0024}, 1.0},
      {"datacenter2", 6, 1.0, {150.0, 140.0, 120.0},
       {0.0011, 0.0016, 0.0026}, 1.0},
      {"datacenter3", 6, 1.0, {180.0, 130.0, 160.0},
       {0.0010, 0.0020, 0.0022}, 1.0},
  };

  // Table V: datacenter2 is the farthest from every front-end.
  sc.topology.distance_miles = {
      {500.0, 1800.0, 700.0},
      {800.0, 2200.0, 400.0},
      {1200.0, 1500.0, 900.0},
      {300.0, 2500.0, 1100.0},
  };

  // Fig. 5: one diurnal trace per front-end (distinct phases/magnitudes),
  // three types synthesized by time-shifting each trace (§VI-A).
  Rng rng(seed);
  // Sized so the near/cheap fleet (dc1 + dc3) covers normal daytime load
  // and the far dc2 is only worth paying for around the evening peak —
  // the Fig. 7 regime.
  workload::WorldCupParams base;
  base.base_rate = 25.0;
  base.daily_peak = 115.0;
  base.match_boost = 1.4;
  base.burst_sigma = 0.12;
  const auto frontend_traces = workload::worldcup_frontends(4, base, rng);
  sc.arrivals.resize(3);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t s = 0; s < 4; ++s) {
      sc.arrivals[k].push_back(frontend_traces[s].shifted(3 * k));
    }
  }

  // Fig. 1 real-price stand-ins: Houston, Mountain View, Atlanta.
  sc.prices = prices::figure1_set();
  sc.validate();
  return sc;
}

Scenario google_study(std::uint64_t seed, double capacity_scale,
                      double demand_scale, int servers_per_dc) {
  PALB_REQUIRE(capacity_scale > 0.0 && demand_scale > 0.0,
               "scales must be > 0");
  PALB_REQUIRE(servers_per_dc > 0, "need at least one server per DC");
  Scenario sc;
  sc.slot_seconds = 3600.0;

  // Tables IX/X: two-level step-downward TUFs.
  sc.topology.classes = {
      {"request1", StepTuf({0.012, 0.006}, {0.05, 0.15}), 1.0e-6},
      {"request2", StepTuf({0.018, 0.009}, {0.04, 0.12}), 1.5e-6},
  };
  sc.topology.frontends = {{"frontend1"}};

  // Tables VIII/XI: capacities and per-request power.
  sc.topology.datacenters = {
      {"datacenter1", servers_per_dc, 1.0,
       {110.0 * capacity_scale, 130.0 * capacity_scale},
       {0.0020, 0.0030}, 1.0},
      {"datacenter2", servers_per_dc, 1.0,
       {150.0 * capacity_scale, 100.0 * capacity_scale},
       {0.0026, 0.0024}, 1.0},
  };
  // §VII-A: 1000 and 2000 miles from the single front-end.
  sc.topology.distance_miles = {{1000.0, 2000.0}};

  // Google-2010-like 7-hour bursty trace; type 2 is the duplicated,
  // time-shifted copy exactly as in the paper.
  Rng rng(seed);
  workload::GoogleParams gp;
  // Sized so the static even-share baseline brushes its capacity ceiling
  // on burst slots (it then drops a few percent of traffic, Fig. 9)
  // while the flexible optimizer still completes everything.
  gp.plateau_rate = 360.0 * demand_scale;
  gp.burst_sigma = 0.30;
  gp.lull_probability = 0.2;
  gp.slots = 7;
  const RateTrace type1 = workload::google_like("google-type1", gp, rng);
  sc.arrivals = {{type1}, {type1.shifted(1)}};

  // Houston & Mountain View, 14:00-19:00 window (§VII-A: the hours with
  // the largest price vibration).
  sc.prices = {prices::houston_tx().window(14, 7),
               prices::mountain_view_ca().window(14, 7)};
  sc.validate();
  return sc;
}

}  // namespace palb::paper
