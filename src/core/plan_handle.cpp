#include "core/plan_handle.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "util/mutex.hpp"

namespace palb {

PlanHandle::Snapshot PlanHandle::acquire() const {
  std::shared_ptr<const Node> node;
  {
    MutexLock lock(snap_mutex_);
    node = current_;
  }
  if (!node) return Snapshot{};
  // Aliasing constructor: the snapshot's plan pointer borrows the
  // node's refcount, so (plan, version) stay coherent and alive
  // together no matter how many publishes happen meanwhile.
  return Snapshot{
      std::shared_ptr<const DispatchPlan>(node, &node->plan),
      node->version};
}

std::uint64_t PlanHandle::version() const {
  MutexLock lock(snap_mutex_);
  return current_ ? current_->version : 0;
}

std::optional<PlanHandle::Snapshot> PlanHandle::acquire_if_newer(
    std::uint64_t since) const {
  std::shared_ptr<const Node> node;
  {
    MutexLock lock(snap_mutex_);
    if (!current_ || current_->version <= since) return std::nullopt;
    node = current_;
  }
  return Snapshot{
      std::shared_ptr<const DispatchPlan>(node, &node->plan),
      node->version};
}

std::uint64_t PlanHandle::publish(DispatchPlan plan) {
  MutexLock lock(mutex_);
  return publish_locked(std::move(plan));
}

std::uint64_t PlanHandle::publish_locked(DispatchPlan plan) {
  const std::uint64_t version = ++version_;
  // Node construction (the plan move) happens outside snap_mutex_, so
  // readers are only ever blocked for the pointer assignment.
  auto node = std::make_shared<Node>();
  node->plan = std::move(plan);
  node->version = version;
  MutexLock lock(snap_mutex_);
  current_ = std::move(node);
  return version;
}

}  // namespace palb
