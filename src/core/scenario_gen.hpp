#pragma once

#include <cstdint>

#include "core/controller.hpp"

namespace palb {

/// Seeded random-scenario generator: the workhorse behind the fuzz
/// suite, the scale bench and the CLI's `random:SEED` scenarios. Every
/// draw is deterministic in (seed, options), so a failing seed is a
/// complete bug report.
namespace scenario_gen {

struct Options {
  std::size_t min_classes = 1, max_classes = 3;
  std::size_t min_frontends = 1, max_frontends = 4;
  std::size_t min_datacenters = 1, max_datacenters = 4;
  int min_servers = 2, max_servers = 10;
  std::size_t max_tuf_levels = 3;
  std::size_t slots = 24;
  /// Fraction of (class, front-end) streams that are silent.
  double zero_rate_probability = 0.1;
  /// Per-request utility range ($) for the top TUF level.
  double min_utility = 0.004, max_utility = 0.05;
  /// Give some DCs idle power / PUE above 1.
  bool vary_power_model = true;
};

/// Builds a validated scenario (topology + diurnal-ish arrival traces +
/// OU price traces) from the seed.
Scenario generate(std::uint64_t seed, const Options& options);
Scenario generate(std::uint64_t seed);

}  // namespace scenario_gen
}  // namespace palb
