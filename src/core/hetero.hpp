#pragma once

#include <vector>

#include "core/controller.hpp"

namespace palb {

/// Heterogeneous-fleet support (paper §III-A: "our scenario [assumes]
/// the servers in a data center are homogeneous. It can be easily
/// extended to heterogeneous data centers with heterogeneous servers").
///
/// The extension mechanism is exactly the one the paper implies: a data
/// center with several server generations is modeled as several
/// *homogeneous pools* at the same location — same electricity price,
/// same wire distance — which the optimizer already handles, since
/// nothing in the formulation requires distinct locations per "data
/// center". These helpers perform that split on a Scenario.
namespace hetero {

/// One homogeneous group inside a heterogeneous data center.
struct ServerGroup {
  int num_servers = 0;
  /// Capacity multiplier C of this generation (Eq. 1; 1.0 = baseline).
  double capacity = 1.0;
  /// Optional per-group energy scaling (newer boxes are usually both
  /// faster and more efficient). 1.0 keeps the DC's per-request figures.
  double energy_factor = 1.0;
  /// Optional per-group idle-power override (< 0 keeps the DC's value).
  double idle_power_kw = -1.0;
};

/// Replaces data center `dc_index` of `scenario` with one pool per
/// group. Prices and distances are duplicated (same location); pool
/// names get a "/gN" suffix. Throws InvalidArgument on bad indices or
/// empty/invalid groups.
Scenario split_datacenter(const Scenario& scenario, std::size_t dc_index,
                          const std::vector<ServerGroup>& groups);

}  // namespace hetero
}  // namespace palb
