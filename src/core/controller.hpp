#pragma once

#include <cstdint>
#include <vector>

#include "cloud/accounting.hpp"
#include "core/policy.hpp"
#include "market/price_trace.hpp"
#include "workload/rate_trace.hpp"

namespace palb {

/// A multi-slot scenario: static topology + per-(class, front-end) rate
/// traces + per-data-center price traces. The controller re-plans at the
/// start of every slot, exactly like the paper's hourly loop (§III).
struct Scenario {
  Topology topology;
  /// arrivals[k][s]: the rate trace feeding class k at front-end s.
  std::vector<std::vector<RateTrace>> arrivals;
  /// prices[l]: the price trace at data center l.
  std::vector<PriceTrace> prices;
  double slot_seconds = 3600.0;

  void validate() const;
  /// Materializes the inputs of slot `t`.
  SlotInput slot_input(std::size_t t) const;
};

/// Everything a run produced, slot by slot.
struct RunResult {
  std::vector<SlotMetrics> slots;
  std::vector<DispatchPlan> plans;
  SlotMetrics total;
  /// Solver-effort counters spent producing the plans (warm-start cache
  /// hits/misses, profiles swept, LP pivots) — the delta of the policy's
  /// cumulative PolicyStats across this run, summed over all workers.
  PolicyStats stats;

  /// Resilience telemetry, filled by the ResilientController (empty /
  /// zero on plain SlotController runs). fallback_rungs[t] is the ladder
  /// rung that produced slot t's applied plan (1 = full solve ... 5 =
  /// shed-all; see docs/RESILIENCE.md), repair_adjustments[t] the number
  /// of PlanChecker::repair() fixes applied on top of it.
  std::vector<int> fallback_rungs;
  std::vector<std::size_t> repair_adjustments;
  std::size_t faulted_slots = 0;

  /// Overload telemetry (docs/OVERLOAD.md), filled by the
  /// ResilientController when Options::live is wired up. live_slots[t]
  /// is the index of the slot whose applied plan was *live* (published)
  /// after slot t's ladder ran — equal to t normally, an earlier slot
  /// while a publish-delay fault suppresses publishes, and -1 before
  /// the first publish. The stale-plan age of slot t is thus
  /// t - live_slots[t]. Empty when no live handle was attached.
  std::vector<std::int64_t> live_slots;
  /// Slots whose rung-1 full solve was skipped by a planner-stall fault
  /// (deadline consumed before the solve could finish).
  std::size_t stalled_solves = 0;
  /// Publishes suppressed by publish-delay faults.
  std::size_t delayed_publishes = 0;
  /// Publishes forced through a publish-delay window because the live
  /// plan's age exceeded Options::stale_plan_ttl_slots.
  std::size_t ttl_escalations = 0;

  /// Total repair() adjustments across the run.
  std::size_t total_repairs() const;

  /// Convenience series for the figure benches.
  std::vector<double> net_profit_series() const;
  std::vector<double> class_dc_rate_series(std::size_t k,
                                           std::size_t l) const;
};

/// Drives a policy across `num_slots` slots of a scenario.
class SlotController {
 public:
  /// How a run fans across cores. Slots are independent optimizations
  /// (the paper solves Eqs. 6-8 once per hour with no carried state), so
  /// with `workers > 1` the slot range is split into contiguous blocks,
  /// one Policy::clone() per worker, each block solved in order so
  /// warm-start chains stay intact inside it. Results are collected in
  /// slot order, and every policy's solve is deterministic per
  /// (topology, input) — plans are byte-identical to the 1-worker run
  /// (tests/test_parallel_determinism.cpp holds all 16 paper scenarios
  /// to that under TSan).
  struct RunOptions {
    /// 1 = serial on the calling thread (no clone needed); 0 = one
    /// worker per hardware thread; otherwise capped at num_slots.
    std::size_t workers = 1;
  };

  explicit SlotController(Scenario scenario);

  const Scenario& scenario() const { return scenario_; }

  RunResult run(Policy& policy, std::size_t num_slots,
                std::size_t first_slot = 0) const;
  RunResult run(Policy& policy, std::size_t num_slots,
                std::size_t first_slot, const RunOptions& options) const;

 private:
  /// One worker's contiguous block [block_first, block_first + count).
  void run_block(Policy& policy, std::size_t block_first, std::size_t count,
                 RunResult& into, std::size_t offset) const;

  Scenario scenario_;
};

}  // namespace palb
