#pragma once

#include <vector>

#include "cloud/accounting.hpp"
#include "core/policy.hpp"
#include "market/price_trace.hpp"
#include "workload/rate_trace.hpp"

namespace palb {

/// A multi-slot scenario: static topology + per-(class, front-end) rate
/// traces + per-data-center price traces. The controller re-plans at the
/// start of every slot, exactly like the paper's hourly loop (§III).
struct Scenario {
  Topology topology;
  /// arrivals[k][s]: the rate trace feeding class k at front-end s.
  std::vector<std::vector<RateTrace>> arrivals;
  /// prices[l]: the price trace at data center l.
  std::vector<PriceTrace> prices;
  double slot_seconds = 3600.0;

  void validate() const;
  /// Materializes the inputs of slot `t`.
  SlotInput slot_input(std::size_t t) const;
};

/// Everything a run produced, slot by slot.
struct RunResult {
  std::vector<SlotMetrics> slots;
  std::vector<DispatchPlan> plans;
  SlotMetrics total;

  /// Convenience series for the figure benches.
  std::vector<double> net_profit_series() const;
  std::vector<double> class_dc_rate_series(std::size_t k,
                                           std::size_t l) const;
};

/// Drives a policy across `num_slots` slots of a scenario.
class SlotController {
 public:
  explicit SlotController(Scenario scenario);

  const Scenario& scenario() const { return scenario_; }

  RunResult run(Policy& policy, std::size_t num_slots,
                std::size_t first_slot = 0) const;

 private:
  Scenario scenario_;
};

}  // namespace palb
