#include "core/right_sizing_policy.hpp"

#include <algorithm>
#include <cmath>

#include "check/plan_checker.hpp"
#include "util/error.hpp"

namespace palb {

RightSizingPolicy::RightSizingPolicy() : RightSizingPolicy(Options{}) {}

RightSizingPolicy::RightSizingPolicy(Options options)
    : options_(options), inner_(options.inner) {
  PALB_REQUIRE(options_.switch_cost >= 0.0, "switch cost must be >= 0");
  PALB_REQUIRE(options_.max_hold_slots >= 0, "hold cap must be >= 0");
}

void RightSizingPolicy::reset() {
  prev_on_.clear();
  hold_remaining_.clear();
  last_switch_cost_ = 0.0;
  total_switch_cost_ = 0.0;
  total_transitions_ = 0;
}

DispatchPlan RightSizingPolicy::plan_slot(const Topology& topo,
                                          const SlotInput& input) {
  DispatchPlan plan = inner_.plan_slot(topo, input);
  const std::size_t L = topo.num_datacenters();
  if (prev_on_.size() != L) {
    prev_on_.assign(L, 0);
    hold_remaining_.assign(L, 0);
  }

  last_switch_cost_ = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topo.datacenters[l];
    const int needed = plan.dc[l].servers_on;
    int target = needed;

    // hold_remaining_ state machine: 0 = no hold pending (fresh),
    // > 0 = active countdown, -1 = hold expired (drop to `needed` until
    // demand recovers).
    if (needed >= prev_on_[l] || options_.switch_cost <= 0.0) {
      hold_remaining_[l] = 0;  // demand recovered (or holding disabled)
    } else if (hold_remaining_[l] > 0) {
      --hold_remaining_[l];
      if (hold_remaining_[l] == 0) hold_remaining_[l] = -1;
      target = prev_on_[l];  // keep the idled block powered this slot
    } else if (hold_remaining_[l] == 0) {
      // Fresh idle event: size the break-even window. Keeping one idle
      // server costs idle_power * price * (T/3600) per slot; dropping it
      // and re-powering later costs 2 * switch_cost. Assembled raw
      // (audited seam): the kW x hours rescaling must stay
      // `kW * (T/3600)` to match the accounting ledger bit for bit.
      const double idle_cost_per_slot = dc.idle_power_kw * input.price[l] *
                                        dc.pue *
                                        (input.slot_seconds / 3600.0);
      int hold = options_.max_hold_slots;  // free idle capacity: hold max
      if (idle_cost_per_slot > 0.0) {
        hold = std::min(
            hold, static_cast<int>(std::ceil(2.0 * options_.switch_cost /
                                             idle_cost_per_slot)));
      }
      if (hold > 0) {
        hold_remaining_[l] = hold - 1;  // this slot consumes one
        if (hold_remaining_[l] == 0) hold_remaining_[l] = -1;
        target = prev_on_[l];
      } else {
        hold_remaining_[l] = -1;  // zero window: drop immediately
      }
    }
    // hold_remaining_ == -1: expired, fall through with target = needed.

    target = std::clamp(target, needed, dc.num_servers);
    const int transitions = std::abs(target - prev_on_[l]);
    last_switch_cost_ +=
        options_.switch_cost * static_cast<double>(transitions);
    total_transitions_ += transitions;
    prev_on_[l] = target;
    plan.dc[l].servers_on = target;
    // Extra held servers only lower per-server load under even split —
    // shares stay valid and delays can only shrink.
  }
  total_switch_cost_ += last_switch_cost_;
  check::maybe_check_plan(topo, input, plan, "RightSizingPolicy");
  return plan;
}

}  // namespace palb
