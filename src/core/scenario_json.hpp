#pragma once

#include <string>

#include "core/controller.hpp"
#include "util/json.hpp"

namespace palb {

/// Scenario <-> JSON, so whole experiments (topology + arrival traces +
/// price traces) live in one human-editable file the CLI can run.
///
/// Schema (all rates req/s, deadlines seconds, prices $/kWh):
///
/// {
///   "slot_seconds": 3600,
///   "classes": [
///     { "name": "web",
///       "tuf": { "utilities": [0.02, 0.01], "deadlines": [0.05, 0.15] },
///       "transfer_cost_per_mile": 1e-6 } ],
///   "frontends": [ { "name": "fe1" } ],
///   "datacenters": [
///     { "name": "dc1", "servers": 6, "capacity": 1.0,
///       "service_rate": [110, 130], "energy_per_request_kwh": [2e-3, 3e-3],
///       "pue": 1.0, "idle_power_kw": 0.0 } ],
///   "distance_miles": [ [1000, 2000] ],              // [frontend][dc]
///   "arrivals": [ [ [r0, r1, ...], ... ], ... ],     // [class][frontend][slot]
///   "prices": [ { "location": "Houston", "values": [ ... ] } ]
/// }
namespace scenario_json {

Json to_json(const Scenario& scenario);
Scenario from_json(const Json& doc);

/// File helpers (pretty-printed on write).
void save(const Scenario& scenario, const std::string& path);
Scenario load(const std::string& path);

}  // namespace scenario_json
}  // namespace palb
