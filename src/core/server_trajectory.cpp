#include "core/server_trajectory.hpp"

#include <cmath>

#include "solver/simplex.hpp"
#include "util/error.hpp"

namespace palb {

TrajectoryResult optimal_server_trajectory(
    const std::vector<int>& needed,
    const std::vector<double>& idle_cost_per_slot, double switch_cost,
    int max_servers, int initial_on) {
  const std::size_t T = needed.size();
  PALB_REQUIRE(T > 0, "trajectory needs at least one slot");
  PALB_REQUIRE(idle_cost_per_slot.size() == T,
               "one idle cost per slot required");
  PALB_REQUIRE(switch_cost >= 0.0, "switch cost must be >= 0");
  PALB_REQUIRE(max_servers >= 0, "max_servers must be >= 0");
  PALB_REQUIRE(initial_on >= 0 && initial_on <= max_servers,
               "initial_on out of range");
  for (std::size_t t = 0; t < T; ++t) {
    PALB_REQUIRE(needed[t] >= 0 && needed[t] <= max_servers,
                 "needed servers out of range at slot " + std::to_string(t));
    PALB_REQUIRE(idle_cost_per_slot[t] >= 0.0,
                 "idle costs must be >= 0");
  }

  // Variables: m_t in [needed_t, max]; u_t, d_t >= 0 with
  //   m_t - m_{t-1} = u_t - d_t   (m_{-1} = initial_on).
  LinearProgram lp;
  std::vector<int> m(T), up(T), down(T);
  for (std::size_t t = 0; t < T; ++t) {
    m[t] = lp.add_variable(static_cast<double>(needed[t]),
                           static_cast<double>(max_servers),
                           idle_cost_per_slot[t],
                           "m" + std::to_string(t));
    up[t] = lp.add_variable(0.0, kInfinity, switch_cost,
                            "u" + std::to_string(t));
    down[t] = lp.add_variable(0.0, kInfinity, switch_cost,
                              "d" + std::to_string(t));
  }
  for (std::size_t t = 0; t < T; ++t) {
    std::vector<std::pair<int, double>> terms{{m[t], 1.0},
                                              {up[t], -1.0},
                                              {down[t], 1.0}};
    double rhs = 0.0;
    if (t == 0) {
      rhs = static_cast<double>(initial_on);
    } else {
      terms.emplace_back(m[t - 1], -1.0);
    }
    lp.add_constraint(terms, Relation::kEq, rhs);
  }

  const LpSolution sol = SimplexSolver().solve(lp);
  PALB_REQUIRE(sol.status == LpStatus::kOptimal,
               "trajectory LP failed to solve");

  TrajectoryResult out;
  out.servers.resize(T);
  int prev = initial_on;
  for (std::size_t t = 0; t < T; ++t) {
    // Total unimodularity makes the optimum integral up to FP noise.
    const int count =
        static_cast<int>(std::lround(sol.x[static_cast<std::size_t>(m[t])]));
    PALB_REQUIRE(
        std::abs(sol.x[static_cast<std::size_t>(m[t])] -
                 static_cast<double>(count)) < 1e-6,
        "trajectory LP returned a non-integral optimum");
    out.servers[t] = count;
    out.idle_cost += idle_cost_per_slot[t] * static_cast<double>(count);
    out.switch_cost +=
        switch_cost * static_cast<double>(std::abs(count - prev));
    prev = count;
  }
  return out;
}

}  // namespace palb
