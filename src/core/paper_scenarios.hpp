#pragma once

#include <cstdint>

#include "core/controller.hpp"

namespace palb {

/// Canned scenarios reproducing the paper's three experimental studies.
///
/// UNITS NOTE (documented also in EXPERIMENTS.md): several of the paper's
/// parameter tables are dimensionally inconsistent as printed (e.g. $10+
/// per web request next to 1e-4 kWh energy figures and $/mile transfer
/// costs that would dwarf any utility). We keep the paper's *ratios
/// between request types and data centers* but choose one coherent dollar
/// scale: utilities of a few tenths of a cent per request, energy of a
/// few thousandths of a kWh per request at a few cents per kWh, and wire
/// costs of ~1e-6 $/(request*mile), so that all three profit terms are
/// material and the figures' shapes (who wins, where, by how much) are
/// meaningful.
namespace paper {

/// §V, Tables II-III: 4 front-ends, 3 request types with one-level
/// (constant) TUFs, 3 heterogeneous data centers x 6 servers, fixed
/// synthetic arrival rates and fixed per-location prices.
enum class ArrivalSet { kLow, kHigh };
Scenario basic_synthetic(ArrivalSet set);

/// §VI, Tables IV-VII + Fig. 5: WorldCup'98-like diurnal traces at 4
/// front-ends, 3 types synthesized by time-shifting, one-level TUFs,
/// 3 data centers x 6 servers priced by the Fig. 1 curves. 24 slots.
Scenario worldcup_study(std::uint64_t seed = 42);

/// §VII, Tables VIII-XI: Google-2010-like 7-hour bursty trace, 2 types
/// (duplicate + shift), two-level TUFs, 1 front-end, 2 data centers x
/// `servers_per_dc` servers, Houston & Mountain View prices in the
/// 14:00-19:00 window. `capacity_scale` scales service rates (the
/// paper's §VII-B3 low/high workload study); `demand_scale` scales the
/// arrival trace.
Scenario google_study(std::uint64_t seed = 7, double capacity_scale = 1.0,
                      double demand_scale = 1.0, int servers_per_dc = 6);

}  // namespace paper
}  // namespace palb
