#include "core/bigm_nlp_policy.hpp"

#include <algorithm>
#include <cmath>

#include "check/plan_checker.hpp"
#include "queueing/mm1.hpp"
#include "solver/step_tuf_bigm.hpp"
#include "units/units.hpp"
#include "util/error.hpp"

namespace palb {

namespace {

/// Index helpers over the flat decision vector. Like the paper's
/// formulation (Eq. 4-8), routing and shares are *per server*:
///
///   [ x_{k,s,(l,i)} | phi_{k,(l,i)} | U_{k,l} ]
///
/// where (l,i) enumerates every server of every data center. This is why
/// the paper's Fig. 11 computation time climbs with the server count —
/// the NLP dimension grows linearly in it (and gradient cost
/// quadratically).
struct Layout {
  std::size_t K, S, L;
  std::size_t total_servers = 0;
  std::vector<std::size_t> server_base;  ///< first server index per DC

  explicit Layout(const Topology& topo)
      : K(topo.num_classes()),
        S(topo.num_frontends()),
        L(topo.num_datacenters()) {
    server_base.reserve(L);
    for (const auto& dc : topo.datacenters) {
      server_base.push_back(total_servers);
      total_servers += static_cast<std::size_t>(dc.num_servers);
    }
  }

  std::size_t server(std::size_t l, std::size_t i) const {
    return server_base[l] + i;
  }
  std::size_t x(std::size_t k, std::size_t s, std::size_t srv) const {
    return (k * S + s) * total_servers + srv;
  }
  std::size_t phi(std::size_t k, std::size_t srv) const {
    return K * S * total_servers + k * total_servers + srv;
  }
  std::size_t u(std::size_t k, std::size_t l) const {
    return K * S * total_servers + K * total_servers + k * L + l;
  }
  std::size_t dimension() const {
    return K * S * total_servers + K * total_servers + K * L;
  }
};

double server_load(const std::vector<double>& v, const Layout& lay,
                   std::size_t k, std::size_t srv) {
  double x = 0.0;
  for (std::size_t s = 0; s < lay.S; ++s) x += v[lay.x(k, s, srv)];
  return x;
}

/// Mean sojourn on one VM; a huge smooth sentinel when (near) unstable.
double guarded_delay(double share, double capacity, double mu,
                     double load) {
  const double headroom = share * capacity * mu - load;
  if (headroom <= 1e-9) return 1e9 + std::max(0.0, -headroom) * 1e9;
  return 1.0 / headroom;
}

/// Symmetric relative closeness (mirrors OptimizedPolicy's warm gate).
bool close_relative(double a, double b, double tol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= tol * std::max(scale, 1e-12);
}

}  // namespace

bool BigMNlpPolicy::warm_applicable(const SlotInput& input,
                                    std::size_t dimension) const {
  if (!cache_.valid || cache_.x.size() != dimension) return false;
  if (cache_.price.size() != input.price.size()) return false;
  if (cache_.arrival_rate.size() != input.arrival_rate.size()) return false;
  const double tol = options_.warm_start_tolerance;
  for (std::size_t l = 0; l < input.price.size(); ++l) {
    if (!close_relative(cache_.price[l], input.price[l], tol)) return false;
  }
  for (std::size_t k = 0; k < input.arrival_rate.size(); ++k) {
    if (cache_.arrival_rate[k].size() != input.arrival_rate[k].size()) {
      return false;
    }
    for (std::size_t s = 0; s < input.arrival_rate[k].size(); ++s) {
      if (!close_relative(cache_.arrival_rate[k][s],
                          input.arrival_rate[k][s], tol)) {
        return false;
      }
    }
  }
  return true;
}

BigMNlpPolicy::BigMNlpPolicy() : BigMNlpPolicy(Options{}) {}

BigMNlpPolicy::BigMNlpPolicy(Options options) : options_(options) {
  PALB_REQUIRE(options_.multistarts >= 1, "need at least one start");
}

DispatchPlan BigMNlpPolicy::plan_slot(const Topology& topo,
                                      const SlotInput& input) {
  topo.validate();
  input.validate(topo);
  const std::size_t K = topo.num_classes();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.num_datacenters();
  const double T = input.slot_seconds;
  const Layout lay(topo);

  // One big-M constraint system per class (Eq. 17 is per class).
  std::vector<StepTufBigM> bigm;
  bigm.reserve(K);
  for (std::size_t k = 0; k < K; ++k) {
    bigm.emplace_back(topo.classes[k].tuf.utilities(),
                      topo.classes[k].tuf.sub_deadlines(), options_.big_m,
                      options_.delta);
  }

  NlpProblem problem;
  problem.dimension = lay.dimension();
  problem.lower.assign(problem.dimension, 0.0);
  problem.upper.assign(problem.dimension, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t srv = 0; srv < lay.total_servers; ++srv) {
        problem.upper[lay.x(k, s, srv)] = input.arrival_rate[k][s];
      }
    }
    for (std::size_t srv = 0; srv < lay.total_servers; ++srv) {
      problem.upper[lay.phi(k, srv)] = 1.0;
    }
    for (std::size_t l = 0; l < L; ++l) {
      problem.upper[lay.u(k, l)] = topo.classes[k].tuf.max_utility();
    }
  }

  // Objective (Eq. 5, negated to minimize): per-server flows earn the
  // class-DC utility variable minus slot-constant energy and wire rates.
  problem.objective = [&topo, &input, lay, T, K, S,
                       L](const std::vector<double>& v) {
    double profit = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const auto& cls = topo.classes[k];
      for (std::size_t l = 0; l < L; ++l) {
        const auto& dc = topo.datacenters[l];
        // kWh/req * $/kWh -> $/req; the wire term is $/req-mile * miles.
        // .value() feeds the raw NLP decision vector (solver seam).
        const units::DollarsPerReq energy =
            dc.energy_per_request(k) * input.price_at(l) * dc.pue;
        const double u = v[lay.u(k, l)];
        for (std::size_t s = 0; s < S; ++s) {
          const units::DollarsPerReq wire =
              cls.transfer_cost() * topo.distance(s, l);
          double flow = 0.0;
          for (int i = 0; i < dc.num_servers; ++i) {
            flow += v[lay.x(k, s, lay.server(l, static_cast<std::size_t>(i)))];
          }
          // Served flow earns its utility and avoids its drop penalty.
          profit += (u + cls.drop_penalty_per_request - energy.value() -
                     wire.value()) *
                    flow;
        }
      }
    }
    return -profit * T;
  };

  // Flow conservation per (class, front-end) (Eq. 7).
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      problem.inequalities.push_back(
          [&input, lay, k, s](const std::vector<double>& v) {
            double sum = 0.0;
            for (std::size_t srv = 0; srv < lay.total_servers; ++srv) {
              sum += v[lay.x(k, s, srv)];
            }
            return sum - input.arrival_rate[k][s];
          });
    }
  }
  // CPU budget per server (Eq. 8).
  for (std::size_t srv = 0; srv < lay.total_servers; ++srv) {
    problem.inequalities.push_back(
        [lay, srv, K](const std::vector<double>& v) {
          double sum = 0.0;
          for (std::size_t k = 0; k < K; ++k) sum += v[lay.phi(k, srv)];
          return sum - 1.0;
        });
  }
  // Final-deadline QoS (Eq. 6) and the big-M band system (Eqs. 11-13/17)
  // per (class, server); both load-scaled so idle VMs impose nothing.
  for (std::size_t k = 0; k < K; ++k) {
    const double final_deadline = topo.classes[k].tuf.final_deadline();
    const bool multi_level = topo.classes[k].tuf.levels() >= 2;
    for (std::size_t l = 0; l < L; ++l) {
      const auto& dc = topo.datacenters[l];
      for (int i = 0; i < dc.num_servers; ++i) {
        const std::size_t srv = lay.server(l, static_cast<std::size_t>(i));
        problem.inequalities.push_back(
            [lay, k, srv, final_deadline, capacity = dc.server_capacity,
             mu = dc.service_rate[k]](const std::vector<double>& v) {
              const double load = server_load(v, lay, k, srv);
              if (load <= 0.0) return -1.0;
              const double delay =
                  guarded_delay(v[lay.phi(k, srv)], capacity, mu, load);
              return load * (delay - final_deadline);
            });
        if (!multi_level) continue;  // one level: the paper's LP case
        for (std::size_t j = 0; j < bigm[k].num_constraints(); ++j) {
          problem.inequalities.push_back(
              [lay, k, l, srv, j, capacity = dc.server_capacity,
               mu = dc.service_rate[k], &bigm](const std::vector<double>& v) {
                const double load = server_load(v, lay, k, srv);
                if (load <= 0.0) return -1.0;
                const double delay =
                    guarded_delay(v[lay.phi(k, srv)], capacity, mu, load);
                // Load-scaled and big_m-normalized to keep penalties sane.
                return load *
                       bigm[k].constraint_value(j, delay, v[lay.u(k, l)]) /
                       bigm[k].big_m();
              });
        }
      }
    }
  }

  // Starting point: even spread across servers, even shares, top levels.
  std::vector<double> x0(problem.dimension, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t srv = 0; srv < lay.total_servers; ++srv) {
        x0[lay.x(k, s, srv)] =
            input.arrival_rate[k][s] /
            static_cast<double>(2 * lay.total_servers);
      }
    }
    for (std::size_t srv = 0; srv < lay.total_servers; ++srv) {
      x0[lay.phi(k, srv)] = 1.0 / static_cast<double>(K);
    }
    for (std::size_t l = 0; l < L; ++l) {
      x0[lay.u(k, l)] = topo.classes[k].tuf.max_utility();
    }
  }

  const std::vector<double>* warm = nullptr;
  if (options_.warm_start) {
    const bool hit = warm_applicable(input, problem.dimension);
    if (hit) warm = &cache_.x;
    totals_.warm_start_hits += hit ? 1 : 0;
    totals_.warm_start_misses += hit ? 0 : 1;
  }

  const AugLagSolver solver(options_.nlp);
  const NlpResult result = solver.solve_multistart(
      problem, x0, options_.multistarts, Rng(options_.seed), warm);
  inner_iterations_ = result.inner_iterations;
  totals_.nlp_iterations += static_cast<std::uint64_t>(
      std::max(0, result.inner_iterations));
  if (options_.warm_start) {
    cache_.valid = true;
    cache_.x = result.x;
    cache_.arrival_rate = input.arrival_rate;
    cache_.price = input.price;
  }

  // ---- Realize (collapse servers back to the homogeneous-DC plan) and
  // ---- sanitize the near-optimal NLP point into a strictly valid plan.
  DispatchPlan plan = DispatchPlan::zero(topo);
  const std::vector<double>& v = result.x;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      // Clamp any solver tolerance overshoot back inside Eq. 7.
      double sum = 0.0;
      for (std::size_t srv = 0; srv < lay.total_servers; ++srv) {
        sum += v[lay.x(k, s, srv)];
      }
      const double cap = input.arrival_rate[k][s];
      const double scale = sum > cap && sum > 0.0 ? cap / sum : 1.0;
      for (std::size_t l = 0; l < L; ++l) {
        const auto& dc = topo.datacenters[l];
        double flow = 0.0;
        for (int i = 0; i < dc.num_servers; ++i) {
          flow += v[lay.x(k, s, lay.server(l, static_cast<std::size_t>(i)))];
        }
        flow *= scale;
        plan.rate[k][s][l] = flow > 1e-9 ? flow : 0.0;
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topo.datacenters[l];
    const auto servers = static_cast<std::size_t>(dc.num_servers);
    double share_sum = 0.0;
    bool any_load = false;
    for (std::size_t k = 0; k < K; ++k) {
      double mean_share = 0.0;
      for (std::size_t i = 0; i < servers; ++i) {
        mean_share += v[lay.phi(k, lay.server(l, i))];
      }
      mean_share /= static_cast<double>(servers);
      plan.dc[l].share[k] = std::clamp(mean_share, 0.0, 1.0);
      share_sum += plan.dc[l].share[k];
      if (plan.class_dc_rate(k, l) > 0.0) any_load = true;
    }
    if (share_sum > 1.0) {
      for (std::size_t k = 0; k < K; ++k) plan.dc[l].share[k] /= share_sum;
    }
    plan.dc[l].servers_on = any_load ? dc.num_servers : 0;
    // Drop flow the realized allocation cannot serve stably within the
    // final deadline — the NLP is only near-optimal and may leave dregs.
    for (std::size_t k = 0; k < K; ++k) {
      const double load = plan.class_dc_rate(k, l);
      if (load <= 0.0) continue;
      if (plan.dc[l].share[k] <= 0.0) {
        for (std::size_t s = 0; s < S; ++s) plan.rate[k][s][l] = 0.0;
        continue;
      }
      // Shares were clamped/renormalized into [0, 1] above, so the typed
      // queue inversion applies.
      const double max_ok =
          mm1::max_rate(units::CpuShare{plan.dc[l].share[k]},
                        dc.server_capacity, dc.service_rate_of(k),
                        topo.classes[k].tuf.deadline() * (1.0 - 1e-9))
              .value();
      const double budget = max_ok * static_cast<double>(dc.num_servers);
      if (load > budget) {
        const double scale = budget > 0.0 ? budget / load : 0.0;
        for (std::size_t s = 0; s < S; ++s) plan.rate[k][s][l] *= scale;
      }
    }
    bool still_loaded = false;
    for (std::size_t k = 0; k < K; ++k) {
      if (plan.class_dc_rate(k, l) > 1e-9) still_loaded = true;
    }
    if (!still_loaded) plan.dc[l].servers_on = 0;
  }
  check::maybe_check_plan(topo, input, plan, "BigMNlpPolicy");
  return plan;
}

}  // namespace palb
