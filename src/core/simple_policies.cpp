#include "core/simple_policies.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "queueing/mm1.hpp"
#include "solver/simplex.hpp"
#include "util/error.hpp"

namespace palb {

namespace {

/// Deadline-bounded per-server rate capacity for class k at DC l under a
/// fixed even share (the static-allocation convention shared by the
/// greedy baselines; the tiny margin keeps band edges FP-safe).
double even_share_capacity(const Topology& topo, std::size_t k,
                           std::size_t l) {
  const auto& dc = topo.datacenters[l];
  const double share = 1.0 / static_cast<double>(topo.num_classes());
  const double deadline =
      topo.classes[k].tuf.final_deadline() * (1.0 - 1e-6);
  return mm1::max_rate(share, dc.server_capacity, dc.service_rate[k],
                       deadline);
}

/// Shared fill loop for greedy baselines: walk data centers in
/// `order[s]` preference for front-end s, grant capacity, then power the
/// fewest servers that carry the granted load at even shares.
DispatchPlan greedy_fill(
    const Topology& topo, const SlotInput& input,
    const std::vector<std::vector<std::size_t>>& order) {
  const std::size_t K = topo.num_classes();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.num_datacenters();
  const double even_share = 1.0 / static_cast<double>(K);

  DispatchPlan plan = DispatchPlan::zero(topo);
  std::vector<std::vector<double>> remaining(K, std::vector<double>(L));
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t l = 0; l < L; ++l) {
      remaining[k][l] =
          even_share_capacity(topo, k, l) *
          static_cast<double>(topo.datacenters[l].num_servers);
    }
  }
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t k = 0; k < K; ++k) {
      double demand = input.arrival_rate[k][s];
      for (std::size_t l : order[s]) {
        if (demand <= 0.0) break;
        const double grant = std::min(demand, remaining[k][l]);
        if (grant <= 0.0) continue;
        plan.rate[k][s][l] += grant;
        remaining[k][l] -= grant;
        demand -= grant;
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    int servers = 0;
    for (std::size_t k = 0; k < K; ++k) {
      const double load = plan.class_dc_rate(k, l);
      if (load <= 0.0) continue;
      const double cap = even_share_capacity(topo, k, l);
      PALB_REQUIRE(cap > 0.0, "greedy fill granted load without capacity");
      servers = std::max(
          servers, static_cast<int>(std::ceil(load / cap - 1e-9)));
    }
    servers = std::min(servers, topo.datacenters[l].num_servers);
    plan.dc[l].servers_on = servers;
    for (std::size_t k = 0; k < K; ++k) {
      plan.dc[l].share[k] = servers > 0 ? even_share : 0.0;
    }
  }
  return plan;
}

}  // namespace

DispatchPlan NearestPolicy::plan_slot(const Topology& topo,
                                      const SlotInput& input) {
  topo.validate();
  input.validate(topo);
  std::vector<std::vector<std::size_t>> order(topo.num_frontends());
  for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
    order[s].resize(topo.num_datacenters());
    std::iota(order[s].begin(), order[s].end(), 0);
    std::stable_sort(order[s].begin(), order[s].end(),
                     [&](std::size_t a, std::size_t b) {
                       return topo.distance_miles[s][a] <
                              topo.distance_miles[s][b];
                     });
  }
  return greedy_fill(topo, input, order);
}

DispatchPlan CostMinPolicy::plan_slot(const Topology& topo,
                                      const SlotInput& input) {
  topo.validate();
  input.validate(topo);
  const std::size_t K = topo.num_classes();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.num_datacenters();
  const double T = input.slot_seconds;

  // Volume bonus far above any per-request cost so the LP is
  // lexicographic: maximize served volume, then minimize dollars.
  double max_cost_rate = 1e-9;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t l = 0; l < L; ++l) {
      const double energy = topo.datacenters[l].energy_per_request_kwh[k] *
                            input.price[l] * topo.datacenters[l].pue;
      for (std::size_t s = 0; s < S; ++s) {
        const double wire = topo.classes[k].transfer_cost_per_mile *
                            topo.distance_miles[s][l];
        max_cost_rate = std::max(max_cost_rate, energy + wire);
      }
    }
  }
  const double bonus = 1e4 * max_cost_rate;

  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<int> var(K * S * L, -1);
  std::vector<double> overhead(L, 0.0);
  for (std::size_t l = 0; l < L; ++l) {
    for (std::size_t k = 0; k < K; ++k) {
      const auto& dc = topo.datacenters[l];
      overhead[l] += 1.0 / (topo.classes[k].tuf.final_deadline() *
                            (1.0 - 1e-6) * dc.server_capacity *
                            dc.service_rate[k]);
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t l = 0; l < L; ++l) {
      if (overhead[l] >= 1.0) continue;  // DC can't host all-class profile
      const auto& dc = topo.datacenters[l];
      const double energy =
          dc.energy_per_request_kwh[k] * input.price[l] * dc.pue;
      for (std::size_t s = 0; s < S; ++s) {
        const double wire = topo.classes[k].transfer_cost_per_mile *
                            topo.distance_miles[s][l];
        var[(k * S + s) * L + l] = lp.add_variable(
            0.0, input.arrival_rate[k][s], (bonus - energy - wire) * T);
      }
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t l = 0; l < L; ++l) {
        const int v = var[(k * S + s) * L + l];
        if (v >= 0) terms.emplace_back(v, 1.0);
      }
      if (terms.size() > 1) {
        lp.add_constraint(terms, Relation::kLe, input.arrival_rate[k][s]);
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    if (overhead[l] >= 1.0) continue;
    const auto& dc = topo.datacenters[l];
    std::vector<std::pair<int, double>> terms;
    for (std::size_t k = 0; k < K; ++k) {
      const double inv = 1.0 / (dc.server_capacity * dc.service_rate[k]);
      for (std::size_t s = 0; s < S; ++s) {
        const int v = var[(k * S + s) * L + l];
        if (v >= 0) terms.emplace_back(v, inv);
      }
    }
    if (!terms.empty()) {
      lp.add_constraint(terms, Relation::kLe,
                        static_cast<double>(dc.num_servers) *
                            (1.0 - overhead[l]));
    }
  }

  DispatchPlan plan = DispatchPlan::zero(topo);
  if (lp.num_variables() == 0) return plan;
  const LpSolution sol = SimplexSolver().solve(lp);
  if (sol.status != LpStatus::kOptimal) return plan;

  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t l = 0; l < L; ++l) {
        const int v = var[(k * S + s) * L + l];
        if (v >= 0) plan.rate[k][s][l] = sol.x[static_cast<std::size_t>(v)];
      }
    }
  }
  // Minimal servers + minimal shares at the final deadline, like the
  // optimizer's realization but with no band choice.
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topo.datacenters[l];
    double active_overhead = 0.0, load_sum = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const double x = plan.class_dc_rate(k, l);
      if (x <= 1e-12) continue;
      const double deadline =
          topo.classes[k].tuf.final_deadline() * (1.0 - 1e-6);
      active_overhead +=
          1.0 / (deadline * dc.server_capacity * dc.service_rate[k]);
      load_sum += x / (dc.server_capacity * dc.service_rate[k]);
    }
    if (load_sum <= 0.0) continue;
    int servers = static_cast<int>(
        std::ceil(load_sum / (1.0 - active_overhead) - 1e-12));
    servers = std::clamp(servers, 1, dc.num_servers);
    plan.dc[l].servers_on = servers;
    double share_sum = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const double x = plan.class_dc_rate(k, l);
      if (x <= 1e-12) continue;
      const double deadline =
          topo.classes[k].tuf.final_deadline() * (1.0 - 1e-6);
      plan.dc[l].share[k] =
          mm1::required_share(x / static_cast<double>(servers),
                              dc.server_capacity, dc.service_rate[k],
                              deadline);
      share_sum += plan.dc[l].share[k];
    }
    if (share_sum > 1.0) {
      for (std::size_t k = 0; k < K; ++k) plan.dc[l].share[k] /= share_sum;
    }
  }
  return plan;
}

}  // namespace palb
