#pragma once

#include <vector>

namespace palb {

/// Offline-optimal server trajectory (extension; the clairvoyant bound
/// of Lin et al. [8], the right-sizing work the paper cites).
///
/// Given, for one data center, the per-slot server *requirement*
/// (capacity feasibility), the per-slot cost of keeping one server
/// powered (idle energy at that slot's price), and a per-transition
/// switching cost, choose the powered-on trajectory minimizing
///
///   sum_t idle_cost[t] * m_t  +  switch_cost * sum_t |m_t - m_{t-1}|
///   s.t. needed[t] <= m_t <= max_servers.
///
/// The LP relaxation of this program is totally unimodular (it is a
/// min-cost flow), so the simplex solution is integral — the returned
/// trajectory is exactly optimal, making it the yardstick online rules
/// (RightSizingPolicy's break-even hold) are judged against.
struct TrajectoryResult {
  std::vector<int> servers;  ///< m_t per slot
  double idle_cost = 0.0;    ///< sum idle_cost[t] * m_t
  double switch_cost = 0.0;  ///< switch dollars paid
  double total() const { return idle_cost + switch_cost; }
};

TrajectoryResult optimal_server_trajectory(
    const std::vector<int>& needed,
    const std::vector<double>& idle_cost_per_slot, double switch_cost,
    int max_servers, int initial_on = 0);

}  // namespace palb
