#include "core/scenario_gen.hpp"

#include "market/price_generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace palb::scenario_gen {

Scenario generate(std::uint64_t seed) { return generate(seed, Options{}); }

Scenario generate(std::uint64_t seed, const Options& opt) {
  PALB_REQUIRE(opt.min_classes >= 1 && opt.max_classes >= opt.min_classes,
               "bad class count range");
  PALB_REQUIRE(opt.min_frontends >= 1 &&
                   opt.max_frontends >= opt.min_frontends,
               "bad front-end count range");
  PALB_REQUIRE(opt.min_datacenters >= 1 &&
                   opt.max_datacenters >= opt.min_datacenters,
               "bad data-center count range");
  PALB_REQUIRE(opt.min_servers >= 1 && opt.max_servers >= opt.min_servers,
               "bad server count range");
  PALB_REQUIRE(opt.max_tuf_levels >= 1, "need at least one TUF level");
  PALB_REQUIRE(opt.slots >= 1, "need at least one slot");
  PALB_REQUIRE(opt.min_utility > 0.0 && opt.max_utility >= opt.min_utility,
               "bad utility range");

  Rng rng(seed * 2654435761u + 97);
  Scenario sc;
  sc.slot_seconds = 3600.0;

  const std::size_t K =
      opt.min_classes + rng.uniform_index(opt.max_classes - opt.min_classes + 1);
  const std::size_t S = opt.min_frontends +
                        rng.uniform_index(opt.max_frontends -
                                          opt.min_frontends + 1);
  const std::size_t L = opt.min_datacenters +
                        rng.uniform_index(opt.max_datacenters -
                                          opt.min_datacenters + 1);

  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t levels = 1 + rng.uniform_index(opt.max_tuf_levels);
    std::vector<double> utilities, deadlines;
    double u = rng.uniform(opt.min_utility, opt.max_utility);
    double d = rng.uniform(0.02, 0.2);
    for (std::size_t q = 0; q < levels; ++q) {
      utilities.push_back(u);
      deadlines.push_back(d);
      u *= rng.uniform(0.3, 0.8);
      d *= rng.uniform(1.5, 3.0);
    }
    sc.topology.classes.push_back(
        RequestClass{"class" + std::to_string(k),
                     StepTuf(std::move(utilities), std::move(deadlines)),
                     rng.uniform(0.0, 3e-6), 0.0});
  }
  for (std::size_t s = 0; s < S; ++s) {
    sc.topology.frontends.push_back(FrontEnd{"fe" + std::to_string(s)});
  }
  for (std::size_t l = 0; l < L; ++l) {
    DataCenter dc;
    dc.name = "dc" + std::to_string(l);
    dc.num_servers =
        opt.min_servers +
        static_cast<int>(rng.uniform_index(
            static_cast<std::uint64_t>(opt.max_servers - opt.min_servers) +
            1));
    dc.server_capacity = rng.uniform(0.5, 2.0);
    if (opt.vary_power_model) {
      dc.pue = rng.uniform(1.0, 1.8);
      dc.idle_power_kw = rng.bernoulli(0.3) ? rng.uniform(0.0, 5.0) : 0.0;
    }
    for (std::size_t k = 0; k < K; ++k) {
      dc.service_rate.push_back(rng.uniform(40.0, 250.0));
      dc.energy_per_request_kwh.push_back(rng.uniform(0.0, 0.01));
    }
    sc.topology.datacenters.push_back(std::move(dc));
  }
  sc.topology.distance_miles.assign(S, std::vector<double>(L, 0.0));
  for (auto& row : sc.topology.distance_miles) {
    for (double& d : row) d = rng.uniform(0.0, 3000.0);
  }

  // Arrivals: diurnal base per stream, some streams silent.
  sc.arrivals.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      if (rng.bernoulli(opt.zero_rate_probability)) {
        sc.arrivals[k].push_back(
            workload::constant("silent", 0.0, opt.slots));
        continue;
      }
      workload::WorldCupParams wp;
      wp.base_rate = rng.uniform(5.0, 60.0);
      wp.daily_peak = wp.base_rate * rng.uniform(2.0, 6.0);
      wp.match_boost = rng.uniform(1.0, 1.8);
      wp.burst_sigma = rng.uniform(0.0, 0.25);
      wp.phase_shift = rng.uniform_index(24);
      wp.slots = opt.slots;
      Rng stream = rng.substream(k * 131 + s);
      sc.arrivals[k].push_back(workload::worldcup_like(
          "k" + std::to_string(k) + "s" + std::to_string(s), wp, stream));
    }
  }

  // Prices: OU around a per-location mean.
  OuPriceGenerator::Params ou;
  for (std::size_t l = 0; l < L; ++l) {
    ou.mean = rng.uniform(0.02, 0.1);
    ou.diurnal_amplitude = rng.uniform(0.0, 0.04);
    ou.peak_hour = rng.uniform(10.0, 20.0);
    ou.volatility = rng.uniform(0.0, 0.01);
    OuPriceGenerator gen(ou);
    Rng stream = rng.substream(1000 + l);
    sc.prices.push_back(
        gen.generate("loc" + std::to_string(l), opt.slots, stream));
  }

  sc.validate();
  return sc;
}

}  // namespace palb::scenario_gen
