#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cloud/plan.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace palb {

/// RCU-style hot-swap cell for the currently applied DispatchPlan — the
/// seed of the ROADMAP's online serving mode, where per-request routing
/// is a constant-time lookup against the plan the slow path last
/// published.
///
/// Reader side: acquire() copies one shared_ptr under a dedicated
/// snapshot mutex — O(1), independent of plan size, never held across
/// a solve — and returns an immutable Snapshot that stays valid for as
/// long as the caller holds it, with no lock held while it is used.
/// The grace period is the shared_ptr refcount: a swapped-out plan is
/// reclaimed exactly when its last reader lets go, so a dispatcher
/// thread can route against a snapshot while the next slot's plan
/// lands. (The storage is a guarded shared_ptr rather than
/// std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic guards its raw
/// pointer with a lock bit ThreadSanitizer cannot see through, and a
/// primitive whose own swap path reports races under the tsan preset
/// would be useless here. The brief mutex copy is TSan-visible, lets
/// current_ carry PALB_GUARDED_BY, and the acquire() contract leaves
/// room to go lock-free later without touching callers.)
///
/// Writer side: publish() serializes publishers on the handle's
/// publish mutex and bumps a strictly increasing version, so a reader
/// detects a swap by comparing Snapshot::version across two acquires.
/// For read-modify-publish sequences (inspect the incumbent, then swap
/// atomically with respect to other writers) the two-step
/// publish_mutex()/publish_locked() surface is exposed — and it is
/// capability-annotated: calling publish_locked() without holding
/// publish_mutex(), or publish() while holding it, is a compile error
/// under the thread-safety preset
/// (tests/compile_fail/thread_safety_cases/).
class PlanHandle {
 public:
  /// One coherent (plan, version) pair. `plan` is null and `version` 0
  /// until the first publish.
  struct Snapshot {
    std::shared_ptr<const DispatchPlan> plan;
    std::uint64_t version = 0;

    explicit operator bool() const { return plan != nullptr; }
  };

  PlanHandle() = default;
  PlanHandle(const PlanHandle&) = delete;
  PlanHandle& operator=(const PlanHandle&) = delete;

  /// Coherent read of the current plan. Safe from any thread —
  /// concurrently with publish(), and also while holding
  /// publish_mutex() inside a two-step sequence (it takes only the
  /// internal snapshot mutex); no lock is held once the Snapshot is
  /// returned.
  Snapshot acquire() const PALB_EXCLUDES(snap_mutex_);

  /// Version of the currently published plan (0 = none yet); the same
  /// constant-time read as acquire() without materializing a snapshot.
  std::uint64_t version() const PALB_EXCLUDES(snap_mutex_);

  /// acquire(), but only when the current version is strictly newer
  /// than `since`; an empty optional means the caller's copy is still
  /// current. One lock round-trip instead of the racy version() +
  /// acquire() pair — the poll the serving fast path's table refresh
  /// (src/serve/dispatcher.hpp) runs between request batches.
  std::optional<Snapshot> acquire_if_newer(std::uint64_t since) const
      PALB_EXCLUDES(snap_mutex_);

  /// Publishes `plan` as the new current plan; returns its version.
  /// Serializes with other publishers internally.
  std::uint64_t publish(DispatchPlan plan) PALB_EXCLUDES(mutex_);

  /// The capability guarding the publish side, for two-step sequences:
  ///
  ///   MutexLock lock(handle.publish_mutex());
  ///   ... inspect handle.acquire() / decide ...
  ///   handle.publish_locked(std::move(next));
  Mutex& publish_mutex() const PALB_RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

  /// publish() body, for callers already holding publish_mutex().
  std::uint64_t publish_locked(DispatchPlan plan)
      PALB_REQUIRES(mutex_) PALB_EXCLUDES(snap_mutex_);

 private:
  /// One allocation per publish; Snapshot::plan aliases into the node,
  /// so the node (and its version) live until the last reader drops.
  struct Node {
    DispatchPlan plan;
    std::uint64_t version = 0;
  };

  /// Two capabilities with a fixed order (mutex_ before snap_mutex_):
  /// mutex_ is the publish capability, held across a whole read-modify-
  /// publish sequence; snap_mutex_ guards only the current_ pointer for
  /// the brief reader copy / writer swap, so acquire() works both from
  /// dispatcher threads and from inside a two-step publish.
  mutable Mutex mutex_;
  std::uint64_t version_ PALB_GUARDED_BY(mutex_) = 0;
  mutable Mutex snap_mutex_ PALB_ACQUIRED_AFTER(mutex_);
  std::shared_ptr<const Node> current_ PALB_GUARDED_BY(snap_mutex_);
};

}  // namespace palb
