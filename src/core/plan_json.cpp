#include "core/plan_json.hpp"

#include <limits>

#include "util/error.hpp"

namespace palb::plan_json {

namespace {
Json numbers(const std::vector<double>& values) {
  Json arr = Json::array();
  for (double v : values) arr.push_back(Json(v));
  return arr;
}
}  // namespace

Json to_json(const DispatchPlan& plan) {
  Json doc = Json::object();
  Json rate = Json::array();
  for (const auto& per_class : plan.rate) {
    Json class_row = Json::array();
    for (const auto& per_frontend : per_class) {
      class_row.push_back(numbers(per_frontend));
    }
    rate.push_back(std::move(class_row));
  }
  doc.set("rate", std::move(rate));

  Json dcs = Json::array();
  for (const auto& alloc : plan.dc) {
    Json d = Json::object();
    d.set("servers_on", Json(alloc.servers_on));
    d.set("share", numbers(alloc.share));
    dcs.push_back(std::move(d));
  }
  doc.set("datacenters", std::move(dcs));
  return doc;
}

DispatchPlan from_json(const Json& doc, const Topology& topology) {
  DispatchPlan plan = DispatchPlan::zero(topology);
  const Json& rate = doc.at("rate");
  PALB_REQUIRE(rate.size() == topology.num_classes(),
               "plan JSON class dimension mismatch");
  for (std::size_t k = 0; k < topology.num_classes(); ++k) {
    const Json& per_class = rate[k];
    PALB_REQUIRE(per_class.size() == topology.num_frontends(),
                 "plan JSON front-end dimension mismatch");
    for (std::size_t s = 0; s < topology.num_frontends(); ++s) {
      const Json& per_frontend = per_class[s];
      PALB_REQUIRE(per_frontend.size() == topology.num_datacenters(),
                   "plan JSON data-center dimension mismatch");
      for (std::size_t l = 0; l < topology.num_datacenters(); ++l) {
        plan.rate[k][s][l] = per_frontend[l].as_number();
      }
    }
  }
  const Json& dcs = doc.at("datacenters");
  PALB_REQUIRE(dcs.size() == topology.num_datacenters(),
               "plan JSON allocation dimension mismatch");
  for (std::size_t l = 0; l < topology.num_datacenters(); ++l) {
    // as_index() already rejects negatives and fractions; bound the
    // size_t -> int narrowing too so an absurd count from a hand-edited
    // file fails loudly instead of wrapping negative.
    const std::size_t servers_on = dcs[l].at("servers_on").as_index();
    PALB_REQUIRE(servers_on <= static_cast<std::size_t>(
                                   std::numeric_limits<int>::max()),
                 "plan JSON servers_on exceeds the int range");
    plan.dc[l].servers_on = static_cast<int>(servers_on);
    const Json& share = dcs[l].at("share");
    PALB_REQUIRE(share.size() == topology.num_classes(),
                 "plan JSON share dimension mismatch");
    for (std::size_t k = 0; k < topology.num_classes(); ++k) {
      plan.dc[l].share[k] = share[k].as_number();
    }
  }
  return plan;
}

Json metrics_to_json(const SlotMetrics& m) {
  Json doc = Json::object();
  doc.set("revenue", Json(m.revenue));
  doc.set("energy_cost", Json(m.energy_cost));
  doc.set("transfer_cost", Json(m.transfer_cost));
  doc.set("penalty_cost", Json(m.penalty_cost));
  doc.set("net_profit", Json(m.net_profit()));
  doc.set("offered_requests", Json(m.offered_requests));
  doc.set("dispatched_requests", Json(m.dispatched_requests));
  doc.set("completed_requests", Json(m.completed_requests));
  doc.set("valuable_requests", Json(m.valuable_requests));
  doc.set("servers_on", Json(m.servers_on));
  return doc;
}

Json run_to_json(const RunResult& run) {
  PALB_REQUIRE(run.slots.size() == run.plans.size(),
               "run has mismatched slots/plans");
  Json doc = Json::object();
  Json slots = Json::array();
  for (std::size_t t = 0; t < run.slots.size(); ++t) {
    Json entry = Json::object();
    entry.set("slot", Json(t));
    entry.set("plan", to_json(run.plans[t]));
    entry.set("ledger", metrics_to_json(run.slots[t]));
    slots.push_back(std::move(entry));
  }
  doc.set("slots", std::move(slots));
  doc.set("total", metrics_to_json(run.total));
  return doc;
}

}  // namespace palb::plan_json
