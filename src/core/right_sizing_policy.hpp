#pragma once

#include <vector>

#include "core/optimized_policy.hpp"

namespace palb {

/// Dynamic right-sizing with switching costs (extension).
///
/// The paper assumes "server switching costs and durations are
/// negligible" (§IV) and powers the minimal fleet each slot. Its own
/// citation [8] (Lin, Wierman, Andrew, Thereska: "Dynamic right-sizing
/// for power-proportional data centers") is about exactly the opposite
/// regime: toggling a server costs real money (wear, migration, staff),
/// so a controller should *hold* recently-idled servers for a while.
///
/// This wrapper plans each slot with OptimizedPolicy, then applies the
/// classic rental-problem timeout: a server idled at slot t stays powered
/// for `hold = ceil(switch_cost / idle_cost_per_slot)` more slots — the
/// break-even point where holding and re-toggling cost the same — before
/// switching off. With zero switch cost it degenerates to the paper's
/// behaviour. The policy is stateful across slots (call reset() between
/// independent runs).
class RightSizingPolicy : public Policy {
 public:
  struct Options {
    /// Dollars paid per server power-state transition (either direction).
    double switch_cost = 0.0;
    /// Cap on the hold window (slots), bounding break-even when idle
    /// power is very cheap.
    int max_hold_slots = 24;
    OptimizedPolicy::Options inner;
  };

  RightSizingPolicy();
  explicit RightSizingPolicy(Options options);

  const std::string& name() const override { return name_; }
  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override;
  // No clone() override: the hold-window state makes plans depend on the
  // slot *sequence*, so parallel block evaluation would change them. The
  // default nullptr keeps SlotController on the serial path.

  /// Forget the power state (start of an independent run).
  void reset();

  /// Switching dollars paid by the most recent plan_slot.
  double last_switch_cost() const { return last_switch_cost_; }
  /// Total switching dollars since construction / reset().
  double total_switch_cost() const { return total_switch_cost_; }
  /// Total number of power-state transitions since construction/reset().
  int total_transitions() const { return total_transitions_; }

 private:
  std::string name_ = "RightSizing";
  Options options_;
  OptimizedPolicy inner_;
  /// Per-DC powered-on counts after the previous slot (empty = no state).
  std::vector<int> prev_on_;
  /// Per-DC countdown: slots a held (idle) server block remains powered.
  std::vector<int> hold_remaining_;
  double last_switch_cost_ = 0.0;
  double total_switch_cost_ = 0.0;
  int total_transitions_ = 0;
};

}  // namespace palb
