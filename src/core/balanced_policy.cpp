#include "core/balanced_policy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "check/plan_checker.hpp"
#include "queueing/mm1.hpp"
#include "units/units.hpp"
#include "util/error.hpp"

namespace palb {

DispatchPlan BalancedPolicy::plan_slot(const Topology& topology,
                                       const SlotInput& input) {
  topology.validate();
  input.validate(topology);
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  const units::CpuShare even_share{1.0 / static_cast<double>(K)};

  DispatchPlan plan = DispatchPlan::zero(topology);

  // Deadline-bounded capacity of one server for class k at the static
  // even share: the largest rate whose mean delay still meets the final
  // deadline (Eq. 1 inverted).
  std::vector<std::vector<double>> per_server_cap(
      K, std::vector<double>(L, 0.0));
  for (std::size_t k = 0; k < K; ++k) {
    // Tiny relative margin keeps a fully-loaded queue's delay strictly
    // inside the deadline band despite floating-point round-trips.
    const units::Seconds deadline =
        topology.classes[k].tuf.deadline() * (1.0 - 1e-6);
    for (std::size_t l = 0; l < L; ++l) {
      const auto& dc = topology.datacenters[l];
      per_server_cap[k][l] =
          mm1::max_rate(even_share, dc.server_capacity,
                        dc.service_rate_of(k), deadline)
              .value();
    }
  }

  // Remaining class capacity per data center (whole fleet powered).
  std::vector<std::vector<double>> remaining(K, std::vector<double>(L, 0.0));
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t l = 0; l < L; ++l) {
      remaining[k][l] = per_server_cap[k][l] *
                        static_cast<double>(topology.datacenters[l].num_servers);
    }
  }

  // Data centers in ascending order of the current electricity price.
  std::vector<std::size_t> by_price(L);
  std::iota(by_price.begin(), by_price.end(), 0);
  std::stable_sort(by_price.begin(), by_price.end(),
                   [&](std::size_t a, std::size_t b) {
                     return input.price[a] < input.price[b];
                   });

  // Greedy fill, front-ends in index order sharing the capacity ledger.
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t k = 0; k < K; ++k) {
      double demand = input.arrival_rate[k][s];
      for (std::size_t l : by_price) {
        if (demand <= 0.0) break;
        const double grant = std::min(demand, remaining[k][l]);
        if (grant <= 0.0) continue;
        plan.rate[k][s][l] += grant;
        remaining[k][l] -= grant;
        demand -= grant;
      }
      // Any residual demand is simply not admitted (the paper's Balanced
      // fails to complete requests under heavy load, Fig. 9).
    }
  }

  // Power on the fewest servers that keep every class within its static
  // per-server capacity; shares stay at the fixed even split.
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topology.datacenters[l];
    int servers = 0;
    for (std::size_t k = 0; k < K; ++k) {
      const double load = plan.class_dc_rate(k, l);
      if (load <= 0.0) continue;
      PALB_REQUIRE(per_server_cap[k][l] > 0.0,
                   "balanced fill granted load without capacity");
      servers = std::max(
          servers, static_cast<int>(std::ceil(load / per_server_cap[k][l] -
                                              1e-9)));
    }
    servers = std::min(servers, dc.num_servers);
    plan.dc[l].servers_on = servers;
    for (std::size_t k = 0; k < K; ++k) {
      plan.dc[l].share[k] = servers > 0 ? even_share.value() : 0.0;
    }
  }
  check::maybe_check_plan(topology, input, plan, "BalancedPolicy");
  return plan;
}

}  // namespace palb
